"""Ablation: sensitivity to the cross/intra bandwidth ratio.

The paper's design leans on cross-rack bandwidth being ~10x scarcer than
inner-rack bandwidth (§2.1).  This sweep varies the ratio from 1:1 to
40:1 on a fixed RS(12,4) single failure and reports each scheme's repair
time: RPR's advantage should grow with the skew and (nearly) vanish when
links are uniform.
"""

from conftest import emit
from repro.cluster import HierarchicalBandwidth, gbps
from repro.experiments import build_simics_environment, context_for, format_table
from repro.metrics import percent_reduction
from repro.repair import CARRepair, RPRScheme, TraditionalRepair, simulate_repair

RATIOS = [1, 2, 5, 10, 20, 40]


def run_sweep():
    env = build_simics_environment(12, 4)
    ctx = context_for(env, [1])
    rows = []
    for ratio in RATIOS:
        bw = HierarchicalBandwidth(intra=gbps(1.0), cross=gbps(1.0) / ratio)
        tra = simulate_repair(TraditionalRepair(), ctx, bw)
        car = simulate_repair(CARRepair(), ctx, bw)
        rpr = simulate_repair(RPRScheme(), ctx, bw)
        rows.append(
            {
                "ratio": ratio,
                "tra_s": tra.total_repair_time,
                "car_s": car.total_repair_time,
                "rpr_s": rpr.total_repair_time,
                "rpr_vs_tra_pct": percent_reduction(
                    tra.total_repair_time, rpr.total_repair_time
                ),
            }
        )
    return rows


def test_ablation_bandwidth_ratio(bench_once):
    rows = bench_once(run_sweep)
    emit(
        "Ablation — intra:cross bandwidth ratio sweep, RS(12,4), single failure",
        format_table(
            ["intra:cross", "tra_s", "car_s", "rpr_s", "rpr_vs_tra_%"],
            [
                [f"{r['ratio']}:1", r["tra_s"], r["car_s"], r["rpr_s"], r["rpr_vs_tra_pct"]]
                for r in rows
            ],
        ),
    )
    reductions = [r["rpr_vs_tra_pct"] for r in rows]
    # Monotone (weakly) increasing advantage with skew.
    assert all(b >= a - 1.0 for a, b in zip(reductions, reductions[1:]))
    assert reductions[-1] > reductions[0]
    for r in rows:
        assert r["rpr_s"] <= r["tra_s"] + 1e-9
