"""Extension bench: block-size sensitivity with geo latency enabled.

The paper evaluates 256 MB blocks, where transfer time dwarfs everything.
One might expect per-hop latency (synthetic GEO_LATENCY_S — not from the
paper) to erode RPR's advantage at small blocks, since partial decoding
adds hops.  The sweep shows the opposite, and why: latency charges the
*critical path*, and RPR's critical path (``ceil(log2 q)`` cross hops)
is the shortest of the three schemes — traditional serialises ``n``
latency-bearing transfers into one port, CAR serialises ``q`` of them.
RPR's relative advantage is therefore robust across four orders of
magnitude of block size; only the absolute savings shrink.
"""

from conftest import emit
from repro.ec2 import build_ec2_environment, table1_bandwidth
from repro.experiments import format_table
from repro.metrics import percent_reduction
from repro.repair import (
    CARRepair,
    RepairContext,
    RPRScheme,
    TraditionalRepair,
    simulate_repair,
)

BLOCK_SIZES = [
    ("256 MB", 256_000_000),
    ("16 MB", 16_000_000),
    ("1 MB", 1_000_000),
    ("64 KB", 64_000),
]


def run_sweep():
    bandwidth = table1_bandwidth(with_latency=True)
    rows = []
    for label, block_size in BLOCK_SIZES:
        env = build_ec2_environment(12, 4, block_size=block_size)
        ctx = RepairContext(
            code=env.code,
            cluster=env.cluster,
            placement=env.placement,
            failed_blocks=(1,),
            block_size=block_size,
            cost_model=env.cost_model,
        )
        tra = simulate_repair(TraditionalRepair(), ctx, bandwidth)
        car = simulate_repair(CARRepair(), ctx, bandwidth)
        rpr = simulate_repair(RPRScheme(), ctx, bandwidth)
        rows.append(
            {
                "block": label,
                "tra_s": tra.total_repair_time,
                "car_s": car.total_repair_time,
                "rpr_s": rpr.total_repair_time,
                "rpr_vs_tra_pct": percent_reduction(
                    tra.total_repair_time, rpr.total_repair_time
                ),
                "abs_saving_s": tra.total_repair_time - rpr.total_repair_time,
            }
        )
    return rows


def test_ablation_block_size_with_latency(bench_once):
    rows = bench_once(run_sweep)
    emit(
        "Extension — block-size sweep with geo latency, RS(12,4) single "
        "failure, EC2 links",
        format_table(
            ["block", "tra_s", "car_s", "rpr_s", "rpr_vs_tra_%", "saved_s"],
            [
                [
                    r["block"],
                    r["tra_s"],
                    r["car_s"],
                    r["rpr_s"],
                    r["rpr_vs_tra_pct"],
                    r["abs_saving_s"],
                ]
                for r in rows
            ],
        ),
    )
    # Relative advantage is robust across all block sizes (shortest
    # critical path also wins the latency game)...
    for r in rows:
        assert r["rpr_vs_tra_pct"] > 60.0
        assert r["rpr_s"] <= r["car_s"] + 1e-9
    # ...while the absolute savings scale with block size.
    savings = [r["abs_saving_s"] for r in rows]
    assert savings == sorted(savings, reverse=True)
