"""Extension bench: bandwidth-aware cross scheduling on heterogeneous links.

The paper's Algorithm 2 assumes uniform cross-rack links; the EC2
testbed's links vary 2.6x (Table 1).  HeterogeneityAwareRPR searches the
gather orderings against the link matrix (Gong et al. [11] direction).
Expectation: measurable gains only where >= 3 remote racks leave room to
reorder ((6,2), (8,2), (12,4)); exact ties elsewhere, and always equal
cross-rack traffic.
"""

from conftest import emit
from repro.experiments import build_ec2_env, context_for, format_table
from repro.metrics import percent_reduction
from repro.repair import HeterogeneityAwareRPR, RPRScheme, simulate_repair
from repro.rs import PAPER_SINGLE_FAILURE_CODES
from repro.workloads import single_failure_scenarios


def run_sweep():
    rows = []
    for n, k in PAPER_SINGLE_FAILURE_CODES:
        env = build_ec2_env(n, k)
        plain = RPRScheme()
        aware = HeterogeneityAwareRPR(env.bandwidth)
        plain_t = aware_t = 0.0
        scenarios = single_failure_scenarios(env.code, data_only=True)
        for scenario in scenarios:
            ctx = context_for(env, scenario.failed_blocks)
            plain_t += simulate_repair(plain, ctx, env.bandwidth).total_repair_time
            aware_t += simulate_repair(aware, ctx, env.bandwidth).total_repair_time
        m = len(scenarios)
        rows.append(
            {
                "code": f"({n},{k})",
                "plain_s": plain_t / m,
                "aware_s": aware_t / m,
                "gain_pct": percent_reduction(plain_t, aware_t),
            }
        )
    return rows


def test_ablation_bandwidth_aware_gather(bench_once):
    rows = bench_once(run_sweep)
    emit(
        "Extension — bandwidth-aware gather ordering vs plain Algorithm 2 "
        "(EC2 links)",
        format_table(
            ["code", "rpr_s", "rpr_hetero_s", "gain_%"],
            [[r["code"], r["plain_s"], r["aware_s"], r["gain_pct"]] for r in rows],
        ),
    )
    for r in rows:
        assert r["aware_s"] <= r["plain_s"] + 1e-9
    # The wide codes must show real wins.
    by_code = {r["code"]: r["gain_pct"] for r in rows}
    assert by_code["(6,2)"] > 5.0
    assert by_code["(12,4)"] > 5.0
