"""Ablation: Algorithm 2's pipeline vs direct all-to-recovery gathering.

Reproduces Fig. 5's schedule 1 vs schedule 2 comparison quantitatively:
same partial decoding, same traffic — the only change is whether remote
racks aggregate in a binomial pipeline (RPR) or all stream straight to
the recovery node (no-pipeline, CAR-style cross stage).
"""

from conftest import emit
from repro.experiments import build_simics_environment, format_table, run_scheme, sweep_scheme
from repro.metrics import UtilizationSummary, percent_reduction
from repro.repair import RPRScheme
from repro.rs import PAPER_SINGLE_FAILURE_CODES
from repro.workloads import single_failure_scenarios


def run_ablation():
    rows = []
    piped, direct = RPRScheme(pipeline=True), RPRScheme(pipeline=False)
    for n, k in PAPER_SINGLE_FAILURE_CODES:
        env = build_simics_environment(n, k)
        scenarios = single_failure_scenarios(env.code, data_only=True)
        with_pipe = sweep_scheme(env, piped, scenarios)
        without = sweep_scheme(env, direct, scenarios)
        rows.append(
            {
                "code": env.label,
                "pipeline_s": with_pipe.mean_time,
                "direct_s": without.mean_time,
                "gain_pct": percent_reduction(without.mean_time, with_pipe.mean_time),
                "pipe_blocks": with_pipe.mean_cross_blocks,
                "direct_blocks": without.mean_cross_blocks,
            }
        )
    return rows


def test_ablation_pipeline_vs_direct(bench_once):
    rows = bench_once(run_ablation)
    emit(
        "Ablation — greedy cross-rack pipeline (Fig. 5 schedule 2) vs "
        "direct gather (schedule 1)",
        format_table(
            ["code", "pipelined_s", "direct_s", "gain_%", "traffic_same"],
            [
                [
                    r["code"],
                    r["pipeline_s"],
                    r["direct_s"],
                    r["gain_pct"],
                    str(r["pipe_blocks"] == r["direct_blocks"]),
                ]
                for r in rows
            ],
        ),
    )
    for r in rows:
        # The pipeline never hurts, and traffic is untouched.
        assert r["pipeline_s"] <= r["direct_s"] + 1e-9
        assert r["pipe_blocks"] == r["direct_blocks"]
    # With >= 3 remote racks the pipeline must strictly win.
    by_code = {r["code"]: r for r in rows}
    assert by_code["(6,2)"]["gain_pct"] > 10.0
    assert by_code["(12,4)"]["gain_pct"] > 10.0


def idle_rack_rows():
    """The Fig. 5 idle-rack argument, measured (one scenario per code).

    Same traffic, same partial decoding — but under the direct schedule
    each remote rack uploads once and then sits idle while the others
    drain serially into the recovery node; the pipeline overlaps those
    uploads, so racks spend less of the (shorter) run idle.
    """
    rows = []
    piped, direct = RPRScheme(pipeline=True), RPRScheme(pipeline=False)
    for n, k in PAPER_SINGLE_FAILURE_CODES:
        env = build_simics_environment(n, k)
        pipe_util = UtilizationSummary.from_trace(run_scheme(env, piped, [1]).trace())
        direct_util = UtilizationSummary.from_trace(run_scheme(env, direct, [1]).trace())
        rows.append(
            {
                "code": env.label,
                "pipe_idle_pct": 100 * pipe_util.mean_rack_upload_idle,
                "direct_idle_pct": 100 * direct_util.mean_rack_upload_idle,
                "pipe_mean_util_pct": 100 * pipe_util.mean_port_utilization,
                "direct_mean_util_pct": 100 * direct_util.mean_port_utilization,
            }
        )
    return rows


def test_ablation_pipeline_idle_racks(bench_once):
    rows = bench_once(idle_rack_rows)
    emit(
        "Ablation annotation — mean rack upload idle fraction "
        "(Fig. 5: schedule 1 leaves racks idle)",
        format_table(
            ["code", "pipelined_idle_%", "direct_idle_%", "pipelined_util_%", "direct_util_%"],
            [
                [
                    r["code"],
                    r["pipe_idle_pct"],
                    r["direct_idle_pct"],
                    r["pipe_mean_util_pct"],
                    r["direct_mean_util_pct"],
                ]
                for r in rows
            ],
        ),
    )
    by_code = {r["code"]: r for r in rows}
    for r in rows:
        assert r["pipe_idle_pct"] <= r["direct_idle_pct"] + 1e-9
    # With >= 3 remote racks the pipeline strictly reduces idle time.
    assert by_code["(6,2)"]["pipe_idle_pct"] < by_code["(6,2)"]["direct_idle_pct"]
    assert by_code["(12,4)"]["pipe_idle_pct"] < by_code["(12,4)"]["direct_idle_pct"]
