"""Ablation: §3.3 data-parity pre-placement and the XOR-only decode path.

Two axes are separated:

1. **Placement** — RPR pre-placement (P0 beside data blocks) vs the plain
   contiguous layout, both repaired by a selection-unaware RPR variant
   (``prefer_xor=False``).  With pre-placement, the rack-packing helper
   pick naturally sweeps P0 in with a data rack and the derived equation
   degenerates to pure XOR — no decoding-matrix build — exactly the §3.3
   effect ("there is a chance there is no need to build the decoding
   matrix").  Under the contiguous layout the partial pick lands on an
   arbitrary parity and pays the build.
2. **Selection awareness** — with pre-placement active, explicitly
   preferring the eq. (6) helper set (``prefer_xor=True``) closes the
   remaining gap for codes where rack packing alone does not reach P0.

The decode gap is small on the Simics model (matrix build = 4 x a 0.26 s
pass) and large on the EC2 t2.micro model (20 s vs 2.5 s per 256 MB).
"""

from conftest import emit
from repro.experiments import (
    build_ec2_env,
    build_simics_environment,
    format_table,
    sweep_scheme,
)
from repro.metrics import percent_reduction
from repro.repair import RPRScheme
from repro.rs import PAPER_SINGLE_FAILURE_CODES
from repro.workloads import single_failure_scenarios


def run_placement_ablation(env_builder):
    """Pre-placement vs contiguous layout under an unaware selection."""
    rows = []
    unaware = RPRScheme(prefer_xor=False)
    for n, k in PAPER_SINGLE_FAILURE_CODES:
        env_pre = env_builder(n, k, placement="rpr")
        env_cont = env_builder(n, k, placement="contiguous")
        scenarios = single_failure_scenarios(env_pre.code, data_only=True)
        with_pp = sweep_scheme(env_pre, unaware, scenarios)
        without = sweep_scheme(env_cont, unaware, scenarios)
        rows.append(
            {
                "code": f"({n},{k})",
                "preplaced_s": with_pp.mean_time,
                "contiguous_s": without.mean_time,
                "gain_pct": percent_reduction(without.mean_time, with_pp.mean_time),
                "traffic_same": with_pp.mean_cross_blocks == without.mean_cross_blocks,
            }
        )
    return rows


def run_selection_ablation(env_builder):
    """XOR-preferring vs unaware selection, both on the pre-placed layout."""
    rows = []
    aware, unaware = RPRScheme(prefer_xor=True), RPRScheme(prefer_xor=False)
    for n, k in PAPER_SINGLE_FAILURE_CODES:
        env = env_builder(n, k, placement="rpr")
        scenarios = single_failure_scenarios(env.code, data_only=True)
        a = sweep_scheme(env, aware, scenarios)
        b = sweep_scheme(env, unaware, scenarios)
        rows.append(
            {
                "code": f"({n},{k})",
                "aware_s": a.mean_time,
                "unaware_s": b.mean_time,
                "gain_pct": percent_reduction(b.mean_time, a.mean_time),
            }
        )
    return rows


def _table(rows, col_a, col_b):
    return format_table(
        ["code", col_a, col_b, "gain_%"],
        [[r["code"], r[col_a], r[col_b], r["gain_pct"]] for r in rows],
    )


def test_ablation_preplacement_simics(bench_once):
    rows = bench_once(lambda: run_placement_ablation(build_simics_environment))
    emit(
        "Ablation — pre-placement vs contiguous layout, Simics decode model",
        _table(rows, "preplaced_s", "contiguous_s"),
    )
    for r in rows:
        assert r["preplaced_s"] <= r["contiguous_s"] + 1e-9
        assert r["traffic_same"]  # §3.3: no effect on traffic


def test_ablation_preplacement_ec2(bench_once):
    rows = bench_once(lambda: run_placement_ablation(build_ec2_env))
    emit(
        "Ablation — pre-placement vs contiguous layout, EC2 (t2.micro) decode",
        _table(rows, "preplaced_s", "contiguous_s"),
    )
    # The slow-decode testbed exposes the ~17.5 s matrix-build saving.
    for r in rows:
        assert r["contiguous_s"] - r["preplaced_s"] > 10.0


def test_ablation_xor_selection_ec2(bench_once):
    rows = bench_once(lambda: run_selection_ablation(build_ec2_env))
    emit(
        "Ablation — XOR-preferring vs unaware helper selection "
        "(pre-placed layout, EC2 decode)",
        _table(rows, "aware_s", "unaware_s"),
    )
    for r in rows:
        assert r["aware_s"] <= r["unaware_s"] + 1e-9
