"""Ablation: repair time vs the number of racks a stripe spans.

§4.1's analysis says RPR's cross stage costs ``(floor(log2 q) + 1) * t_c``
while traditional repair costs ``n * t_c`` — so the win should *grow*
with ``q``.  This sweep fixes the code family at k=2 and walks
n ∈ {4, 6, 8, 10, 12} (q = 3..7 racks), measuring all three schemes and
the analytic eq. (13) bound alongside.
"""

from conftest import emit
from repro.analysis import TimeParameters, racks_for_code, rpr_worst_case_time
from repro.experiments import build_simics_environment, context_for, format_table
from repro.metrics import percent_reduction
from repro.repair import CARRepair, RPRScheme, TraditionalRepair, simulate_repair

NS = [4, 6, 8, 10, 12]
K = 2


def run_sweep():
    rows = []
    for n in NS:
        env = build_simics_environment(n, K)
        ctx = context_for(env, [1])
        t_i = env.block_size / env.bandwidth.intra
        t_c = env.block_size / env.bandwidth.cross
        params = TimeParameters(t_i=t_i, t_c=t_c)
        tra = simulate_repair(TraditionalRepair(), ctx, env.bandwidth)
        car = simulate_repair(CARRepair(), ctx, env.bandwidth)
        rpr = simulate_repair(RPRScheme(), ctx, env.bandwidth)
        rows.append(
            {
                "code": f"({n},{K})",
                "q": racks_for_code(n, K),
                "tra_s": tra.total_repair_time,
                "car_s": car.total_repair_time,
                "rpr_s": rpr.total_repair_time,
                "eq13_bound_s": rpr_worst_case_time(n, K, params),
                "reduction_pct": percent_reduction(
                    tra.total_repair_time, rpr.total_repair_time
                ),
            }
        )
    return rows


def test_ablation_rack_count(bench_once):
    rows = bench_once(run_sweep)
    emit(
        "Ablation — repair time vs stripe rack span (k=2 family, single failure)",
        format_table(
            ["code", "q", "tra_s", "car_s", "rpr_s", "eq13_bound_s", "rpr_vs_tra_%"],
            [
                [
                    r["code"],
                    r["q"],
                    r["tra_s"],
                    r["car_s"],
                    r["rpr_s"],
                    r["eq13_bound_s"],
                    r["reduction_pct"],
                ]
                for r in rows
            ],
        ),
    )
    # Traditional grows ~linearly in n; RPR ~logarithmically in q: the
    # reduction percentage must be non-decreasing along the sweep.
    reductions = [r["reduction_pct"] for r in rows]
    assert all(b >= a - 3.0 for a, b in zip(reductions, reductions[1:]))
    assert reductions[-1] > reductions[0]
    for r in rows:
        # eq. (13) bounds the measured pipelined schedule (+ decode slack).
        assert r["rpr_s"] <= r["eq13_bound_s"] + 5.0
