"""Ablation: aggregation-switch concurrency and the value of the pipeline.

The paper's network model constrains only per-node ports — the
aggregation switch carries any number of simultaneous cross-rack
transfers.  RPR's pipeline leans on that: schedule 2 of Fig. 5 runs two
cross-rack transfers at once.  This sweep caps cluster-wide concurrent
cross-rack transfers and watches the schemes converge: with capacity 1
no parallelism survives and RPR degrades to CAR-like serial timing
(its traffic advantage over traditional remains).
"""

import pytest

from conftest import emit
from repro.experiments import build_simics_environment, context_for, format_table
from repro.repair import CARRepair, RPRScheme, TraditionalRepair
from repro.sim import SimulationEngine

CAPACITIES = [None, 4, 2, 1]


def run_sweep():
    env = build_simics_environment(12, 4)
    ctx = context_for(env, [1])
    rows = []
    for capacity in CAPACITIES:
        row = {"capacity": "unlimited" if capacity is None else str(capacity)}
        for scheme in [TraditionalRepair(), CARRepair(), RPRScheme()]:
            plan = scheme.plan(ctx)
            graph = plan.to_job_graph(ctx.cost_model)
            engine = SimulationEngine(
                env.cluster, env.bandwidth, cross_capacity=capacity
            )
            row[scheme.name] = engine.run(graph).makespan
        rows.append(row)
    return rows


def test_ablation_switch_capacity(bench_once):
    rows = bench_once(run_sweep)
    emit(
        "Ablation — aggregation-switch concurrency cap, RS(12,4) single failure",
        format_table(
            ["cross_capacity", "tra_s", "car_s", "rpr_s"],
            [
                [r["capacity"], r["traditional"], r["car"], r["rpr"]]
                for r in rows
            ],
        ),
    )
    unlimited = rows[0]
    tight = rows[-1]
    # Traditional and CAR already serialise through the recovery node, so
    # the cap barely moves them; RPR gives back its pipeline win.
    assert tight["traditional"] == pytest.approx(unlimited["traditional"], rel=0.05)
    assert tight["rpr"] >= unlimited["rpr"]
    # Even fully serialised, RPR is never worse than CAR (same transfers,
    # minus CAR's star gather inefficiency).
    for r in rows:
        assert r["rpr"] <= r["car"] + 1e-9
        assert r["car"] <= r["traditional"] + 1e-9

