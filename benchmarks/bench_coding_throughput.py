"""Coding-core throughput: the GF/RS kernels behind every repair.

These are true hot-loop benchmarks (pytest-benchmark's statistical
timing), sanity-checking that the pure-numpy substitute for Jerasure
sustains the throughput regime the cost models assume (hundreds of MB/s
on commodity hardware; the paper's reference decode speed is ~1 GB/s for
C kernels).
"""

import numpy as np

from repro.gf import gf_matmul_blocks, linear_combine, mat_inv, scale, scale_accumulate
from repro.rs import get_code, recovery_equations

BLOCK = 4 * 1024 * 1024  # 4 MiB per block keeps rounds fast but realistic
#: Batched-kernel shape: 64 stripes of 64 KiB blocks — the node-rebuild
#: regime run_perf.py's acceptance ratios are measured at.
STRIPES, STRIPE_BLOCK = 64, 64 * 1024
rng = np.random.default_rng(42)


def test_gf_scale_throughput(benchmark):
    """Single-coefficient block scaling (the encode/decode inner loop)."""
    block = rng.integers(0, 256, BLOCK, dtype=np.uint8)
    result = benchmark(scale, 37, block)
    assert result.shape == block.shape


def test_gf_scale_accumulate_throughput(benchmark):
    """Fused multiply-XOR into an accumulator (one decode term)."""
    block = rng.integers(0, 256, BLOCK, dtype=np.uint8)
    acc = np.zeros(BLOCK, dtype=np.uint8)
    benchmark(scale_accumulate, acc, 91, block)


def test_xor_only_combine_throughput(benchmark):
    """The eq. (6) fast path: pure XOR of n blocks (coefficients all 1)."""
    blocks = [rng.integers(0, 256, BLOCK, dtype=np.uint8) for _ in range(6)]
    benchmark(linear_combine, [1] * 6, blocks)


def test_general_combine_throughput(benchmark):
    """A general partial decode: 6-term linear combination."""
    blocks = [rng.integers(0, 256, BLOCK, dtype=np.uint8) for _ in range(6)]
    coeffs = [3, 7, 19, 33, 101, 250]
    benchmark(linear_combine, coeffs, blocks)


def test_rs_encode_throughput(benchmark):
    """Full RS(12,4) stripe encode."""
    code = get_code(12, 4)
    data = [rng.integers(0, 256, BLOCK // 4, dtype=np.uint8) for _ in range(12)]
    out = benchmark(code.encode, data)
    assert len(out) == 16


def test_rs_encode_many_throughput(benchmark):
    """Batched stripe-stack encode into a reused arena (the fast path)."""
    code = get_code(6, 2)
    data = rng.integers(0, 256, (STRIPES, code.n, STRIPE_BLOCK), dtype=np.uint8)
    arena = np.empty((STRIPES, code.width, STRIPE_BLOCK), dtype=np.uint8)
    out = benchmark(code.encode_many, data, arena)
    assert out.shape == arena.shape


def test_rs_decode_many_throughput(benchmark):
    """Batched two-failure decode over a 64-stripe stack."""
    code = get_code(6, 2)
    data = rng.integers(0, 256, (STRIPES, code.n, STRIPE_BLOCK), dtype=np.uint8)
    encoded = code.encode_many(data)
    failed = [0, code.n + 1]
    available = {
        b: np.ascontiguousarray(encoded[:, b, :])
        for b in range(code.width)
        if b not in failed
    }
    recovered = benchmark(code.decode_many, available, failed)
    assert sorted(recovered) == failed


def test_gf_matmul_blocks_throughput(benchmark):
    """Raw batched kernel: 2x6 coding matrix over six stacked blocks."""
    code = get_code(6, 2)
    blocks = [
        rng.integers(0, 256, (STRIPES, STRIPE_BLOCK), dtype=np.uint8)
        for _ in range(code.n)
    ]
    out = benchmark(gf_matmul_blocks, code.generator[code.n :], blocks, code.tables)
    assert out.shape == (code.k, STRIPES, STRIPE_BLOCK)


def test_decoding_matrix_build_cost(benchmark):
    """The M'^{-1} construction §3.3 avoids — matrix build + equation
    extraction for an RS(12,4) four-failure decode."""
    code = get_code(12, 4)

    def build():
        return recovery_equations(
            code, [0, 1, 2, 3], [4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15][:12]
        )

    eqs = benchmark(build)
    assert len(eqs) == 4


def test_gf_matrix_inversion(benchmark):
    """Raw Gauss-Jordan inversion of a 12x12 GF matrix."""
    code = get_code(12, 4)
    m = code.generator[[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 14]]
    inv = benchmark(mat_inv, m)
    assert inv.shape == (12, 12)
