#!/usr/bin/env python
"""Degraded-repair bench: repair time under injected mid-repair faults.

For each code and scheme we first measure the fault-free repair, then
re-run the same repair under seeded :func:`random_fault_plan` draws whose
death window spans that scheme's own fault-free makespan (so every draw
can strike while the repair is in flight).  The sweep quantifies what the
fault tolerance costs: degraded makespan vs fault-free, re-plan attempts,
retried/wasted wire bytes, and how often RPR's re-plan reused partial
sums already delivered by the failed attempt — the recovery property that
distinguishes it from traditional/CAR, which must restart their gathers.

Runs two ways:

    pytest benchmarks/bench_degraded_repair.py          # bench harness
    python benchmarks/bench_degraded_repair.py --smoke  # CI fault-path smoke
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments import build_simics_environment, context_for, format_table  # noqa: E402
from repro.metrics import FaultRollup  # noqa: E402
from repro.repair import (  # noqa: E402
    CARRepair,
    IrrecoverableError,
    RPRScheme,
    TraditionalRepair,
    simulate_repair,
    simulate_repair_with_faults,
)
from repro.sim import FaultPlan, NodeDeath, random_fault_plan  # noqa: E402

MB = 1024 * 1024

SCHEMES = [
    ("traditional", TraditionalRepair),
    ("car", CARRepair),
    ("rpr", RPRScheme),
]

FULL_CODES = [(4, 2), (6, 3), (8, 3)]
FULL_SEEDS = range(8)
SMOKE_CODES = [(4, 2), (8, 3)]
SMOKE_SEEDS = range(3)


def run_sweep(codes=FULL_CODES, seeds=FULL_SEEDS, deaths: int = 1):
    """One row per (code, scheme): fault-free time + FaultRollup stats."""
    rows = []
    for n, k in codes:
        env = build_simics_environment(n, k)
        ctx = context_for(env, [1])
        for name, factory in SCHEMES:
            scheme = factory()
            fault_free = simulate_repair(scheme, ctx, env.bandwidth).total_repair_time
            outcomes = []
            for seed in seeds:
                faults = random_fault_plan(
                    env.cluster.node_ids(),
                    seed=seed,
                    deaths=deaths,
                    death_window=(0.0, fault_free),
                )
                try:
                    outcomes.append(
                        simulate_repair_with_faults(scheme, ctx, env.bandwidth, faults)
                    )
                except IrrecoverableError:
                    outcomes.append(None)
            rollup = FaultRollup.from_outcomes(outcomes)
            rows.append(
                {
                    "code": f"({n},{k})",
                    "scheme": name,
                    "fault_free_s": fault_free,
                    "rollup": rollup,
                }
            )
    return rows


def pinned_reuse_outcome():
    """The pinned intermediate-reuse scenario.

    RS(8,3) has two remote racks whose cross sends serialize at the
    target; killing the second rack's sender (node 12) at 70% of the
    fault-free makespan strands it mid-transfer *after* the first rack's
    partial sums have landed — the re-plan must consume those instead of
    re-gathering them.
    """
    env = build_simics_environment(8, 3)
    ctx = context_for(env, [2])
    scheme = RPRScheme()
    fault_free = simulate_repair(scheme, ctx, env.bandwidth).total_repair_time
    faults = FaultPlan(deaths=(NodeDeath(node=12, time=0.7 * fault_free),))
    return simulate_repair_with_faults(scheme, ctx, env.bandwidth, faults)


def rows_to_table(rows) -> str:
    return format_table(
        [
            "code",
            "scheme",
            "fault_free_s",
            "mean_degraded_s",
            "max_degraded_s",
            "mean_attempts",
            "wasted_MB",
            "reused",
            "irrecov",
        ],
        [
            [
                r["code"],
                r["scheme"],
                r["fault_free_s"],
                r["rollup"].mean_makespan,
                r["rollup"].max_makespan,
                r["rollup"].mean_attempts,
                r["rollup"].wasted_bytes / MB,
                r["rollup"].reuse_count,
                r["rollup"].irrecoverable,
            ]
            for r in rows
        ],
    )


def check_rows(rows) -> None:
    """Invariants every sweep must satisfy (used by pytest and --smoke)."""
    for r in rows:
        rollup = r["rollup"]
        # Single-death scenarios on the Simics testbed (a spare rack plus
        # 2k nodes per rack) always leave enough live helpers and spares.
        assert rollup.irrecoverable == 0, r
        assert rollup.completed == rollup.scenarios
        # A degraded repair is never faster than its fault-free baseline.
        assert rollup.mean_makespan >= r["fault_free_s"] - 1e-9, r
        assert 1.0 <= rollup.mean_attempts <= rollup.max_attempts or rollup.scenarios == 0
    # RPR's re-plan must reuse delivered intermediates in the pinned
    # helper-death scenario — the property the scheme exists to provide.
    pinned = pinned_reuse_outcome()
    assert pinned.attempts == 2
    assert pinned.reused_payloads


def test_degraded_repair_sweep(bench_once):
    rows = bench_once(run_sweep)
    emit_rows(rows)
    check_rows(rows)


def emit_rows(rows) -> None:
    from conftest import emit

    emit(
        "Degraded repair under injected node deaths "
        "(seeded fault plans, death window = fault-free makespan)",
        rows_to_table(rows),
    )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small codes / few seeds — the CI fault-path check",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        rows = run_sweep(codes=SMOKE_CODES, seeds=SMOKE_SEEDS)
    else:
        rows = run_sweep()
    print(rows_to_table(rows))
    check_rows(rows)
    print("degraded-repair sweep OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
