"""Extension bench: repair speed → data durability (MTTDL).

Quantifies the paper's motivation.  Per-state repair times are measured
on the Simics testbed for each scheme, then fed into the analytic
birth-death MTTDL model at a production failure rate (one failure per
block per 4 years — the AFR regime of Schroeder & Gibson [29]) and into
an accelerated Monte-Carlo run for cross-validation.
"""

from conftest import emit
from repro.experiments import build_simics_environment, context_for, format_table
from repro.reliability import mttdl_from_repair_times, simulate_stripe_lifetimes
from repro.repair import RPRScheme, TraditionalRepair, simulate_repair

YEAR = 365.25 * 24 * 3600
LAM_PRODUCTION = 1 / (4 * YEAR)
LAM_ACCELERATED = 1 / 2000.0
CODES = [(6, 2), (8, 4), (12, 4)]


def run_analysis():
    rows = []
    for n, k in CODES:
        env = build_simics_environment(n, k)
        for scheme in [TraditionalRepair(), RPRScheme()]:
            times = [
                simulate_repair(
                    scheme, context_for(env, list(range(l))), env.bandwidth
                ).total_repair_time
                for l in range(1, k + 1)
            ]
            analytic = mttdl_from_repair_times(n + k, k, LAM_PRODUCTION, times)
            mc = simulate_stripe_lifetimes(
                env, scheme, LAM_ACCELERATED, trials=80, seed=13
            )
            rows.append(
                {
                    "code": f"({n},{k})",
                    "scheme": scheme.name,
                    "repair_1_s": times[0],
                    "repair_k_s": times[-1],
                    "mttdl_years": analytic / YEAR,
                    "mc_accel_s": mc.mttdl_seconds,
                }
            )
    return rows


def test_durability_mttdl(bench_once):
    rows = bench_once(run_analysis)
    emit(
        "Extension — MTTDL per scheme (analytic at 1 failure/block/4y; "
        "MC at accelerated rate)",
        format_table(
            ["code", "scheme", "repair(1)_s", "repair(k)_s", "MTTDL_years", "MC_accel_s"],
            [
                [
                    r["code"],
                    r["scheme"],
                    r["repair_1_s"],
                    r["repair_k_s"],
                    f"{r['mttdl_years']:.3e}",
                    r["mc_accel_s"],
                ]
                for r in rows
            ],
        ),
    )
    by = {(r["code"], r["scheme"]): r for r in rows}
    for n, k in CODES:
        code = f"({n},{k})"
        tra, rpr = by[(code, "traditional")], by[(code, "rpr")]
        # Faster repair must translate into higher durability in both models.
        assert rpr["mttdl_years"] > tra["mttdl_years"]
        assert rpr["mc_accel_s"] > tra["mc_accel_s"]
        # The amplification is super-linear (~ (T_tra/T_rpr)^k in the rare
        # regime); demand at least the linear factor.
        speedup = tra["repair_1_s"] / rpr["repair_1_s"]
        assert rpr["mttdl_years"] / tra["mttdl_years"] > speedup
