"""Harness performance: can the event engine handle store-scale graphs?

Real nodes hold thousands of stripes; the engine must chew through the
merged rebuild graphs fast enough to keep sweeps interactive.  These are
true pytest-benchmark timings (statistical, multiple rounds) of the
engine itself on progressively larger merged node-rebuild graphs.
"""

import pytest

from repro.cluster import Cluster, SIMICS_BANDWIDTH
from repro.multistripe import StripeStore, merge_plans, node_failure_contexts
from repro.repair import RPRScheme
from repro.rs import SIMICS_DECODE, get_code
from repro.sim import SimulationEngine


def build_rebuild_graph(num_stripes):
    cluster = Cluster.homogeneous(5, 8)
    store = StripeStore.build(cluster, get_code(6, 2), num_stripes)
    _, contexts = node_failure_contexts(store, 0, mode="scatter")
    plans = [RPRScheme().plan(ctx) for ctx in contexts]
    graph = merge_plans(plans, SIMICS_DECODE)
    return cluster, graph


@pytest.mark.parametrize("num_stripes", [40, 200])
def test_engine_node_rebuild_scale(benchmark, num_stripes):
    cluster, graph = build_rebuild_graph(num_stripes)
    engine = SimulationEngine(cluster, SIMICS_BANDWIDTH)
    result = benchmark(engine.run, graph)
    assert result.makespan > 0
    assert len(result.timings) == len(graph)
    print(
        f"\n  {num_stripes} stripes -> {len(graph)} jobs, "
        f"makespan {result.makespan:.1f} s simulated"
    )


def test_planning_scale(benchmark):
    """Plan construction throughput for a whole node's worth of stripes."""
    cluster = Cluster.homogeneous(5, 8)
    store = StripeStore.build(cluster, get_code(6, 2), 200)
    _, contexts = node_failure_contexts(store, 0, mode="scatter")
    scheme = RPRScheme()

    def plan_all():
        return [scheme.plan(ctx) for ctx in contexts]

    plans = benchmark(plan_all)
    assert len(plans) == len(contexts)
