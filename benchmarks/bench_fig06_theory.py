"""Figure 6: theoretical total repair time, traditional vs RPR worst case.

Paper: with t_i = 1 ms and t_c = 10 ms, traditional repair grows linearly
with n while RPR grows "steadily and with a much smaller scale".
"""

from conftest import emit
from repro.experiments import figure6_rows, format_table


def test_fig06_theoretical_repair_time(bench_once):
    rows = bench_once(figure6_rows)
    table = format_table(
        ["code", "traditional_ms", "rpr_worstcase_ms"],
        [
            [r["code"], r["traditional_s"] * 1e3, r["rpr_s"] * 1e3]
            for r in rows
        ],
    )
    emit("Figure 6 — theoretical repair time (t_i=1ms, t_c=10ms)", table)
    assert all(r["rpr_s"] < r["traditional_s"] for r in rows)
