"""Figure 7: cross-rack traffic for single-block failures (Simics).

Paper: CAR and RPR move identical cross-rack volume (both partial-decode),
and both move far less than traditional repair.
"""

from conftest import emit
from repro.experiments import figure7_rows, format_table


def test_fig07_single_failure_cross_traffic(bench_once):
    rows = bench_once(figure7_rows)
    table = format_table(
        ["code", "tra_blocks", "car_blocks", "rpr_blocks"],
        [
            [
                r["code"],
                r["tra_cross_blocks"],
                r["car_cross_blocks"],
                r["rpr_cross_blocks"],
            ]
            for r in rows
        ],
    )
    emit("Figure 7 — cross-rack traffic, single failure (256MB blocks)", table)
    for r in rows:
        assert r["car_cross_blocks"] == r["rpr_cross_blocks"]
        assert r["rpr_cross_blocks"] < r["tra_cross_blocks"]
