"""Figure 8: total repair time for single-block failures (Simics).

Paper: RPR reduces total repair time by an average of 67% / up to 81.5%
vs traditional, and an average of 24% / up to 37% vs CAR.  Our traditional
baseline is slightly cheaper than the paper's n * t_c because helpers
co-located with the recovery rack travel intra-rack (see EXPERIMENTS.md),
so the measured reductions sit a few points below the paper's.
"""

from conftest import emit
from repro.experiments import figure8_rows, format_table


def test_fig08_single_failure_repair_time(bench_once):
    rows = bench_once(figure8_rows)
    table = format_table(
        ["code", "tra_s", "car_s", "rpr_s", "rpr_vs_tra_%", "rpr_vs_car_%"],
        [
            [
                r["code"],
                r["tra_time_s"],
                r["car_time_s"],
                r["rpr_time_s"],
                r["rpr_vs_tra_pct"],
                r["rpr_vs_car_pct"],
            ]
            for r in rows
        ],
    )
    emit("Figure 8 — total repair time, single failure, Simics testbed", table)
    for r in rows:
        assert r["rpr_time_s"] <= r["car_time_s"] <= r["tra_time_s"]
    best = max(r["rpr_vs_tra_pct"] for r in rows)
    assert best > 70.0  # paper: up to 81.5%
