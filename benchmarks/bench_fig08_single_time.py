"""Figure 8: total repair time for single-block failures (Simics).

Paper: RPR reduces total repair time by an average of 67% / up to 81.5%
vs traditional, and an average of 24% / up to 37% vs CAR.  Our traditional
baseline is slightly cheaper than the paper's n * t_c because helpers
co-located with the recovery rack travel intra-rack (see EXPERIMENTS.md),
so the measured reductions sit a few points below the paper's.
"""

from conftest import emit
from repro.experiments import build_simics_environment, figure8_rows, format_table, run_scheme
from repro.metrics import UtilizationSummary, critical_path_breakdown
from repro.repair import RPRScheme, TraditionalRepair
from repro.rs import PAPER_SINGLE_FAILURE_CODES


def test_fig08_single_failure_repair_time(bench_once):
    rows = bench_once(figure8_rows)
    table = format_table(
        ["code", "tra_s", "car_s", "rpr_s", "rpr_vs_tra_%", "rpr_vs_car_%"],
        [
            [
                r["code"],
                r["tra_time_s"],
                r["car_time_s"],
                r["rpr_time_s"],
                r["rpr_vs_tra_pct"],
                r["rpr_vs_car_pct"],
            ]
            for r in rows
        ],
    )
    emit("Figure 8 — total repair time, single failure, Simics testbed", table)
    for r in rows:
        assert r["rpr_time_s"] <= r["car_time_s"] <= r["tra_time_s"]
    best = max(r["rpr_vs_tra_pct"] for r in rows)
    assert best > 70.0  # paper: up to 81.5%


def attribution_rows():
    """Bottleneck attribution for one representative scenario per code.

    Explains the Figure 8 gap with the observability layer: traditional
    repair's makespan sits on the recovery node's download port, while
    RPR's critical path is dominated by a single pipelined cross-rack
    stage.
    """
    rows = []
    for n, k in PAPER_SINGLE_FAILURE_CODES:
        env = build_simics_environment(n, k)
        tra = run_scheme(env, TraditionalRepair(), [1]).trace()
        rpr = run_scheme(env, RPRScheme(), [1]).trace()
        tra_util = UtilizationSummary.from_trace(tra)
        rpr_util = UtilizationSummary.from_trace(rpr)
        rows.append(
            {
                "code": env.label,
                "tra_peak": tra_util.peak_resource,
                "tra_peak_util_pct": 100 * tra_util.peak_port_utilization,
                "tra_cp_cross_pct": critical_path_breakdown(tra)["cross_transfer_pct"],
                "rpr_cp_cross_pct": critical_path_breakdown(rpr)["cross_transfer_pct"],
                "tra_rack_idle_pct": 100 * tra_util.mean_rack_upload_idle,
                "rpr_rack_idle_pct": 100 * rpr_util.mean_rack_upload_idle,
            }
        )
    return rows


def test_fig08_bottleneck_attribution(bench_once):
    rows = bench_once(attribution_rows)
    emit(
        "Figure 8 annotation — bottleneck attribution (failed block 1 per code)",
        format_table(
            [
                "code",
                "tra_bottleneck",
                "tra_peak_util_%",
                "tra_cp_cross_%",
                "rpr_cp_cross_%",
                "tra_rack_idle_%",
                "rpr_rack_idle_%",
            ],
            [
                [
                    r["code"],
                    r["tra_peak"],
                    r["tra_peak_util_pct"],
                    r["tra_cp_cross_pct"],
                    r["rpr_cp_cross_pct"],
                    r["tra_rack_idle_pct"],
                    r["rpr_rack_idle_pct"],
                ]
                for r in rows
            ],
        ),
    )
    for r in rows:
        # §2.3: traditional repair serialises on the recovery node's
        # download port — the trace must name it as the bottleneck.
        assert r["tra_peak"].endswith(":down")
        assert r["tra_peak_util_pct"] > 90.0
        # RPR keeps racks busier than traditional (Fig. 5's idle argument).
        assert r["rpr_rack_idle_pct"] <= r["tra_rack_idle_pct"] + 1e-9
