"""Figure 9: total repair time for 2..k-1 multi-block failures (Simics).

Paper: RPR reduces the total repair time by an average of 40.75% and up
to 64.5% vs traditional.  Bars are means over all block-position
combinations; min/max columns are the error caps.
"""

from conftest import emit
from repro.experiments import figure9_rows, format_table


def test_fig09_multi_failure_repair_time(bench_once):
    rows = bench_once(figure9_rows)
    table = format_table(
        ["code", "tra_s", "rpr_s", "rpr_min_s", "rpr_max_s", "reduction_%", "scenarios"],
        [
            [
                r["code"],
                r["tra_time_s"],
                r["rpr_time_s"],
                r["rpr_time_min_s"],
                r["rpr_time_max_s"],
                r["time_reduction_pct"],
                f"{r['scenarios']}{'*' if r['sampled'] else ''}",
            ]
            for r in rows
        ],
    )
    emit(
        "Figure 9 — multi-failure (2..k-1) repair time, Simics "
        "(* = deterministically sampled sweep)",
        table,
    )
    for r in rows:
        assert r["rpr_time_s"] < r["tra_time_s"]
    assert max(r["time_reduction_pct"] for r in rows) > 55.0
