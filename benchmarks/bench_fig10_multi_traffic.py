"""Figure 10: cross-rack traffic for 2..k-1 multi-block failures (Simics).

Paper: RPR uses an average of 29.35% and up to 50% fewer cross-rack
transfers than traditional repair.
"""

from conftest import emit
from repro.experiments import figure10_rows, format_table


def test_fig10_multi_failure_cross_traffic(bench_once):
    rows = bench_once(figure10_rows)
    table = format_table(
        [
            "code",
            "tra_blocks",
            "rpr_blocks",
            "rpr_min",
            "rpr_max",
            "reduction_%",
            "scenarios",
        ],
        [
            [
                r["code"],
                r["tra_cross_blocks"],
                r["rpr_cross_blocks"],
                r["rpr_cross_blocks_min"],
                r["rpr_cross_blocks_max"],
                r["traffic_reduction_pct"],
                f"{r['scenarios']}{'*' if r['sampled'] else ''}",
            ]
            for r in rows
        ],
    )
    emit("Figure 10 — multi-failure (2..k-1) cross-rack traffic, Simics", table)
    for r in rows:
        assert r["rpr_cross_blocks"] < r["tra_cross_blocks"]
