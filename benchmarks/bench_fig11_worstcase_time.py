"""Figure 11: worst-case (k failures) repair time (Simics).

Paper: for (n+k)/k > 3 codes, RPR still reduces repair time (avg 18.3%,
up to 29.8%) even though cross-rack traffic is not reduced.  Our measured
reductions are larger because our Cross-multi overlaps the k
sub-equations' aggregation trees (the paper's Algorithms 3-4 details are
in unavailable external links — see EXPERIMENTS.md).
"""

from conftest import emit
from repro.experiments import figure11_rows, format_table


def test_fig11_worst_case_repair_time(bench_once):
    rows = bench_once(figure11_rows)
    table = format_table(
        ["code", "tra_s", "rpr_s", "rpr_min_s", "rpr_max_s", "reduction_%", "traffic_red_%"],
        [
            [
                r["code"],
                r["tra_time_s"],
                r["rpr_time_s"],
                r["rpr_time_min_s"],
                r["rpr_time_max_s"],
                r["time_reduction_pct"],
                r["traffic_reduction_pct"],
            ]
            for r in rows
        ],
    )
    emit("Figure 11 — worst-case (k failures) repair time, Simics", table)
    for r in rows:
        assert r["rpr_time_s"] < r["tra_time_s"]
        # §4.3.2: the worst case does not reduce cross-rack traffic.
        assert abs(r["traffic_reduction_pct"]) < 35.0
