"""Figure 12: single-failure repair time on the EC2 (Table 1) testbed.

Paper: RPR reduces total repair time by an average of 67.6% / up to 80.8%
vs traditional, and 37.2% / up to 50.3% vs CAR — the CAR gap is wider
than on Simics because the t2.micro matrix-building decode costs ~20 s vs
~2.5 s for RPR's optimised XOR path.
"""

from conftest import emit
from repro.experiments import figure12_rows, format_table


def test_fig12_ec2_single_failure_repair_time(bench_once):
    rows = bench_once(figure12_rows)
    table = format_table(
        ["code", "tra_s", "car_s", "rpr_s", "rpr_vs_tra_%", "rpr_vs_car_%"],
        [
            [
                r["code"],
                r["tra_time_s"],
                r["car_time_s"],
                r["rpr_time_s"],
                r["rpr_vs_tra_pct"],
                r["rpr_vs_car_pct"],
            ]
            for r in rows
        ],
    )
    emit("Figure 12 — total repair time, single failure, EC2 testbed", table)
    for r in rows:
        assert r["rpr_time_s"] <= r["car_time_s"] <= r["tra_time_s"]
    assert max(r["rpr_vs_tra_pct"] for r in rows) > 70.0
