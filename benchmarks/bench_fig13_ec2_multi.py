"""Figure 13: non-worst multi-failure repair time on the EC2 testbed.

Paper: RPR reduces the total repair time by an average of 39.93% and up
to 61.96% vs traditional when the worst case does not occur.  Cross-rack
traffic is identical to the Simics sweep (same plans, same scheduling).
"""

from conftest import emit
from repro.experiments import figure13_rows, format_table


def test_fig13_ec2_multi_failure_repair_time(bench_once):
    rows = bench_once(figure13_rows)
    table = format_table(
        ["code", "tra_s", "rpr_s", "rpr_min_s", "rpr_max_s", "reduction_%", "scenarios"],
        [
            [
                r["code"],
                r["tra_time_s"],
                r["rpr_time_s"],
                r["rpr_time_min_s"],
                r["rpr_time_max_s"],
                r["time_reduction_pct"],
                f"{r['scenarios']}{'*' if r['sampled'] else ''}",
            ]
            for r in rows
        ],
    )
    emit("Figure 13 — multi-failure (2..k-1) repair time, EC2 testbed", table)
    for r in rows:
        assert r["rpr_time_s"] < r["tra_time_s"]
        assert r["time_reduction_pct"] > 30.0
