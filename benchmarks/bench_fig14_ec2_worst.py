"""Figure 14: worst-case (k failures) repair time on the EC2 testbed.

Paper: RPR reduces the total repair time by an average of 20.6% and up to
32.8% vs traditional in the worst multi-block case.
"""

from conftest import emit
from repro.experiments import figure14_rows, format_table


def test_fig14_ec2_worst_case_repair_time(bench_once):
    rows = bench_once(figure14_rows)
    table = format_table(
        ["code", "tra_s", "rpr_s", "rpr_min_s", "rpr_max_s", "reduction_%", "scenarios"],
        [
            [
                r["code"],
                r["tra_time_s"],
                r["rpr_time_s"],
                r["rpr_time_min_s"],
                r["rpr_time_max_s"],
                r["time_reduction_pct"],
                f"{r['scenarios']}{'*' if r['sampled'] else ''}",
            ]
            for r in rows
        ],
    )
    emit("Figure 14 — worst-case (k failures) repair time, EC2 testbed", table)
    for r in rows:
        assert r["rpr_time_s"] < r["tra_time_s"]
