#!/usr/bin/env python
"""Live-runtime cross-validation bench: measured vs predicted makespans.

For each code we run every applicable scheme's repair plan twice — once
through the discrete-event simulator (prediction) and once on the
:mod:`repro.live` asyncio runtime over real bytes and shaped links
(measurement) — and report the measured/predicted ratio per scheme.
The sweep is the testbed half of the paper's §5 argument: the simulator
is only trusted because a real execution ranks the schemes the same way.

Runs two ways:

    pytest benchmarks/bench_live_validation.py          # bench harness
    python benchmarks/bench_live_validation.py --smoke  # CI live smoke

Exit status is nonzero if any recovered block differs from the lost
original or the measured ordering disagrees with the simulator — the CI
``live-smoke`` job fails on either.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments import format_table  # noqa: E402
from repro.live import run_live_validation  # noqa: E402

FULL_CODES = [(4, 2), (6, 3), (8, 3), (12, 4)]
FULL_BLOCK = 64 * 1024
SMOKE_CODES = [(6, 3)]
SMOKE_BLOCK = 32 * 1024


def run_sweep(
    codes=FULL_CODES, block_size=FULL_BLOCK, transport="memory", telemetry=False
):
    """One report per code: all schemes on a single failure."""
    return [
        run_live_validation(
            n, k, [1], block_size=block_size, transport=transport,
            telemetry=telemetry,
        )
        for n, k in codes
    ]


def export_traces(reports, out_dir) -> list:
    """Chrome trace-event files, one per code, sim + live side by side.

    The sweep's diffs only keep aligned span summaries; Chrome export
    needs the full traces, so each scheme is replayed once with a
    recorder attached.  Written files load directly in Perfetto /
    ``chrome://tracing``.
    """
    import json
    from pathlib import Path

    from repro.experiments import context_for
    from repro.live import live_environment, run_plan_live_sync
    from repro.repair import initial_store_for, simulate_repair
    from repro.repair import CARRepair, RPRScheme, TraditionalRepair
    from repro.telemetry import CLOCK_WALL, TelemetryRecorder, to_chrome_trace
    from repro.workloads import encoded_stripe

    schemes = {
        "traditional": TraditionalRepair,
        "car": CARRepair,
        "rpr": RPRScheme,
    }
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for report in reports:
        env = live_environment(report.n, report.k, block_size=report.block_size)
        ctx = context_for(env, list(report.failed))
        stripe = encoded_stripe(env.code, report.block_size, seed=0)
        traces = []
        for row in report.rows:
            predicted = simulate_repair(schemes[row.scheme](), ctx, env.bandwidth)
            recorder = TelemetryRecorder(
                CLOCK_WALL, meta={"source": "live", "scheme": row.scheme}
            )
            live = run_plan_live_sync(
                predicted.plan,
                env.cluster,
                initial_store_for(stripe, env.placement, list(report.failed)),
                bandwidth=env.bandwidth,
                transport=report.transport,
                recorder=recorder,
            )
            traces.append((f"sim:{row.scheme}", predicted.telemetry()))
            traces.append((f"live:{row.scheme}", live.telemetry))
        path = out_dir / f"trace_rs{report.n}_{report.k}.json"
        path.write_text(json.dumps(to_chrome_trace(traces)) + "\n")
        written.append(path)
    return written


def reports_to_table(reports) -> str:
    rows = []
    for report in reports:
        for row in report.rows:
            rows.append(
                [
                    f"({report.n},{report.k})",
                    row.scheme,
                    f"{row.predicted_s:.3f}",
                    f"{row.measured_s:.3f}",
                    f"{row.ratio:.2f}",
                    "ok" if row.bytes_ok else "MISMATCH",
                ]
            )
    return format_table(
        ["code", "scheme", "predicted_s", "measured_s", "ratio", "bytes"], rows
    )


def check_reports(reports) -> None:
    """Invariants every sweep must satisfy (used by pytest and --smoke)."""
    for report in reports:
        assert report.all_bytes_ok, (
            f"({report.n},{report.k}): live runtime recovered wrong bytes"
        )
        assert report.ordering_ok(), (
            f"({report.n},{report.k}): measured makespans disagree with the "
            f"simulator's scheme ordering"
        )
        for row in report.rows:
            # Live traffic must land exactly on the simulator's ledger.
            assert row.cross_rack_bytes == row.sim_cross_rack_bytes, row


def test_live_validation_sweep(bench_once):
    reports = bench_once(lambda: run_sweep(codes=[(6, 3), (8, 3)]))
    emit_reports(reports)
    check_reports(reports)


def emit_reports(reports) -> None:
    from conftest import emit

    emit(
        "Live runtime vs simulator (shaped in-process streams, "
        "single-block failures)",
        reports_to_table(reports),
    )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="one small code on tiny blocks — the CI live-runtime check",
    )
    parser.add_argument(
        "--transport",
        choices=["memory", "tcp"],
        default="memory",
        help="in-process streams (CI default) or real localhost sockets",
    )
    parser.add_argument(
        "--trace-out",
        default="",
        metavar="DIR",
        help="also write Chrome trace-event exports (sim + live per "
        "scheme) into DIR — the CI live-smoke build artifact",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        reports = run_sweep(
            codes=SMOKE_CODES, block_size=SMOKE_BLOCK, transport=args.transport
        )
    else:
        reports = run_sweep(transport=args.transport)
    print(reports_to_table(reports))
    check_reports(reports)
    if args.trace_out:
        for path in export_traces(reports, args.trace_out):
            print(f"wrote {path}")
    print("live validation OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
