"""Load-balance measurements: §2.3/§3.1's qualitative claims, quantified.

The paper motivates partial decoding partly by load balance: traditional
repair funnels every helper block into one node, making the recovery
rack a hotspot.  This bench measures, for a single-failure repair on
each paper code:

* peak download bytes on any single node (the hotspot),
* cross-rack upload spread over racks (max/mean — CAR's objective),

for traditional, CAR and RPR.
"""

from conftest import emit
from repro.experiments import build_simics_environment, context_for, format_table
from repro.metrics import TrafficLedger, imbalance_summary
from repro.repair import CARRepair, RPRScheme, TraditionalRepair, simulate_repair
from repro.rs import MB, PAPER_SINGLE_FAILURE_CODES


def run_measurements():
    rows = []
    for n, k in PAPER_SINGLE_FAILURE_CODES:
        env = build_simics_environment(n, k)
        ctx = context_for(env, [1])
        row = {"code": f"({n},{k})"}
        for scheme in [TraditionalRepair(), CARRepair(), RPRScheme()]:
            outcome = simulate_repair(scheme, ctx, env.bandwidth)
            ledger = TrafficLedger.from_sim(outcome.sim, env.cluster)
            peak_download = max(ledger.downloaded_by_node.values())
            uploads = {r: 0.0 for r in env.cluster.rack_ids()}
            uploads.update(ledger.cross_uploaded_by_rack)
            row[f"{scheme.name}_peak_mb"] = peak_download / MB
            row[f"{scheme.name}_spread"] = imbalance_summary(uploads)[
                "max_mean_ratio"
            ]
        rows.append(row)
    return rows


def test_load_balance(bench_once):
    rows = bench_once(run_measurements)
    emit(
        "Load balance — peak per-node download (MB) and cross-rack upload "
        "max/mean per rack, single failure",
        format_table(
            [
                "code",
                "tra_peak",
                "car_peak",
                "rpr_peak",
                "tra_spread",
                "car_spread",
                "rpr_spread",
            ],
            [
                [
                    r["code"],
                    r["traditional_peak_mb"],
                    r["car_peak_mb"],
                    r["rpr_peak_mb"],
                    r["traditional_spread"],
                    r["car_spread"],
                    r["rpr_spread"],
                ]
                for r in rows
            ],
        ),
    )
    for r in rows:
        # Partial decoding shrinks the recovery-node hotspot...
        assert r["car_peak_mb"] < r["traditional_peak_mb"]
        assert r["rpr_peak_mb"] <= r["car_peak_mb"] + 1e-9
