"""Extension bench: LRC(12,2,2) vs RS(12,4) — the §4.3.1 industry codes.

Both codes store 12 data blocks with 4 parities (33 % overhead).  The
sweep compares single-failure repair over every data-block position on
the same 9-rack cluster (2 blocks/rack), plus fault-tolerance reach:

* RS(12,4)+RPR needs 12 helpers per repair; LRC needs 6 (its local
  group) — roughly half the traffic and repair time;
* RS recovers *every* ≤4-failure pattern; LRC refuses those that
  concentrate in one local group (quantified below).
"""

import itertools

from conftest import emit
from repro.cluster import Cluster, ContiguousPlacement, SIMICS_BANDWIDTH
from repro.experiments import format_table
from repro.lrc import LRCCode, LRCLocalRepair, is_recoverable
from repro.repair import RepairContext, RPRScheme, simulate_repair
from repro.rs import SIMICS_DECODE, get_code


def make_ctx(code, failed):
    cluster = Cluster.homogeneous(9, 4)
    placement = ContiguousPlacement(per_rack=2).place(cluster, code.n, code.k)
    return RepairContext(
        code=code,
        cluster=cluster,
        placement=placement,
        failed_blocks=tuple(failed),
        block_size=256_000_000,
        cost_model=SIMICS_DECODE,
    )


def run_comparison():
    lrc_code = LRCCode(12, 2, 2)
    rs_code = get_code(12, 4)
    lrc_scheme, rs_scheme = LRCLocalRepair(), RPRScheme()
    lrc_time = lrc_traffic = rs_time = rs_traffic = 0.0
    for block in range(12):
        lrc = simulate_repair(lrc_scheme, make_ctx(lrc_code, [block]), SIMICS_BANDWIDTH)
        rs = simulate_repair(rs_scheme, make_ctx(rs_code, [block]), SIMICS_BANDWIDTH)
        lrc_time += lrc.total_repair_time
        rs_time += rs.total_repair_time
        lrc_traffic += lrc.cross_rack_blocks
        rs_traffic += rs.cross_rack_blocks

    # fault-tolerance census over every 4-failure pattern
    recoverable = sum(
        1
        for combo in itertools.combinations(range(16), 4)
        if is_recoverable(lrc_code, combo)
    )
    total = sum(1 for _ in itertools.combinations(range(16), 4))

    return {
        "lrc_time": lrc_time / 12,
        "rs_time": rs_time / 12,
        "lrc_traffic": lrc_traffic / 12,
        "rs_traffic": rs_traffic / 12,
        "lrc_4fail_coverage": recoverable / total,
    }


def test_lrc_vs_rs(bench_once):
    r = bench_once(run_comparison)
    emit(
        "Extension — LRC(12,2,2)+local repair vs RS(12,4)+RPR "
        "(same 33% overhead)",
        format_table(
            ["metric", "LRC(12,2,2)", "RS(12,4)"],
            [
                ["mean repair time (s)", r["lrc_time"], r["rs_time"]],
                ["mean cross-rack blocks", r["lrc_traffic"], r["rs_traffic"]],
                ["4-failure patterns recoverable",
                 f"{100 * r['lrc_4fail_coverage']:.1f}%", "100%"],
            ],
        ),
    )
    # the trade-off, asserted: cheaper common case...
    assert r["lrc_time"] < r["rs_time"]
    assert r["lrc_traffic"] < r["rs_traffic"]
    # ...for less-than-MDS worst-case coverage.
    assert 0.5 < r["lrc_4fail_coverage"] < 1.0
