"""Extension bench: full-node rebuild over a declustered stripe store.

Not a paper figure — the workload the paper's per-stripe schemes exist
to serve.  A node holding one block from each of many stripes dies; the
harness compares schemes (traditional vs RPR), orchestration (sequential
vs parallel) and rebuild targets (single replacement vs scatter), plus
the CAR-style cross-stripe balancing ablation on a flat-placement store.
"""

from conftest import emit
from repro.cluster import Cluster, FlatPlacement, SIMICS_BANDWIDTH
from repro.experiments import format_table
from repro.multistripe import StripeStore, repair_node_failure
from repro.repair import CARRepair, RPRScheme, TraditionalRepair
from repro.rs import MB, get_code

FAILED_NODE = 0


def build_store():
    cluster = Cluster.homogeneous(5, 6)
    return StripeStore.build(cluster, get_code(6, 2), num_stripes=30)


def run_matrix():
    store = build_store()
    rows = []
    for scheme in [TraditionalRepair(), RPRScheme()]:
        for mode in ["sequential", "parallel"]:
            for rebuild in ["replacement", "scatter"]:
                o = repair_node_failure(
                    store, FAILED_NODE, scheme, SIMICS_BANDWIDTH,
                    mode=mode, rebuild=rebuild,
                )
                rows.append(
                    [
                        scheme.name,
                        mode,
                        rebuild,
                        o.makespan,
                        o.total_cross_rack_bytes / (256 * MB),
                        o.rack_upload_imbalance["max_mean_ratio"],
                    ]
                )
    return rows


def run_balance_ablation():
    cluster = Cluster.homogeneous(10, 4)
    store = StripeStore.build(
        cluster, get_code(6, 2), 30, placement_policy=FlatPlacement()
    )
    rows = []
    for scheme in [CARRepair(), RPRScheme(prefer_xor=False)]:
        for balance in [False, True]:
            o = repair_node_failure(
                store, FAILED_NODE, scheme, SIMICS_BANDWIDTH,
                rebuild="scatter", balance=balance,
            )
            rows.append(
                [
                    scheme.name,
                    str(balance),
                    o.makespan,
                    o.rack_upload_imbalance["max_mean_ratio"],
                    o.rack_upload_imbalance["cv"],
                ]
            )
    return rows


def test_node_rebuild_matrix(bench_once):
    rows = bench_once(run_matrix)
    emit(
        "Node rebuild — 30-stripe RS(6,2) store, node loses 8 blocks",
        format_table(
            ["scheme", "mode", "rebuild", "makespan_s", "cross_blocks", "rack_imbalance"],
            rows,
        ),
    )
    by_key = {(r[0], r[1], r[2]): r[3] for r in rows}
    # Parallel+scatter dominates within each scheme.
    for scheme in ["traditional", "rpr"]:
        best = by_key[(scheme, "parallel", "scatter")]
        assert all(
            best <= by_key[(scheme, m, t)] + 1e-9
            for m in ["sequential", "parallel"]
            for t in ["replacement", "scatter"]
        )
    # RPR beats traditional in every configuration.
    for mode in ["sequential", "parallel"]:
        for rebuild in ["replacement", "scatter"]:
            assert by_key[("rpr", mode, rebuild)] < by_key[("traditional", mode, rebuild)]


def test_node_rebuild_balance_ablation(bench_once):
    rows = bench_once(run_balance_ablation)
    emit(
        "Ablation — CAR-style cross-stripe traffic balancing "
        "(flat placement, scatter rebuild)",
        format_table(
            ["scheme", "balanced", "makespan_s", "rack_imbalance", "cv"], rows
        ),
    )
    by_key = {(r[0], r[1]): r for r in rows}
    for name in {r[0] for r in rows}:
        plain = by_key[(name, "False")]
        balanced = by_key[(name, "True")]
        assert balanced[3] <= plain[3] + 1e-9  # imbalance improves or ties
