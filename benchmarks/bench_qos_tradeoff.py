#!/usr/bin/env python
"""QoS trade-off bench: foreground latency vs repair bandwidth share.

One seeded Zipfian GET/PUT trace is replayed against an in-process store
cluster (:class:`repro.qos.LocalService`) whose daemon NICs are shaped;
a daemon is killed mid-trace every time.  The sweep varies the link's
guaranteed repair share and reports the foreground percentiles against
the observed repair window — the latency/repair-throughput curve behind
``docs/QOS.md``: give repair more of the link and it finishes sooner,
but every degraded user read pays for it at the tail.

Runs two ways:

    pytest benchmarks/bench_qos_tradeoff.py          # bench harness
    python benchmarks/bench_qos_tradeoff.py --smoke  # CI qos-smoke

Exit status is nonzero if any replayed GET failed (degraded reads must
survive the kill) or — in smoke mode — the service did not repair back
to healthy afterwards.
"""

from __future__ import annotations

import asyncio
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments import format_table  # noqa: E402
from repro.qos import (  # noqa: E402
    LocalService,
    preload_working_set,
    replay_trace,
)
from repro.workloads import zipf_object_trace  # noqa: E402

FULL_SHARES = (0.1, 0.2, 0.5, 0.8, 0.95)
SMOKE_SHARES = (0.2,)
LINK_RATE = 1.5e6
BLOCK = 16 * 1024
KILL_AT = 0.25
SEED = 42


async def _replay(
    link_rate,
    repair_share,
    *,
    objects: int,
    requests: int,
    concurrency: int = 8,
    wait_repaired: bool = False,
):
    """One kill-mid-trace replay; returns ``(report, repairs_done)``."""
    async with LocalService(
        block_size=BLOCK,
        link_rate=link_rate,
        repair_share=repair_share,
        suspect_after=0.45,
        sweep_interval=0.05,
        heartbeat=0.1,
    ) as svc:
        expected = await preload_working_set(
            svc.client, objects, 3 * BLOCK, seed=SEED
        )
        events = zipf_object_trace(
            objects, requests, get_fraction=0.95, seed=SEED
        )
        victim = svc.coordinator.stripes[0].placement.node_of(0)
        report = await replay_trace(
            svc.client,
            events,
            mode="closed",
            concurrency=concurrency,
            expected=expected,
            kills=[(KILL_AT, victim)],
            kill_fn=svc.kill,
            object_bytes=3 * BLOCK,
            seed=SEED,
        )
        if wait_repaired:
            await svc.client.wait_healthy(timeout=60.0, min_repairs=1)
        status = await svc.client.status()
        return report, len(status.get("repairs", []))


def run_sweep(shares=FULL_SHARES, *, objects=30, requests=350) -> list[dict]:
    """One row per repair share, plus an unshaped reference row."""
    rows = []
    for share in (None, *shares):
        link_rate = None if share is None else LINK_RATE
        report, repairs = asyncio.run(
            _replay(
                link_rate,
                0.5 if share is None else share,
                objects=objects,
                requests=requests,
            )
        )
        summary = report.to_dict()
        window = report.repair_window
        rows.append(
            {
                "repair_share": share,
                "get_p50_s": summary["get"]["p50"],
                "get_p99_s": summary["get"]["p99"],
                "get_repair_phase_p99_s": summary["get_repair_phase"]["p99"],
                "degraded_gets": summary["degraded_gets"],
                "repair_window_s": (
                    None
                    if window is None or window[1] is None
                    else window[1] - window[0]
                ),
                "repairs_done": repairs,
                "errors": summary["errors"],
                "rejected_puts": summary["rejected"],
            }
        )
    return rows


def rows_to_table(rows) -> str:
    def fmt(value, scale=1e3, unit=""):
        return "-" if value is None else f"{value * scale:.1f}{unit}"

    return format_table(
        [
            "repair_share",
            "get_p50_ms",
            "get_p99_ms",
            "repair_get_p99_ms",
            "degraded",
            "window_ms",
            "repairs",
            "errors",
        ],
        [
            [
                "unshaped" if r["repair_share"] is None else f"{r['repair_share']:.2f}",
                fmt(r["get_p50_s"]),
                fmt(r["get_p99_s"]),
                fmt(r["get_repair_phase_p99_s"]),
                str(r["degraded_gets"]),
                fmt(r["repair_window_s"]),
                str(r["repairs_done"]),
                str(r["errors"]),
            ]
            for r in rows
        ],
    )


def check_rows(rows) -> None:
    """Invariants every sweep must satisfy (used by pytest and --smoke)."""
    for row in rows:
        share = row["repair_share"]
        assert row["errors"] == 0, (
            f"repair_share={share}: {row['errors']} failed requests — "
            f"degraded reads must survive the mid-trace kill"
        )
        assert row["degraded_gets"] > 0, (
            f"repair_share={share}: the kill produced no degraded reads; "
            f"the trace never exercised the degraded path"
        )


def test_qos_tradeoff(bench_once):
    rows = bench_once(
        lambda: run_sweep(shares=(0.2, 0.95), objects=12, requests=150)
    )
    emit_rows(rows)
    check_rows(rows)


def emit_rows(rows) -> None:
    from conftest import emit

    emit(
        "Foreground latency vs repair share (shaped NICs, daemon killed "
        "mid-trace)",
        rows_to_table(rows),
    )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="one shaped replay with a mid-trace kill, then wait for the "
        "service to repair back to healthy — the CI qos-smoke check",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        report, repairs = asyncio.run(
            _replay(
                LINK_RATE, SMOKE_SHARES[0], objects=8, requests=80,
                wait_repaired=True,
            )
        )
        summary = report.to_dict()
        print(
            f"requests={summary['requests']} errors={summary['errors']} "
            f"rejected_puts={summary['rejected']} "
            f"degraded_gets={summary['degraded_gets']} repairs={repairs}"
        )
        assert summary["errors"] == 0, "replayed requests failed"
        assert summary["degraded_gets"] > 0, "kill produced no degraded reads"
        assert repairs >= 1, "service never repaired the killed node's blocks"
        print("qos smoke OK")
        return 0
    rows = run_sweep()
    print(rows_to_table(rows))
    check_rows(rows)
    print("qos tradeoff OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
