"""Table 1: inter-/intra-region bandwidths of the EC2 testbed substitute.

The paper measured these between live t2.micro instances; here the table
drives the MatrixBandwidth model, and this bench *re-measures* it by
timing simulated probe transfers over every region pair — verifying the
substitute testbed actually delivers the printed rates.
"""

from conftest import emit
from repro.cluster import mbps
from repro.ec2 import REGIONS, TABLE1_MBPS, build_ec2_environment
from repro.experiments import format_table
from repro.sim import JobGraph, SimulationEngine


def measure_matrix():
    """Probe every region pair with a 1 MB simulated transfer."""
    env = build_ec2_environment(4, 2)
    engine = SimulationEngine(env.cluster, env.bandwidth)
    probe_bytes = 1_000_000
    measured = {}
    for i, a in enumerate(REGIONS):
        for b in REGIONS[i:]:
            ia, ib = REGIONS.index(a), REGIONS.index(b)
            src = env.cluster.nodes_in_rack(ia)[0]
            dst = (
                env.cluster.nodes_in_rack(ib)[1]
                if ia == ib
                else env.cluster.nodes_in_rack(ib)[0]
            )
            graph = JobGraph()
            graph.add_transfer("probe", src, dst, probe_bytes)
            seconds = engine.run(graph).makespan
            measured[(a, b)] = probe_bytes / seconds / mbps(1)  # back to Mbps
    return measured


def test_table1_region_bandwidth_matrix(bench_once):
    measured = bench_once(measure_matrix)
    rows = []
    for (a, b), expected in sorted(TABLE1_MBPS.items()):
        rows.append([f"{a}->{b}", expected, measured[(a, b)]])
    emit(
        "Table 1 — region bandwidths (Mbps): paper vs simulated probes",
        format_table(["pair", "paper_mbps", "measured_mbps"], rows),
    )
    for pair, expected in TABLE1_MBPS.items():
        assert abs(measured[pair] - expected) / expected < 1e-9
