"""Extension bench: update traffic under pre-placement vs contiguous layout.

§3.3 claims pre-placement "has no negative effect on other performance
metrics".  Updates are the natural place to look for a regression: a
data-block write must push its delta to every parity, and pre-placement
moves P0 out of the parity rack.  The sweep measures average cross-rack
update traffic and update completion time over every data block for the
six paper codes — pre-placement turns out mildly *favourable* (P0's
delta often stays within the writer's rack).
"""

from conftest import emit
from repro.experiments import (
    build_simics_environment,
    context_for,
    format_table,
)
from repro.metrics import TrafficLedger
from repro.repair import plan_update
from repro.rs import PAPER_SINGLE_FAILURE_CODES
from repro.sim import SimulationEngine


def measure(env):
    total_blocks = 0.0
    total_time = 0.0
    ctx = context_for(env, [0])  # failed_blocks unused by updates
    for block in range(env.code.n):
        plan = plan_update(ctx, block)
        graph = plan.to_job_graph(env.cost_model)
        sim = SimulationEngine(env.cluster, env.bandwidth).run(graph)
        ledger = TrafficLedger.from_sim(sim, env.cluster)
        total_blocks += ledger.cross_rack_bytes / env.block_size
        total_time += sim.makespan
    n = env.code.n
    return total_blocks / n, total_time / n


def run_sweep():
    rows = []
    for n, k in PAPER_SINGLE_FAILURE_CODES:
        pre_blocks, pre_time = measure(build_simics_environment(n, k, placement="rpr"))
        cont_blocks, cont_time = measure(
            build_simics_environment(n, k, placement="contiguous")
        )
        rows.append(
            {
                "code": f"({n},{k})",
                "pre_blocks": pre_blocks,
                "cont_blocks": cont_blocks,
                "pre_time": pre_time,
                "cont_time": cont_time,
            }
        )
    return rows


def test_update_traffic_preplacement_neutrality(bench_once):
    rows = bench_once(run_sweep)
    emit(
        "Extension — average per-update cross-rack traffic (blocks) and "
        "time: pre-placement vs contiguous",
        format_table(
            ["code", "preplaced_blocks", "contiguous_blocks", "preplaced_s", "contiguous_s"],
            [
                [r["code"], r["pre_blocks"], r["cont_blocks"], r["pre_time"], r["cont_time"]]
                for r in rows
            ],
        ),
    )
    for r in rows:
        # §3.3's neutrality claim: never worse, for traffic or time.
        assert r["pre_blocks"] <= r["cont_blocks"] + 1e-9
        assert r["pre_time"] <= r["cont_time"] + 1e-9
