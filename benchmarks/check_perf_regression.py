#!/usr/bin/env python
"""Perf-regression gate: rerun the harness, compare against baselines.

For every committed ``BENCH_*.json`` baseline this reruns the matching
suite *in the baseline's own quick mode* (quick and full runs name and
size their workloads differently, so cross-mode ratios are meaningless),
writes the fresh report plus a ``BENCH_history.jsonl`` trend record to
``--out-dir``, and fails if any benchmark regressed more than
``--threshold`` (default 25%) against its baseline ``best_s``.

    python benchmarks/check_perf_regression.py                # gate vs repo baselines
    python benchmarks/check_perf_regression.py --threshold 0.5

Baselines are refreshed deliberately — run ``rpr perf`` (or
``benchmarks/run_perf.py``) at the repo root and commit the updated
``BENCH_*.json`` alongside the change that moved the numbers.  See
``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.perfharness import (  # noqa: E402
    append_history,
    coding_suite,
    compare_reports,
    engine_suite,
    live_suite,
    qos_suite,
)

SUITES = {
    "BENCH_engine.json": engine_suite,
    "BENCH_coding.json": coding_suite,
    "BENCH_live.json": live_suite,
    "BENCH_qos.json": qos_suite,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=REPO_ROOT,
        help="where the committed BENCH_*.json baselines live (default: repo root)",
    )
    parser.add_argument(
        "--out-dir",
        type=Path,
        default=Path("bench-out"),
        help="where to write the fresh reports + history record",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="maximum tolerated slowdown as a fraction (0.25 = 25%%)",
    )
    args = parser.parse_args(argv)
    args.out_dir.mkdir(parents=True, exist_ok=True)

    failures: list[str] = []
    fresh: dict[str, dict] = {}
    compared = 0
    for name, suite in SUITES.items():
        baseline_path = args.baseline_dir / name
        if not baseline_path.exists():
            print(f"skipping {name}: no baseline at {baseline_path}")
            continue
        baseline = json.loads(baseline_path.read_text())
        current = suite(quick=bool(baseline.get("quick")))
        fresh[name.removeprefix("BENCH_").removesuffix(".json")] = current
        (args.out_dir / name).write_text(
            json.dumps(current, indent=2, sort_keys=True) + "\n"
        )
        messages = compare_reports(baseline, current, threshold=args.threshold)
        compared += 1
        status = "REGRESSED" if messages else "ok"
        print(f"{name}: {status}")
        for message in messages:
            print(f"  {message}")
            failures.append(f"{name}: {message}")
    if fresh:
        append_history(args.out_dir, fresh)
    if not compared:
        print("no baselines found — nothing gated", file=sys.stderr)
        return 2
    if failures:
        print(
            f"\nperf gate FAILED: {len(failures)} regression(s) beyond "
            f"{args.threshold:.0%}",
            file=sys.stderr,
        )
        return 1
    print(f"\nperf gate OK ({compared} suites within {args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
