#!/usr/bin/env python
"""Schema-check a Prometheus exposition scraped from the store service.

CI's store-smoke job runs ``rpr store stats --prom`` against a live
cluster mid-run and pipes the text through this gate:

    rpr store stats --dir ci-store --prom > stats.prom
    python benchmarks/check_prom_exposition.py stats.prom

Beyond the generic exposition checks
(:func:`repro.telemetry.validate_prometheus_text` — TYPE headers,
label syntax, histogram ``+Inf``/monotonicity/``_count`` coherence),
this asserts the scrape actually came from a serving cluster: the
coordinator's uptime gauge must be present, and at least one
``rpr_latency_seconds`` histogram must carry a QoS ``class`` label —
the per-class latency breakdown is the whole point of the metrics
plane (docs/OBSERVABILITY.md §8).

Exits 0 on a clean scrape, 1 with every problem listed otherwise.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.telemetry import validate_prometheus_text  # noqa: E402

#: Families a scrape of a live cluster must include.
REQUIRED_FAMILIES = ("rpr_uptime_seconds", "rpr_events_total")


def check(text: str) -> list[str]:
    problems = validate_prometheus_text(text)
    for family in REQUIRED_FAMILIES:
        if f"\n{family}" not in "\n" + text:
            problems.append(f"missing required family {family}")
    if 'node="coordinator"' not in text:
        problems.append("no coordinator samples in scrape")
    if "rpr_latency_seconds_bucket" not in text:
        problems.append("no latency histograms in scrape")
    elif 'class="' not in text:
        problems.append("latency histograms carry no QoS class label")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "path", nargs="?", help="exposition file (default: stdin)"
    )
    args = parser.parse_args(argv)
    text = Path(args.path).read_text() if args.path else sys.stdin.read()
    problems = check(text)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        return 1
    lines = sum(
        1 for line in text.splitlines() if line and not line.startswith("#")
    )
    print(f"OK: {lines} samples, schema valid")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
