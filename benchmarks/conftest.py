"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures and prints
the rows (the textual equivalent of the plotted bars) alongside the
pytest-benchmark timing of the harness itself.  Sweep benchmarks run one
round — the interesting output is the experiment numbers, not the
harness's wall-clock variance.
"""

import pytest


def run_once(benchmark, fn):
    """Benchmark ``fn`` with a single round and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def emit(title: str, text: str) -> None:
    print(f"\n=== {title} ===")
    print(text)


@pytest.fixture
def bench_once(benchmark):
    """Fixture wrapping :func:`run_once`."""

    def _run(fn):
        return run_once(benchmark, fn)

    return _run
