#!/usr/bin/env python
"""Perf-regression entry point: refresh BENCH_engine.json / BENCH_coding.json.

Thin wrapper around :mod:`repro.perfharness` that defaults the output
directory to the repository root (where the checked-in reports live), so

    python benchmarks/run_perf.py [--quick]

regenerates them in place regardless of the current directory.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.perfharness import main  # noqa: E402

if __name__ == "__main__":
    argv = sys.argv[1:]
    if not any(a.startswith("--out-dir") for a in argv):
        argv = [*argv, "--out-dir", str(REPO_ROOT)]
    sys.exit(main(argv))
