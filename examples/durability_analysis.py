#!/usr/bin/env python3
"""Durability analysis: how much safer does faster repair make data?

The paper motivates RPR with cross-rack bandwidth; this extension closes
the loop to what operators actually buy with faster repair — *mean time
to data loss*.  Per-failure-count repair times are measured on the
Simics testbed for traditional repair and RPR, then fed into:

* an exact birth-death MTTDL model at a production failure rate
  (1 failure per block per 4 years), and
* a Monte-Carlo trajectory simulation at an accelerated rate (so
  run-to-loss trials terminate) for cross-validation.

Because data loss needs k+1 *overlapping* failures, an r-times-faster
repair multiplies MTTDL by roughly r^k — RPR's ~4x repair speedup on
RS(12,4) buys ~70x the durability.

Run:  python examples/durability_analysis.py
"""

from repro.experiments import build_simics_environment, context_for
from repro.reliability import mttdl_from_repair_times, simulate_stripe_lifetimes
from repro.repair import RPRScheme, TraditionalRepair, simulate_repair

YEAR = 365.25 * 24 * 3600
N, K = 12, 4
LAM_PRODUCTION = 1 / (4 * YEAR)
LAM_ACCELERATED = 1 / 2000.0


def main() -> None:
    env = build_simics_environment(N, K)
    print(f"RS({N},{K}) stripe, Simics testbed, "
          f"failure rate 1/(4 years) per block\n")

    results = {}
    for scheme in [TraditionalRepair(), RPRScheme()]:
        times = [
            simulate_repair(
                scheme, context_for(env, list(range(l))), env.bandwidth
            ).total_repair_time
            for l in range(1, K + 1)
        ]
        analytic = mttdl_from_repair_times(N + K, K, LAM_PRODUCTION, times)
        mc = simulate_stripe_lifetimes(
            env, scheme, LAM_ACCELERATED, trials=100, seed=42
        )
        results[scheme.name] = (times, analytic, mc)
        print(f"{scheme.name}:")
        print(f"  repair time by concurrent failures: "
              f"{[f'{t:.0f}s' for t in times]}")
        print(f"  analytic MTTDL: {analytic / YEAR:.3e} years")
        print(f"  Monte-Carlo (accelerated failures): mean lifetime "
              f"{mc.mttdl_seconds:.0f} s over {mc.trials} trials\n")

    tra_times, tra_mttdl, _ = results["traditional"]
    rpr_times, rpr_mttdl, _ = results["rpr"]
    speedup = tra_times[0] / rpr_times[0]
    amplification = rpr_mttdl / tra_mttdl
    print(
        f"repairing {speedup:.1f}x faster multiplies MTTDL by "
        f"{amplification:.0f}x (super-linear: loss needs {K + 1} "
        f"overlapping failures)"
    )


if __name__ == "__main__":
    main()
