#!/usr/bin/env python3
"""Geo-distributed repair on the EC2 testbed substitute (paper §5.2).

Five AWS regions stand in for racks, wired with the paper's measured
Table 1 bandwidths (avg 53 Mbps cross-region vs 601 Mbps intra-region)
and the t2.micro decode model (20 s matrix decode vs 2.5 s XOR decode
per 256 MB block).  The script prints the bandwidth matrix, then repairs
a single failure of every position on an RS(12,4) stripe, reproducing
Figure 12's comparison.

Run:  python examples/geo_distributed_repair.py
"""

from repro.ec2 import REGIONS, TABLE1_MBPS, average_cross_mbps, average_intra_mbps
from repro.experiments import build_ec2_env, context_for, format_table
from repro.metrics import percent_reduction
from repro.repair import CARRepair, RPRScheme, TraditionalRepair, simulate_repair
from repro.workloads import single_failure_scenarios

N, K = 12, 4


def print_table1() -> None:
    print("Table 1 — inter-/intra-region bandwidth (Mbps)\n")
    header = [""] + [r.title() for r in REGIONS]
    rows = []
    for a in REGIONS:
        row = [a.title()]
        for b in REGIONS:
            key = (a, b) if (a, b) in TABLE1_MBPS else (b, a)
            row.append(TABLE1_MBPS[key] if key in TABLE1_MBPS else "")
        rows.append(row)
    print(format_table(header, rows))
    ratio = average_intra_mbps() / average_cross_mbps()
    print(
        f"\navg intra {average_intra_mbps():.2f} Mbps, "
        f"avg cross {average_cross_mbps():.2f} Mbps, ratio {ratio:.2f} "
        f"(paper assumes ~10:1)\n"
    )


def main() -> None:
    print_table1()

    env = build_ec2_env(N, K)
    print(f"stripe RS({N},{K}) across regions:")
    for rack in env.placement.racks_used(env.cluster):
        blocks = env.placement.blocks_in_rack(env.cluster, rack)
        names = [f"d{b}" if b < N else f"p{b - N}" for b in blocks]
        print(f"  {REGIONS[rack]:>10}: {names}")

    schemes = [TraditionalRepair(), CARRepair(), RPRScheme()]
    totals = {s.name: 0.0 for s in schemes}
    scenarios = single_failure_scenarios(env.code, data_only=True)
    for scenario in scenarios:
        ctx = context_for(env, scenario.failed_blocks)
        for scheme in schemes:
            outcome = simulate_repair(scheme, ctx, env.bandwidth)
            totals[scheme.name] += outcome.total_repair_time

    print(f"\nmean single-failure repair time over {len(scenarios)} positions:")
    means = {name: t / len(scenarios) for name, t in totals.items()}
    for name, mean in means.items():
        print(f"  {name:>12}: {mean:7.1f} s")
    print(
        f"\nRPR vs traditional: {percent_reduction(means['traditional'], means['rpr']):.1f}% "
        f"(paper Fig. 12: avg 67.6%, up to 80.8%)"
    )
    print(
        f"RPR vs CAR:         {percent_reduction(means['car'], means['rpr']):.1f}% "
        f"(paper Fig. 12: avg 37.2%, up to 50.3%)"
    )


if __name__ == "__main__":
    main()
