#!/usr/bin/env python3
"""LRC vs RS at equal overhead: the §4.3.1 industry trade-off (extension).

Azure's LRC(12,2,2) and RS(12,4) both store 12 data blocks with 4
parities.  This example repairs the same single failure under both and
prints the trade: the LRC fixes a lost data block from its 6-block local
group (one rack-local XOR chain when the group is placed together),
while the RS code needs 12 helpers even with RPR's pipeline — but the RS
code survives *every* 4-failure pattern and the LRC does not.

Run:  python examples/lrc_vs_rs.py
"""

import numpy as np

from repro.cluster import Cluster, ContiguousPlacement, SIMICS_BANDWIDTH
from repro.lrc import LRCCode, LRCLocalRepair, is_recoverable
from repro.repair import (
    RepairContext,
    RPRScheme,
    execute_plan,
    initial_store_for,
    simulate_repair,
)
from repro.rs import SIMICS_DECODE, get_code

FAILED = 2
BLOCK = 64 * 1024


def context_for(code, block_size=BLOCK):
    cluster = Cluster.homogeneous(9, 4)
    placement = ContiguousPlacement(per_rack=2).place(cluster, code.n, code.k)
    return RepairContext(
        code=code,
        cluster=cluster,
        placement=placement,
        failed_blocks=(FAILED,),
        block_size=block_size,
        cost_model=SIMICS_DECODE,
    )


def main() -> None:
    lrc_code, rs_code = LRCCode(12, 2, 2), get_code(12, 4)
    print(
        f"both codes: 12 data + 4 parity blocks "
        f"({lrc_code.storage_overhead:.0%} overhead); block d{FAILED} fails\n"
    )

    rng = np.random.default_rng(3)
    data = [rng.integers(0, 256, BLOCK, dtype=np.uint8) for _ in range(12)]

    for label, code, scheme in [
        ("LRC(12,2,2) local repair", lrc_code, LRCLocalRepair()),
        ("RS(12,4) + RPR", rs_code, RPRScheme()),
    ]:
        ctx = context_for(code)
        stripe = code.encode_stripe(data)
        plan = scheme.plan(ctx)
        store = initial_store_for(stripe, ctx.placement, (FAILED,))
        result = execute_plan(plan, ctx.cluster, store)
        assert np.array_equal(result.recovered[FAILED], stripe.get_payload(FAILED))
        sim_ctx = context_for(code, block_size=256_000_000)
        outcome = simulate_repair(scheme, sim_ctx, SIMICS_BANDWIDTH)
        helpers = {
            op.key for op in plan.sends() if op.key.startswith("block:")
        }
        print(
            f"{label:>26}: {outcome.total_repair_time:6.1f} s, "
            f"{outcome.cross_rack_blocks:.0f} cross-rack blocks, "
            f"~{len(helpers)} helper blocks touched (verified)"
        )

    # the price: worst-case coverage
    print("\nfault-tolerance spot checks (4 concurrent failures):")
    for pattern in [(0, 1, 6, 7), (0, 1, 2, 3)]:
        lrc_ok = is_recoverable(lrc_code, pattern)
        print(
            f"  failures {pattern}: RS(12,4) recovers; "
            f"LRC(12,2,2) {'recovers' if lrc_ok else 'CANNOT recover'}"
        )


if __name__ == "__main__":
    main()
