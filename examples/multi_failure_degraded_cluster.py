#!/usr/bin/env python3
"""Multi-failure repair on a degraded cluster (paper §3.4, Figures 9-11).

Scenario: a rack-level incident takes several blocks of an RS(12,4)
stripe offline at once.  The script repairs progressively worse failure
sets — 2, 3, then the full k=4 worst case — comparing traditional repair
against RPR's Inner-multi/Cross-multi pipeline, and verifies every
reconstruction byte-for-byte.

Run:  python examples/multi_failure_degraded_cluster.py
"""

import numpy as np

from repro import (
    RPRScheme,
    TraditionalRepair,
    execute_plan,
    initial_store_for,
    percent_reduction,
    simulate_repair,
)
from repro.analysis import nonworst_traffic_blocks, worst_case_traffic_blocks
from repro.experiments import build_simics_environment, context_for
from repro.workloads import encoded_stripe

N, K = 12, 4
BLOCK_SIZE = 32 * 1024

#: Failure sets: same-rack escalation (the §4.3 analysis setting).
FAILURE_SETS = {
    "2 failures (non-worst)": [0, 1],
    "3 failures (non-worst)": [0, 1, 2],
    "4 failures (worst case)": [0, 1, 2, 3],
}


def main() -> None:
    env = build_simics_environment(N, K, block_size=BLOCK_SIZE)
    stripe = encoded_stripe(env.code, BLOCK_SIZE, seed=7)
    scale = 256_000_000 / BLOCK_SIZE  # report times at 256 MB blocks

    for label, failed in FAILURE_SETS.items():
        ctx = context_for(env, failed)
        print(f"\n=== {label}: blocks {failed} lost ===")

        outcomes = {}
        for scheme in [TraditionalRepair(), RPRScheme()]:
            plan = scheme.plan(ctx)
            store = initial_store_for(stripe, env.placement, failed)
            concrete = execute_plan(plan, env.cluster, store)
            for b in failed:
                assert np.array_equal(
                    concrete.recovered[b], stripe.get_payload(b)
                ), f"{scheme.name} failed to rebuild block {b}"
            outcomes[scheme.name] = simulate_repair(scheme, ctx, env.bandwidth)
            o = outcomes[scheme.name]
            print(
                f"  {scheme.name:>12}: {o.total_repair_time * scale:7.1f} s, "
                f"{o.cross_rack_blocks:4.0f} cross-rack blocks  (verified)"
            )

        tra, rpr = outcomes["traditional"], outcomes["rpr"]
        print(
            f"  RPR reduction: time {percent_reduction(tra.total_repair_time, rpr.total_repair_time):.1f}%, "
            f"traffic {percent_reduction(tra.cross_rack_blocks, rpr.cross_rack_blocks):.1f}%"
        )

        l = len(failed)
        expected = (
            worst_case_traffic_blocks(N, K)
            if l == K
            else nonworst_traffic_blocks(N, K, l)
        )
        print(
            f"  §4.3 predicted RPR traffic: {expected} blocks "
            f"(measured {rpr.cross_rack_blocks:.0f})"
        )


if __name__ == "__main__":
    main()
