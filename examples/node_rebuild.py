#!/usr/bin/env python3
"""Full-node rebuild over a declustered stripe store (extension).

The paper's schemes repair one stripe; real incidents kill a *node*,
losing one block from every stripe it held.  This example builds a
30-stripe RS(6,2) store (rotated placements, so layout is perfectly
declustered), fails a node holding 8 blocks, and rebuilds it four ways:

  scheme x {sequential, parallel} x {single replacement node, scatter}

showing (a) RPR's per-stripe advantage compounds across stripes,
(b) pipelining stripes in parallel only pays once rebuilt blocks scatter
across target nodes (otherwise the replacement's download port is the
bottleneck — the same §2.3 serialisation at the next level up), and
(c) CAR-style cross-stripe balancing evens per-rack upload load.

Run:  python examples/node_rebuild.py
"""

from repro.cluster import Cluster, FlatPlacement, SIMICS_BANDWIDTH
from repro.multistripe import StripeStore, repair_node_failure
from repro.repair import CARRepair, RPRScheme, TraditionalRepair
from repro.rs import MB, get_code

FAILED_NODE = 0


def main() -> None:
    cluster = Cluster.homogeneous(5, 6)
    store = StripeStore.build(cluster, get_code(6, 2), num_stripes=30)
    lost = store.blocks_on_node(FAILED_NODE)
    print(
        f"store: {len(store)} RS(6,2) stripes over {cluster.num_racks} racks; "
        f"node {FAILED_NODE} dies holding {len(lost)} blocks\n"
    )

    print(f"{'scheme':>12} {'mode':>10} {'rebuild':>12} "
          f"{'makespan':>10} {'cross blk':>10} {'imbalance':>10}")
    for scheme in [TraditionalRepair(), RPRScheme()]:
        for mode in ["sequential", "parallel"]:
            for rebuild in ["replacement", "scatter"]:
                o = repair_node_failure(
                    store, FAILED_NODE, scheme, SIMICS_BANDWIDTH,
                    mode=mode, rebuild=rebuild,
                )
                print(
                    f"{scheme.name:>12} {mode:>10} {rebuild:>12} "
                    f"{o.makespan:9.1f}s "
                    f"{o.total_cross_rack_bytes / (256 * MB):10.0f} "
                    f"{o.rack_upload_imbalance['max_mean_ratio']:10.2f}"
                )

    print("\ncross-stripe balancing (flat placement, where helper racks are free):")
    flat_cluster = Cluster.homogeneous(10, 4)
    flat_store = StripeStore.build(
        flat_cluster, get_code(6, 2), 30, placement_policy=FlatPlacement()
    )
    for balance in [False, True]:
        o = repair_node_failure(
            flat_store, FAILED_NODE, CARRepair(), SIMICS_BANDWIDTH,
            rebuild="scatter", balance=balance,
        )
        print(
            f"  balance={str(balance):>5}: rack-upload max/mean "
            f"{o.rack_upload_imbalance['max_mean_ratio']:.3f}, "
            f"cv {o.rack_upload_imbalance['cv']:.3f}"
        )


if __name__ == "__main__":
    main()
