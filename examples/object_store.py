#!/usr/bin/env python3
"""An erasure-coded object store surviving failures (extension).

Uses the :class:`repro.system.StorageSystem` facade — the adoptable API
over the whole stack — to walk a realistic operational story:

1. store a handful of objects (RS(6,2), declustered placements),
2. lose a storage node,
3. serve a read anyway (degraded read reconstructs on the fly at the
   client, via RPR's pipeline),
4. run the repair pass (real GF arithmetic — the store afterwards holds
   genuinely rebuilt blocks on live nodes) and read again,
5. lose a second node and survive that too.

Run:  python examples/object_store.py
"""

import numpy as np

from repro.cluster import Cluster
from repro.rs import get_code
from repro.system import StorageSystem

BLOCK_SIZE = 4 * 1024


def main() -> None:
    cluster = Cluster.homogeneous(5, 6)
    system = StorageSystem(cluster, get_code(6, 2), block_size=BLOCK_SIZE)
    rng = np.random.default_rng(11)

    blobs = {
        "photo.jpg": rng.integers(0, 256, 60_000, dtype=np.uint8),
        "notes.txt": np.frombuffer(b"meeting at noon; bring the traces" * 40, dtype=np.uint8),
        "model.bin": rng.integers(0, 256, 150_000, dtype=np.uint8),
    }
    for name, data in blobs.items():
        info = system.put(name, data)
        print(f"put {name}: {info.size} bytes over {len(info.stripe_ids)} stripes")
    assert system.verify()

    victim = 0
    lost = system.fail_node(victim)
    print(f"\nnode {victim} died — {lost} blocks lost, "
          f"{len(system.degraded_stripes())} stripes degraded")

    client = 13
    got = system.get("model.bin", client_node=client)
    assert np.array_equal(got, blobs["model.bin"])
    print(f"degraded read of model.bin at node {client}: OK (bytes identical)")

    report = system.repair()
    print(
        f"repair pass: {report.blocks_repaired} blocks across "
        f"{report.stripes_touched} stripes; simulated cost "
        f"{report.simulated_seconds:.2f} s, "
        f"{report.simulated_cross_rack_bytes / 1e6:.1f} MB cross-rack"
    )
    assert system.verify()

    second = 7
    system.fail_node(second)
    system.repair()
    print(f"node {second} died and was repaired too")

    for name, data in blobs.items():
        assert np.array_equal(system.get(name), data), name
    print("\nall objects intact after two node losses — store verified")


if __name__ == "__main__":
    main()
