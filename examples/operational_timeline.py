#!/usr/bin/env python3
"""Replay a year of node failures through the object store (extension).

Generates a seeded Poisson failure trace (one failure per node per two
years of MTBF over a 30-node cluster — roughly a failure a month) and
replays it against a :class:`StorageSystem` holding real objects:

* after every failure, the repair pass runs (real GF reconstruction);
* every object is verified bit-exact after each incident;
* the simulated repair cost of the whole year is accounted per scheme.

Run:  python examples/operational_timeline.py
"""

import numpy as np

from repro.cluster import Cluster
from repro.repair import RPRScheme, TraditionalRepair
from repro.rs import get_code
from repro.system import StorageSystem
from repro.workloads import DAY, YEAR, poisson_node_failures

MTBF = 2 * YEAR
HORIZON = 1 * YEAR
SEED = 5


def replay(scheme) -> tuple[int, float, float]:
    cluster = Cluster.homogeneous(5, 6)
    system = StorageSystem(
        cluster, get_code(6, 2), block_size=2048, scheme=scheme
    )
    rng = np.random.default_rng(1)
    blobs = {
        f"obj{i}": rng.integers(0, 256, 9000 + 500 * i, dtype=np.uint8)
        for i in range(4)
    }
    for name, data in blobs.items():
        system.put(name, data)

    incidents = 0
    parallel_cost = serial_cost = 0.0
    for event in poisson_node_failures(cluster, MTBF, HORIZON, seed=SEED):
        system.fail_node(event.node_id)
        report = system.repair()
        system.revive_node(event.node_id)  # node replaced after rebuild
        incidents += 1
        parallel_cost += report.simulated_seconds
        serial_cost += report.simulated_serial_seconds
        assert system.verify(), f"integrity lost at t={event.time / DAY:.1f} d"
        for name, data in blobs.items():
            assert np.array_equal(system.get(name), data), name
    return incidents, parallel_cost, serial_cost


def main() -> None:
    print(
        f"cluster: 5 racks x 6 nodes; node MTBF {MTBF / YEAR:.0f} years; "
        f"horizon {HORIZON / YEAR:.0f} year\n"
    )
    for scheme in [TraditionalRepair(), RPRScheme()]:
        incidents, parallel_cost, serial_cost = replay(scheme)
        # repair cost scales with block size; report at the paper's 256 MB
        scale = 256_000_000 / 2048
        print(
            f"{scheme.name:>12}: {incidents} node failures survived; "
            f"yearly repair time {parallel_cost * scale / 3600:.1f} h "
            f"(pipelined) / {serial_cost * scale / 3600:.1f} h (serial), "
            f"all objects verified after every incident"
        )
    print(
        "\nEvery incident was repaired with real GF arithmetic and every "
        "object re-verified\nbyte-for-byte — a year of operation without "
        "data loss, at a fraction of the\ntraditional repair bill."
    )


if __name__ == "__main__":
    main()
