#!/usr/bin/env python3
"""Visualize the repair schedules behind the paper's Figure 5.

Renders ASCII port-occupancy timelines for the same RS(6,2) single
failure under three schedules:

* traditional — every helper streams into the recovery node (its
  download port is one long busy bar; everyone else idles);
* CAR / "schedule 1" — per-rack partial decode, then every rack sends
  to the recovery rack back-to-back (the waiting the paper describes);
* RPR / "schedule 2" — the greedy pipeline: rack-to-rack merges overlap
  the recovery rack's receives, compressing the cross-rack phase to
  ceil(log2) rounds.

Rows are node ports (up/down) and CPUs; '#' is busy time.

Run:  python examples/pipeline_visualization.py
"""

from repro.experiments import build_simics_environment, context_for
from repro.repair import CARRepair, RPRScheme, TraditionalRepair, simulate_repair
from repro.sim import render_timeline

N, K = 6, 2
FAILED = 1


def main() -> None:
    env = build_simics_environment(N, K)
    ctx = context_for(env, [FAILED])
    print(
        f"RS({N},{K}), block d{FAILED} failed; Simics bandwidths "
        f"(1 Gb/s intra, 0.1 Gb/s cross), 256 MB blocks\n"
    )
    for scheme in [TraditionalRepair(), CARRepair(), RPRScheme()]:
        outcome = simulate_repair(scheme, ctx, env.bandwidth)
        print(
            f"--- {scheme.name}: total repair time "
            f"{outcome.total_repair_time:.1f} s, "
            f"{outcome.cross_rack_blocks:.0f} cross-rack blocks ---"
        )
        print(render_timeline(outcome.sim, width=64))
        print()
    print(
        "Reading the charts: traditional keeps one download port busy for "
        "the whole\nrepair; CAR shortens the bars via partial decoding but "
        "still serialises them\ninto the recovery node; RPR overlaps "
        "rack-to-rack merges with the recovery\nnode's receives — the "
        "pipeline of Fig. 5's schedule 2."
    )


if __name__ == "__main__":
    main()
