#!/usr/bin/env python3
"""Quickstart: encode a stripe, lose a block, repair it three ways.

Walks the full pipeline on a laptop-scale setup:

1. Build a Simics-style cluster (racks, 1 Gb/s intra / 0.1 Gb/s cross).
2. Encode an RS(6,2) stripe with real bytes and place it rack-aware.
3. Fail one data block.
4. Plan the repair with traditional, CAR and RPR; execute each plan on
   the actual bytes (verifying bit-exact reconstruction) and on the
   discrete-event simulator (measuring time and cross-rack traffic).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CARRepair,
    RPRScheme,
    TraditionalRepair,
    build_simics_environment,
    execute_plan,
    initial_store_for,
    percent_reduction,
    simulate_repair,
)
from repro.experiments import context_for
from repro.workloads import encoded_stripe

N, K = 6, 2
FAILED_BLOCK = 1  # data block d1, as in the paper's running example
BLOCK_SIZE = 64 * 1024  # small blocks keep byte-level execution instant


def main() -> None:
    env = build_simics_environment(N, K, block_size=BLOCK_SIZE)
    print(f"cluster: {env.cluster}")
    print(f"placement (rack -> blocks):")
    for rack in env.placement.racks_used(env.cluster):
        blocks = env.placement.blocks_in_rack(env.cluster, rack)
        names = [f"d{b}" if b < N else f"p{b - N}" for b in blocks]
        print(f"  rack {rack}: {names}")

    stripe = encoded_stripe(env.code, BLOCK_SIZE, seed=2024)
    original = stripe.get_payload(FAILED_BLOCK).copy()
    print(f"\nfailing block d{FAILED_BLOCK} "
          f"(node {env.placement.node_of(FAILED_BLOCK)})\n")

    ctx = context_for(env, [FAILED_BLOCK])
    results = {}
    for scheme in [TraditionalRepair(), CARRepair(), RPRScheme()]:
        # Concrete execution: does the plan actually rebuild the bytes?
        plan = scheme.plan(ctx)
        store = initial_store_for(stripe, env.placement, [FAILED_BLOCK])
        concrete = execute_plan(plan, env.cluster, store)
        assert np.array_equal(concrete.recovered[FAILED_BLOCK], original)

        # Symbolic execution: how long would it take at 256 MB blocks?
        outcome = simulate_repair(
            scheme, context_for(env, [FAILED_BLOCK]), env.bandwidth
        )
        results[scheme.name] = outcome
        print(
            f"{scheme.name:>12}: repair time {outcome.total_repair_time * 4096:8.1f} s "
            f"(at 256 MB blocks), cross-rack traffic "
            f"{outcome.cross_rack_blocks:.0f} blocks, "
            f"{len(plan.ops)} plan ops — bytes verified OK"
        )

    tra = results["traditional"].total_repair_time
    rpr = results["rpr"].total_repair_time
    car = results["car"].total_repair_time
    print(
        f"\nRPR cuts repair time by {percent_reduction(tra, rpr):.1f}% vs "
        f"traditional and {percent_reduction(car, rpr):.1f}% vs CAR"
    )


if __name__ == "__main__":
    main()
