#!/usr/bin/env python3
"""Single-failure sweep: regenerate the paper's Figures 7 and 8 numbers.

For each of the six RS configurations the paper evaluates, repair every
possible single data-block failure with the traditional scheme, CAR and
RPR on the Simics-style testbed (256 MB blocks, 1 Gb/s intra-rack,
0.1 Gb/s cross-rack) and print the average cross-rack traffic and total
repair time — the same rows the paper plots as bars.

Run:  python examples/single_failure_sweep.py
"""

from repro.experiments import figure8_rows, format_table


def main() -> None:
    rows = figure8_rows()

    print("Figure 7 — cross-rack traffic (blocks), single failure\n")
    print(
        format_table(
            ["code", "traditional", "CAR", "RPR"],
            [
                [r["code"], r["tra_cross_blocks"], r["car_cross_blocks"], r["rpr_cross_blocks"]]
                for r in rows
            ],
        )
    )

    print("\nFigure 8 — total repair time (s), single failure\n")
    print(
        format_table(
            ["code", "traditional", "CAR", "RPR", "RPR vs Tra %", "RPR vs CAR %"],
            [
                [
                    r["code"],
                    r["tra_time_s"],
                    r["car_time_s"],
                    r["rpr_time_s"],
                    r["rpr_vs_tra_pct"],
                    r["rpr_vs_car_pct"],
                ]
                for r in rows
            ],
        )
    )

    avg_tra = sum(r["rpr_vs_tra_pct"] for r in rows) / len(rows)
    avg_car = sum(r["rpr_vs_car_pct"] for r in rows) / len(rows)
    best_tra = max(r["rpr_vs_tra_pct"] for r in rows)
    best_car = max(r["rpr_vs_car_pct"] for r in rows)
    print(
        f"\nRPR vs traditional: avg {avg_tra:.1f}% / up to {best_tra:.1f}% "
        f"(paper: avg 67% / up to 81.5%)"
    )
    print(
        f"RPR vs CAR:         avg {avg_car:.1f}% / up to {best_car:.1f}% "
        f"(paper: avg 24% / up to 37%)"
    )


if __name__ == "__main__":
    main()
