#!/usr/bin/env python3
"""Kill a storage daemon mid-flight and watch the service repair itself.

This is the multi-process counterpart of ``object_store.py``: instead of
one simulated :class:`~repro.system.StorageSystem`, it launches a *real*
coordinator plus six storage daemons as separate OS processes
(``repro.store``), then:

1. PUTs an object — the client encodes RS(3,2) stripes locally and
   writes blocks straight to the daemons,
2. SIGKILLs the daemon holding stripe 0's first block (a genuinely
   unclean death: no goodbye, no flushing),
3. waits while the coordinator notices the missed heartbeats, plans a
   rack-aware pipeline repair (RPR), and drives the surviving daemons
   to rebuild the lost blocks onto live spares,
4. GETs the object back and asserts the bytes are identical,
5. prints each repair's measured cross-rack traffic next to the
   simulator's prediction — the two must match exactly
   (``ledger_match``),
6. assembles the per-process telemetry streams (client + coordinator +
   every daemon, *including the SIGKILLed one's pre-kill spans* — each
   process appends JSONL span-by-span, so nothing needed a graceful
   exit) into one cross-process trace and prints the repair's
   end-to-end critical path.

Run:  python examples/store_kill_demo.py [--smoke]

``--smoke`` shrinks the object to one stripe for CI.
"""

import argparse
import asyncio
import os
import tempfile
import time
from pathlib import Path

from repro.live import audit_store_repairs
from repro.store import StoreLauncher, call
from repro.telemetry import (
    CLOCK_WALL,
    PROC_ATTR,
    StreamingRecorder,
    assemble_files,
    build_tree,
    critical_path,
    render_critical_path,
    trace_ids,
)

BLOCK_SIZE = 4096
CONFIG = dict(
    racks=3, per_rack=2, n=3, k=2, scheme="rpr", block_size=BLOCK_SIZE,
    suspect_after=1.5, heartbeat_interval=0.25, startup_timeout=60.0,
)


def pick_victim(addr: dict, name: str) -> int:
    """The node holding stripe 0's first block — guaranteed to hurt."""
    info, _ = asyncio.run(
        call(addr["host"], addr["port"], "object.lookup", {"name": name})
    )
    return info["stripes"][0]["placement"]["0"]


def show_assembled_trace(state_dir: Path, victim: int) -> None:
    """Stitch every process's telemetry into one trace; print the repair
    tree's critical path — where the kill→rebuild time actually went."""
    paths = sorted(state_dir.glob("telemetry-*.jsonl"))
    trace = assemble_files(paths)
    victim_spans = [
        s for s in trace.spans if s.attrs.get(PROC_ATTR) == f"node-{victim}"
    ]
    print(
        f"\nassembled one cross-process trace from {len(paths)} telemetry "
        f"streams: {len(trace.spans)} spans over {trace.extent:.2f}s"
    )
    assert victim_spans, "the SIGKILLed daemon's pre-kill spans must survive"
    print(
        f"  node {victim} was SIGKILLed, yet {len(victim_spans)} of its "
        f"spans survived (streamed before the kill)"
    )
    repair_roots = [
        root
        for tid in trace_ids(trace)
        for root in build_tree(trace, tid)
        if root.span.name.startswith("repair:")
    ]
    assert repair_roots, "expected at least one heartbeat-triggered repair trace"
    root = max(repair_roots, key=lambda nd: nd.span.end)
    procs = {nd.proc for nd in critical_path(root)}
    print(
        f"  {len(repair_roots)} repair trace(s); critical path of the "
        f"last-finishing one (spans {', '.join(sorted(procs))}):"
    )
    for line in render_critical_path(critical_path(root)).splitlines():
        print(f"    {line}")


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="single-stripe object (CI-sized)"
    )
    args = parser.parse_args(argv)
    nbytes = (2 * BLOCK_SIZE if args.smoke else 3 * 2 * BLOCK_SIZE) + 123

    with tempfile.TemporaryDirectory(prefix="rpr-store-") as tmp:
        state_dir = Path(tmp) / "cluster"
        launcher = StoreLauncher(state_dir)
        state = launcher.up(**CONFIG)
        client_rec = StreamingRecorder(
            state_dir / "telemetry-client.jsonl",
            CLOCK_WALL,
            meta={"component": "client", "node": "client"},
        )
        client_rec.set_origin(time.monotonic())
        try:
            print(
                f"cluster up: coordinator + {len(state['daemons'])} daemons "
                f"({CONFIG['racks']} racks x {CONFIG['per_rack']} nodes, "
                f"RS({CONFIG['n']},{CONFIG['k']}), scheme {CONFIG['scheme']})"
            )
            client = launcher.client(recorder=client_rec)
            data = os.urandom(nbytes)
            reply = client.put("demo.bin", data)
            print(f"put demo.bin: {nbytes} bytes over {reply['stripes']} stripes")

            victim = pick_victim(state["coordinator"], "demo.bin")
            pid = launcher.kill_daemon(victim)
            print(f"\nSIGKILL node {victim} (pid {pid}) — no goodbye, no flush")

            status = client.wait_healthy(timeout=45.0, min_repairs=1)
            print(
                f"coordinator noticed the silence and repaired "
                f"{len(status['repairs'])} stripes:"
            )
            for rec in status["repairs"]:
                assert rec["ledger_match"], rec
                print(
                    f"  stripe {rec['sid']}: blocks {rec['failed_blocks']} "
                    f"rebuilt on nodes {sorted(rec['targets'].values())}; "
                    f"cross-rack {rec['measured']['cross_rack_bytes']} B measured "
                    f"== {rec['simulated']['cross_rack_bytes']} B simulated "
                    f"(ledger_match={rec['ledger_match']})"
                )

            audit = audit_store_repairs(status["repairs"])
            assert audit.ledger_ok, audit.to_dict()
            print(
                f"independent audit: {audit.repairs} repairs, "
                f"{audit.measured_cross_rack_bytes} B cross-rack measured "
                f"vs {audit.simulated_cross_rack_bytes} B simulated — ledgers agree"
            )

            got = client.get("demo.bin")
            assert got == data, "post-repair GET returned different bytes"
            print(
                f"\nget demo.bin after repair: {len(got)} bytes, "
                f"byte-identical to what was stored"
            )
            print(
                "every rebuilt block lives on a live spare; node "
                f"{victim} is out of every placement"
            )

            client_rec.close()
            show_assembled_trace(state_dir, victim)
        finally:
            launcher.down()
        print("cluster down — all processes reaped")


if __name__ == "__main__":
    main()
