#!/usr/bin/env python3
"""Theory vs simulation: the §4 closed forms against the event simulator.

Prints Figure 6's analytical curves, then re-derives (t_i, t_c) from the
Simics bandwidth model and compares eq. (10) / eq. (13) predictions with
actual simulated repairs — showing where the real system beats the
worst-case analysis (pipelining) and where the analysis over-charges the
baseline (local helpers travel intra-rack).

Run:  python examples/theory_vs_simulation.py
"""

from repro.experiments import (
    figure6_rows,
    format_table,
    model_vs_simulation_rows,
)


def main() -> None:
    print("Figure 6 — theoretical repair time (t_i = 1 ms, t_c = 10 ms)\n")
    print(
        format_table(
            ["code", "traditional (ms)", "RPR worst case (ms)"],
            [
                [r["code"], r["traditional_s"] * 1e3, r["rpr_s"] * 1e3]
                for r in figure6_rows()
            ],
        )
    )

    print(
        "\nModel vs simulation — Simics testbed, 256 MB blocks, single "
        "failure of d1\n"
    )
    rows = model_vs_simulation_rows()
    print(
        format_table(
            ["code", "q", "eq(10) Tra", "sim Tra", "eq(13) RPR bound", "sim RPR"],
            [
                [
                    r["code"],
                    r["q"],
                    r["eq10_tra_s"],
                    r["sim_tra_s"],
                    r["eq13_rpr_bound_s"],
                    r["sim_rpr_s"],
                ]
                for r in rows
            ],
        )
    )
    print(
        "\nReading the table: simulated traditional sits slightly below "
        "eq. (10)\nbecause helpers in the recovery rack move at intra-rack "
        "speed; simulated RPR\nsits at or below the eq. (13) bound because "
        "the greedy schedule pipelines\ninner trees with cross transfers "
        "(the bound assumes no overlap)."
    )


if __name__ == "__main__":
    main()
