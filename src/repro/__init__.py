"""repro — a reproduction of RPR, the rack-aware pipeline repair scheme
for erasure-coded distributed storage systems (Liu, Alibhai, He; ICPP'20).

Quick tour (see README.md for the full walkthrough):

>>> from repro import RSCode, build_simics_environment, run_scheme
>>> from repro import RPRScheme, TraditionalRepair
>>> env = build_simics_environment(12, 4)           # Simics-style testbed
>>> rpr = run_scheme(env, RPRScheme(), [1])         # repair failed block d1
>>> tra = run_scheme(env, TraditionalRepair(), [1])
>>> rpr.total_repair_time < tra.total_repair_time
True

Layer map:

* :mod:`repro.gf` / :mod:`repro.rs` — GF(2^8) + Reed-Solomon coding stack.
* :mod:`repro.cluster` — racks, placements, bandwidth models.
* :mod:`repro.sim` — the discrete-event network/compute simulator.
* :mod:`repro.repair` — traditional, CAR, and RPR planners; plan executor.
* :mod:`repro.analysis`, :mod:`repro.metrics`, :mod:`repro.workloads` —
  closed forms, measurements, failure sweeps.
* :mod:`repro.ec2` — the five-region Table 1 testbed.
* :mod:`repro.experiments` — one row-generator per paper figure/table.

Extensions beyond the paper (flagged as such in their module docs):

* :mod:`repro.multistripe` — full-node rebuilds over a stripe store.
* :mod:`repro.system` — a StorageSystem facade (put/get/fail/repair).
* :mod:`repro.reliability` — repair speed → MTTDL durability models.
* :mod:`repro.lrc` — Locally Repairable Codes (Azure's (12,2,2)).
* :class:`repro.repair.HeterogeneityAwareRPR` — link-speed-aware gather.
* :func:`repro.repair.plan_degraded_read` — degraded reads at any client.
"""

from .analysis import figure6_series, worst_case_improvement
from .cluster import (
    Cluster,
    ContiguousPlacement,
    FlatPlacement,
    HierarchicalBandwidth,
    MatrixBandwidth,
    Placement,
    RPRPlacement,
    SIMICS_BANDWIDTH,
    gbps,
    mbps,
)
from .ec2 import build_ec2_environment, table1_bandwidth
from .experiments import (
    build_ec2_env,
    build_simics_environment,
    run_scheme,
)
from .lrc import LRCCode, LRCLocalRepair
from .metrics import TrafficLedger, percent_reduction
from .multistripe import StripeStore, repair_node_failure
from .reliability import mttdl_from_repair_times, simulate_stripe_lifetimes
from .repair import (
    CARRepair,
    HeterogeneityAwareRPR,
    RepairContext,
    RepairOutcome,
    RepairPlan,
    RPRScheme,
    TraditionalRepair,
    execute_plan,
    initial_store_for,
    plan_degraded_read,
    simulate_repair,
)
from .system import StorageSystem
from .rs import (
    EC2_DECODE,
    MB,
    PAPER_SINGLE_FAILURE_CODES,
    RSCode,
    SIMICS_DECODE,
    Stripe,
    get_code,
)
from .workloads import encoded_stripe, multi_failure_scenarios, single_failure_scenarios

__version__ = "1.0.0"

__all__ = [
    "CARRepair",
    "Cluster",
    "ContiguousPlacement",
    "EC2_DECODE",
    "FlatPlacement",
    "HeterogeneityAwareRPR",
    "HierarchicalBandwidth",
    "LRCCode",
    "LRCLocalRepair",
    "MB",
    "MatrixBandwidth",
    "PAPER_SINGLE_FAILURE_CODES",
    "Placement",
    "RPRPlacement",
    "RPRScheme",
    "RSCode",
    "RepairContext",
    "RepairOutcome",
    "RepairPlan",
    "SIMICS_BANDWIDTH",
    "SIMICS_DECODE",
    "StorageSystem",
    "Stripe",
    "StripeStore",
    "TraditionalRepair",
    "TrafficLedger",
    "build_ec2_env",
    "build_ec2_environment",
    "build_simics_environment",
    "encoded_stripe",
    "execute_plan",
    "figure6_series",
    "gbps",
    "get_code",
    "initial_store_for",
    "mbps",
    "mttdl_from_repair_times",
    "multi_failure_scenarios",
    "percent_reduction",
    "plan_degraded_read",
    "repair_node_failure",
    "run_scheme",
    "simulate_repair",
    "simulate_stripe_lifetimes",
    "single_failure_scenarios",
    "table1_bandwidth",
    "worst_case_improvement",
]
