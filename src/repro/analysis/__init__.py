"""Closed-form analysis of repair time and traffic (paper §4)."""

from .limits import (
    is_low_overhead_code,
    nonworst_cross_timesteps,
    nonworst_traffic_blocks,
    worst_case_cross_timesteps,
    worst_case_improvement,
    worst_case_traffic_blocks,
)
from .model import (
    FIG6_PARAMS,
    car_repair_time,
    TimeParameters,
    cross_transfer_time,
    figure6_series,
    inner_transfer_time,
    racks_for_code,
    rpr_worst_case_time,
    traditional_repair_time,
    traditional_total_time_eq5,
)

__all__ = [
    "FIG6_PARAMS",
    "TimeParameters",
    "car_repair_time",
    "cross_transfer_time",
    "figure6_series",
    "inner_transfer_time",
    "is_low_overhead_code",
    "nonworst_cross_timesteps",
    "nonworst_traffic_blocks",
    "racks_for_code",
    "rpr_worst_case_time",
    "traditional_repair_time",
    "traditional_total_time_eq5",
    "worst_case_cross_timesteps",
    "worst_case_improvement",
    "worst_case_traffic_blocks",
]
