"""Multi-block failure limits — the paper's §4.3.

Closed-form statements about when RPR helps and by how much, used by the
ablation benches and cross-checked against the simulator in tests:

* §4.3.1 — codes with ``(n + k) / k <= 3`` gain nothing in the worst case
  (``k`` failures); codes with ``(n + k) / k > 3`` improve by
  ``1 - ceil(log2 q) * k / n``.
* §4.3.2 — worst-case cross-rack traffic is ``n`` intermediate blocks,
  the same as traditional repair (assuming the paper's ``k | n`` layouts).
* §4.3.3 — with ``2 <= l <= k - 1`` failures, repair takes about
  ``ceil(log2 q) * l`` cross timesteps and moves ``(n / k) * l`` blocks.
"""

from __future__ import annotations

import math

from .model import racks_for_code

__all__ = [
    "is_low_overhead_code",
    "worst_case_cross_timesteps",
    "worst_case_improvement",
    "worst_case_traffic_blocks",
    "nonworst_cross_timesteps",
    "nonworst_traffic_blocks",
]


def is_low_overhead_code(n: int, k: int) -> bool:
    """True when ``(n + k) / k > 3`` — storage overhead below 50 %.

    These are the industry-preferred configurations (§4.3.1: Facebook's
    (10, 4), Azure's (12, 2, 2)) where RPR's worst case still wins.
    """
    return (n + k) / k > 3


def worst_case_cross_timesteps(n: int, k: int) -> int:
    """Cross-rack timesteps RPR needs for ``k`` failures (§4.3.1)."""
    q = racks_for_code(n, k)
    return int(math.ceil(math.log2(q))) * k if q > 1 else 0


def worst_case_improvement(n: int, k: int) -> float:
    """Fractional repair-time improvement over traditional for ``k``
    failures: ``1 - ceil(log2 q) * k / n`` (0 when the code is not
    low-overhead).
    """
    if not is_low_overhead_code(n, k):
        return 0.0
    return 1.0 - worst_case_cross_timesteps(n, k) / n


def worst_case_traffic_blocks(n: int, k: int) -> int:
    """§4.3.2: ``(n / k) * k = n`` intermediates in the worst case."""
    return (n // k) * k


def nonworst_cross_timesteps(n: int, k: int, l: int) -> int:
    """§4.3.3: ``ceil(log2 q) * l`` cross timesteps for ``l`` failures."""
    if not 1 <= l <= k:
        raise ValueError(f"l must be in [1, {k}], got {l}")
    q = racks_for_code(n, k)
    return int(math.ceil(math.log2(q))) * l if q > 1 else 0


def nonworst_traffic_blocks(n: int, k: int, l: int) -> int:
    """§4.3.3: ``(n / k) * l`` cross-rack intermediate blocks."""
    if not 1 <= l <= k:
        raise ValueError(f"l must be in [1, {k}], got {l}")
    return (n // k) * l
