"""Closed-form repair-time model — the paper's §4.1 (eqs. (5), (10)–(13)).

These formulas are the *analytical* counterparts of what the simulator
measures; Figure 6 is generated purely from them.  Tests cross-check the
simulator against eq. (10) (traditional) and treat eq. (13) as the
no-pipeline worst-case bound on RPR.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "TimeParameters",
    "traditional_repair_time",
    "traditional_total_time_eq5",
    "inner_transfer_time",
    "cross_transfer_time",
    "car_repair_time",
    "rpr_worst_case_time",
    "figure6_series",
    "racks_for_code",
]


@dataclass(frozen=True)
class TimeParameters:
    """Per-block transfer times.

    Attributes
    ----------
    t_i:
        Seconds for one inner-rack transfer of one block.
    t_c:
        Seconds for one cross-rack transfer of one block (the paper
        assumes ``t_c = 10 * t_i``).
    """

    t_i: float = 0.001
    t_c: float = 0.010

    def __post_init__(self) -> None:
        if self.t_i <= 0 or self.t_c <= 0:
            raise ValueError("transfer times must be positive")


#: Figure 6's parameters: t_i = 1 ms, t_c = 10 ms.
FIG6_PARAMS = TimeParameters(t_i=0.001, t_c=0.010)


def racks_for_code(n: int, k: int) -> int:
    """``q``: racks needed at the single-rack-fault-tolerant maximum of
    ``k`` blocks per rack (§2.3)."""
    if n < 1 or k < 1:
        raise ValueError(f"need n >= 1 and k >= 1, got ({n}, {k})")
    return math.ceil((n + k) / k)


def traditional_repair_time(n: int, params: TimeParameters) -> float:
    """Eq. (10): ``n`` serial cross-rack block transfers."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return n * params.t_c


def traditional_total_time_eq5(
    n_transfers: int, block_bytes: float, cross_bw: float, decode_speed: float
) -> float:
    """Eq. (5) in its original form: transfer time plus one decode pass."""
    if min(n_transfers, block_bytes, cross_bw, decode_speed) <= 0:
        raise ValueError("all parameters must be positive")
    return n_transfers * block_bytes / cross_bw + block_bytes / decode_speed


def inner_transfer_time(rack_sizes, params: TimeParameters) -> float:
    """Eq. (11): ``(max_i floor(log2 r_i) + 1) * t_i``.

    ``rack_sizes`` are the per-rack helper counts ``r_i`` (each in
    ``[1, k]`` under single-rack fault tolerance).
    """
    sizes = list(rack_sizes)
    if not sizes or any(r < 1 for r in sizes):
        raise ValueError("rack sizes must be positive")
    return (max(int(math.floor(math.log2(r))) for r in sizes) + 1) * params.t_i


def cross_transfer_time(q: int, params: TimeParameters) -> float:
    """Eq. (12): ``(floor(log2 q) + 1) * t_c`` in the worst case."""
    if q < 1:
        raise ValueError("q must be >= 1")
    return (int(math.floor(math.log2(q))) + 1) * params.t_c


def car_repair_time(
    local_helpers: int,
    remote_rack_sizes,
    params: TimeParameters,
    decode_seconds: float = 0.0,
) -> float:
    """Closed-form CAR single-failure repair time (no pipeline).

    CAR gathers each remote rack at a gateway (star: ``r_i - 1`` serial
    intra hops), then every remote rack's intermediate streams to the
    recovery node back-to-back (``q'`` serial cross transfers, after the
    ``local_helpers`` intra arrivals on the same download port):

        t_car = max(local_helpers, max_i(r_i) - 1) * t_i
                + q' * t_c + decode

    Matches the simulator exactly for the paper's single-failure
    configurations (cross-checked in tests) — the analytical companion to
    eq. (10) (traditional) and eq. (13) (RPR).
    """
    sizes = list(remote_rack_sizes)
    if local_helpers < 0 or any(r < 1 for r in sizes):
        raise ValueError("helper counts must be non-negative / positive")
    gateway = max((r - 1 for r in sizes), default=0)
    return (
        max(local_helpers, gateway) * params.t_i
        + len(sizes) * params.t_c
        + decode_seconds
    )


def rpr_worst_case_time(n: int, k: int, params: TimeParameters) -> float:
    """Eq. (13): worst-case (un-pipelined) RPR single-failure repair time.

    Assumes every rack holds ``r_i = k`` helpers and the stripe spans
    ``q = ceil((n + k) / k)`` racks.
    """
    q = racks_for_code(n, k)
    return inner_transfer_time([k], params) + cross_transfer_time(q, params)


def figure6_series(
    codes=None, params: TimeParameters = FIG6_PARAMS
) -> list[dict[str, float | str]]:
    """The two Figure 6 curves: traditional vs RPR (worst case) per code.

    Returns one row per code with keys ``code``, ``traditional_s``,
    ``rpr_s`` — the exact series the paper plots with t_i=1 ms,
    t_c=10 ms.
    """
    if codes is None:
        codes = [(4, 2), (6, 2), (8, 2), (6, 3), (8, 4), (12, 4)]
    rows = []
    for n, k in codes:
        rows.append(
            {
                "code": f"({n},{k})",
                "traditional_s": traditional_repair_time(n, params),
                "rpr_s": rpr_worst_case_time(n, k, params),
            }
        )
    return rows
