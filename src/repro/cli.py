"""Command-line interface: regenerate any experiment or run one repair.

Usage (installed as ``rpr`` or via ``python -m repro.cli``):

    rpr list                        # what can be regenerated
    rpr figure 8                    # print Figure 8's rows
    rpr figure 9 --cap 100          # cap exhaustive sweeps at 100 scenarios
    rpr table 1                     # Table 1's bandwidth matrix
    rpr repair --code 12,4 --fail 1 --scheme rpr [--testbed ec2]
    rpr compare --code 12,4 --fail 1                # all schemes, one table
    rpr faults --code 8,3 --fail 2 --kill 12@0.7    # degraded repair under injected faults
    rpr timeline --code 6,2 --fail 1 --scheme rpr   # ASCII schedule chart
    rpr trace --code 6,4 --fail 1 --scheme rpr      # utilization + bottleneck report
    rpr trace --code 8,3 --fail 2 --kill 4@0.5      # same report for a degraded repair
    rpr telemetry report --code 6,3 --fail 1        # span/counter/histogram summary
    rpr telemetry diff --code 6,3 --fail 1          # per-op sim vs live ratios
    rpr telemetry export --source both --out t.json # Chrome trace for Perfetto
    rpr telemetry assemble --dir .rpr-store         # stitch per-process store traces
    rpr store stats --prom                          # scrape the live metrics plane
    rpr top                                         # refreshing cluster dashboard
    rpr rebuild --code 6,2 --stripes 30 --node 0    # full-node rebuild
    rpr durability --code 12,4                      # MTTDL per scheme
    rpr extension lrc                               # extension experiments
    rpr perf --quick                                # refresh BENCH_*.json reports
    rpr live --code 6,3 --fail 1 --validate         # live runtime vs simulator

Every report subcommand accepts ``--json`` for machine-readable output.
"""

from __future__ import annotations

import argparse
import sys

from . import experiments
from .ec2 import REGIONS, TABLE1_MBPS
from .experiments import (
    build_ec2_env,
    build_simics_environment,
    format_table,
    run_scheme,
)
from .repair import CARRepair, RPRScheme, TraditionalRepair

__all__ = ["main"]

_SCHEMES = {
    "traditional": TraditionalRepair,
    "car": CARRepair,
    "rpr": RPRScheme,
}

_FIGURES = {
    "6": ("figure6_rows", ["code", "traditional_s", "rpr_s"]),
    "7": (
        "figure7_rows",
        ["code", "tra_cross_blocks", "car_cross_blocks", "rpr_cross_blocks"],
    ),
    "8": (
        "figure8_rows",
        ["code", "tra_time_s", "car_time_s", "rpr_time_s", "rpr_vs_tra_pct", "rpr_vs_car_pct"],
    ),
    "9": (
        "figure9_rows",
        ["code", "tra_time_s", "rpr_time_s", "rpr_time_min_s", "rpr_time_max_s", "time_reduction_pct"],
    ),
    "10": (
        "figure10_rows",
        ["code", "tra_cross_blocks", "rpr_cross_blocks", "traffic_reduction_pct"],
    ),
    "11": (
        "figure11_rows",
        ["code", "tra_time_s", "rpr_time_s", "time_reduction_pct", "traffic_reduction_pct"],
    ),
    "12": (
        "figure12_rows",
        ["code", "tra_time_s", "car_time_s", "rpr_time_s", "rpr_vs_tra_pct", "rpr_vs_car_pct"],
    ),
    "13": (
        "figure13_rows",
        ["code", "tra_time_s", "rpr_time_s", "time_reduction_pct"],
    ),
    "14": (
        "figure14_rows",
        ["code", "tra_time_s", "rpr_time_s", "time_reduction_pct"],
    ),
}

#: Figures whose row generators accept a scenario cap.
_CAPPED = {"9", "10", "11", "13", "14"}


def _cmd_list(_args) -> int:
    print("figures: " + ", ".join(sorted(_FIGURES, key=int)))
    print("tables:  1")
    print("extensions: " + ", ".join(sorted(_EXTENSIONS)))
    print("schemes: " + ", ".join(_SCHEMES))
    print("testbeds: simics, ec2")
    return 0


def _cmd_figure(args) -> int:
    if args.number not in _FIGURES:
        print(f"unknown figure {args.number!r}; try: rpr list", file=sys.stderr)
        return 2
    fn_name, columns = _FIGURES[args.number]
    fn = getattr(experiments, fn_name)
    rows = fn(cap=args.cap) if args.number in _CAPPED else fn()
    if args.json:
        import json

        print(json.dumps({"figure": args.number, "rows": rows}, indent=2))
        return 0
    print(f"Figure {args.number}")
    print(format_table(columns, [[row[c] for c in columns] for row in rows]))
    return 0


_EXTENSIONS = {
    "node-rebuild": (
        "node_rebuild_rows",
        ["scheme", "mode", "rebuild", "makespan_s", "cross_blocks", "rack_imbalance"],
    ),
    "durability": (
        "durability_rows",
        ["code", "tra_repair_s", "rpr_repair_s", "tra_mttdl_years", "rpr_mttdl_years", "amplification"],
    ),
    "lrc": (
        "lrc_rows",
        ["code", "mean_repair_s", "mean_cross_blocks", "four_failure_coverage_pct"],
    ),
}


def _cmd_extension(args) -> int:
    if args.name not in _EXTENSIONS:
        print(
            f"unknown extension {args.name!r}; known: {sorted(_EXTENSIONS)}",
            file=sys.stderr,
        )
        return 2
    fn_name, columns = _EXTENSIONS[args.name]
    rows = getattr(experiments, fn_name)()
    if args.json:
        import json

        print(json.dumps({"extension": args.name, "rows": rows}, indent=2))
        return 0
    print(f"Extension: {args.name}")
    print(
        format_table(
            columns,
            [["%.3g" % row[c] if isinstance(row[c], float) else row[c] for c in columns] for row in rows],
        )
    )
    return 0


def _cmd_table(args) -> int:
    if args.number != "1":
        print(f"unknown table {args.number!r}; only Table 1 exists", file=sys.stderr)
        return 2
    header = ["region"] + [r.title() for r in REGIONS]
    rows = []
    for a in REGIONS:
        row = [a.title()]
        for b in REGIONS:
            key = (a, b) if (a, b) in TABLE1_MBPS else (b, a)
            row.append(TABLE1_MBPS.get(key, ""))
        rows.append(row)
    print("Table 1 — region bandwidths (Mbps)")
    print(format_table(header, rows))
    return 0


def _cmd_repair(args) -> int:
    try:
        n, k = (int(x) for x in args.code.split(","))
    except ValueError:
        print(f"--code must look like '12,4', got {args.code!r}", file=sys.stderr)
        return 2
    failed = sorted(int(x) for x in args.fail.split(","))
    builder = build_ec2_env if args.testbed == "ec2" else build_simics_environment
    env = builder(n, k, placement=args.placement)
    scheme = _SCHEMES[args.scheme]()
    outcome = run_scheme(env, scheme, failed)
    if args.json:
        import json

        print(
            json.dumps(
                {
                    "code": [n, k],
                    "testbed": args.testbed,
                    "placement": args.placement,
                    "failed": failed,
                    "scheme": scheme.name,
                    "total_repair_time_s": outcome.total_repair_time,
                    "cross_rack_bytes": outcome.cross_rack_bytes,
                    "cross_rack_blocks": outcome.cross_rack_blocks,
                    "intra_rack_bytes": outcome.intra_rack_bytes,
                    "plan_ops": len(outcome.plan.ops),
                },
                indent=2,
            )
        )
        return 0
    print(
        f"RS({n},{k}) {args.testbed} testbed, {args.placement} placement, "
        f"failed blocks {failed}, scheme {scheme.name}"
    )
    print(f"  total repair time : {outcome.total_repair_time:.2f} s")
    print(f"  cross-rack traffic: {outcome.cross_rack_blocks:.1f} blocks "
          f"({outcome.cross_rack_bytes / 1e6:.0f} MB)")
    print(f"  intra-rack traffic: {outcome.intra_rack_bytes / 1e6:.0f} MB")
    print(f"  plan size         : {len(outcome.plan.ops)} ops")
    return 0


def _parse_code(text: str) -> tuple[int, int]:
    try:
        n, k = (int(x) for x in text.split(","))
        return n, k
    except ValueError:
        raise SystemExit(f"--code must look like '12,4', got {text!r}")


def _cmd_compare(args) -> int:
    from .metrics import percent_reduction

    n, k = _parse_code(args.code)
    failed = sorted(int(x) for x in args.fail.split(","))
    builder = build_ec2_env if args.testbed == "ec2" else build_simics_environment
    env = builder(n, k, placement=args.placement)
    names = ["traditional", "rpr"] if len(failed) > 1 else ["traditional", "car", "rpr"]
    outcomes = {
        name: run_scheme(env, _SCHEMES[name](), failed) for name in names
    }
    rows = [
        [
            name,
            o.total_repair_time,
            o.cross_rack_blocks,
            percent_reduction(
                outcomes["traditional"].total_repair_time, o.total_repair_time
            ),
        ]
        for name, o in outcomes.items()
    ]
    if args.json:
        import json

        print(
            json.dumps(
                {
                    "code": [n, k],
                    "testbed": args.testbed,
                    "failed": failed,
                    "schemes": [
                        {
                            "scheme": name,
                            "repair_time_s": time_s,
                            "cross_blocks": blocks,
                            "vs_traditional_pct": reduction,
                        }
                        for name, time_s, blocks, reduction in rows
                    ],
                },
                indent=2,
            )
        )
        return 0
    print(
        f"RS({n},{k}) on the {args.testbed} testbed, failed blocks {failed}:"
    )
    print(
        format_table(
            ["scheme", "repair_time_s", "cross_blocks", "vs_traditional_%"], rows
        )
    )
    return 0


def _parse_at_spec(spec: str, what: str) -> list[tuple[int, float]]:
    """Parse comma-separated ``node@value`` pairs (e.g. ``6@0.5,12@0.7``)."""
    pairs = []
    for item in spec.split(","):
        try:
            node, value = item.split("@")
            pairs.append((int(node), float(value)))
        except ValueError:
            raise SystemExit(
                f"--{what} expects comma-separated node@value pairs, got {item!r}"
            )
    return pairs


def _build_fault_plan(args, cluster, horizon):
    """Fault plan from CLI flags, death times anchored to ``horizon``."""
    from .sim import FaultPlan, NodeDeath, Straggler, random_fault_plan

    if args.kill or args.slow or args.loss_prob:
        deaths = tuple(
            NodeDeath(node, frac * horizon)
            for node, frac in _parse_at_spec(args.kill, "kill")
        ) if args.kill else ()
        stragglers = tuple(
            Straggler(node, factor)
            for node, factor in _parse_at_spec(args.slow, "slow")
        ) if args.slow else ()
        return FaultPlan(
            deaths=deaths,
            stragglers=stragglers,
            loss_probability=args.loss_prob,
            seed=args.seed,
        )
    return random_fault_plan(
        cluster.node_ids(),
        seed=args.seed,
        deaths=args.deaths,
        death_window=(0.0, horizon),
    )


def _cmd_faults(args) -> int:
    """Run one repair under injected faults and report the degraded outcome.

    Death times are given as *fractions of the fault-free makespan*
    (``--kill 6@0.5`` kills node 6 halfway through the undisturbed
    schedule), so a scenario means the same thing across block sizes and
    testbeds.  ``--verify`` replays the same scenario — same fractions,
    re-anchored to the small run's own timeline — on a real byte store
    and checks the recovered payloads against the lost originals.
    """
    import numpy as np
    from dataclasses import replace as dc_replace

    from .experiments import context_for
    from .repair import IrrecoverableError, simulate_repair, simulate_repair_with_faults
    from .workloads import encoded_stripe

    n, k = _parse_code(args.code)
    failed = sorted(int(x) for x in args.fail.split(","))
    builder = build_ec2_env if args.testbed == "ec2" else build_simics_environment
    env = builder(n, k, placement=args.placement)
    scheme = _SCHEMES[args.scheme]()
    ctx = context_for(env, failed)

    horizon = simulate_repair(scheme, ctx, env.bandwidth).total_repair_time
    faults = _build_fault_plan(args, env.cluster, horizon)

    try:
        outcome = simulate_repair_with_faults(
            scheme, ctx, env.bandwidth, faults, max_attempts=args.max_attempts
        )
    except IrrecoverableError as exc:
        if args.json:
            import json

            print(json.dumps({"status": "irrecoverable", "reason": str(exc)}))
        else:
            print(f"IRRECOVERABLE: {exc}")
        return 1

    oracle = None
    if args.verify:
        small_block = 1 << 16
        small_ctx = dc_replace(ctx, block_size=small_block)
        small_horizon = simulate_repair(
            scheme, small_ctx, env.bandwidth
        ).total_repair_time
        small_faults = _build_fault_plan(args, env.cluster, small_horizon)
        stripe = encoded_stripe(env.code, small_block, seed=args.seed)
        try:
            verified = simulate_repair_with_faults(
                scheme, small_ctx, env.bandwidth, small_faults,
                stripe=stripe, max_attempts=args.max_attempts,
            )
            oracle = all(
                np.array_equal(verified.recovered[f], stripe.get_payload(f))
                for f in failed
            )
        except IrrecoverableError:
            oracle = None  # scenario unverifiable at this scale

    if args.json:
        import json

        payload = outcome.to_dict()
        payload["status"] = "completed"
        payload["fault_free_time"] = horizon
        if args.verify:
            payload["byte_oracle"] = oracle
        print(json.dumps(payload, indent=2))
        return 0 if oracle is not False else 1

    print(
        f"{scheme.name} repairing blocks {failed} of RS({n},{k}) on the "
        f"{args.testbed} testbed under injected faults (seed {args.seed}):"
    )
    print(f"  fault-free time   : {horizon:.2f} s")
    print(
        f"  degraded time     : {outcome.total_repair_time:.2f} s "
        f"({outcome.total_repair_time / horizon:.2f}x)"
    )
    print(f"  attempts          : {outcome.attempts}")
    if outcome.dead_nodes:
        dead = ", ".join(
            f"node {node} @ {when:.1f}s"
            for node, when in sorted(outcome.dead_nodes.items())
        )
        print(f"  node deaths       : {dead}")
    print(f"  transfer retries  : {outcome.retry_count}")
    print(f"  wasted traffic    : {outcome.wasted_bytes / 1e6:.1f} MB")
    if outcome.reused_payloads:
        print(f"  reused payloads   : {', '.join(outcome.reused_payloads)}")
    if args.verify:
        if oracle is None:
            print("  byte oracle       : skipped (small-scale replay irrecoverable)")
        else:
            print(f"  byte oracle       : {'OK' if oracle else 'MISMATCH'}")
            if not oracle:
                return 1
    return 0


def _cmd_timeline(args) -> int:
    from .sim import render_timeline, timeline_rows

    n, k = _parse_code(args.code)
    failed = sorted(int(x) for x in args.fail.split(","))
    builder = build_ec2_env if args.testbed == "ec2" else build_simics_environment
    env = builder(n, k, placement=args.placement)
    scheme = _SCHEMES[args.scheme]()
    outcome = run_scheme(env, scheme, failed)
    if args.json:
        import json

        print(
            json.dumps(
                {
                    "code": [n, k],
                    "failed": failed,
                    "scheme": scheme.name,
                    "makespan_s": outcome.total_repair_time,
                    "rows": [
                        {
                            "label": row.label,
                            "intervals": [
                                {"start": s, "end": e, "job": job}
                                for s, e, job in row.intervals
                            ],
                        }
                        for row in timeline_rows(outcome.sim)
                    ],
                },
                indent=2,
            )
        )
        return 0
    print(
        f"{scheme.name} repairing blocks {failed} of RS({n},{k}) on the "
        f"{args.testbed} testbed — {outcome.total_repair_time:.2f} s total"
    )
    print(render_timeline(outcome.sim, width=args.width))
    return 0


def _cmd_trace(args) -> int:
    """Utilization + bottleneck report, fault-free or degraded.

    Any fault flag (``--kill``, ``--slow``, ``--loss-prob``, or
    ``--deaths`` > 0) switches the command onto the faulted engine: the
    repair replays under the injected scenario and the trace comes from
    one attempt of the degraded outcome (``--attempt``, default the
    final one).  Aborted occupancy shows up as zero-byte intervals and
    the critical path walks across abort and retry boundaries.
    """
    from .sim import render_gantt, render_report

    n, k = _parse_code(args.code)
    failed = sorted(int(x) for x in args.fail.split(","))
    builder = build_ec2_env if args.testbed == "ec2" else build_simics_environment
    env = builder(n, k, placement=args.placement)
    scheme = _SCHEMES[args.scheme]()
    faulted = bool(args.kill or args.slow or args.loss_prob or args.deaths)
    if faulted:
        from .experiments import context_for
        from .repair import (
            IrrecoverableError,
            simulate_repair,
            simulate_repair_with_faults,
        )

        ctx = context_for(env, failed)
        horizon = simulate_repair(scheme, ctx, env.bandwidth).total_repair_time
        faults = _build_fault_plan(args, env.cluster, horizon)
        try:
            degraded = simulate_repair_with_faults(
                scheme, ctx, env.bandwidth, faults, max_attempts=args.max_attempts
            )
        except IrrecoverableError as exc:
            print(f"IRRECOVERABLE: {exc}", file=sys.stderr)
            return 1
        if not -degraded.attempts <= args.attempt < degraded.attempts:
            print(
                f"--attempt {args.attempt} out of range; outcome has "
                f"{degraded.attempts} attempts",
                file=sys.stderr,
            )
            return 2
        trace = degraded.trace(args.attempt)
        attempt_no = args.attempt % degraded.attempts + 1
        headline = (
            f"{scheme.name} repairing blocks {failed} of RS({n},{k}) on the "
            f"{args.testbed} testbed under injected faults (seed {args.seed}) "
            f"— attempt {attempt_no} of {degraded.attempts}"
        )
    else:
        outcome = run_scheme(env, scheme, failed)
        trace = outcome.trace()
        headline = (
            f"{scheme.name} repairing blocks {failed} of RS({n},{k}) on the "
            f"{args.testbed} testbed, {args.placement} placement"
        )
    if args.json:
        import json

        print(json.dumps(trace.to_dict(), indent=2))
        return 0
    if args.jsonl:
        print(trace.to_json_lines())
        return 0
    print(headline)
    print(render_report(trace))
    if args.gantt:
        print()
        print(render_gantt(trace, width=args.width))
    return 0


def _cmd_rebuild(args) -> int:
    from .multistripe import StripeStore, repair_node_failure
    from .rs import get_code

    n, k = _parse_code(args.code)
    builder = build_ec2_env if args.testbed == "ec2" else build_simics_environment
    env = builder(n, k)
    store = StripeStore.build(env.cluster, get_code(n, k), num_stripes=args.stripes)
    lost = store.blocks_on_node(args.node)
    scheme = _SCHEMES[args.scheme]()
    outcome = repair_node_failure(
        store,
        args.node,
        scheme,
        env.bandwidth,
        mode=args.mode,
        rebuild=args.rebuild,
        balance=args.balance,
        block_size=env.block_size,
        cost_model=env.cost_model,
    )
    if args.json:
        import json

        print(
            json.dumps(
                {
                    "code": [n, k],
                    "node": args.node,
                    "stripes": args.stripes,
                    "lost_blocks": len(lost),
                    "scheme": scheme.name,
                    "mode": args.mode,
                    "rebuild": args.rebuild,
                    "makespan_s": outcome.makespan,
                    "cross_rack_blocks": outcome.total_cross_rack_bytes / env.block_size,
                    "rack_imbalance_max_mean": outcome.rack_upload_imbalance["max_mean_ratio"],
                },
                indent=2,
            )
        )
        return 0
    print(
        f"node {args.node} holds {len(lost)} blocks across a "
        f"{args.stripes}-stripe RS({n},{k}) store"
    )
    print(f"  makespan          : {outcome.makespan:.2f} s")
    print(
        f"  cross-rack traffic: "
        f"{outcome.total_cross_rack_bytes / env.block_size:.0f} blocks"
    )
    print(
        f"  rack imbalance    : "
        f"{outcome.rack_upload_imbalance['max_mean_ratio']:.2f} (max/mean)"
    )
    return 0


def _cmd_durability(args) -> int:
    from .experiments import context_for
    from .reliability import mttdl_from_repair_times
    from .repair import simulate_repair

    n, k = _parse_code(args.code)
    year = 365.25 * 24 * 3600
    lam = 1 / (args.block_mtbf_years * year)
    builder = build_ec2_env if args.testbed == "ec2" else build_simics_environment
    env = builder(n, k)
    results = {}
    repair_times = {}
    for name in ("traditional", "rpr"):
        scheme = _SCHEMES[name]()
        times = [
            simulate_repair(
                scheme, context_for(env, list(range(l))), env.bandwidth
            ).total_repair_time
            for l in range(1, k + 1)
        ]
        repair_times[name] = times
        results[name] = mttdl_from_repair_times(n + k, k, lam, times)
    amplification = results["rpr"] / results["traditional"]
    if args.json:
        import json

        print(
            json.dumps(
                {
                    "code": [n, k],
                    "testbed": args.testbed,
                    "block_mtbf_years": args.block_mtbf_years,
                    "schemes": [
                        {
                            "scheme": name,
                            "repair_times_s": repair_times[name],
                            "mttdl_years": results[name] / year,
                        }
                        for name in results
                    ],
                    "durability_amplification": amplification,
                },
                indent=2,
            )
        )
        return 0
    print(
        f"RS({n},{k}) on the {args.testbed} testbed, one failure per block "
        f"per {args.block_mtbf_years:g} years:"
    )
    for name, value in results.items():
        print(
            f"  {name:>12}: repair(1)={repair_times[name][0]:7.1f} s  "
            f"MTTDL={value / year:.3e} years"
        )
    print(f"  durability amplification: {amplification:.1f}x")
    return 0


def _cmd_live(args) -> int:
    """Execute repairs on the live asyncio runtime and compare to the sim.

    Runs every requested scheme's plan on real bytes over real (shaped)
    connections, printing the measured makespan next to the simulator's
    prediction.  ``--validate`` turns the report into a gate: exit
    nonzero unless every recovered block is byte-identical to the lost
    original *and* measured makespans rank the schemes the way the
    simulator predicts.
    """
    from .live import run_live_validation

    n, k = _parse_code(args.code)
    failed = sorted(int(x) for x in args.fail.split(","))
    schemes = args.schemes.split(",") if args.schemes else None
    if schemes is not None:
        unknown = set(schemes) - set(_SCHEMES)
        if unknown:
            print(f"unknown schemes {sorted(unknown)}; known: {sorted(_SCHEMES)}",
                  file=sys.stderr)
            return 2
    report = run_live_validation(
        n,
        k,
        failed,
        schemes=schemes,
        block_size=args.block_size,
        transport=args.transport,
        seed=args.seed,
        timeout=args.timeout,
    )
    ok = report.all_bytes_ok and report.ordering_ok()
    if args.json:
        import json

        payload = report.to_dict()
        payload["validated"] = ok if args.validate else None
        print(json.dumps(payload, indent=2))
        return 0 if (ok or not args.validate) else 1

    print(
        f"RS({n},{k}) failed blocks {failed}: live runtime "
        f"({args.transport} transport, {args.block_size // 1024} KiB blocks) "
        f"vs simulator"
    )
    rows = [
        [
            row.scheme,
            f"{row.predicted_s:.3f}",
            f"{row.measured_s:.3f}",
            f"{row.ratio:.2f}",
            "ok" if row.bytes_ok else "MISMATCH",
            row.cross_rack_bytes,
        ]
        for row in report.rows
    ]
    print(
        format_table(
            ["scheme", "predicted_s", "measured_s", "ratio", "bytes", "cross_bytes"],
            rows,
        )
    )
    print(f"  bytes    : {'all recovered blocks identical' if report.all_bytes_ok else 'MISMATCH'}")
    print(f"  ordering : {'matches simulator' if report.ordering_ok() else 'DISAGREES with simulator'}")
    if args.validate and not ok:
        return 1
    return 0


def _cmd_telemetry(args) -> int:
    """Span-structured telemetry: summarise, diff sim vs live, or export.

    Three modes:

    ``report``
        Simulate one repair and summarise its telemetry trace (op spans,
        fault events, counters, histograms) — sim-clock seconds.
    ``diff``
        Run the same plan through the simulator *and* the live runtime
        with telemetry on, align every op span by id and print per-op
        measured/predicted ratios, the worst divergers and the
        critical-path delta.  Exits nonzero if any op fails to align.
    ``export``
        Write the trace(s) out as canonical JSONL or Chrome trace-event
        JSON (loadable in Perfetto / ``chrome://tracing``).  ``--source
        both`` puts the sim prediction and the live measurement side by
        side as two processes in one Chrome trace.
    """
    import json

    from .telemetry import render_diff, to_chrome_trace, to_jsonl

    if args.mode == "assemble":
        return _telemetry_assemble(args)

    n, k = _parse_code(args.code)
    failed = sorted(int(x) for x in args.fail.split(","))

    if args.mode == "report":
        builder = build_ec2_env if args.testbed == "ec2" else build_simics_environment
        env = builder(n, k, placement=args.placement)
        scheme = _SCHEMES[args.scheme]()
        outcome = run_scheme(env, scheme, failed)
        trace = outcome.telemetry()
        if args.json:
            print(json.dumps(trace.to_dict(), indent=2))
            return 0
        ops = sorted(trace.op_spans().values(), key=lambda s: -s.duration)
        print(
            f"{scheme.name} repairing blocks {failed} of RS({n},{k}) on the "
            f"{args.testbed} testbed — telemetry ({trace.clock} clock)"
        )
        print(f"  spans    : {len(trace.spans)} ({len(ops)} ops)")
        print(f"  events   : {len(trace.events)}")
        print(f"  extent   : {trace.extent:.3f} s")
        for name in sorted(trace.counters):
            print(f"  counter  : {name} = {trace.counters[name]:g}")
        for name in sorted(trace.histograms):
            values = trace.histograms[name]
            print(
                f"  histogram: {name} n={len(values)} "
                f"mean={sum(values) / len(values):.4g} max={max(values):.4g}"
            )
        print("  slowest ops:")
        for span in ops[: args.top]:
            print(
                f"    {span.op_id:<28} {span.duration:8.3f} s  "
                f"{span.attrs.get('kind', '?')}"
                f"{' CROSS' if span.attrs.get('cross_rack') else ''}"
            )
        return 0

    if args.mode == "diff":
        from .live import run_live_validation

        report = run_live_validation(
            n,
            k,
            failed,
            schemes=[args.scheme],
            block_size=args.block_size,
            transport=args.transport,
            seed=args.seed,
            timeout=args.timeout,
            telemetry=True,
        )
        diff = report.rows[0].diff
        if args.json:
            print(json.dumps(diff.to_dict(), indent=2))
        else:
            print(
                f"{args.scheme} repairing blocks {failed} of RS({n},{k}): "
                f"simulator prediction vs live measurement "
                f"({args.transport} transport, {args.block_size // 1024} KiB blocks)"
            )
            print(render_diff(diff, top=args.top))
        return 0 if diff.all_aligned else 1

    # export
    from .experiments import context_for
    from .live import live_environment, run_plan_live_sync
    from .repair import initial_store_for, simulate_repair
    from .telemetry import CLOCK_WALL, TelemetryRecorder
    from .workloads import encoded_stripe

    if args.format == "jsonl" and args.source == "both":
        print("--format jsonl holds a single trace; pick --source sim or live",
              file=sys.stderr)
        return 2

    scheme = _SCHEMES[args.scheme]()
    traces = []
    if args.source == "sim":
        builder = build_ec2_env if args.testbed == "ec2" else build_simics_environment
        env = builder(n, k, placement=args.placement)
        outcome = run_scheme(env, scheme, failed)
        traces.append((f"sim:{scheme.name}", outcome.telemetry()))
    else:
        env = live_environment(
            n, k, block_size=args.block_size, placement=args.placement
        )
        ctx = context_for(env, failed)
        predicted = simulate_repair(scheme, ctx, env.bandwidth)
        if args.source == "both":
            traces.append((f"sim:{scheme.name}", predicted.telemetry()))
        stripe = encoded_stripe(env.code, args.block_size, seed=args.seed)
        store = initial_store_for(stripe, env.placement, failed)
        recorder = TelemetryRecorder(
            CLOCK_WALL,
            meta={"source": "live", "scheme": scheme.name, "transport": args.transport},
        )
        live = run_plan_live_sync(
            predicted.plan,
            env.cluster,
            store,
            bandwidth=env.bandwidth,
            transport=args.transport,
            timeout=args.timeout,
            recorder=recorder,
        )
        traces.append((f"live:{scheme.name}", live.telemetry))

    if args.format == "jsonl":
        text = to_jsonl(traces[0][1])
    else:
        text = json.dumps(to_chrome_trace(traces), indent=2) + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.format} trace ({len(text)} bytes) to {args.out}")
    else:
        print(text, end="")
    return 0


def _telemetry_assemble(args) -> int:
    """Stitch per-process store telemetry files into one trace.

    Sources come from explicit paths and/or ``--dir`` (a store state
    directory, globbed for ``telemetry-*.jsonl``).  Default output is
    the propagated span tree per trace id plus the critical path of the
    last-finishing root; ``--out`` exports the assembled trace through
    the existing Chrome/JSONL writers instead.
    """
    import json
    from pathlib import Path

    from .telemetry import (
        assemble_files,
        build_tree,
        critical_path,
        render_critical_path,
        render_tree,
        to_chrome_trace,
        to_jsonl,
        trace_ids,
    )

    paths = list(args.paths)
    if args.dir:
        paths.extend(
            str(p) for p in sorted(Path(args.dir).glob("telemetry-*.jsonl"))
        )
    paths = [p for p in paths if Path(p).exists()]
    if not paths:
        print(
            "telemetry assemble: no telemetry files (pass paths or --dir "
            "with telemetry-*.jsonl)",
            file=sys.stderr,
        )
        return 2
    trace = assemble_files(paths)

    if args.out:
        if args.format == "jsonl":
            text = to_jsonl(trace)
        else:
            text = json.dumps(to_chrome_trace([("assembled", trace)]), indent=2) + "\n"
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.format} trace ({len(text)} bytes) to {args.out}")
        return 0
    if args.json:
        print(json.dumps(trace.to_dict(), indent=2))
        return 0

    print(
        f"assembled {len(paths)} streams: {len(trace.spans)} spans, "
        f"{len(trace.events)} events, {trace.extent:.3f} s extent"
    )
    ids = trace_ids(trace)
    if not ids:
        print("no propagated trace ids found (spans lack trace_id attrs)")
        return 0
    last_root = None
    for tid in ids:
        roots = build_tree(trace, tid)
        if not roots:
            continue
        print(f"\ntrace {tid}:")
        print(render_tree(roots))
        root = max(roots, key=lambda nd: (nd.span.end, nd.span.start))
        if last_root is None or root.span.end >= last_root.span.end:
            last_root = root
    if last_root is not None:
        print("\ncritical path (last-finishing trace):")
        print(render_critical_path(critical_path(last_root)))
    return 0


def _stats_snapshots(scrape: dict) -> list[dict]:
    """Coordinator + reachable daemon snapshots from a cluster scrape."""
    return [scrape["coordinator"]] + [
        body for _, body in sorted(scrape["nodes"].items(), key=lambda kv: int(kv[0]))
        if "error" not in body
    ]


def _latency_lines(snap: dict, indent: str = "  ") -> list[str]:
    """Per-op latency histogram summary rows for one stats snapshot."""
    from .telemetry import LATENCY_PREFIX, LogHistogram

    lines = []
    for name in sorted(snap.get("histograms", {})):
        if not name.startswith(LATENCY_PREFIX):
            continue
        hist = LogHistogram.from_dict(snap["histograms"][name])
        if not hist.count:
            continue
        op = name[len(LATENCY_PREFIX):]
        lines.append(
            f"{indent}{op:<24} n={hist.count:<6} "
            f"mean={hist.mean * 1e3:8.2f}ms "
            f"p50={hist.quantile(0.5) * 1e3:8.2f}ms "
            f"p99={hist.quantile(0.99) * 1e3:8.2f}ms"
        )
    return lines


def _render_stats(scrape: dict) -> str:
    """Human-readable cluster metrics: one block per process."""
    out = []
    coord = scrape["coordinator"]
    g = coord.get("gauges", {})
    out.append(
        f"coordinator: up {coord.get('uptime_s', 0.0):.1f}s, "
        f"{int(g.get('nodes_alive', 0))} nodes alive, "
        f"{int(g.get('objects', 0))} objects, "
        f"{int(g.get('degraded_stripes', 0))} degraded stripes, "
        f"{int(g.get('repairs_active', 0))} repairs active, "
        f"{coord.get('repairs_done', 0)} repairs done"
    )
    out.extend(_latency_lines(coord))
    for nid, body in sorted(scrape["nodes"].items(), key=lambda kv: int(kv[0])):
        if "error" in body:
            out.append(f"node-{nid}: UNREACHABLE ({body['error']})")
            continue
        ng = body.get("gauges", {})
        nic = ""
        if "nic_util" in ng:
            nic = f", NIC {100 * ng['nic_util']:.1f}% of {ng.get('nic_rate_Bps', 0):.0f} B/s"
        out.append(
            f"node-{nid}: up {body.get('uptime_s', 0.0):.1f}s, "
            f"{int(ng.get('blocks', 0))} blocks, "
            f"{int(ng.get('repairs_inflight', 0))} repairs in flight{nic}"
        )
        out.extend(_latency_lines(body))
    return "\n".join(out)


def _cmd_top(args) -> int:
    """Refreshing terminal dashboard over the store's metrics plane.

    Scrapes the same ``stats`` RPCs as ``rpr store stats`` every
    ``--interval`` seconds and redraws a compact per-node table; exits
    on Ctrl-C (or after ``--iterations`` frames, for scripts/tests).
    """
    import time

    from .store import LauncherError, StoreError, StoreLauncher
    from .telemetry import LATENCY_PREFIX, LogHistogram

    launcher = StoreLauncher(args.dir)

    def quantile_ms(snap: dict, op: str, q: float) -> str:
        data = snap.get("histograms", {}).get(f"{LATENCY_PREFIX}{op}")
        if not data:
            return "-"
        hist = LogHistogram.from_dict(data)
        if not hist.count:
            return "-"
        return f"{hist.quantile(q) * 1e3:.1f}"

    def frame() -> str:
        status = launcher.status()
        scrape = launcher.client().stats()
        coord = scrape["coordinator"]
        g = coord.get("gauges", {})
        lines = [
            f"rpr top — {args.dir}  (interval {args.interval:g}s, Ctrl-C to quit)",
            f"coordinator: up {coord.get('uptime_s', 0.0):.1f}s  "
            f"nodes {int(g.get('nodes_alive', 0))}/{len(scrape['nodes'])}  "
            f"objects {int(g.get('objects', 0))}  "
            f"degraded {int(g.get('degraded_stripes', 0))}  "
            f"repairs active {int(g.get('repairs_active', 0))} "
            f"done {coord.get('repairs_done', 0)}",
            "",
            f"{'node':<8} {'proc':<8} {'beat':>7} {'blocks':>7} {'rif':>4} "
            f"{'nic%':>6} {'fg p99 ms':>10} {'rep p99 ms':>11} {'rpcs':>7}",
        ]
        nodes = status["service"].get("nodes", {})
        for nid, body in sorted(scrape["nodes"].items(), key=lambda kv: int(kv[0])):
            info = nodes.get(nid, {})
            proc = "run" if status["processes"].get(f"node-{nid}") else "DEAD"
            beat = f"{info['beat_age_s']:.1f}s" if "beat_age_s" in info else "-"
            if "error" in body:
                lines.append(
                    f"node-{nid:<4} {proc:<8} {beat:>7} {'-':>7} {'-':>4} "
                    f"{'-':>6} {'-':>10} {'-':>11} {'-':>7}"
                )
                continue
            ng = body.get("gauges", {})
            nc = body.get("counters", {})
            rpcs = sum(int(v) for k, v in nc.items() if k.startswith("rpc:"))
            nic = f"{100 * ng['nic_util']:.1f}" if "nic_util" in ng else "-"
            fg = quantile_ms(body, "block.get:foreground", 0.99)
            if fg == "-":
                fg = quantile_ms(body, "block.put:foreground", 0.99)
            rep = quantile_ms(body, "repair.block:repair", 0.99)
            if rep == "-":
                rep = quantile_ms(body, "repair.exec:repair", 0.99)
            lines.append(
                f"node-{nid:<4} {proc:<8} {beat:>7} "
                f"{int(ng.get('blocks', 0)):>7} "
                f"{int(ng.get('repairs_inflight', 0)):>4} "
                f"{nic:>6} {fg:>10} {rep:>11} {rpcs:>7}"
            )
        coord_lat = _latency_lines(coord, indent="")
        if coord_lat:
            lines.append("")
            lines.append("coordinator latency:")
            lines.extend("  " + line for line in coord_lat)
        return "\n".join(lines)

    shown = 0
    try:
        while True:
            try:
                text = frame()
            except (LauncherError, StoreError, ConnectionError, OSError) as exc:
                text = f"rpr top: cluster unreachable ({exc})"
            if args.iterations != 1 and sys.stdout.isatty():
                sys.stdout.write("\x1b[2J\x1b[H")
            print(text, flush=True)
            shown += 1
            if args.iterations and shown >= args.iterations:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_store(args) -> int:
    """Drive the multi-process object store service (see docs/LIVE.md).

    ``up`` launches one coordinator and one daemon subprocess per node,
    rooted at a state directory; the other verbs find the cluster
    through that directory, so each can run as its own invocation.
    ``kill`` SIGKILLs a daemon — the coordinator notices the missed
    heartbeats and repairs the lost blocks onto live spares with the
    configured scheme.
    """
    import json

    from .store import LauncherError, StoreError, StoreLauncher

    launcher = StoreLauncher(args.dir)
    try:
        if args.store_command == "up":
            n, k = _parse_code(args.code)
            state = launcher.up(
                racks=args.racks,
                per_rack=args.per_rack,
                n=n,
                k=k,
                scheme=args.scheme,
                block_size=args.block_size,
                suspect_after=args.suspect_after,
                heartbeat_interval=args.heartbeat_interval,
                link_rate=args.link_rate,
                repair_share=args.repair_share,
            )
            addr = state["coordinator"]
            print(
                f"store up: coordinator {addr['host']}:{addr['port']} "
                f"(pid {addr['pid']}), {len(state['daemons'])} daemons, "
                f"scheme {args.scheme}, state in {args.dir}"
            )
            return 0
        if args.store_command == "down":
            launcher.down()
            print("store down: all processes stopped")
            return 0
        if args.store_command == "status":
            status = launcher.status()
            if args.json:
                print(json.dumps(status, indent=2))
                return 0
            procs = status["processes"]
            service = status["service"]
            print(f"processes: {sum(procs.values())}/{len(procs)} running")
            for name, alive in sorted(procs.items()):
                print(f"  {name:<14} {'running' if alive else 'DEAD'}")
            if "error" in service:
                print(f"service unreachable: {service['error']}")
                return 1
            alive_nodes = sum(1 for e in service["nodes"].values() if e["alive"])
            print(
                f"service: scheme {service['scheme']}, "
                f"RS({service['code']['n']},{service['code']['k']}), "
                f"{alive_nodes}/{len(service['nodes'])} nodes alive, "
                f"{len(service['objects'])} objects, "
                f"{len(service['degraded'])} degraded stripes, "
                f"{len(service['repairs'])} repairs done"
            )
            for nid, info in sorted(
                service["nodes"].items(), key=lambda kv: int(kv[0])
            ):
                meta = info.get("meta", {})
                extra = (
                    f"{int(meta['repairs_inflight'])} repairs in flight"
                    if "repairs_inflight" in meta
                    else ""
                )
                blocks = (
                    f"{int(meta['blocks'])} blocks" if "blocks" in meta else ""
                )
                detail = ", ".join(x for x in (blocks, extra) if x)
                print(
                    f"  node-{nid:<4} {'alive' if info['alive'] else 'DEAD':<6} "
                    f"last beat {info['beat_age_s']:6.2f}s ago"
                    + (f"  ({detail})" if detail else "")
                )
            return 0
        if args.store_command == "kill":
            pid = launcher.kill_daemon(args.node)
            print(
                f"SIGKILLed daemon for node {args.node} (pid {pid}); the "
                f"coordinator will notice the missed heartbeats and repair"
            )
            return 0

        client = launcher.client()
        if args.store_command == "stats":
            from .telemetry import snapshots_to_prometheus

            scrape = client.stats()
            if args.prom:
                print(snapshots_to_prometheus(_stats_snapshots(scrape)), end="")
            elif args.json:
                print(json.dumps(scrape, indent=2))
            else:
                print(_render_stats(scrape))
            return 0
        if args.store_command == "put":
            data = (
                sys.stdin.buffer.read()
                if args.file == "-"
                else open(args.file, "rb").read()
            )
            client.put(args.name, data)
            print(f"put {args.name}: {len(data)} bytes")
            return 0
        if args.store_command == "get":
            data, report = client.get_with_report(
                args.name, degraded=args.degraded
            )
            if args.out:
                with open(args.out, "wb") as fh:
                    fh.write(data)
            if args.json:
                payload = {**report, "nbytes": len(data)}
                if args.out:
                    payload["out"] = args.out
                print(json.dumps(payload, indent=2))
            elif args.out:
                tag = " (degraded read)" if report["degraded"] else ""
                print(f"got {args.name}: {len(data)} bytes -> {args.out}{tag}")
            else:
                sys.stdout.buffer.write(data)
            return 0
        if args.store_command == "rm":
            reply = client.delete(args.name)
            print(f"deleted {args.name} ({reply['dropped']} blocks dropped)")
            return 0
        if args.store_command == "ls":
            for entry in client.list_objects():
                print(f"{entry['size']:>12}  {entry['stripes']:>3} stripes  {entry['name']}")
            return 0
        raise AssertionError(f"unhandled store command {args.store_command!r}")
    except (LauncherError, StoreError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _cmd_qos(args) -> int:
    """Replay a Zipfian user workload against an in-process store cluster.

    Brings up a :class:`repro.qos.LocalService`, preloads the working
    set, replays the seeded trace (optionally killing a daemon mid-run
    with ``--kill-at``), and prints per-phase latency percentiles — the
    single-point version of ``benchmarks/bench_qos_tradeoff.py``.
    """
    import asyncio
    import json

    from .qos import LocalService, preload_working_set, replay_trace
    from .workloads import zipf_object_trace

    n, k = _parse_code(args.code)

    async def run():
        async with LocalService(
            racks=args.racks,
            per_rack=args.per_rack,
            n=n,
            k=k,
            scheme=args.scheme,
            block_size=args.block_size,
            link_rate=args.link_rate,
            repair_share=args.repair_share,
        ) as svc:
            expected = await preload_working_set(
                svc.client, args.objects, args.object_bytes, seed=args.seed
            )
            events = zipf_object_trace(
                args.objects,
                args.requests,
                rate=args.rate,
                zipf_s=args.zipf_s,
                get_fraction=args.get_fraction,
                seed=args.seed,
            )
            kills = []
            if args.kill_at is not None:
                victim = svc.coordinator.stripes[0].placement.node_of(0)
                kills = [(args.kill_at, victim)]
            report = await replay_trace(
                svc.client,
                events,
                mode=args.mode,
                concurrency=args.concurrency,
                time_scale=args.time_scale,
                expected=expected,
                kills=kills,
                kill_fn=svc.kill,
                object_bytes=args.object_bytes,
                seed=args.seed,
            )
            status = await svc.client.status()
            return report, status

    report, status = asyncio.run(run())
    result = report.to_dict()
    result["repairs"] = len(status["repairs"])
    result["scheme"] = args.scheme
    result["link_rate"] = args.link_rate
    result["repair_share"] = args.repair_share
    if args.json:
        print(json.dumps(result, indent=2))
        return 1 if result["errors"] else 0

    def ms(v):
        return "-" if v is None else f"{v * 1e3:8.2f}ms"

    shaped = (
        f"link {args.link_rate:.0f} B/s, repair share {args.repair_share}"
        if args.link_rate
        else "unshaped"
    )
    print(
        f"qos replay: {result['requests']} requests ({args.mode}-loop), "
        f"scheme {args.scheme}, {shaped}"
    )
    print(
        f"  errors {result['errors']}, rejected {result['rejected']}, "
        f"degraded gets {result['degraded_gets']}, repairs "
        f"{result['repairs']}, repair window {result['repair_window']}"
    )
    for label, key in (
        ("GET (all)", "get"),
        ("GET (repair phase)", "get_repair_phase"),
        ("PUT (all)", "put"),
    ):
        s = result[key]
        print(
            f"  {label:<20} n={s['count']:<5} p50 {ms(s['p50'])}  "
            f"p99 {ms(s['p99'])}  p999 {ms(s['p999'])}"
        )
    return 1 if result["errors"] else 0


def _cmd_perf(args) -> int:
    from .perfharness import main as perf_main

    argv = ["--out-dir", str(args.out_dir)]
    if args.quick:
        argv.append("--quick")
    if args.workers is not None:
        argv.extend(["--workers", str(args.workers)])
    return perf_main(argv)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rpr",
        description="RPR reproduction: regenerate paper experiments or run one repair",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list figures, tables and schemes").set_defaults(
        func=_cmd_list
    )

    fig = sub.add_parser("figure", help="regenerate one figure's rows")
    fig.add_argument("number", help="figure number (6-14)")
    fig.add_argument(
        "--cap", type=int, default=experiments.DEFAULT_SCENARIO_CAP,
        help="max scenarios per sweep (larger sweeps are sampled)",
    )
    fig.add_argument(
        "--json", action="store_true", help="emit machine-readable rows"
    )
    fig.set_defaults(func=_cmd_figure)

    ext = sub.add_parser("extension", help="regenerate an extension experiment")
    ext.add_argument("name", help="node-rebuild | durability | lrc")
    ext.add_argument("--json", action="store_true", help="machine-readable rows")
    ext.set_defaults(func=_cmd_extension)

    tab = sub.add_parser("table", help="regenerate one table")
    tab.add_argument("number", help="table number (1)")
    tab.set_defaults(func=_cmd_table)

    rep = sub.add_parser("repair", help="simulate a single repair")
    rep.add_argument("--code", default="12,4", help="RS code as 'n,k'")
    rep.add_argument("--fail", default="1", help="failed block ids, comma-separated")
    rep.add_argument("--scheme", choices=sorted(_SCHEMES), default="rpr")
    rep.add_argument("--testbed", choices=["simics", "ec2"], default="simics")
    rep.add_argument("--placement", choices=["rpr", "contiguous"], default="rpr")
    rep.add_argument("--json", action="store_true", help="machine-readable output")
    rep.set_defaults(func=_cmd_repair)

    cmp_ = sub.add_parser("compare", help="run every scheme on one scenario")
    cmp_.add_argument("--code", default="12,4")
    cmp_.add_argument("--fail", default="1")
    cmp_.add_argument("--testbed", choices=["simics", "ec2"], default="simics")
    cmp_.add_argument("--placement", choices=["rpr", "contiguous"], default="rpr")
    cmp_.add_argument("--json", action="store_true", help="machine-readable output")
    cmp_.set_defaults(func=_cmd_compare)

    fl = sub.add_parser(
        "faults",
        help="simulate a repair under injected faults (node death, stragglers, loss)",
    )
    fl.add_argument("--code", default="8,3", help="RS code as 'n,k'")
    fl.add_argument("--fail", default="2", help="failed block ids, comma-separated")
    fl.add_argument("--scheme", choices=sorted(_SCHEMES), default="rpr")
    fl.add_argument("--testbed", choices=["simics", "ec2"], default="simics")
    fl.add_argument("--placement", choices=["rpr", "contiguous"], default="rpr")
    fl.add_argument(
        "--kill",
        default="",
        help="explicit node deaths as node@fraction of the fault-free "
        "makespan, comma-separated (e.g. '12@0.7,6@0.3')",
    )
    fl.add_argument(
        "--slow",
        default="",
        help="stragglers as node@slowdown-factor, comma-separated (e.g. '4@3.0')",
    )
    fl.add_argument(
        "--loss-prob", type=float, default=0.0,
        help="per-transfer loss probability (seeded, deterministic)",
    )
    fl.add_argument(
        "--deaths", type=int, default=1,
        help="random node deaths when no --kill/--slow/--loss-prob is given",
    )
    fl.add_argument("--seed", type=int, default=0, help="fault-plan seed")
    fl.add_argument(
        "--max-attempts", type=int, default=3,
        help="re-planning budget before the repair is declared irrecoverable",
    )
    fl.add_argument(
        "--verify", action="store_true",
        help="replay the scenario on a real byte store and check the "
        "recovered payloads equal the lost originals",
    )
    fl.add_argument("--json", action="store_true", help="machine-readable output")
    fl.set_defaults(func=_cmd_faults)

    tl = sub.add_parser("timeline", help="render a repair's schedule as ASCII")
    tl.add_argument("--code", default="6,2")
    tl.add_argument("--fail", default="1")
    tl.add_argument("--scheme", choices=sorted(_SCHEMES), default="rpr")
    tl.add_argument("--testbed", choices=["simics", "ec2"], default="simics")
    tl.add_argument("--placement", choices=["rpr", "contiguous"], default="rpr")
    tl.add_argument("--width", type=int, default=64)
    tl.add_argument(
        "--json", action="store_true",
        help="emit the per-resource intervals instead of the ASCII chart",
    )
    tl.set_defaults(func=_cmd_timeline)

    tc = sub.add_parser(
        "trace",
        help="per-rack utilization + critical-path bottleneck report for one repair",
    )
    tc.add_argument("--code", default="6,4")
    tc.add_argument("--fail", default="1")
    tc.add_argument("--scheme", choices=sorted(_SCHEMES), default="rpr")
    tc.add_argument("--testbed", choices=["simics", "ec2"], default="simics")
    tc.add_argument("--placement", choices=["rpr", "contiguous"], default="rpr")
    tc.add_argument("--gantt", action="store_true", help="append the utilization Gantt chart")
    tc.add_argument("--width", type=int, default=64, help="Gantt chart width")
    tc.add_argument(
        "--kill", default="",
        help="trace a degraded repair: node deaths as node@fraction of the "
        "fault-free makespan, comma-separated (e.g. '4@0.5')",
    )
    tc.add_argument(
        "--slow", default="",
        help="stragglers as node@slowdown-factor, comma-separated",
    )
    tc.add_argument(
        "--loss-prob", type=float, default=0.0,
        help="per-transfer loss probability (seeded, deterministic)",
    )
    tc.add_argument(
        "--deaths", type=int, default=0,
        help="random node deaths (0 keeps the fault-free path)",
    )
    tc.add_argument("--seed", type=int, default=0, help="fault-plan seed")
    tc.add_argument(
        "--max-attempts", type=int, default=3,
        help="re-planning budget for the faulted engine",
    )
    tc.add_argument(
        "--attempt", type=int, default=-1,
        help="which attempt of a degraded repair to trace (default: final)",
    )
    tc.add_argument("--json", action="store_true", help="emit the trace as one JSON object")
    tc.add_argument("--jsonl", action="store_true", help="emit the trace as JSON lines")
    tc.set_defaults(func=_cmd_trace)

    te = sub.add_parser(
        "telemetry",
        help="span telemetry: report one repair, diff sim vs live, or export "
        "Chrome/JSONL traces",
    )
    te.add_argument("mode", choices=["report", "diff", "export", "assemble"])
    te.add_argument(
        "paths", nargs="*",
        help="assemble: telemetry JSONL files to stitch (see also --dir)",
    )
    te.add_argument(
        "--dir", default="",
        help="assemble: store state directory to glob telemetry-*.jsonl from",
    )
    te.add_argument("--code", default="6,3", help="RS code as 'n,k'")
    te.add_argument("--fail", default="1", help="failed block ids, comma-separated")
    te.add_argument("--scheme", choices=sorted(_SCHEMES), default="rpr")
    te.add_argument("--testbed", choices=["simics", "ec2"], default="simics")
    te.add_argument("--placement", choices=["rpr", "contiguous"], default="rpr")
    te.add_argument(
        "--transport", choices=["memory", "tcp"], default="memory",
        help="diff/export: live-runtime transport",
    )
    te.add_argument(
        "--block-size", type=int, default=64 * 1024,
        help="diff/export: payload bytes per block for the live run",
    )
    te.add_argument(
        "--timeout", type=float, default=120.0,
        help="diff/export: wall-clock budget for the live run",
    )
    te.add_argument("--seed", type=int, default=0, help="stripe payload seed")
    te.add_argument(
        "--top", type=int, default=8,
        help="rows shown for slowest ops / worst divergers",
    )
    te.add_argument(
        "--source", choices=["sim", "live", "both"], default="sim",
        help="export: which interpreter's trace (both = side-by-side Chrome trace)",
    )
    te.add_argument(
        "--format", choices=["chrome", "jsonl"], default="chrome",
        help="export format: Chrome trace-event JSON (Perfetto) or canonical JSONL",
    )
    te.add_argument("--out", default="", help="export: output path (default stdout)")
    te.add_argument("--json", action="store_true", help="machine-readable output")
    te.set_defaults(func=_cmd_telemetry)

    rb = sub.add_parser("rebuild", help="rebuild everything a failed node held")
    rb.add_argument("--code", default="6,2")
    rb.add_argument("--stripes", type=int, default=30)
    rb.add_argument("--node", type=int, default=0)
    rb.add_argument("--scheme", choices=sorted(_SCHEMES), default="rpr")
    rb.add_argument("--testbed", choices=["simics", "ec2"], default="simics")
    rb.add_argument("--mode", choices=["parallel", "sequential"], default="parallel")
    rb.add_argument("--rebuild", choices=["replacement", "scatter"], default="scatter")
    rb.add_argument("--balance", action="store_true")
    rb.add_argument("--json", action="store_true", help="machine-readable output")
    rb.set_defaults(func=_cmd_rebuild)

    du = sub.add_parser("durability", help="MTTDL per scheme from measured repair times")
    du.add_argument("--code", default="12,4")
    du.add_argument("--testbed", choices=["simics", "ec2"], default="simics")
    du.add_argument(
        "--block-mtbf-years",
        type=float,
        default=4.0,
        help="mean time between failures per block, in years",
    )
    du.add_argument("--json", action="store_true", help="machine-readable output")
    du.set_defaults(func=_cmd_durability)

    lv = sub.add_parser(
        "live",
        help="execute repairs on the live asyncio runtime, cross-validated "
        "against the simulator",
    )
    lv.add_argument("--code", default="6,3", help="RS code as 'n,k'")
    lv.add_argument("--fail", default="1", help="failed block ids, comma-separated")
    lv.add_argument(
        "--schemes", default="",
        help="comma-separated subset of schemes (default: all applicable)",
    )
    lv.add_argument(
        "--transport", choices=["memory", "tcp"], default="memory",
        help="in-process streams or real localhost sockets",
    )
    lv.add_argument(
        "--block-size", type=int, default=64 * 1024,
        help="payload bytes per block (scaled-down testbed default: 64 KiB)",
    )
    lv.add_argument(
        "--validate", action="store_true",
        help="exit nonzero unless bytes match and measured ordering agrees "
        "with the simulator",
    )
    lv.add_argument(
        "--timeout", type=float, default=120.0,
        help="hard wall-clock budget per scheme (hangs fail, not stall)",
    )
    lv.add_argument("--seed", type=int, default=0, help="stripe payload seed")
    lv.add_argument("--json", action="store_true", help="machine-readable report")
    lv.set_defaults(func=_cmd_live)

    st = sub.add_parser(
        "store",
        help="run the multi-process object store service "
        "(coordinator + daemons as real subprocesses)",
    )
    st.add_argument(
        "--dir", default=".rpr-store",
        help="state directory the cluster is rooted at (default: .rpr-store)",
    )
    stsub = st.add_subparsers(dest="store_command", required=True)
    st_up = stsub.add_parser("up", help="launch coordinator + one daemon per node")
    st_up.add_argument("--racks", type=int, default=3)
    st_up.add_argument("--per-rack", type=int, default=2)
    st_up.add_argument("--code", default="3,2", help="RS code as 'n,k'")
    st_up.add_argument("--scheme", choices=sorted(_SCHEMES), default="rpr")
    st_up.add_argument(
        "--block-size", type=int, default=64 * 1024,
        help="bytes per stored block",
    )
    st_up.add_argument(
        "--suspect-after", type=float, default=2.0,
        help="seconds of heartbeat silence before a node is declared dead",
    )
    st_up.add_argument("--heartbeat-interval", type=float, default=0.5)
    st_up.add_argument(
        "--link-rate", type=float, default=None, metavar="BYTES_PER_S",
        help="shape every daemon NIC to this rate with a QoS "
        "foreground/repair split (default: unshaped)",
    )
    st_up.add_argument(
        "--repair-share", type=float, default=0.5,
        help="fraction of --link-rate guaranteed to repair traffic",
    )
    stsub.add_parser("down", help="stop every process and clear the state dir")
    st_status = stsub.add_parser(
        "status", help="process liveness + per-daemon heartbeat age / "
        "repairs in flight + service-side cluster status"
    )
    st_status.add_argument("--json", action="store_true", help="machine-readable output")
    st_stats = stsub.add_parser(
        "stats", help="scrape the live metrics plane (coordinator + every daemon)"
    )
    st_stats.add_argument(
        "--json", action="store_true", help="raw snapshots as one JSON object"
    )
    st_stats.add_argument(
        "--prom", action="store_true",
        help="Prometheus text exposition (counters, gauges, latency histograms)",
    )
    st_kill = stsub.add_parser(
        "kill", help="SIGKILL one daemon so the coordinator must repair"
    )
    st_kill.add_argument("node", type=int, help="node id of the daemon to kill")
    st_put = stsub.add_parser("put", help="store an object (striped + encoded)")
    st_put.add_argument("name")
    st_put.add_argument("file", help="path to read, or '-' for stdin")
    st_get = stsub.add_parser("get", help="fetch an object back")
    st_get.add_argument("name")
    st_get.add_argument("--out", default=None, help="write here instead of stdout")
    st_get.add_argument(
        "--degraded",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="reconstruct blocks on dead nodes client-side instead of "
        "failing (--no-degraded restores the strict behaviour)",
    )
    st_get.add_argument(
        "--json", action="store_true",
        help="print the read report (degraded flag + reconstructed "
        "blocks) instead of raw bytes; combine with --out for the data",
    )
    st_rm = stsub.add_parser("rm", help="delete an object")
    st_rm.add_argument("name")
    stsub.add_parser("ls", help="list stored objects")
    st.set_defaults(func=_cmd_store)

    tp = sub.add_parser(
        "top", help="refreshing terminal dashboard over a running store cluster"
    )
    tp.add_argument(
        "--dir", default=".rpr-store",
        help="state directory of the cluster (default: .rpr-store)",
    )
    tp.add_argument(
        "--interval", type=float, default=2.0, help="seconds between frames"
    )
    tp.add_argument(
        "--iterations", type=int, default=0,
        help="stop after this many frames (0 = run until Ctrl-C)",
    )
    tp.set_defaults(func=_cmd_top)

    qs = sub.add_parser(
        "qos",
        help="replay a Zipfian user workload against an in-process store "
        "cluster, optionally killing a daemon mid-run",
    )
    qs.add_argument("--racks", type=int, default=3)
    qs.add_argument("--per-rack", type=int, default=2)
    qs.add_argument("--code", default="3,2", help="RS code as 'n,k'")
    qs.add_argument("--scheme", choices=sorted(_SCHEMES), default="rpr")
    qs.add_argument("--block-size", type=int, default=16 * 1024)
    qs.add_argument("--objects", type=int, default=8, help="working-set size")
    qs.add_argument("--requests", type=int, default=100)
    qs.add_argument("--object-bytes", type=int, default=3 * 16 * 1024)
    qs.add_argument("--rate", type=float, default=200.0,
                    help="open-loop arrival rate (req/s) in the trace")
    qs.add_argument("--zipf-s", type=float, default=1.0)
    qs.add_argument("--get-fraction", type=float, default=0.9)
    qs.add_argument("--mode", choices=("closed", "open"), default="closed")
    qs.add_argument("--concurrency", type=int, default=4,
                    help="closed-loop client count")
    qs.add_argument("--time-scale", type=float, default=1.0,
                    help="open-loop trace-time multiplier")
    qs.add_argument(
        "--link-rate", type=float, default=None, metavar="BYTES_PER_S",
        help="shape daemon NICs with the QoS split (default: unshaped)",
    )
    qs.add_argument("--repair-share", type=float, default=0.5)
    qs.add_argument(
        "--kill-at", type=float, default=None, metavar="SECONDS",
        help="kill the daemon holding stripe 0 block 0 this long into "
        "the replay",
    )
    qs.add_argument("--seed", type=int, default=0)
    qs.add_argument("--json", action="store_true", help="machine-readable output")
    qs.set_defaults(func=_cmd_qos)

    pf = sub.add_parser(
        "perf", help="time the engine and coding hot paths, write BENCH_*.json"
    )
    pf.add_argument(
        "--quick", action="store_true", help="CI-sized run (fewer reps, smaller sizes)"
    )
    pf.add_argument(
        "--out-dir",
        default=".",
        help="where to write BENCH_engine.json / BENCH_coding.json",
    )
    pf.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="parallel-codec worker count to measure (default: 1/2/4/8 curve)",
    )
    pf.set_defaults(func=_cmd_perf)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
