"""Data-center model: topology, stripe placement, and link bandwidths."""

from .bandwidth import (
    SIMICS_BANDWIDTH,
    BandwidthModel,
    HierarchicalBandwidth,
    MatrixBandwidth,
    gbps,
    mbps,
)
from .placement import (
    ContiguousPlacement,
    FlatPlacement,
    Placement,
    PlacementError,
    RPRPlacement,
)
from .topology import Cluster, Node, Rack

__all__ = [
    "BandwidthModel",
    "Cluster",
    "ContiguousPlacement",
    "FlatPlacement",
    "HierarchicalBandwidth",
    "MatrixBandwidth",
    "Node",
    "Placement",
    "PlacementError",
    "RPRPlacement",
    "Rack",
    "SIMICS_BANDWIDTH",
    "gbps",
    "mbps",
]
