"""Link bandwidth models.

The simulator asks one question: *at what rate can node A stream to node
B?*  Two implementations cover the paper's two testbeds:

* :class:`HierarchicalBandwidth` — uniform intra-rack vs cross-rack rates,
  the Simics + wondershaper setup (1 Gb/s inside a rack, 0.1 Gb/s across,
  §5.1).
* :class:`MatrixBandwidth` — per-rack-pair rates, used to drive the EC2
  evaluation with the measured Table 1 region bandwidths (§5.2).

Rates are bytes/second.  Helpers convert from the paper's Gb/s / Mbps
figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from .topology import Cluster

__all__ = [
    "gbps",
    "mbps",
    "BandwidthModel",
    "HierarchicalBandwidth",
    "MatrixBandwidth",
    "SIMICS_BANDWIDTH",
]


def gbps(x: float) -> float:
    """Gigabits/second → bytes/second."""
    return x * 1e9 / 8


def mbps(x: float) -> float:
    """Megabits/second → bytes/second."""
    return x * 1e6 / 8


class BandwidthModel:
    """Interface: stream rate (and latency) between two cluster nodes."""

    def rate(self, cluster: Cluster, src: int, dst: int) -> float:
        """Bytes/second for a single stream from ``src`` to ``dst``."""
        raise NotImplementedError

    def latency(self, cluster: Cluster, src: int, dst: int) -> float:
        """Per-transfer setup/propagation delay in seconds.

        Zero by default (the paper's timestep model has none); the
        geo-distributed extension sets cross-region delays, which matter
        once blocks shrink enough that transfer time stops dominating.
        """
        return 0.0

    def intra_cross_ratio(self, cluster: Cluster) -> float:
        """Representative intra/cross rate ratio (analysis convenience)."""
        raise NotImplementedError


@dataclass(frozen=True)
class HierarchicalBandwidth(BandwidthModel):
    """Uniform two-level model: one intra-rack rate, one cross-rack rate.

    Attributes
    ----------
    intra:
        Bytes/second between nodes under the same TOR switch.
    cross:
        Bytes/second between nodes in different racks (through the
        aggregation switch).
    intra_latency / cross_latency:
        Optional per-transfer setup delays in seconds (default 0, the
        paper's pure-throughput model).
    """

    intra: float
    cross: float
    intra_latency: float = 0.0
    cross_latency: float = 0.0

    def __post_init__(self) -> None:
        if self.intra <= 0 or self.cross <= 0:
            raise ValueError("bandwidths must be positive")
        if self.cross > self.intra:
            raise ValueError(
                "cross-rack bandwidth exceeding intra-rack bandwidth is "
                "outside the model's assumptions"
            )
        if self.intra_latency < 0 or self.cross_latency < 0:
            raise ValueError("latencies must be non-negative")

    def rate(self, cluster: Cluster, src: int, dst: int) -> float:
        if src == dst:
            raise ValueError(f"no self-transfer: node {src}")
        return self.intra if cluster.same_rack(src, dst) else self.cross

    def latency(self, cluster: Cluster, src: int, dst: int) -> float:
        if src == dst:
            raise ValueError(f"no self-transfer: node {src}")
        return (
            self.intra_latency
            if cluster.same_rack(src, dst)
            else self.cross_latency
        )

    def intra_cross_ratio(self, cluster: Cluster) -> float:
        return self.intra / self.cross


@dataclass(frozen=True)
class MatrixBandwidth(BandwidthModel):
    """Per-rack-pair bandwidth (the EC2 geo-distributed model).

    Attributes
    ----------
    pair_rate:
        Mapping from unordered rack pair (as a frozenset-friendly sorted
        tuple ``(min, max)``) to bytes/second.  Diagonal entries
        ``(r, r)`` give the intra-rack rate of rack ``r``.
    pair_latency:
        Optional mapping with the same keys giving per-transfer delays in
        seconds; absent pairs default to zero.
    """

    pair_rate: Mapping[tuple[int, int], float]
    pair_latency: Mapping[tuple[int, int], float] | None = None

    def __post_init__(self) -> None:
        for pair, value in self.pair_rate.items():
            if value <= 0:
                raise ValueError(f"bandwidth for {pair} must be positive")
            if pair != (min(pair), max(pair)):
                raise ValueError(f"pair {pair} must be stored as (min, max)")
        if self.pair_latency is not None:
            for pair, value in self.pair_latency.items():
                if value < 0:
                    raise ValueError(f"latency for {pair} must be non-negative")
                if pair != (min(pair), max(pair)):
                    raise ValueError(f"pair {pair} must be stored as (min, max)")

    def _key(self, cluster: Cluster, src: int, dst: int) -> tuple[int, int]:
        if src == dst:
            raise ValueError(f"no self-transfer: node {src}")
        a, b = cluster.rack_of(src), cluster.rack_of(dst)
        return (min(a, b), max(a, b))

    def rate(self, cluster: Cluster, src: int, dst: int) -> float:
        key = self._key(cluster, src, dst)
        try:
            return self.pair_rate[key]
        except KeyError:
            raise KeyError(f"no bandwidth entry for rack pair {key}") from None

    def latency(self, cluster: Cluster, src: int, dst: int) -> float:
        key = self._key(cluster, src, dst)
        if self.pair_latency is None:
            return 0.0
        return self.pair_latency.get(key, 0.0)

    def intra_cross_ratio(self, cluster: Cluster) -> float:
        intra = [v for (a, b), v in self.pair_rate.items() if a == b]
        cross = [v for (a, b), v in self.pair_rate.items() if a != b]
        if not intra or not cross:
            raise ValueError("matrix lacks intra or cross entries")
        return (sum(intra) / len(intra)) / (sum(cross) / len(cross))


#: The Simics testbed model (§5.1): node NICs at 1 Gb/s are treated as the
#: intra-rack rate; wondershaper caps cross-rack pairs at 0.1 Gb/s.
SIMICS_BANDWIDTH = HierarchicalBandwidth(intra=gbps(1.0), cross=gbps(0.1))
