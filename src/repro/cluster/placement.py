"""Stripe placement policies.

A :class:`Placement` maps every block of one stripe to a distinct node.
Three policies are provided, mirroring the paper's §2.2–§2.3 and §3.3:

* :class:`FlatPlacement` — the classic one-block-per-rack layout that
  maximises rack fault tolerance but also cross-rack repair traffic.
* :class:`ContiguousPlacement` — the paper's baseline: up to ``k`` blocks
  of a stripe per rack (single-rack fault tolerance), racks filled in
  block order so parities end up grouped in the final rack(s), exactly as
  in Figures 3–5.
* :class:`RPRPlacement` — §3.3 pre-placement: contiguous, then ``P0`` is
  swapped with the last data block so ``P0`` shares a rack with data
  blocks only, enabling the eq. (6) XOR-only repair path without extra
  cross-rack traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from .topology import Cluster

__all__ = [
    "Placement",
    "PlacementError",
    "FlatPlacement",
    "ContiguousPlacement",
    "RPRPlacement",
]


class PlacementError(ValueError):
    """Raised when a stripe cannot be placed on a cluster under a policy."""


@dataclass(frozen=True)
class Placement:
    """Immutable block→node assignment for one stripe.

    Attributes
    ----------
    n, k:
        The stripe's code parameters (data and parity counts).
    block_to_node:
        Mapping from block id (``0..n+k-1``) to node id.
    """

    n: int
    k: int
    block_to_node: Mapping[int, int]

    def __post_init__(self) -> None:
        width = self.n + self.k
        if set(self.block_to_node) != set(range(width)):
            raise PlacementError(
                f"placement must cover exactly blocks 0..{width - 1}"
            )
        nodes = list(self.block_to_node.values())
        if len(set(nodes)) != len(nodes):
            raise PlacementError("two blocks placed on the same node")

    @property
    def width(self) -> int:
        return self.n + self.k

    def node_of(self, block_id: int) -> int:
        try:
            return self.block_to_node[block_id]
        except KeyError:
            raise PlacementError(f"block {block_id} not in placement") from None

    def block_at(self, node_id: int) -> int | None:
        """The block stored on ``node_id``, or None if the node is spare."""
        for block, node in self.block_to_node.items():
            if node == node_id:
                return block
        return None

    def rack_of_block(self, cluster: Cluster, block_id: int) -> int:
        return cluster.rack_of(self.node_of(block_id))

    def blocks_in_rack(self, cluster: Cluster, rack_id: int) -> list[int]:
        return sorted(
            b
            for b, node in self.block_to_node.items()
            if cluster.rack_of(node) == rack_id
        )

    def racks_used(self, cluster: Cluster) -> list[int]:
        return sorted({cluster.rack_of(node) for node in self.block_to_node.values()})

    def rack_histogram(self, cluster: Cluster) -> dict[int, int]:
        """Blocks per rack — used to check fault-tolerance invariants."""
        hist: dict[int, int] = {}
        for node in self.block_to_node.values():
            rack = cluster.rack_of(node)
            hist[rack] = hist.get(rack, 0) + 1
        return hist

    def spare_nodes_in_rack(self, cluster: Cluster, rack_id: int) -> list[int]:
        """Nodes in ``rack_id`` not holding any block of this stripe."""
        used = set(self.block_to_node.values())
        return [nid for nid in cluster.nodes_in_rack(rack_id) if nid not in used]

    def single_rack_fault_tolerant(self, cluster: Cluster) -> bool:
        """True when losing any one rack loses at most ``k`` blocks (§2.3)."""
        return all(count <= self.k for count in self.rack_histogram(cluster).values())

    def group_of_blocks(self, cluster: Cluster) -> dict[int, int]:
        """block id -> rack id, the grouping partial decoding slices by."""
        return {
            block: cluster.rack_of(node)
            for block, node in self.block_to_node.items()
        }


def _fill_racks(cluster: Cluster, order: list[int], per_rack: int, n: int, k: int) -> Placement:
    """Assign blocks (in ``order``) to racks, ``per_rack`` blocks per rack."""
    block_to_node: dict[int, int] = {}
    rack_ids = cluster.rack_ids()
    needed_racks = -(-len(order) // per_rack)  # ceil division
    if needed_racks > len(rack_ids):
        raise PlacementError(
            f"stripe of {len(order)} blocks at {per_rack}/rack needs "
            f"{needed_racks} racks; cluster has {len(rack_ids)}"
        )
    idx = 0
    for rack_pos in range(needed_racks):
        rack_id = rack_ids[rack_pos]
        nodes = cluster.nodes_in_rack(rack_id)
        chunk = order[idx : idx + per_rack]
        if len(nodes) < len(chunk):
            raise PlacementError(
                f"rack {rack_id} has {len(nodes)} nodes, needs {len(chunk)}"
            )
        for offset, block in enumerate(chunk):
            block_to_node[block] = nodes[offset]
        idx += per_rack
    return Placement(n=n, k=k, block_to_node=block_to_node)


class FlatPlacement:
    """One block per rack — the classic layout of §2.2 (q = n + k racks)."""

    def place(self, cluster: Cluster, n: int, k: int) -> Placement:
        return _fill_racks(cluster, list(range(n + k)), per_rack=1, n=n, k=k)


class ContiguousPlacement:
    """Up to ``per_rack`` blocks of a stripe per rack, in block-id order.

    ``per_rack`` defaults to ``k``, the maximum allowed under single-rack
    fault tolerance (§2.3); parities fall in the trailing rack(s), matching
    the paper's running examples.
    """

    def __init__(self, per_rack: int | None = None) -> None:
        if per_rack is not None and per_rack < 1:
            raise PlacementError(f"per_rack must be >= 1, got {per_rack}")
        self.per_rack = per_rack

    def _resolve_per_rack(self, k: int) -> int:
        per_rack = self.per_rack if self.per_rack is not None else k
        if per_rack < 1:
            raise PlacementError(
                "per_rack resolved to 0; codes with k=0 need an explicit per_rack"
            )
        return per_rack

    def place(self, cluster: Cluster, n: int, k: int) -> Placement:
        per_rack = self._resolve_per_rack(k)
        if per_rack > k > 0:
            raise PlacementError(
                f"per_rack={per_rack} exceeds k={k}: placement would not be "
                f"single-rack fault tolerant"
            )
        return _fill_racks(cluster, list(range(n + k)), per_rack, n, k)


class RPRPlacement(ContiguousPlacement):
    """§3.3 pre-placement: contiguous layout with ``P0`` beside data blocks.

    After the contiguous fill, if ``P0``'s rack would contain another
    parity (which happens exactly when ``k`` divides ``n``), ``P0`` is
    swapped with the last data block, so its rack holds data blocks plus
    ``P0`` — the condition eq. (6) exploits.  The paper's (4,2) example
    (swapping a data block into the parity rack) produces the same rack
    contents up to labels.

    The swap changes no rack's block *count*, so fault tolerance, load
    balance and I/O are untouched (§3.3's "no negative effect").
    """

    def place(self, cluster: Cluster, n: int, k: int) -> Placement:
        per_rack = self._resolve_per_rack(k)
        if per_rack > k > 0:
            raise PlacementError(
                f"per_rack={per_rack} exceeds k={k}: placement would not be "
                f"single-rack fault tolerant"
            )
        order = list(range(n + k))
        if k > 0 and n >= 1:
            p0_pos = n  # position of P0 in the contiguous order
            rack_start = (p0_pos // per_rack) * per_rack
            rack_slots = order[rack_start : rack_start + per_rack]
            other_parities = [b for b in rack_slots if b > n]
            if other_parities and n - 1 >= 0:
                # Swap P0 with the last data block: P0 joins an all-data rack.
                i, j = order.index(n), order.index(n - 1)
                order[i], order[j] = order[j], order[i]
        return _fill_racks(cluster, order, per_rack, n, k)
