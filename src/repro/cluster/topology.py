"""Data-center topology: nodes, racks, and the TOR/aggregation structure.

Models the architecture of the paper's Figure 2: storage nodes grouped
into racks, each rack wired through a top-of-rack (TOR) switch, racks
joined by an aggregation switch.  The topology is purely structural —
link capacities live in :mod:`repro.cluster.bandwidth` so the same
topology can be driven with the Simics-style uniform model or the EC2
per-region matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = ["Node", "Rack", "Cluster"]


@dataclass(frozen=True)
class Node:
    """One storage node (server).

    Attributes
    ----------
    node_id:
        Globally unique integer id within the cluster.
    rack_id:
        Id of the rack the node lives in.
    name:
        Optional human-readable label (used by the EC2 model for region
        names like ``ohio-0``).
    """

    node_id: int
    rack_id: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.node_id < 0 or self.rack_id < 0:
            raise ValueError(f"ids must be non-negative: {self}")


@dataclass
class Rack:
    """A rack: a TOR switch plus the nodes attached to it."""

    rack_id: int
    nodes: list[Node] = field(default_factory=list)
    name: str = ""

    def __post_init__(self) -> None:
        if self.rack_id < 0:
            raise ValueError(f"rack_id must be non-negative, got {self.rack_id}")
        for node in self.nodes:
            if node.rack_id != self.rack_id:
                raise ValueError(
                    f"node {node.node_id} claims rack {node.rack_id}, "
                    f"placed in rack {self.rack_id}"
                )

    @property
    def size(self) -> int:
        return len(self.nodes)

    def node_ids(self) -> list[int]:
        return [n.node_id for n in self.nodes]


class Cluster:
    """An immutable-after-construction collection of racks.

    Provides the lookups every other layer relies on: node-by-id,
    rack-of-node, and same-rack tests (which decide whether a transfer
    crosses the aggregation switch).
    """

    def __init__(self, racks: Iterable[Rack]) -> None:
        self._racks: dict[int, Rack] = {}
        self._nodes: dict[int, Node] = {}
        for rack in racks:
            if rack.rack_id in self._racks:
                raise ValueError(f"duplicate rack id {rack.rack_id}")
            self._racks[rack.rack_id] = rack
            for node in rack.nodes:
                if node.node_id in self._nodes:
                    raise ValueError(f"duplicate node id {node.node_id}")
                self._nodes[node.node_id] = node
        if not self._racks:
            raise ValueError("cluster needs at least one rack")

    # -- construction helpers ------------------------------------------------

    @classmethod
    def homogeneous(cls, num_racks: int, nodes_per_rack: int) -> "Cluster":
        """Build ``num_racks`` racks of ``nodes_per_rack`` nodes each.

        Node ids are assigned rack-major: rack ``r`` holds nodes
        ``r * nodes_per_rack .. (r + 1) * nodes_per_rack - 1``.
        """
        if num_racks < 1 or nodes_per_rack < 1:
            raise ValueError(
                f"need at least one rack and one node per rack, got "
                f"{num_racks} x {nodes_per_rack}"
            )
        racks = []
        next_id = 0
        for r in range(num_racks):
            nodes = [
                Node(node_id=next_id + i, rack_id=r, name=f"r{r}n{i}")
                for i in range(nodes_per_rack)
            ]
            next_id += nodes_per_rack
            racks.append(Rack(rack_id=r, nodes=nodes, name=f"rack-{r}"))
        return cls(racks)

    # -- lookups ---------------------------------------------------------------

    @property
    def num_racks(self) -> int:
        return len(self._racks)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    def racks(self) -> Iterator[Rack]:
        return iter(self._racks.values())

    def rack_ids(self) -> list[int]:
        return sorted(self._racks)

    def node_ids(self) -> list[int]:
        return sorted(self._nodes)

    def rack(self, rack_id: int) -> Rack:
        try:
            return self._racks[rack_id]
        except KeyError:
            raise KeyError(f"no rack {rack_id} in cluster") from None

    def node(self, node_id: int) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise KeyError(f"no node {node_id} in cluster") from None

    def rack_of(self, node_id: int) -> int:
        return self.node(node_id).rack_id

    def same_rack(self, a: int, b: int) -> bool:
        """True when a transfer between ``a`` and ``b`` stays below the TOR."""
        return self.rack_of(a) == self.rack_of(b)

    def nodes_in_rack(self, rack_id: int) -> list[int]:
        return self.rack(rack_id).node_ids()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = [r.size for r in self._racks.values()]
        return f"Cluster(racks={self.num_racks}, nodes={self.num_nodes}, sizes={sizes})"
