"""EC2 geo-distributed testbed substitute (paper §5.2, Table 1)."""

from .model import EC2Environment, build_ec2_environment
from .regions import (
    GEO_LATENCY_S,
    REGIONS,
    TABLE1_MBPS,
    average_cross_mbps,
    average_intra_mbps,
    region_index,
    table1_bandwidth,
)

__all__ = [
    "EC2Environment",
    "GEO_LATENCY_S",
    "REGIONS",
    "TABLE1_MBPS",
    "average_cross_mbps",
    "average_intra_mbps",
    "build_ec2_environment",
    "region_index",
    "table1_bandwidth",
]
