"""EC2 environment builder: region-per-rack clusters with Table 1 links.

Reproduces the §5.2 setup: t2.micro instances across five continents,
regions acting as racks, and the measured bandwidth matrix.  The decode
cost model is :data:`repro.rs.EC2_DECODE` — ~20 s for a traditional
(matrix-building) decode of a 256 MB block vs ~2.5 s for the optimised
XOR path, the gap that widens RPR's lead over CAR in Figure 12.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster import Cluster, ContiguousPlacement, MatrixBandwidth, Placement, RPRPlacement
from ..rs import EC2_DECODE, MB, DecodeCostModel, RSCode, get_code
from .regions import REGIONS, table1_bandwidth

__all__ = ["EC2Environment", "build_ec2_environment"]


@dataclass(frozen=True)
class EC2Environment:
    """Everything needed to simulate a repair on the EC2 substitute."""

    code: RSCode
    cluster: Cluster
    placement: Placement
    bandwidth: MatrixBandwidth
    cost_model: DecodeCostModel
    block_size: int


def build_ec2_environment(
    n: int,
    k: int,
    placement: str = "rpr",
    block_size: int = 256 * MB,
    instances_per_region: int | None = None,
) -> EC2Environment:
    """Build the five-region environment for an RS(n, k) stripe.

    Parameters
    ----------
    n, k:
        Code parameters; the stripe must fit in five regions at ``k``
        blocks per region (all the paper's configurations do).
    placement:
        ``"rpr"`` (pre-placement) or ``"contiguous"`` (baseline layout).
    block_size:
        Bytes per block (paper: 256 MB).
    instances_per_region:
        VMs per region; defaults to ``2k`` so any ``k`` same-region
        failures still find spare recovery instances.

    Raises
    ------
    ValueError
        If the stripe needs more than five regions.
    """
    code = get_code(n, k)
    racks_needed = -(-(n + k) // k)
    if racks_needed > len(REGIONS):
        raise ValueError(
            f"RS({n},{k}) needs {racks_needed} racks at {k}/rack; the EC2 "
            f"testbed has only {len(REGIONS)} regions"
        )
    per_region = instances_per_region if instances_per_region is not None else 2 * k
    cluster = Cluster.homogeneous(len(REGIONS), per_region)
    policy = RPRPlacement() if placement == "rpr" else ContiguousPlacement()
    return EC2Environment(
        code=code,
        cluster=cluster,
        placement=policy.place(cluster, n, k),
        bandwidth=table1_bandwidth(),
        cost_model=EC2_DECODE,
        block_size=block_size,
    )
