"""The paper's Table 1: measured EC2 inter-/intra-region bandwidths.

Five regions on five continents stand in for racks (§5.2): machines in
the same region ≈ same rack; machines in different regions ≈ different
racks.  The matrix below is the paper's own measurement in Mbps; the
average cross-region rate is 53.03 Mbps and the average intra-region
rate 600.97 Mbps — a ratio of ~11.3, close to the assumed 10:1.

Since we cannot launch EC2 instances, these numbers *are* the substitute
testbed: they parameterise a :class:`repro.cluster.MatrixBandwidth` over
a region-per-rack cluster, preserving exactly what Figures 12–14
exercise (bandwidth heterogeneity plus the slow t2.micro decode).
"""

from __future__ import annotations

from ..cluster import MatrixBandwidth, mbps

__all__ = [
    "GEO_LATENCY_S",
    "REGIONS",
    "TABLE1_MBPS",
    "region_index",
    "table1_bandwidth",
    "average_cross_mbps",
    "average_intra_mbps",
]

#: Region names in Table 1's row/column order.
REGIONS: tuple[str, ...] = ("ohio", "tokyo", "paris", "sao-paulo", "sydney")

#: Upper-triangular (incl. diagonal) Mbps matrix exactly as printed in
#: Table 1.  Diagonal = intra-region; off-diagonal = inter-region.
TABLE1_MBPS: dict[tuple[str, str], float] = {
    ("ohio", "ohio"): 583.39,
    ("ohio", "tokyo"): 51.798,
    ("ohio", "paris"): 59.281,
    ("ohio", "sao-paulo"): 67.613,
    ("ohio", "sydney"): 41.4,
    ("tokyo", "tokyo"): 583.26,
    ("tokyo", "paris"): 45.56,
    ("tokyo", "sao-paulo"): 41.605,
    ("tokyo", "sydney"): 91.21,
    ("paris", "paris"): 641.403,
    ("paris", "sao-paulo"): 56.57,
    ("paris", "sydney"): 40.79,
    ("sao-paulo", "sao-paulo"): 631.416,
    ("sao-paulo", "sydney"): 34.44,
    ("sydney", "sydney"): 565.39,
}


#: Synthetic one-way latencies (seconds) between regions.  NOT from the
#: paper (Table 1 reports bandwidth only); values are plausible public
#: inter-region RTT/2 figures, provided for the latency-sensitivity
#: extension.  At the paper's 256 MB blocks they are negligible (~0.1 s
#: against ~40 s transfers); they matter for small-block ablations.
GEO_LATENCY_S: dict[tuple[str, str], float] = {
    ("ohio", "ohio"): 0.0005,
    ("ohio", "tokyo"): 0.080,
    ("ohio", "paris"): 0.045,
    ("ohio", "sao-paulo"): 0.065,
    ("ohio", "sydney"): 0.100,
    ("tokyo", "tokyo"): 0.0005,
    ("tokyo", "paris"): 0.110,
    ("tokyo", "sao-paulo"): 0.130,
    ("tokyo", "sydney"): 0.055,
    ("paris", "paris"): 0.0005,
    ("paris", "sao-paulo"): 0.095,
    ("paris", "sydney"): 0.140,
    ("sao-paulo", "sao-paulo"): 0.0005,
    ("sao-paulo", "sydney"): 0.160,
    ("sydney", "sydney"): 0.0005,
}


def region_index(name: str) -> int:
    """Rack id of a region (its position in :data:`REGIONS`)."""
    try:
        return REGIONS.index(name)
    except ValueError:
        raise KeyError(f"unknown region {name!r}; known: {REGIONS}") from None


def table1_bandwidth(with_latency: bool = False) -> MatrixBandwidth:
    """Table 1 as a :class:`MatrixBandwidth` over rack ids 0..4.

    ``with_latency`` attaches the synthetic :data:`GEO_LATENCY_S` delays
    (an extension; the paper's model is throughput-only).
    """
    pair_rate: dict[tuple[int, int], float] = {}
    for (a, b), value in TABLE1_MBPS.items():
        ia, ib = region_index(a), region_index(b)
        pair_rate[(min(ia, ib), max(ia, ib))] = mbps(value)
    pair_latency = None
    if with_latency:
        pair_latency = {}
        for (a, b), value in GEO_LATENCY_S.items():
            ia, ib = region_index(a), region_index(b)
            pair_latency[(min(ia, ib), max(ia, ib))] = value
    return MatrixBandwidth(pair_rate=pair_rate, pair_latency=pair_latency)


def average_cross_mbps() -> float:
    """Mean inter-region bandwidth (paper: 53.03 Mbps)."""
    values = [v for (a, b), v in TABLE1_MBPS.items() if a != b]
    return sum(values) / len(values)


def average_intra_mbps() -> float:
    """Mean intra-region bandwidth (paper: 600.97 Mbps)."""
    values = [v for (a, b), v in TABLE1_MBPS.items() if a == b]
    return sum(values) / len(values)
