"""Experiment harness: one function per paper figure/table.

Benchmarks (``benchmarks/``), examples (``examples/``) and the CLI all
call these row generators, so the numbers reported anywhere in the repo
come from a single code path.
"""

from .common import (
    DEFAULT_SCENARIO_CAP,
    ExperimentEnv,
    SweepStats,
    build_ec2_env,
    build_simics_environment,
    cap_scenarios,
    context_for,
    format_table,
    run_scheme,
    sweep_scheme,
)
from .extensions import durability_rows, lrc_rows, node_rebuild_rows
from .multi import (
    PAPER_NONWORST_TRIPLES,
    figure9_rows,
    figure10_rows,
    figure11_rows,
    figure13_rows,
    figure14_rows,
    multi_failure_rows,
)
from .single import (
    figure7_rows,
    figure8_rows,
    figure12_rows,
    single_failure_rows,
)
from .theory import figure6_rows, model_vs_simulation_rows

__all__ = [
    "DEFAULT_SCENARIO_CAP",
    "ExperimentEnv",
    "PAPER_NONWORST_TRIPLES",
    "SweepStats",
    "build_ec2_env",
    "build_simics_environment",
    "cap_scenarios",
    "context_for",
    "durability_rows",
    "figure10_rows",
    "figure11_rows",
    "figure12_rows",
    "figure13_rows",
    "figure14_rows",
    "figure6_rows",
    "figure7_rows",
    "figure8_rows",
    "figure9_rows",
    "format_table",
    "lrc_rows",
    "node_rebuild_rows",
    "model_vs_simulation_rows",
    "multi_failure_rows",
    "run_scheme",
    "single_failure_rows",
    "sweep_scheme",
]
