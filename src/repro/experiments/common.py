"""Shared experiment plumbing for the benchmark harness and examples.

An :class:`ExperimentEnv` bundles one testbed configuration (cluster,
placement, bandwidth, decode model, block size); sweep helpers run a
scheme across failure scenarios and aggregate the paper's statistics
(mean plus min/max caps — the error bars of Figures 9–11, 13–14).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster import (
    BandwidthModel,
    Cluster,
    ContiguousPlacement,
    Placement,
    RPRPlacement,
    SIMICS_BANDWIDTH,
)
from ..ec2 import build_ec2_environment
from ..repair import RepairContext, RepairOutcome, RepairScheme, simulate_repair
from ..rs import MB, DecodeCostModel, RSCode, SIMICS_DECODE, get_code
from ..workloads import FailureScenario, sample_scenarios, validate_scenario

__all__ = [
    "ExperimentEnv",
    "SweepStats",
    "build_simics_environment",
    "build_ec2_env",
    "context_for",
    "run_scheme",
    "sweep_scheme",
    "cap_scenarios",
    "format_table",
]

#: Exhaustive sweeps beyond this many scenarios are subsampled (seeded)
#: to keep benchmark wall-clock sane; the cap is printed with the rows.
DEFAULT_SCENARIO_CAP = 256


@dataclass(frozen=True)
class ExperimentEnv:
    """One fully-specified testbed for an RS(n, k) stripe."""

    code: RSCode
    cluster: Cluster
    placement: Placement
    bandwidth: BandwidthModel
    cost_model: DecodeCostModel
    block_size: int

    @property
    def label(self) -> str:
        return f"({self.code.n},{self.code.k})"


def build_simics_environment(
    n: int,
    k: int,
    placement: str = "rpr",
    block_size: int = 256 * MB,
    nodes_per_rack: int | None = None,
) -> ExperimentEnv:
    """The §5.1 testbed: uniform 1 Gb/s intra / 0.1 Gb/s cross links."""
    code = get_code(n, k)
    racks = -(-(n + k) // k) + 1  # one spare rack keeps shapes uniform
    per_rack = nodes_per_rack if nodes_per_rack is not None else 2 * k
    cluster = Cluster.homogeneous(racks, per_rack)
    policy = RPRPlacement() if placement == "rpr" else ContiguousPlacement()
    return ExperimentEnv(
        code=code,
        cluster=cluster,
        placement=policy.place(cluster, n, k),
        bandwidth=SIMICS_BANDWIDTH,
        cost_model=SIMICS_DECODE,
        block_size=block_size,
    )


def build_ec2_env(
    n: int, k: int, placement: str = "rpr", block_size: int = 256 * MB
) -> ExperimentEnv:
    """The §5.2 testbed: five regions with the Table 1 link matrix."""
    env = build_ec2_environment(n, k, placement=placement, block_size=block_size)
    return ExperimentEnv(
        code=env.code,
        cluster=env.cluster,
        placement=env.placement,
        bandwidth=env.bandwidth,
        cost_model=env.cost_model,
        block_size=env.block_size,
    )


def context_for(env: ExperimentEnv, failed_blocks) -> RepairContext:
    return RepairContext(
        code=env.code,
        cluster=env.cluster,
        placement=env.placement,
        failed_blocks=tuple(failed_blocks),
        block_size=env.block_size,
        cost_model=env.cost_model,
    )


def run_scheme(
    env: ExperimentEnv, scheme: RepairScheme, failed_blocks
) -> RepairOutcome:
    """Plan and simulate one repair in this environment."""
    return simulate_repair(scheme, context_for(env, failed_blocks), env.bandwidth)


@dataclass(frozen=True)
class SweepStats:
    """Mean/min/max across a scenario sweep — the figures' bar + caps."""

    mean_time: float
    min_time: float
    max_time: float
    mean_cross_blocks: float
    min_cross_blocks: float
    max_cross_blocks: float
    scenarios: int

    @classmethod
    def from_outcomes(cls, outcomes: list[RepairOutcome]) -> "SweepStats":
        if not outcomes:
            raise ValueError("sweep produced no outcomes")
        times = [o.total_repair_time for o in outcomes]
        blocks = [o.cross_rack_blocks for o in outcomes]
        return cls(
            mean_time=sum(times) / len(times),
            min_time=min(times),
            max_time=max(times),
            mean_cross_blocks=sum(blocks) / len(blocks),
            min_cross_blocks=min(blocks),
            max_cross_blocks=max(blocks),
            scenarios=len(outcomes),
        )


def cap_scenarios(
    scenarios: list[FailureScenario],
    code: RSCode,
    cap: int = DEFAULT_SCENARIO_CAP,
    seed: int = 0,
) -> list[FailureScenario]:
    """Subsample an exhaustive scenario list when it exceeds ``cap``.

    Sampling is seeded and deterministic; callers report
    ``len(result) < len(scenarios)`` as "sampled" in their output so no
    silent truncation occurs.
    """
    if len(scenarios) <= cap:
        return scenarios
    failures = scenarios[0].size
    return list(sample_scenarios(code, failures, cap, seed=seed))


def sweep_scheme(
    env: ExperimentEnv,
    scheme: RepairScheme,
    scenarios: list[FailureScenario],
) -> SweepStats:
    """Run ``scheme`` over every scenario and aggregate.

    Scenarios are validated against the environment's code up front
    (:func:`repro.workloads.validate_scenario`), so a hand-built scenario
    with out-of-range block ids fails with a clear error instead of deep
    inside decode.
    """
    for scenario in scenarios:
        validate_scenario(env.code, scenario)
    outcomes = [
        run_scheme(env, scheme, scenario.failed_blocks) for scenario in scenarios
    ]
    return SweepStats.from_outcomes(outcomes)


def format_table(headers: list[str], rows: list[list]) -> str:
    """Plain-text table for benchmark output (no external deps)."""
    table = [headers] + [[_fmt(v) for v in row] for row in rows]
    widths = [max(len(r[i]) for r in table) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(table):
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
