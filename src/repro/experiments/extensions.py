"""Row generators for the extension experiments (beyond the paper).

Mirrors the ``figureN_rows`` convention so the CLI and benches share one
code path for extension results too:

* :func:`node_rebuild_rows` — full-node rebuild orchestration matrix.
* :func:`durability_rows` — per-scheme MTTDL from measured repair times.
* :func:`lrc_rows` — LRC(12,2,2) vs RS(12,4) at equal overhead.
"""

from __future__ import annotations

import itertools

from ..cluster import Cluster, ContiguousPlacement, SIMICS_BANDWIDTH
from ..multistripe import StripeStore, repair_node_failure
from ..reliability import mttdl_from_repair_times
from ..repair import RepairContext, RPRScheme, TraditionalRepair, simulate_repair
from ..rs import MB, SIMICS_DECODE, get_code
from .common import build_simics_environment, context_for

__all__ = ["node_rebuild_rows", "durability_rows", "lrc_rows"]

YEAR = 365.25 * 24 * 3600


def node_rebuild_rows(num_stripes: int = 30, failed_node: int = 0) -> list[dict]:
    """Scheme x mode x rebuild-target matrix over a declustered store."""
    cluster = Cluster.homogeneous(5, 6)
    store = StripeStore.build(cluster, get_code(6, 2), num_stripes)
    rows = []
    for scheme in [TraditionalRepair(), RPRScheme()]:
        for mode in ["sequential", "parallel"]:
            for rebuild in ["replacement", "scatter"]:
                outcome = repair_node_failure(
                    store, failed_node, scheme, SIMICS_BANDWIDTH,
                    mode=mode, rebuild=rebuild,
                )
                rows.append(
                    {
                        "scheme": scheme.name,
                        "mode": mode,
                        "rebuild": rebuild,
                        "makespan_s": outcome.makespan,
                        "cross_blocks": outcome.total_cross_rack_bytes / (256 * MB),
                        "rack_imbalance": outcome.rack_upload_imbalance[
                            "max_mean_ratio"
                        ],
                    }
                )
    return rows


def durability_rows(
    codes=((6, 2), (8, 4), (12, 4)), block_mtbf_years: float = 4.0
) -> list[dict]:
    """Analytic MTTDL per scheme at a production failure rate."""
    lam = 1 / (block_mtbf_years * YEAR)
    rows = []
    for n, k in codes:
        env = build_simics_environment(n, k)
        per_scheme = {}
        for scheme in [TraditionalRepair(), RPRScheme()]:
            times = [
                simulate_repair(
                    scheme, context_for(env, list(range(l))), env.bandwidth
                ).total_repair_time
                for l in range(1, k + 1)
            ]
            per_scheme[scheme.name] = (
                times[0],
                mttdl_from_repair_times(n + k, k, lam, times) / YEAR,
            )
        rows.append(
            {
                "code": f"({n},{k})",
                "tra_repair_s": per_scheme["traditional"][0],
                "rpr_repair_s": per_scheme["rpr"][0],
                "tra_mttdl_years": per_scheme["traditional"][1],
                "rpr_mttdl_years": per_scheme["rpr"][1],
                "amplification": per_scheme["rpr"][1]
                / per_scheme["traditional"][1],
            }
        )
    return rows


def lrc_rows() -> list[dict]:
    """LRC(12,2,2) vs RS(12,4): repair cost and fault-tolerance reach."""
    from ..lrc import LRCCode, LRCLocalRepair, is_recoverable

    lrc_code = LRCCode(12, 2, 2)
    rs_code = get_code(12, 4)

    def ctx_for(code, failed):
        cluster = Cluster.homogeneous(9, 4)
        placement = ContiguousPlacement(per_rack=2).place(cluster, code.n, code.k)
        return RepairContext(
            code=code,
            cluster=cluster,
            placement=placement,
            failed_blocks=tuple(failed),
            block_size=256 * MB,
            cost_model=SIMICS_DECODE,
        )

    stats = {}
    for name, code, scheme in [
        ("lrc(12,2,2)", lrc_code, LRCLocalRepair()),
        ("rs(12,4)", rs_code, RPRScheme()),
    ]:
        time = traffic = 0.0
        for block in range(12):
            outcome = simulate_repair(scheme, ctx_for(code, [block]), SIMICS_BANDWIDTH)
            time += outcome.total_repair_time
            traffic += outcome.cross_rack_blocks
        stats[name] = (time / 12, traffic / 12)

    total = recoverable = 0
    for combo in itertools.combinations(range(16), 4):
        total += 1
        if is_recoverable(lrc_code, combo):
            recoverable += 1

    return [
        {
            "code": "lrc(12,2,2)",
            "mean_repair_s": stats["lrc(12,2,2)"][0],
            "mean_cross_blocks": stats["lrc(12,2,2)"][1],
            "four_failure_coverage_pct": 100.0 * recoverable / total,
        },
        {
            "code": "rs(12,4)",
            "mean_repair_s": stats["rs(12,4)"][0],
            "mean_cross_blocks": stats["rs(12,4)"][1],
            "four_failure_coverage_pct": 100.0,
        },
    ]
