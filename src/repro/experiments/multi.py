"""Multi-block-failure experiments: Figures 9, 10, 11, 13 and 14.

Non-worst cases use the paper's (n, k, z) triples — z failures on an
RS(n, k) code with 2 <= z <= k-1; worst cases fail exactly k blocks.
Bars are means over all block-position combinations, caps are min/max
(the figures' error bars).  Sweeps larger than the scenario cap are
deterministically subsampled and flagged in the row.
"""

from __future__ import annotations

from ..metrics import percent_reduction
from ..repair import RPRScheme, TraditionalRepair
from ..rs import PAPER_WORST_CASE_CODES
from ..workloads import multi_failure_scenarios, scenario_count
from .common import (
    DEFAULT_SCENARIO_CAP,
    ExperimentEnv,
    build_ec2_env,
    build_simics_environment,
    cap_scenarios,
    sweep_scheme,
)

__all__ = [
    "PAPER_NONWORST_TRIPLES",
    "multi_failure_rows",
    "figure9_rows",
    "figure10_rows",
    "figure11_rows",
    "figure13_rows",
    "figure14_rows",
]

#: The (n, k, z) triples of Figures 9/10/13: every code with k > 2 and
#: every failure count 2 <= z <= k-1.
PAPER_NONWORST_TRIPLES: tuple[tuple[int, int, int], ...] = (
    (6, 3, 2),
    (8, 4, 2),
    (8, 4, 3),
    (12, 4, 2),
    (12, 4, 3),
)


def multi_failure_rows(
    env_builder,
    cases,
    cap: int = DEFAULT_SCENARIO_CAP,
) -> list[dict]:
    """Tra vs RPR stats per (n, k, z) case.

    Each row carries mean/min/max repair time and cross-rack blocks for
    both schemes plus the mean-over-mean reduction percentages.
    """
    rows = []
    tra, rpr = TraditionalRepair(), RPRScheme()
    for n, k, z in cases:
        env: ExperimentEnv = env_builder(n, k)
        full = multi_failure_scenarios(env.code, z)
        scenarios = cap_scenarios(full, env.code, cap=cap)
        tra_stats = sweep_scheme(env, tra, scenarios)
        rpr_stats = sweep_scheme(env, rpr, scenarios)
        rows.append(
            {
                "code": f"({n},{k},{z})",
                "tra_time_s": tra_stats.mean_time,
                "rpr_time_s": rpr_stats.mean_time,
                "rpr_time_min_s": rpr_stats.min_time,
                "rpr_time_max_s": rpr_stats.max_time,
                "tra_cross_blocks": tra_stats.mean_cross_blocks,
                "rpr_cross_blocks": rpr_stats.mean_cross_blocks,
                "rpr_cross_blocks_min": rpr_stats.min_cross_blocks,
                "rpr_cross_blocks_max": rpr_stats.max_cross_blocks,
                "time_reduction_pct": percent_reduction(
                    tra_stats.mean_time, rpr_stats.mean_time
                ),
                "traffic_reduction_pct": percent_reduction(
                    tra_stats.mean_cross_blocks, rpr_stats.mean_cross_blocks
                )
                if tra_stats.mean_cross_blocks > 0
                else 0.0,
                "scenarios": rpr_stats.scenarios,
                "sampled": len(scenarios) < scenario_count(env.code, z),
            }
        )
    return rows


def _worst_cases() -> list[tuple[int, int, int]]:
    return [(n, k, k) for n, k in PAPER_WORST_CASE_CODES]


def figure9_rows(cap: int = DEFAULT_SCENARIO_CAP) -> list[dict]:
    """Figure 9: non-worst multi-failure repair time, Simics, Tra vs RPR."""
    return multi_failure_rows(build_simics_environment, PAPER_NONWORST_TRIPLES, cap)


def figure10_rows(cap: int = DEFAULT_SCENARIO_CAP) -> list[dict]:
    """Figure 10: non-worst multi-failure cross-rack traffic (same sweep)."""
    return multi_failure_rows(build_simics_environment, PAPER_NONWORST_TRIPLES, cap)


def figure11_rows(cap: int = DEFAULT_SCENARIO_CAP) -> list[dict]:
    """Figure 11: worst-case (k failures) repair time, Simics, Tra vs RPR."""
    return multi_failure_rows(build_simics_environment, _worst_cases(), cap)


def figure13_rows(cap: int = DEFAULT_SCENARIO_CAP) -> list[dict]:
    """Figure 13: non-worst multi-failure repair time on the EC2 testbed."""
    return multi_failure_rows(build_ec2_env, PAPER_NONWORST_TRIPLES, cap)


def figure14_rows(cap: int = DEFAULT_SCENARIO_CAP) -> list[dict]:
    """Figure 14: worst-case multi-failure repair time on the EC2 testbed."""
    return multi_failure_rows(build_ec2_env, _worst_cases(), cap)
