"""Single-block-failure experiments: Figures 7, 8 and 12.

Each row covers one RS configuration; values are averaged over every
possible single data-block failure position (the paper's "random data
block", made exhaustive for determinism).
"""

from __future__ import annotations

from ..metrics import percent_reduction
from ..repair import CARRepair, RPRScheme, TraditionalRepair
from ..rs import PAPER_SINGLE_FAILURE_CODES
from ..workloads import single_failure_scenarios
from .common import (
    ExperimentEnv,
    build_ec2_env,
    build_simics_environment,
    sweep_scheme,
)

__all__ = [
    "single_failure_rows",
    "figure7_rows",
    "figure8_rows",
    "figure12_rows",
]


def single_failure_rows(
    env_builder, codes=PAPER_SINGLE_FAILURE_CODES
) -> list[dict]:
    """Tra/CAR/RPR stats per code for single data-block failures.

    Returns one dict per code with mean repair times, mean cross-rack
    block counts, and the percentage reductions the paper headlines.
    """
    rows = []
    schemes = {
        "tra": TraditionalRepair(),
        "car": CARRepair(),
        "rpr": RPRScheme(),
    }
    for n, k in codes:
        env: ExperimentEnv = env_builder(n, k)
        scenarios = single_failure_scenarios(env.code, data_only=True)
        stats = {
            name: sweep_scheme(env, scheme, scenarios)
            for name, scheme in schemes.items()
        }
        rows.append(
            {
                "code": env.label,
                "tra_time_s": stats["tra"].mean_time,
                "car_time_s": stats["car"].mean_time,
                "rpr_time_s": stats["rpr"].mean_time,
                "tra_cross_blocks": stats["tra"].mean_cross_blocks,
                "car_cross_blocks": stats["car"].mean_cross_blocks,
                "rpr_cross_blocks": stats["rpr"].mean_cross_blocks,
                "rpr_vs_tra_pct": percent_reduction(
                    stats["tra"].mean_time, stats["rpr"].mean_time
                ),
                "rpr_vs_car_pct": percent_reduction(
                    stats["car"].mean_time, stats["rpr"].mean_time
                ),
                "scenarios": stats["rpr"].scenarios,
            }
        )
    return rows


def figure7_rows() -> list[dict]:
    """Figure 7: cross-rack traffic (blocks), Simics, Tra/CAR/RPR."""
    return single_failure_rows(build_simics_environment)


def figure8_rows() -> list[dict]:
    """Figure 8: total repair time (s), Simics, Tra/CAR/RPR."""
    return single_failure_rows(build_simics_environment)


def figure12_rows() -> list[dict]:
    """Figure 12: total repair time (s), EC2 region testbed, Tra/CAR/RPR."""
    return single_failure_rows(build_ec2_env)
