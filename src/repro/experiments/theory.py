"""Analytical experiments: Figure 6 and model-vs-simulation cross-checks."""

from __future__ import annotations

from ..analysis import (
    FIG6_PARAMS,
    TimeParameters,
    figure6_series,
    racks_for_code,
    rpr_worst_case_time,
    traditional_repair_time,
)
from ..repair import RPRScheme, TraditionalRepair
from ..rs import PAPER_SINGLE_FAILURE_CODES
from .common import build_simics_environment, run_scheme

__all__ = ["figure6_rows", "model_vs_simulation_rows"]


def figure6_rows(params: TimeParameters = FIG6_PARAMS) -> list[dict]:
    """Figure 6's two theoretical curves (t_i = 1 ms, t_c = 10 ms)."""
    return figure6_series(params=params)


def model_vs_simulation_rows(
    codes=PAPER_SINGLE_FAILURE_CODES,
) -> list[dict]:
    """Compare eq. (10)/(13) predictions against simulated repairs.

    Uses the Simics environment's actual per-block transfer times as the
    model's (t_i, t_c), and a single data-block failure (block 1).  The
    simulated traditional time can undercut eq. (10) because helpers
    co-located with the recovery rack travel at intra-rack speed;
    eq. (13) is an upper bound on RPR since the real schedule pipelines.
    """
    rows = []
    for n, k in codes:
        env = build_simics_environment(n, k)
        t_i = env.block_size / env.bandwidth.intra
        t_c = env.block_size / env.bandwidth.cross
        params = TimeParameters(t_i=t_i, t_c=t_c)
        tra = run_scheme(env, TraditionalRepair(), [1])
        rpr = run_scheme(env, RPRScheme(), [1])
        rows.append(
            {
                "code": env.label,
                "q": racks_for_code(n, k),
                "eq10_tra_s": traditional_repair_time(n, params),
                "sim_tra_s": tra.total_repair_time,
                "eq13_rpr_bound_s": rpr_worst_case_time(n, k, params),
                "sim_rpr_s": rpr.total_repair_time,
            }
        )
    return rows
