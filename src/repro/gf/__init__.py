"""Galois-field GF(2^8) substrate.

Pure-numpy reimplementation of the coding kernels the paper takes from the
Jerasure C library: field arithmetic, bulk block scaling, and the small
matrix algebra (Vandermonde construction, Gauss--Jordan inversion) that
Reed--Solomon encoding and decoding are built from.
"""

from .arithmetic import (
    gf_add,
    gf_div,
    gf_inv,
    gf_mul,
    gf_pow,
    gf_sub,
    linear_combine,
    scale,
    scale_accumulate,
)
from .batch import adaptive_tile, gf_matmul_blocks
from .bufferpool import DEFAULT_POOL_MAX_BYTES, BufferPool, scratch_pool
from .cauchy import cauchy_coding_matrix, systematic_cauchy_generator
from .matrix import (
    SingularMatrixError,
    apply_matrix_to_blocks,
    mat_identity,
    mat_inv,
    mat_mul,
    mat_solve,
    systematic_vandermonde_generator,
    vandermonde,
)
from .splittable import (
    KERNELS,
    TableCache,
    mul_into,
    mul_xor_into,
    select_kernel,
    set_kernel_override,
    table_cache,
)
from .tables import DEFAULT_PRIM_POLY, FIELD_SIZE, GFTableError, GFTables, get_tables

__all__ = [
    "BufferPool",
    "DEFAULT_POOL_MAX_BYTES",
    "DEFAULT_PRIM_POLY",
    "FIELD_SIZE",
    "GFTableError",
    "GFTables",
    "KERNELS",
    "SingularMatrixError",
    "TableCache",
    "adaptive_tile",
    "apply_matrix_to_blocks",
    "cauchy_coding_matrix",
    "get_tables",
    "gf_add",
    "gf_div",
    "gf_inv",
    "gf_matmul_blocks",
    "gf_mul",
    "gf_pow",
    "gf_sub",
    "linear_combine",
    "mat_identity",
    "mat_inv",
    "mat_mul",
    "mat_solve",
    "mul_into",
    "mul_xor_into",
    "scale",
    "scale_accumulate",
    "scratch_pool",
    "select_kernel",
    "set_kernel_override",
    "table_cache",
    "systematic_cauchy_generator",
    "systematic_vandermonde_generator",
    "vandermonde",
]
