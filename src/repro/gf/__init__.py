"""Galois-field GF(2^8) substrate.

Pure-numpy reimplementation of the coding kernels the paper takes from the
Jerasure C library: field arithmetic, bulk block scaling, and the small
matrix algebra (Vandermonde construction, Gauss--Jordan inversion) that
Reed--Solomon encoding and decoding are built from.
"""

from .arithmetic import (
    gf_add,
    gf_div,
    gf_inv,
    gf_mul,
    gf_pow,
    gf_sub,
    linear_combine,
    scale,
    scale_accumulate,
)
from .batch import gf_matmul_blocks
from .bufferpool import BufferPool, scratch_pool
from .cauchy import cauchy_coding_matrix, systematic_cauchy_generator
from .matrix import (
    SingularMatrixError,
    apply_matrix_to_blocks,
    mat_identity,
    mat_inv,
    mat_mul,
    mat_solve,
    systematic_vandermonde_generator,
    vandermonde,
)
from .tables import DEFAULT_PRIM_POLY, FIELD_SIZE, GFTableError, GFTables, get_tables

__all__ = [
    "BufferPool",
    "DEFAULT_PRIM_POLY",
    "FIELD_SIZE",
    "GFTableError",
    "GFTables",
    "SingularMatrixError",
    "apply_matrix_to_blocks",
    "cauchy_coding_matrix",
    "get_tables",
    "gf_add",
    "gf_div",
    "gf_inv",
    "gf_matmul_blocks",
    "gf_mul",
    "gf_pow",
    "gf_sub",
    "linear_combine",
    "scratch_pool",
    "mat_identity",
    "mat_inv",
    "mat_mul",
    "mat_solve",
    "scale",
    "scale_accumulate",
    "systematic_cauchy_generator",
    "systematic_vandermonde_generator",
    "vandermonde",
]
