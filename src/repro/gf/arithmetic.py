"""Vectorised GF(2^8) arithmetic kernels.

All kernels operate on ``uint8`` numpy arrays (scalars are accepted and
broadcast).  Addition in GF(2^m) is XOR; multiplication and division go
through the log/antilog tables built in :mod:`repro.gf.tables`.

Hot-path notes (per the HPC guides: vectorise, avoid copies, keep the
working set contiguous):

* ``scale`` — multiply a data block by one coefficient — is the kernel that
  dominates encode/decode cost.  It is a gather into a 256-entry row of the
  multiplication table, executed chunk-by-chunk through a pooled index
  buffer (see ``_gather_into``) so multi-MiB blocks never materialise a
  full-size ``intp`` index temporary.
* ``scale_accumulate`` fuses multiply and XOR-accumulate to avoid a
  temporary for each term of a linear combination, writing into a caller
  provided accumulator in place.
"""

from __future__ import annotations

import numpy as np

from .bufferpool import scratch_pool
from .tables import GFTables, get_tables

#: Elements per gather chunk.  One-shot gathers over multi-MiB blocks make
#: numpy materialise an ``intp`` index copy 8x the input size whose pages
#: are mapped and torn down on every call; chunking through a pooled index
#: buffer keeps the working set cache-resident and allocation-free
#: (measured ~3-8x faster than one-shot ``np.take``/fancy indexing on
#: 4 MiB+ blocks).
_GATHER_CHUNK = 64 * 1024


def _gather_into(row: np.ndarray, src: np.ndarray, out: np.ndarray) -> np.ndarray:
    """``out[...] = row[src]`` for a 256-entry table row, chunk by chunk.

    ``out`` must be C-contiguous uint8 (same size as ``src``); ``src`` is
    any uint8 array (non-contiguous inputs are flattened read-only).
    ``mode='clip'`` skips the bounds check — uint8 indices cannot leave a
    256-entry row.
    """
    flat_src = src.reshape(-1)
    flat_out = out.reshape(-1)
    n = flat_src.size
    scratch = scratch_pool.take(_GATHER_CHUNK * np.dtype(np.intp).itemsize)
    try:
        idx = scratch.view(np.intp)
        for lo in range(0, n, _GATHER_CHUNK):
            hi = lo + _GATHER_CHUNK
            if hi > n:
                hi = n
            part = idx[: hi - lo]
            np.copyto(part, flat_src[lo:hi])
            np.take(row, part, out=flat_out[lo:hi], mode="clip")
    finally:
        scratch_pool.give(scratch)
    return out


__all__ = [
    "gf_add",
    "gf_sub",
    "gf_mul",
    "gf_div",
    "gf_inv",
    "gf_pow",
    "scale",
    "scale_accumulate",
    "linear_combine",
]


def _as_u8(a) -> np.ndarray:
    """Coerce to uint8, range-checking non-uint8 inputs.

    Sits on every kernel call, so the common cases must not scan: uint8
    passes through untouched, bool and other integer dtypes whose whole
    value range fits in [0, 255] convert without any element inspection,
    and wider integer dtypes are checked with min/max reductions (no
    materialised comparison temporaries).
    """
    arr = np.asarray(a)
    dtype = arr.dtype
    if dtype == np.uint8:
        return arr
    if dtype.kind in "iu":
        info = np.iinfo(dtype)
        if info.min < 0 or info.max > 255:
            if arr.size and (int(arr.min()) < 0 or int(arr.max()) > 255):
                raise ValueError("GF(256) elements must be in [0, 255]")
        return arr.astype(np.uint8)
    if dtype.kind == "b":
        return arr.astype(np.uint8)
    # Non-integer input: match the historical behaviour (values compared
    # after integer truncation, then cast).
    as_int = np.asarray(arr, dtype=np.int64)
    if arr.size and (int(as_int.min()) < 0 or int(as_int.max()) > 255):
        raise ValueError("GF(256) elements must be in [0, 255]")
    return arr.astype(np.uint8)


def gf_add(a, b) -> np.ndarray:
    """Field addition (== subtraction): element-wise XOR."""
    return np.bitwise_xor(_as_u8(a), _as_u8(b))


# In characteristic 2, subtraction is addition.
gf_sub = gf_add


def gf_mul(a, b, tables: GFTables | None = None) -> np.ndarray:
    """Element-wise field multiplication via the full product table."""
    t = tables or get_tables()
    return t.mul_table[_as_u8(a).astype(np.intp), _as_u8(b).astype(np.intp)]


def gf_inv(a, tables: GFTables | None = None) -> np.ndarray:
    """Element-wise multiplicative inverse.

    Raises
    ------
    ZeroDivisionError
        If any element is zero.
    """
    t = tables or get_tables()
    arr = _as_u8(a)
    if np.any(arr == 0):
        raise ZeroDivisionError("0 has no multiplicative inverse in GF(256)")
    return t.inv[arr.astype(np.intp)]


def gf_div(a, b, tables: GFTables | None = None) -> np.ndarray:
    """Element-wise field division ``a / b``.

    Raises
    ------
    ZeroDivisionError
        If any element of ``b`` is zero.
    """
    t = tables or get_tables()
    return gf_mul(a, gf_inv(b, t), t)


def gf_pow(a, e: int, tables: GFTables | None = None) -> np.ndarray:
    """Element-wise exponentiation ``a ** e`` for an integer ``e >= 0``.

    ``0 ** 0`` is defined as 1, matching the Vandermonde convention.
    """
    if e < 0:
        raise ValueError("negative exponents are not supported; invert first")
    t = tables or get_tables()
    arr = _as_u8(a)
    if e == 0:
        return np.ones_like(arr)
    # a^e = exp[(log a * e) mod 255] for a != 0; zero stays zero.
    out = np.zeros_like(arr)
    nz = arr != 0
    logs = t.log[arr[nz].astype(np.intp)].astype(np.int64)
    out[nz] = t.exp[(logs * e) % 255]
    return out


def scale(coeff: int, block: np.ndarray, tables: GFTables | None = None) -> np.ndarray:
    """Multiply every byte of ``block`` by the scalar ``coeff``.

    This is the bulk kernel behind encoding and (partial) decoding.  The
    coefficient selects one row of the 256x256 product table and the whole
    block is translated through it with a single gather.
    """
    t = tables or get_tables()
    if not 0 <= coeff <= 255:
        raise ValueError(f"coefficient {coeff} outside GF(256)")
    block = np.asarray(block, dtype=np.uint8)
    if coeff == 0:
        return np.zeros_like(block)
    if coeff == 1:
        return block.copy()
    block = np.ascontiguousarray(block)
    return _gather_into(t.mul_table[coeff], block, np.empty_like(block))


def scale_accumulate(
    acc: np.ndarray,
    coeff: int,
    block: np.ndarray,
    tables: GFTables | None = None,
) -> np.ndarray:
    """``acc ^= coeff * block`` in place; returns ``acc``.

    ``acc`` must be a writable ``uint8`` array with the same shape as
    ``block``.  The in-place accumulation avoids allocating one temporary
    per linear-combination term (see the "in place operations" guidance).
    """
    if acc.dtype != np.uint8 or not acc.flags.writeable:
        raise ValueError("accumulator must be a writable uint8 array")
    block = np.asarray(block, dtype=np.uint8)
    if acc.shape != block.shape:
        raise ValueError(f"shape mismatch: acc {acc.shape} vs block {block.shape}")
    if coeff == 0 or block.size == 0:
        return acc
    if coeff == 1:
        np.bitwise_xor(acc, block, out=acc)
        return acc
    t = tables or get_tables()
    # Gather into a pooled scratch buffer: the per-call temporary was the
    # last allocation on the combine hot path (see repro.gf.bufferpool).
    scratch = scratch_pool.take(block.size)
    try:
        tmp = scratch.reshape(block.shape)
        _gather_into(t.mul_table[coeff], block, tmp)
        np.bitwise_xor(acc, tmp, out=acc)
    finally:
        scratch_pool.give(scratch)
    return acc


def linear_combine(
    coeffs,
    blocks,
    tables: GFTables | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Return ``sum_i coeffs[i] * blocks[i]`` over GF(256).

    This is the primitive every (partial) decode reduces to: an intermediate
    block is a linear combination of locally available blocks.

    Parameters
    ----------
    coeffs:
        Iterable of coefficients in ``[0, 255]``.
    blocks:
        Sequence of equal-shaped ``uint8`` arrays.
    out:
        Optional pre-allocated output buffer (zeroed by this function).
    """
    coeffs = list(coeffs)
    blocks = list(blocks)
    if len(coeffs) != len(blocks):
        raise ValueError(
            f"{len(coeffs)} coefficients for {len(blocks)} blocks"
        )
    if not blocks:
        raise ValueError("linear_combine needs at least one block")
    t = tables or get_tables()
    shape = np.asarray(blocks[0]).shape
    if out is None:
        out = np.zeros(shape, dtype=np.uint8)
    else:
        if out.shape != shape or out.dtype != np.uint8:
            raise ValueError("out buffer has wrong shape or dtype")
        out[...] = 0
    for c, b in zip(coeffs, blocks):
        scale_accumulate(out, int(c), b, t)
    return out
