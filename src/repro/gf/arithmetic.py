"""Vectorised GF(2^8) arithmetic kernels.

All kernels operate on ``uint8`` numpy arrays (scalars are accepted and
broadcast).  Addition in GF(2^m) is XOR; multiplication and division go
through the log/antilog tables built in :mod:`repro.gf.tables`.

Hot-path notes (per the HPC guides: vectorise, avoid copies, keep the
working set contiguous):

* ``scale`` — multiply a data block by one coefficient — is the kernel that
  dominates encode/decode cost.  It is a single fancy-index gather into a
  256-entry row of the multiplication table, which numpy executes as one
  C loop over a contiguous block.
* ``scale_accumulate`` fuses multiply and XOR-accumulate to avoid a
  temporary for each term of a linear combination, writing into a caller
  provided accumulator in place.
"""

from __future__ import annotations

import numpy as np

from .tables import DEFAULT_PRIM_POLY, GFTables, get_tables

__all__ = [
    "gf_add",
    "gf_sub",
    "gf_mul",
    "gf_div",
    "gf_inv",
    "gf_pow",
    "scale",
    "scale_accumulate",
    "linear_combine",
]


def _as_u8(a) -> np.ndarray:
    arr = np.asarray(a)
    if arr.dtype != np.uint8:
        if np.any((np.asarray(arr, dtype=np.int64) < 0) | (np.asarray(arr, dtype=np.int64) > 255)):
            raise ValueError("GF(256) elements must be in [0, 255]")
        arr = arr.astype(np.uint8)
    return arr


def gf_add(a, b) -> np.ndarray:
    """Field addition (== subtraction): element-wise XOR."""
    return np.bitwise_xor(_as_u8(a), _as_u8(b))


# In characteristic 2, subtraction is addition.
gf_sub = gf_add


def gf_mul(a, b, tables: GFTables | None = None) -> np.ndarray:
    """Element-wise field multiplication via the full product table."""
    t = tables or get_tables()
    return t.mul_table[_as_u8(a).astype(np.intp), _as_u8(b).astype(np.intp)]


def gf_inv(a, tables: GFTables | None = None) -> np.ndarray:
    """Element-wise multiplicative inverse.

    Raises
    ------
    ZeroDivisionError
        If any element is zero.
    """
    t = tables or get_tables()
    arr = _as_u8(a)
    if np.any(arr == 0):
        raise ZeroDivisionError("0 has no multiplicative inverse in GF(256)")
    return t.inv[arr.astype(np.intp)]


def gf_div(a, b, tables: GFTables | None = None) -> np.ndarray:
    """Element-wise field division ``a / b``.

    Raises
    ------
    ZeroDivisionError
        If any element of ``b`` is zero.
    """
    t = tables or get_tables()
    return gf_mul(a, gf_inv(b, t), t)


def gf_pow(a, e: int, tables: GFTables | None = None) -> np.ndarray:
    """Element-wise exponentiation ``a ** e`` for an integer ``e >= 0``.

    ``0 ** 0`` is defined as 1, matching the Vandermonde convention.
    """
    if e < 0:
        raise ValueError("negative exponents are not supported; invert first")
    t = tables or get_tables()
    arr = _as_u8(a)
    if e == 0:
        return np.ones_like(arr)
    # a^e = exp[(log a * e) mod 255] for a != 0; zero stays zero.
    out = np.zeros_like(arr)
    nz = arr != 0
    logs = t.log[arr[nz].astype(np.intp)].astype(np.int64)
    out[nz] = t.exp[(logs * e) % 255]
    return out


def scale(coeff: int, block: np.ndarray, tables: GFTables | None = None) -> np.ndarray:
    """Multiply every byte of ``block`` by the scalar ``coeff``.

    This is the bulk kernel behind encoding and (partial) decoding.  The
    coefficient selects one row of the 256x256 product table and the whole
    block is translated through it with a single gather.
    """
    t = tables or get_tables()
    if not 0 <= coeff <= 255:
        raise ValueError(f"coefficient {coeff} outside GF(256)")
    block = np.asarray(block, dtype=np.uint8)
    if coeff == 0:
        return np.zeros_like(block)
    if coeff == 1:
        return block.copy()
    # np.take measured ~5% faster than fancy indexing on 64 MiB blocks
    # (it skips the explicit intp cast of the index array).
    return np.take(t.mul_table[coeff], block)


def scale_accumulate(
    acc: np.ndarray,
    coeff: int,
    block: np.ndarray,
    tables: GFTables | None = None,
) -> np.ndarray:
    """``acc ^= coeff * block`` in place; returns ``acc``.

    ``acc`` must be a writable ``uint8`` array with the same shape as
    ``block``.  The in-place accumulation avoids allocating one temporary
    per linear-combination term (see the "in place operations" guidance).
    """
    if acc.dtype != np.uint8 or not acc.flags.writeable:
        raise ValueError("accumulator must be a writable uint8 array")
    block = np.asarray(block, dtype=np.uint8)
    if acc.shape != block.shape:
        raise ValueError(f"shape mismatch: acc {acc.shape} vs block {block.shape}")
    if coeff == 0:
        return acc
    if coeff == 1:
        np.bitwise_xor(acc, block, out=acc)
        return acc
    t = tables or get_tables()
    np.bitwise_xor(acc, np.take(t.mul_table[coeff], block), out=acc)
    return acc


def linear_combine(
    coeffs,
    blocks,
    tables: GFTables | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Return ``sum_i coeffs[i] * blocks[i]`` over GF(256).

    This is the primitive every (partial) decode reduces to: an intermediate
    block is a linear combination of locally available blocks.

    Parameters
    ----------
    coeffs:
        Iterable of coefficients in ``[0, 255]``.
    blocks:
        Sequence of equal-shaped ``uint8`` arrays.
    out:
        Optional pre-allocated output buffer (zeroed by this function).
    """
    coeffs = list(coeffs)
    blocks = list(blocks)
    if len(coeffs) != len(blocks):
        raise ValueError(
            f"{len(coeffs)} coefficients for {len(blocks)} blocks"
        )
    if not blocks:
        raise ValueError("linear_combine needs at least one block")
    t = tables or get_tables()
    shape = np.asarray(blocks[0]).shape
    if out is None:
        out = np.zeros(shape, dtype=np.uint8)
    else:
        if out.shape != shape or out.dtype != np.uint8:
            raise ValueError("out buffer has wrong shape or dtype")
        out[...] = 0
    for c, b in zip(coeffs, blocks):
        scale_accumulate(out, int(c), b, t)
    return out
