"""Batched GF(2^8) kernels: one coefficient matrix, many stacked blocks.

The per-stripe kernels in :mod:`repro.gf.arithmetic` pay their Python
dispatch and temporary-allocation cost once per block.  At store scale a
node rebuild touches thousands of stripes with the *same* generator or
recovery matrix, so the batched path amortises both: stripes are stacked
along a leading axis and every non-zero coefficient becomes one table
translation over the whole stack instead of one call per stripe.

Two implementation choices matter for throughput here (both measured on
this numpy build; see docs/PERFORMANCE.md):

* Gathers run through :meth:`bytes.translate` — CPython's 256-entry table
  lookup loop — which outperforms both ``np.take`` and fancy indexing for
  uint8 table translation and never materialises the 8x-sized ``intp``
  index temporary that numpy gathers build internally.
* The row/term loops are *tiled* along the flattened block axis so each
  source tile is loaded from memory once and then reused by every output
  row while still cache-resident, instead of streaming the whole
  multi-MiB stack once per matrix row.

Coefficient fast paths mirror the scalar kernels: zero coefficients are
skipped outright, and unit coefficients (the XOR-parity row, eq. (2), and
every eq. (6) recovery row) bypass the multiplication table entirely and
reduce to ``bitwise_xor`` passes.
"""

from __future__ import annotations

import numpy as np

from .tables import GFTables, get_tables

__all__ = ["gf_matmul_blocks"]

#: Elements per cache tile.  The working set of one tile is roughly
#: ``(num_blocks + num_rows) * _TILE`` bytes; 256 KiB keeps realistic
#: matmul shapes (6-12 blocks, 2-12 rows) inside the last-level cache.
_TILE = 256 * 1024


def _block_rows(blocks) -> list[np.ndarray]:
    """Normalise ``blocks`` into equal-shaped contiguous uint8 arrays.

    Contiguous inputs pass through as views; only strided views (e.g. a
    stripe-major slice) pay a copy, which the tiled kernel needs so block
    tiles can be sliced out of a flat layout.
    """
    if isinstance(blocks, np.ndarray):
        if blocks.ndim < 2:
            raise ValueError(
                "blocks array must have at least 2 dims (block axis first)"
            )
        arr = np.asarray(blocks, dtype=np.uint8)
        return [np.ascontiguousarray(arr[j]) for j in range(arr.shape[0])]
    rows = [np.ascontiguousarray(np.asarray(b, dtype=np.uint8)) for b in blocks]
    if not rows:
        raise ValueError("gf_matmul_blocks needs at least one block")
    shape = rows[0].shape
    if any(r.shape != shape for r in rows):
        raise ValueError("all blocks must share one shape")
    return rows


def gf_matmul_blocks(
    matrix,
    blocks,
    tables: GFTables | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Apply an ``r x c`` GF matrix to ``c`` stacked block arrays at once.

    ``out[i] = sum_j matrix[i, j] * blocks[j]`` over GF(256), where each
    ``blocks[j]`` may have any shape (typically ``(block_size,)`` for one
    stripe or ``(num_stripes, block_size)`` for a stripe stack) as long as
    all of them agree.  This is the batched generalisation of
    :func:`repro.gf.matrix.apply_matrix_to_blocks`: one table translation
    per non-zero coefficient per tile, XOR-only rows touch no tables.

    Parameters
    ----------
    matrix:
        ``r x c`` coefficient matrix (anything `_as_u8`-compatible).
    blocks:
        A sequence of ``c`` equal-shaped uint8 arrays, or one array whose
        leading axis indexes the ``c`` blocks.
    out:
        Optional pre-allocated ``(r, *block_shape)`` C-contiguous uint8
        output.

    Returns
    -------
    ``(r, *block_shape)`` uint8 array of output blocks.
    """
    m = np.asarray(matrix, dtype=np.uint8)
    if m.ndim != 2:
        raise ValueError(f"matrix must be 2-D, got shape {m.shape}")
    rows = _block_rows(blocks)
    if m.shape[1] != len(rows):
        raise ValueError(
            f"matrix shape {m.shape} incompatible with {len(rows)} blocks"
        )
    block_shape = rows[0].shape
    out_shape = (m.shape[0],) + block_shape
    if out is None:
        out = np.empty(out_shape, dtype=np.uint8)
    elif (
        out.shape != out_shape
        or out.dtype != np.uint8
        or not out.flags.c_contiguous
    ):
        raise ValueError(
            f"out buffer must be C-contiguous uint8 with shape {out_shape}"
        )

    t = tables or get_tables()
    mul_table = t.mul_table
    num_rows = m.shape[0]
    num_blocks = len(rows)
    # Python ints once, not per tile; translate tables lazily per coeff.
    coeffs = [[int(m[i, j]) for j in range(num_blocks)] for i in range(num_rows)]
    translate: dict[int, bytes] = {}

    flat_blocks = [b.reshape(-1) for b in rows]
    size = flat_blocks[0].size if num_blocks else 0
    flat_out = out.reshape(num_rows, -1) if num_rows else out

    for lo in range(0, size, _TILE):
        hi = lo + _TILE
        if hi > size:
            hi = size
        for i in range(num_rows):
            acc = flat_out[i, lo:hi]
            first = True
            for j in range(num_blocks):
                coeff = coeffs[i][j]
                if coeff == 0:
                    continue
                src = flat_blocks[j][lo:hi]
                if coeff == 1:
                    term = src
                else:
                    tr = translate.get(coeff)
                    if tr is None:
                        tr = mul_table[coeff].tobytes()
                        translate[coeff] = tr
                    term = np.frombuffer(
                        src.tobytes().translate(tr), dtype=np.uint8
                    )
                if first:
                    np.copyto(acc, term)
                    first = False
                else:
                    np.bitwise_xor(acc, term, out=acc)
            if first:  # all-zero row
                acc[...] = 0
    return out
