"""Batched GF(2^8) kernels: one coefficient matrix, many stacked blocks.

The per-stripe kernels in :mod:`repro.gf.arithmetic` pay their Python
dispatch and temporary-allocation cost once per block.  At store scale a
node rebuild touches thousands of stripes with the *same* generator or
recovery matrix, so the batched path amortises both: stripes are stacked
along a leading axis and every non-zero coefficient becomes one bulk
table lookup over the whole stack instead of one call per stripe.

Three implementation choices matter for throughput here (all measured on
this numpy build; see docs/PERFORMANCE.md):

* The multiply primitive is pluggable — :mod:`repro.gf.splittable`
  provides the classic 256-entry ``bytes.translate`` kernel, the 4-bit
  nibble-table kernel, and the 16-bit split-pair gather that processes
  two payload bytes per lookup; which one runs is picked per machine
  (``select_kernel``) and all are byte-identical.
* The row/term loops are *tiled* along the flattened block axis so each
  source tile is loaded from memory once and then reused by every output
  row while still cache-resident.  The tile size adapts to the working
  set — ``(num_blocks + num_rows) * tile`` bytes is held near a fixed
  cache budget — instead of the old fixed 256 KiB, so wide recovery
  matrices shrink their tiles and skinny parity matrices grow them.
* Multiply-XOR is fused: the first non-trivial term of each row is
  written straight into the output and later terms accumulate through
  pooled chunk scratch, so no term ever allocates a block-sized
  temporary (the old loop built one per translated term).

Coefficient fast paths mirror the scalar kernels: zero coefficients are
skipped outright, and unit coefficients (the XOR-parity row, eq. (2), and
every eq. (6) recovery row) bypass the multiplication tables entirely and
reduce to ``bitwise_xor`` passes.
"""

from __future__ import annotations

import numpy as np

from .splittable import combine_tile, select_kernel
from .tables import GFTables, get_tables

__all__ = ["gf_matmul_blocks", "adaptive_tile"]

#: Cache budget the tile working set is sized against.  One tile's
#: working set is every input block tile plus every output row tile:
#: ``(num_blocks + num_rows) * tile`` bytes.  2 MiB sits inside typical
#: L2/LLC slices while keeping tiles large enough to amortise dispatch.
_TILE_BUDGET = 2 * 1024 * 1024

#: Tile clamp range.  Below 32 KiB per-tile Python dispatch dominates;
#: above 1 MiB tiling stops paying for itself on realistic shapes.
_TILE_MIN = 32 * 1024
_TILE_MAX = 1024 * 1024


def adaptive_tile(num_blocks: int, num_rows: int, size: int) -> int:
    """Elements per cache tile for an ``num_rows x num_blocks`` matmul.

    Sized so the tile working set (all block tiles + all row tiles)
    stays near the cache budget, clamped to a sane range, rounded to a
    4 KiB multiple so split-pair kernels see even-length tiles and
    gathers stay page-aligned.  A ``size`` smaller than one tile runs
    untiled.
    """
    streams = max(1, num_blocks + num_rows)
    tile = _TILE_BUDGET // streams
    tile = max(_TILE_MIN, min(_TILE_MAX, tile))
    tile &= ~0xFFF
    return tile if tile < size else size


def _block_rows(blocks) -> list[np.ndarray]:
    """Normalise ``blocks`` into equal-shaped contiguous uint8 arrays.

    Contiguous inputs pass through as views; only strided views (e.g. a
    stripe-major slice) pay a copy, which the tiled kernel needs so block
    tiles can be sliced out of a flat layout.
    """
    if isinstance(blocks, np.ndarray):
        if blocks.ndim < 2:
            raise ValueError(
                "blocks array must have at least 2 dims (block axis first)"
            )
        arr = np.asarray(blocks, dtype=np.uint8)
        return [np.ascontiguousarray(arr[j]) for j in range(arr.shape[0])]
    rows = [np.ascontiguousarray(np.asarray(b, dtype=np.uint8)) for b in blocks]
    if not rows:
        raise ValueError("gf_matmul_blocks needs at least one block")
    shape = rows[0].shape
    if any(r.shape != shape for r in rows):
        raise ValueError("all blocks must share one shape")
    return rows


def gf_matmul_blocks(
    matrix,
    blocks,
    tables: GFTables | None = None,
    out: np.ndarray | None = None,
    kernel: str | None = None,
) -> np.ndarray:
    """Apply an ``r x c`` GF matrix to ``c`` stacked block arrays at once.

    ``out[i] = sum_j matrix[i, j] * blocks[j]`` over GF(256), where each
    ``blocks[j]`` may have any shape (typically ``(block_size,)`` for one
    stripe or ``(num_stripes, block_size)`` for a stripe stack) as long as
    all of them agree.  This is the batched generalisation of
    :func:`repro.gf.matrix.apply_matrix_to_blocks`: one bulk multiply
    per non-zero coefficient per tile, XOR-only rows touch no tables.

    Parameters
    ----------
    matrix:
        ``r x c`` coefficient matrix (anything `_as_u8`-compatible).
    blocks:
        A sequence of ``c`` equal-shaped uint8 arrays, or one array whose
        leading axis indexes the ``c`` blocks.
    out:
        Optional pre-allocated ``(r, *block_shape)`` uint8 output.  The
        whole array need not be contiguous — each row ``out[i]`` must
        be, which is what a stripe-range slice ``arena[:, lo:hi]`` of a
        shared output arena provides.  The parallel codec relies on
        this: workers write disjoint stripe ranges of one arena with no
        assembly copies.
    kernel:
        Multiply kernel name (see :data:`repro.gf.splittable.KERNELS`);
        defaults to the per-process measured selection.

    Returns
    -------
    ``(r, *block_shape)`` uint8 array of output blocks.
    """
    m = np.asarray(matrix, dtype=np.uint8)
    if m.ndim != 2:
        raise ValueError(f"matrix must be 2-D, got shape {m.shape}")
    rows = _block_rows(blocks)
    if m.shape[1] != len(rows):
        raise ValueError(
            f"matrix shape {m.shape} incompatible with {len(rows)} blocks"
        )
    block_shape = rows[0].shape
    num_rows = m.shape[0]
    out_shape = (num_rows,) + block_shape
    if out is None:
        out = np.empty(out_shape, dtype=np.uint8)
    elif out.shape != out_shape or out.dtype != np.uint8:
        raise ValueError(f"out buffer must be uint8 with shape {out_shape}")
    elif not out.flags.c_contiguous and not all(
        out[i].flags.c_contiguous for i in range(num_rows)
    ):
        raise ValueError("every out row must be C-contiguous")

    t = tables or get_tables()
    kern = kernel or select_kernel()
    num_blocks = len(rows)
    # Python ints once, not per tile.
    coeffs = [[int(m[i, j]) for j in range(num_blocks)] for i in range(num_rows)]

    flat_blocks = [b.reshape(-1) for b in rows]
    size = flat_blocks[0].size if num_blocks else 0
    # Per-row flat views: reshape of a contiguous row is always a view,
    # even when the row stride makes the stacked array non-contiguous.
    flat_out = [out[i].reshape(-1) for i in range(num_rows)]
    tile = adaptive_tile(num_blocks, num_rows, size) or 1

    for lo in range(0, size, tile):
        hi = lo + tile
        if hi > size:
            hi = size
        combine_tile(
            coeffs,
            [b[lo:hi] for b in flat_blocks],
            [f[lo:hi] for f in flat_out],
            t,
            kern,
        )
    return out
