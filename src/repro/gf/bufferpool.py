"""Reusable scratch buffers for the GF hot loops.

Every fused multiply-XOR (``acc ^= coeff * block``) needs one gathered
temporary the size of a block.  At store scale (thousands of combines per
rebuild, 4-256 MiB blocks) allocating that temporary per call dominates
allocator time and churns the page cache; the pool below hands the same
flat ``uint8`` buffers back out instead.

The pool is deliberately tiny: buffers are keyed by byte size, a bounded
number are retained per size, and everything is thread-unsafe by design —
the kernels run single-threaded under the GIL, and a pool per thread is
the correct pattern if that ever changes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BufferPool", "scratch_pool"]


class BufferPool:
    """A free-list of flat ``uint8`` arrays, keyed by element count.

    Parameters
    ----------
    max_per_size:
        How many buffers to retain per distinct size; further ``give``
        calls drop the buffer for the garbage collector.
    """

    def __init__(self, max_per_size: int = 4) -> None:
        if max_per_size < 1:
            raise ValueError("max_per_size must be >= 1")
        self.max_per_size = max_per_size
        self._free: dict[int, list[np.ndarray]] = {}
        self.hits = 0
        self.misses = 0

    def take(self, size: int) -> np.ndarray:
        """A flat ``uint8`` buffer of ``size`` elements (contents arbitrary)."""
        if size < 1:
            raise ValueError("buffer size must be positive")
        stack = self._free.get(size)
        if stack:
            self.hits += 1
            return stack.pop()
        self.misses += 1
        return np.empty(size, dtype=np.uint8)

    def give(self, buf: np.ndarray) -> None:
        """Return a buffer obtained from :meth:`take` to the pool."""
        if buf.dtype != np.uint8 or buf.ndim != 1:
            raise ValueError("pool buffers are flat uint8 arrays")
        stack = self._free.setdefault(buf.shape[0], [])
        if len(stack) < self.max_per_size:
            stack.append(buf)

    def clear(self) -> None:
        """Drop every retained buffer (tests / memory pressure)."""
        self._free.clear()

    def stats(self) -> dict:
        """Hit/miss counters and retained byte total."""
        retained = sum(
            size * len(stack) for size, stack in self._free.items()
        )
        return {
            "hits": self.hits,
            "misses": self.misses,
            "retained_bytes": retained,
        }


#: The process-wide pool the GF kernels draw their temporaries from.
scratch_pool = BufferPool()
