"""Reusable scratch buffers for the GF hot loops.

Every fused multiply-XOR (``acc ^= coeff * block``) needs chunk-sized
gather scratch.  At store scale (thousands of combines per rebuild,
4-256 MiB blocks) allocating that scratch per call dominates allocator
time and churns the page cache; the pool below hands the same flat
``uint8`` buffers back out instead.

Retention is bounded two ways: per size (``max_per_size`` buffers of any
one length) and in total (``max_bytes`` high-water mark) — a workload
that cycles through many distinct block sizes evicts the largest idle
buffers first rather than accumulating one free-list per size forever.

The pool is shared by every kernel in the process, including the worker
threads of the parallel codec (:meth:`repro.rs.RSCode.encode_many_parallel`),
so ``take``/``give`` are serialised by a tiny lock — the pool is touched a
handful of times per cache tile, so the lock is noise next to the tile's
gather work.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = ["BufferPool", "scratch_pool", "DEFAULT_POOL_MAX_BYTES"]

#: Default high-water mark for the process-wide pool.  Generous next to
#: the observed steady state (~4.8 MB during the coding benchmarks) but
#: a hard ceiling against size-churn workloads.
DEFAULT_POOL_MAX_BYTES = 8 * 1024 * 1024


class BufferPool:
    """A free-list of flat ``uint8`` arrays, keyed by element count.

    Parameters
    ----------
    max_per_size:
        How many buffers to retain per distinct size; further ``give``
        calls drop the buffer for the garbage collector.
    max_bytes:
        High-water mark on total retained bytes.  A ``give`` that would
        exceed it evicts idle buffers, largest sizes first; a buffer
        bigger than the whole budget is not retained at all.  ``None``
        disables the cap.
    """

    def __init__(
        self,
        max_per_size: int = 4,
        max_bytes: int | None = DEFAULT_POOL_MAX_BYTES,
    ) -> None:
        if max_per_size < 1:
            raise ValueError("max_per_size must be >= 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be positive (or None)")
        self.max_per_size = max_per_size
        self.max_bytes = max_bytes
        self._free: dict[int, list[np.ndarray]] = {}
        self._retained = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def take(self, size: int) -> np.ndarray:
        """A flat ``uint8`` buffer of ``size`` elements (contents arbitrary)."""
        if size < 1:
            raise ValueError("buffer size must be positive")
        with self._lock:
            stack = self._free.get(size)
            if stack:
                self.hits += 1
                self._retained -= size
                return stack.pop()
            self.misses += 1
        return np.empty(size, dtype=np.uint8)

    def give(self, buf: np.ndarray) -> None:
        """Return a buffer obtained from :meth:`take` to the pool."""
        if buf.dtype != np.uint8 or buf.ndim != 1:
            raise ValueError("pool buffers are flat uint8 arrays")
        size = buf.shape[0]
        with self._lock:
            stack = self._free.setdefault(size, [])
            if len(stack) >= self.max_per_size:
                return
            if self.max_bytes is not None:
                if size > self.max_bytes:
                    return
                self._evict_down_to(self.max_bytes - size)
            stack.append(buf)
            self._retained += size

    def _evict_down_to(self, budget: int) -> None:
        """Drop idle buffers, largest first (caller holds the lock)."""
        if self._retained <= budget:
            return
        for size in sorted(self._free, reverse=True):
            stack = self._free[size]
            while stack and self._retained > budget:
                stack.pop()
                self._retained -= size
                self.evictions += 1
            if self._retained <= budget:
                return

    def clear(self) -> None:
        """Drop every retained buffer (tests / memory pressure)."""
        with self._lock:
            self._free.clear()
            self._retained = 0

    @property
    def retained_bytes(self) -> int:
        return self._retained

    def stats(self) -> dict:
        """Hit/miss/eviction counters and retained byte total."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "retained_bytes": self._retained,
            "max_bytes": self.max_bytes,
        }


#: The process-wide pool the GF kernels draw their temporaries from.
scratch_pool = BufferPool()
