"""Cauchy-matrix generator construction (Jerasure's other standard).

The Vandermonde-derived construction (:func:`systematic_vandermonde_generator`)
is what the paper's prototype uses, but it is only *verified* MDS — the
column-reduction can in principle produce singular submatrices for exotic
parameters.  Cauchy matrices are MDS *by construction*: every square
submatrix of ``C[i][j] = 1 / (x_i + y_j)`` (with all ``x_i + y_j != 0``
and distinct ``x_i``, distinct ``y_j``) is nonsingular.

As with the Vandermonde path, the coding block is normalised so its
first row is all ones (column scaling, which preserves the
minors-nonsingular property) — keeping eq. (2)/(6): ``P0`` is the plain
XOR of the data blocks, so pre-placement works identically under either
construction.
"""

from __future__ import annotations

import numpy as np

from .arithmetic import gf_add, gf_div, gf_inv
from .matrix import mat_identity
from .tables import GFTables, get_tables

__all__ = ["cauchy_coding_matrix", "systematic_cauchy_generator"]


def cauchy_coding_matrix(
    n: int, k: int, tables: GFTables | None = None
) -> np.ndarray:
    """The ``k x n`` Cauchy matrix over GF(256).

    Uses ``x_i = i`` (rows, parities) and ``y_j = k + j`` (columns, data
    blocks): all 2·max(n,k) values are distinct field elements, so every
    ``x_i + y_j`` (XOR) is non-zero and the Cauchy conditions hold.

    Raises
    ------
    ValueError
        If ``n + k > 256`` (not enough distinct field elements).
    """
    t = tables or get_tables()
    if n < 1 or k < 1:
        raise ValueError(f"need n >= 1 and k >= 1, got ({n}, {k})")
    if n + k > 256:
        raise ValueError(f"Cauchy over GF(256) needs n + k <= 256, got {n + k}")
    out = np.empty((k, n), dtype=np.uint8)
    for i in range(k):
        for j in range(n):
            out[i, j] = gf_inv(gf_add(i, k + j), t)
    return out


def systematic_cauchy_generator(
    n: int, k: int, tables: GFTables | None = None
) -> np.ndarray:
    """Systematic generator ``[I; C']`` with an all-ones first coding row.

    ``C'`` is the Cauchy matrix with each column scaled by the inverse of
    its first-row entry; column scaling multiplies every minor by a
    non-zero constant, so the construction stays provably MDS while
    making ``P0`` the XOR parity.
    """
    t = tables or get_tables()
    if n < 1 or k < 0:
        raise ValueError(f"invalid code parameters n={n}, k={k}")
    if k == 0:
        return mat_identity(n)
    coding = cauchy_coding_matrix(n, k, t)
    for j in range(n):
        lead = int(coding[0, j])
        # Cauchy entries are never zero by construction.
        coding[:, j] = gf_div(coding[:, j], lead, t)
    return np.vstack([mat_identity(n), coding])
