"""Matrix algebra over GF(2^8).

Provides the small-matrix operations Reed--Solomon coding needs:

* matrix-matrix and matrix-"block vector" products,
* Gauss--Jordan inversion (the paper's ``M'^{-1}`` decoding matrix),
* systematic Vandermonde generator construction in the Jerasure style,
  where the first coding row is normalised to all-ones so the first
  parity is the plain XOR parity (paper eq. (2)).

Matrices are dense ``uint8`` numpy arrays.  Dimensions here are tiny
(``n + k`` is at most a few dozen), so clarity wins over micro-tuning;
the bulk work happens in :func:`repro.gf.arithmetic.scale_accumulate`
when matrices are applied to data blocks.
"""

from __future__ import annotations

import numpy as np

from .arithmetic import gf_div, gf_inv, gf_mul, gf_pow, linear_combine
from .tables import GFTables, get_tables

__all__ = [
    "SingularMatrixError",
    "mat_mul",
    "mat_identity",
    "mat_inv",
    "mat_solve",
    "vandermonde",
    "systematic_vandermonde_generator",
    "apply_matrix_to_blocks",
]


class SingularMatrixError(ValueError):
    """Raised when a matrix has no inverse over GF(256)."""


def mat_identity(size: int) -> np.ndarray:
    """The ``size x size`` identity matrix over GF(256)."""
    return np.eye(size, dtype=np.uint8)


def mat_mul(a: np.ndarray, b: np.ndarray, tables: GFTables | None = None) -> np.ndarray:
    """Matrix product over GF(256).

    Implemented as a log-domain gather + XOR reduction, fully vectorised:
    for uint8 operands the product ``a[i,l] * b[l,j]`` is
    ``exp[log a + log b]`` and the sum over ``l`` is a bitwise XOR
    reduction.
    """
    t = tables or get_tables()
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible shapes {a.shape} x {b.shape}")
    # products[i, l, j] = a[i, l] * b[l, j]; sentinel logs make zero rows/cols
    # land in the zero tail of exp.
    log_a = t.log[a.astype(np.intp)]
    log_b = t.log[b.astype(np.intp)]
    products = t.exp[log_a[:, :, None] + log_b[None, :, :]]
    return np.bitwise_xor.reduce(products, axis=1)


def mat_inv(m: np.ndarray, tables: GFTables | None = None) -> np.ndarray:
    """Invert a square matrix over GF(256) by Gauss--Jordan elimination.

    Raises
    ------
    SingularMatrixError
        If the matrix is singular.
    """
    t = tables or get_tables()
    m = np.asarray(m, dtype=np.uint8)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise ValueError(f"matrix must be square, got {m.shape}")
    size = m.shape[0]
    work = m.astype(np.uint8).copy()
    inv = mat_identity(size)

    for col in range(size):
        # Partial "pivoting": any non-zero pivot works in a field.
        pivot_rows = np.nonzero(work[col:, col])[0]
        if pivot_rows.size == 0:
            raise SingularMatrixError(f"matrix is singular (column {col})")
        pivot = col + int(pivot_rows[0])
        if pivot != col:
            work[[col, pivot]] = work[[pivot, col]]
            inv[[col, pivot]] = inv[[pivot, col]]

        pivot_inv = int(gf_inv(work[col, col], t))
        work[col] = gf_mul(work[col], pivot_inv, t)
        inv[col] = gf_mul(inv[col], pivot_inv, t)

        # Eliminate the column everywhere else (Jordan step).
        for row in range(size):
            if row == col:
                continue
            factor = int(work[row, col])
            if factor:
                work[row] ^= gf_mul(factor, work[col], t)
                inv[row] ^= gf_mul(factor, inv[col], t)
    return inv


def mat_solve(
    a: np.ndarray, b: np.ndarray, tables: GFTables | None = None
) -> np.ndarray | None:
    """Solve ``a @ x = b`` over GF(256); return one solution or None.

    ``a`` is ``r x c`` (possibly rectangular, possibly rank-deficient),
    ``b`` a length-``r`` vector.  Gaussian elimination with columns
    pivoted in their given order, free variables set to zero — so callers
    can bias *which* solution comes back by ordering the columns (used by
    the LRC decoder to prefer local-group helpers).
    """
    t = tables or get_tables()
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.ndim != 2 or b.ndim != 1 or a.shape[0] != b.shape[0]:
        raise ValueError(f"incompatible shapes {a.shape} and {b.shape}")
    rows, cols = a.shape
    work = np.concatenate([a.copy(), b.reshape(-1, 1)], axis=1)

    pivot_col_of_row: list[int] = []
    row = 0
    for col in range(cols):
        if row >= rows:
            break
        pivots = np.nonzero(work[row:, col])[0]
        if pivots.size == 0:
            continue
        pivot = row + int(pivots[0])
        if pivot != row:
            work[[row, pivot]] = work[[pivot, row]]
        inv = int(gf_inv(work[row, col], t))
        work[row] = gf_mul(work[row], inv, t)
        for other in range(rows):
            if other != row and work[other, col]:
                work[other] ^= gf_mul(int(work[other, col]), work[row], t)
        pivot_col_of_row.append(col)
        row += 1

    # Inconsistent system: a zero row with non-zero RHS.
    for r in range(row, rows):
        if work[r, cols] != 0:
            return None

    x = np.zeros(cols, dtype=np.uint8)
    for r, col in enumerate(pivot_col_of_row):
        x[col] = work[r, cols]
    return x


def vandermonde(rows: int, cols: int, tables: GFTables | None = None) -> np.ndarray:
    """The ``rows x cols`` Vandermonde matrix ``V[i, j] = i^j`` over GF(256)."""
    t = tables or get_tables()
    if rows > 256:
        raise ValueError("at most 256 distinct evaluation points exist in GF(256)")
    out = np.empty((rows, cols), dtype=np.uint8)
    points = np.arange(rows, dtype=np.uint8)
    for j in range(cols):
        out[:, j] = gf_pow(points, j, t)
    return out


def systematic_vandermonde_generator(
    n: int, k: int, tables: GFTables | None = None
) -> np.ndarray:
    """Jerasure-style systematic generator matrix for an RS(n, k) code.

    Returns an ``(n + k) x n`` matrix whose top ``n`` rows are the identity
    and whose bottom ``k`` rows are the coding matrix.  Construction follows
    Jerasure's ``jerasure_matrix_vandermonde``: build an ``(n + k) x n``
    Vandermonde matrix, reduce it by elementary column operations so the top
    becomes the identity, then scale each coding row by the inverse of its
    first element so **the first coding row is all ones**.  That last
    normalisation is what makes parity ``P0`` the plain XOR of the data
    blocks (paper eq. (2)) and enables the pre-placement fast path
    (paper eq. (6)).

    Notes
    -----
    ``n`` is the number of data blocks and ``k`` the number of parities,
    matching the paper's (n, k) convention (which is the reverse of the
    classical coding-theory one).
    """
    t = tables or get_tables()
    if n < 1 or k < 0:
        raise ValueError(f"invalid code parameters n={n}, k={k}")
    if n + k > 256:
        raise ValueError(f"RS over GF(256) supports at most 256 blocks, got {n + k}")

    m = vandermonde(n + k, n, t)

    # Column-reduce so the top n x n block becomes the identity.  Elementary
    # column operations preserve the MDS property (any n rows invertible).
    for i in range(n):
        # Ensure m[i, i] != 0 by swapping columns if needed.
        if m[i, i] == 0:
            swap = next(
                (j for j in range(i + 1, n) if m[i, j] != 0),
                None,
            )
            if swap is None:  # pragma: no cover - Vandermonde rows are independent
                raise SingularMatrixError("Vandermonde reduction failed")
            m[:, [i, swap]] = m[:, [swap, i]]
        diag = int(m[i, i])
        if diag != 1:
            m[:, i] = gf_div(m[:, i], diag, t)
        for j in range(n):
            if j != i and m[i, j] != 0:
                m[:, j] ^= gf_mul(int(m[i, j]), m[:, i], t)

    # Normalise the coding block column-wise so the first coding row becomes
    # all ones.  Scaling column ``j`` of the coding block by a non-zero
    # constant multiplies every minor of the coding block by a non-zero
    # constant, so the systematic-MDS criterion (all square submatrices of
    # the coding block non-singular) is preserved, and the identity rows are
    # untouched.
    if k > 0:
        for j in range(n):
            lead = int(m[n, j])
            if lead == 0:
                raise SingularMatrixError(
                    f"reduced Vandermonde has a zero in its first coding row "
                    f"(column {j}); RS({n},{k}) is not constructible this way"
                )
            if lead != 1:
                m[n:, j] = gf_div(m[n:, j], lead, t)
    return m


def apply_matrix_to_blocks(
    matrix: np.ndarray, blocks, tables: GFTables | None = None
) -> list[np.ndarray]:
    """Apply an ``r x c`` GF matrix to ``c`` data blocks, yielding ``r`` blocks.

    Each output block ``i`` is ``sum_j matrix[i, j] * blocks[j]`` — the
    block-level matrix-vector product used for encoding and decoding.
    """
    t = tables or get_tables()
    matrix = np.asarray(matrix, dtype=np.uint8)
    blocks = list(blocks)
    if matrix.ndim != 2 or matrix.shape[1] != len(blocks):
        raise ValueError(
            f"matrix shape {matrix.shape} incompatible with {len(blocks)} blocks"
        )
    return [linear_combine(matrix[i], blocks, t) for i in range(matrix.shape[0])]
