"""Split-table GF(2^8) multiply kernels and the process-wide table cache.

The batched matmul in :mod:`repro.gf.batch` reduces to one primitive:
combine ``c`` source blocks into ``r`` output rows as
``out[i] = xor_j coeff[i][j] * src[j]`` over one cache tile.  This
module provides three interchangeable implementations of that combine
(and of the scalar ``acc ^= coeff * src`` it generalises), all
byte-identical:

``translate``
    The original kernel: one 256-entry table through ``bytes.translate``
    (CPython's tight translation loop).  Portable baseline.

``split16``
    The 16-bit split-table gather: the coefficient's 256-entry product
    row is widened into a 65536-entry ``uint16`` table holding *two*
    products per entry (``pair[hi*256+lo] = mul[lo] | mul[hi] << 8``),
    and the block is gathered through it two bytes at a time via
    ``np.take`` — half the lookups of any byte-wide scheme.  This is the
    same word-splitting idea GF-Complete calls SPLIT multiplication
    (there realised with PSHUFB); in numpy the win comes from halving
    the index stream.  Measured ~1.5-2x over ``translate`` on this
    numpy build (see docs/PERFORMANCE.md).

``nibble4``
    The 4-bit split-table path the classic SIMD kernels use: two
    16-entry nibble tables per coefficient (``lo[v] = coeff * v``,
    ``hi[v] = coeff * (v << 4)``), composed per byte as
    ``lo[b & 15] ^ hi[b >> 4]`` with plain numpy uint8 gathers.  The
    construction is the cheapest of the three (32 bytes per
    coefficient) and is also how this module *builds* the wider tables,
    but as a bulk kernel numpy's per-element index handling makes it
    the slowest — it is kept selectable for reference and for machines
    where gathers beat translation loops.

The tile-level combine is where the fusion happens: each source block
is *prepared* once per tile (``tobytes`` for translate, the
``uint16 -> intp`` index widening for split16, the nibble split for
nibble4) and the preparation is reused by every output row; each row's
first non-trivial term is written straight into the output while later
terms accumulate through chunk-sized pooled scratch — no term ever
allocates a block-sized temporary.

Which kernel runs is decided once per process by :func:`select_kernel`
(a short in-situ measurement, overridable with the ``REPRO_GF_KERNEL``
environment variable or :func:`set_kernel_override`).  All kernels are
exact — equivalence is property-tested across random coefficients,
block counts and non-tile-aligned sizes in
``tests/properties/test_batch_equivalence.py``.

Built tables are held in one process-wide byte-budgeted LRU
(:data:`table_cache`): a ``split16`` table is 128 KiB, so an unbounded
per-call dict (the previous design) would grow with every distinct
coefficient a workload touches; the LRU keeps the hot generator /
recovery coefficients resident and evicts the rest.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict

import numpy as np

from .bufferpool import scratch_pool
from .tables import GFTables, get_tables

__all__ = [
    "KERNELS",
    "TableCache",
    "table_cache",
    "nibble_tables",
    "pair_table",
    "translate_table",
    "combine_tile",
    "mul_into",
    "mul_xor_into",
    "select_kernel",
    "set_kernel_override",
    "reset_selection",
]

#: Selectable kernel names, fastest-first on a typical x86 numpy build.
KERNELS = ("split16", "translate", "nibble4")

#: Environment variable that pins the kernel for the whole process.
KERNEL_ENV = "REPRO_GF_KERNEL"

#: Pairs per gather chunk for the split16 path (uint16 elements, so
#: 128 KiB of payload per chunk).  The pooled ``intp`` index buffer for
#: one chunk is 512 KiB — big enough to amortise the per-chunk numpy
#: dispatch, small enough to stay cache-warm next to the 128 KiB table.
_SPLIT_CHUNK = 64 * 1024

#: Bytes per gather chunk for the nibble4 path.
_NIBBLE_CHUNK = 64 * 1024

_INTP_SIZE = np.dtype(np.intp).itemsize


class TableCache:
    """Byte-budgeted LRU for built multiply tables.

    Keys are ``(prim_poly, kind, coeff)``; values are whatever the
    builder produced (bytes for translate tables, arrays for the rest).
    ``get`` refreshes recency; inserting past ``max_bytes`` evicts the
    least recently used entries first.  A lock serialises the structural
    updates so the parallel codec's worker threads can share one cache
    (tables are immutable once built, so readers only race on recency).
    """

    def __init__(self, max_bytes: int = 8 * 1024 * 1024) -> None:
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        self.max_bytes = max_bytes
        self._entries: OrderedDict[tuple, tuple[object, int]] = OrderedDict()
        self._retained = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: tuple):
        with self._lock:
            found = self._entries.get(key)
            if found is None:
                self.misses += 1
                return None
            self.hits += 1
            self._entries.move_to_end(key)
            return found[0]

    def put(self, key: tuple, value, nbytes: int) -> None:
        with self._lock:
            if key in self._entries:
                _, old = self._entries.pop(key)
                self._retained -= old
            self._entries[key] = (value, nbytes)
            self._retained += nbytes
            while self._retained > self.max_bytes and len(self._entries) > 1:
                _, (_, dropped) = self._entries.popitem(last=False)
                self._retained -= dropped
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._retained = 0

    @property
    def retained_bytes(self) -> int:
        return self._retained

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "retained_bytes": self._retained,
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


#: The process-wide table LRU every kernel below draws from.
table_cache = TableCache()


def nibble_tables(
    coeff: int, tables: GFTables | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """The two 16-entry nibble product tables for ``coeff`` (cached).

    ``lo[v] = coeff * v`` and ``hi[v] = coeff * (v << 4)`` over GF(256),
    so any byte's product decomposes as ``lo[b & 15] ^ hi[b >> 4]``
    (multiplication distributes over the XOR that *is* field addition).
    """
    t = tables or get_tables()
    key = (t.prim_poly, "nibble4", coeff)
    found = table_cache.get(key)
    if found is None:
        row = t.mul_table[coeff]
        lo = row[:16].copy()
        hi = row[np.arange(16) << 4].copy()
        lo.setflags(write=False)
        hi.setflags(write=False)
        found = (lo, hi)
        table_cache.put(key, found, 32)
    return found


def pair_table(coeff: int, tables: GFTables | None = None) -> np.ndarray:
    """The 65536-entry uint16 split-pair table for ``coeff`` (cached).

    ``pair[hi_byte * 256 + lo_byte] = mul[lo_byte] | mul[hi_byte] << 8``
    — exactly what a little-endian ``uint16`` load of two payload bytes
    must map to.  Composed from the coefficient's nibble tables (the
    4-bit construction above), so building one is two 256-element
    gathers plus an outer OR, ~25 µs.
    """
    t = tables or get_tables()
    key = (t.prim_poly, "split16", coeff)
    found = table_cache.get(key)
    if found is None:
        lo, hi = nibble_tables(coeff, t)
        idx = np.arange(256, dtype=np.uint8)
        row = (lo[idx & 15] ^ hi[idx >> 4]).astype(np.uint16)
        found = (row[None, :] | (row[:, None] << 8)).reshape(-1)
        found.setflags(write=False)
        table_cache.put(key, found, found.nbytes)
    return found


def translate_table(coeff: int, tables: GFTables | None = None) -> bytes:
    """The 256-byte ``bytes.translate`` table for ``coeff`` (cached)."""
    t = tables or get_tables()
    key = (t.prim_poly, "translate", coeff)
    found = table_cache.get(key)
    if found is None:
        found = t.mul_table[coeff].tobytes()
        table_cache.put(key, found, len(found))
    return found


# -- tile combiners ----------------------------------------------------------
#
# Each combiner computes ``outs[i][:] = xor_j coeffs[i][j] * srcs[j]``
# over flat, C-contiguous, equal-length uint8 tile views.  Zero
# coefficients are skipped, unit coefficients reduce to copy/XOR, each
# row's first surviving term overwrites instead of accumulating, and
# all-zero rows are zero-filled.  Per-block preparation work is shared
# across every output row.
#
# Aliasing contract: an output may alias a source only as that source's
# unit-coefficient *first* term of its own row (the ``acc ^= ...``
# pattern of mul_xor_into, where the first action is a same-buffer
# no-op copy); outputs must otherwise be disjoint from all sources.


def _odd_tail(coeffs, srcs, outs, t: GFTables, pos: int) -> None:
    """Scalar combine of the single unpaired trailing byte."""
    mul = t.mul_table
    for i, row in enumerate(coeffs):
        val = 0
        for j, coeff in enumerate(row):
            if coeff:
                val ^= int(mul[coeff, int(srcs[j][pos])])
        outs[i][pos] = val


def _combine_translate(coeffs, srcs, outs, t: GFTables) -> None:
    num_rows = len(outs)
    written = [False] * num_rows
    for j in range(len(srcs)):
        src = srcs[j]
        src_bytes = None  # one tobytes per block tile, shared by all rows
        for i in range(num_rows):
            coeff = coeffs[i][j]
            if coeff == 0:
                continue
            dst = outs[i]
            if coeff == 1:
                term = src
            else:
                if src_bytes is None:
                    src_bytes = src.tobytes()
                term = np.frombuffer(
                    src_bytes.translate(translate_table(coeff, t)), dtype=np.uint8
                )
            if written[i]:
                np.bitwise_xor(dst, term, out=dst)
            else:
                np.copyto(dst, term)
                written[i] = True
    for i in range(num_rows):
        if not written[i]:
            outs[i][...] = 0


def _combine_split16(coeffs, srcs, outs, t: GFTables) -> None:
    num_rows = len(outs)
    num_blocks = len(srcs)
    n = srcs[0].size
    even = n & ~1
    pairs = even >> 1
    tabs = [[pair_table(c, t) if c > 1 else None for c in row] for row in coeffs]
    s16 = [s[:even].view(np.uint16) for s in srcs]
    d16 = [o[:even].view(np.uint16) for o in outs]
    idx_buf = scratch_pool.take(_SPLIT_CHUNK * _INTP_SIZE)
    tmp_buf = scratch_pool.take(_SPLIT_CHUNK * 2)
    try:
        idx_full = idx_buf.view(np.intp)
        tmp_full = tmp_buf.view(np.uint16)
        for lo in range(0, pairs, _SPLIT_CHUNK):
            hi = lo + _SPLIT_CHUNK
            if hi > pairs:
                hi = pairs
            idx = idx_full[: hi - lo]
            tmp = tmp_full[: hi - lo]
            written = [False] * num_rows
            for j in range(num_blocks):
                widened = False
                for i in range(num_rows):
                    coeff = coeffs[i][j]
                    if coeff == 0:
                        continue
                    dst = d16[i][lo:hi]
                    if coeff == 1:
                        if written[i]:
                            np.bitwise_xor(dst, s16[j][lo:hi], out=dst)
                        else:
                            np.copyto(dst, s16[j][lo:hi])
                            written[i] = True
                        continue
                    if not widened:
                        # uint16 -> intp once per (chunk, block), shared
                        # by every row; np.take would otherwise build a
                        # fresh full-size intp temporary per term.
                        np.copyto(idx, s16[j][lo:hi])
                        widened = True
                    if written[i]:
                        np.take(tabs[i][j], idx, out=tmp, mode="clip")
                        np.bitwise_xor(dst, tmp, out=dst)
                    else:
                        np.take(tabs[i][j], idx, out=dst, mode="clip")
                        written[i] = True
            for i in range(num_rows):
                if not written[i]:
                    d16[i][lo:hi] = 0
    finally:
        scratch_pool.give(idx_buf)
        scratch_pool.give(tmp_buf)
    if even != n:
        _odd_tail(coeffs, srcs, outs, t, n - 1)


def _combine_nibble4(coeffs, srcs, outs, t: GFTables) -> None:
    num_rows = len(outs)
    num_blocks = len(srcs)
    n = srcs[0].size
    tabs = [[nibble_tables(c, t) if c > 1 else None for c in row] for row in coeffs]
    bufs = [scratch_pool.take(_NIBBLE_CHUNK) for _ in range(4)]
    na_full, nb_full, ta_full, tb_full = bufs
    try:
        for lo in range(0, n, _NIBBLE_CHUNK):
            hi = lo + _NIBBLE_CHUNK
            if hi > n:
                hi = n
            w = hi - lo
            na, nb, ta, tb = na_full[:w], nb_full[:w], ta_full[:w], tb_full[:w]
            written = [False] * num_rows
            for j in range(num_blocks):
                chunk = srcs[j][lo:hi]
                split = False
                for i in range(num_rows):
                    coeff = coeffs[i][j]
                    if coeff == 0:
                        continue
                    dst = outs[i][lo:hi]
                    if coeff == 1:
                        if written[i]:
                            np.bitwise_xor(dst, chunk, out=dst)
                        else:
                            np.copyto(dst, chunk)
                            written[i] = True
                        continue
                    if not split:
                        # nibble decomposition once per (chunk, block)
                        np.right_shift(chunk, 4, out=na)
                        np.bitwise_and(chunk, 15, out=nb)
                        split = True
                    lo_tab, hi_tab = tabs[i][j]
                    np.take(hi_tab, na, out=ta, mode="clip")
                    np.take(lo_tab, nb, out=tb, mode="clip")
                    np.bitwise_xor(ta, tb, out=ta)
                    if written[i]:
                        np.bitwise_xor(dst, ta, out=dst)
                    else:
                        np.copyto(dst, ta)
                        written[i] = True
            for i in range(num_rows):
                if not written[i]:
                    outs[i][lo:hi] = 0
    finally:
        for buf in bufs:
            scratch_pool.give(buf)


_COMBINERS = {
    "translate": _combine_translate,
    "split16": _combine_split16,
    "nibble4": _combine_nibble4,
}


def combine_tile(
    coeffs,
    srcs,
    outs,
    tables: GFTables | None = None,
    kernel: str | None = None,
) -> None:
    """``outs[i][:] = xor_j coeffs[i][j] * srcs[j]`` over one tile.

    ``coeffs`` is an ``r x c`` list of Python ints, ``srcs`` are ``c``
    flat contiguous uint8 views and ``outs`` ``r`` more, all the same
    length.  This is the inner combine of the batched matmul, exposed so
    the driver in :mod:`repro.gf.batch` carries no kernel-specific code.
    """
    t = tables or get_tables()
    _COMBINERS[kernel or select_kernel()](coeffs, srcs, outs, t)


# -- kernel selection --------------------------------------------------------

_selected: str | None = None
_override: str | None = None


def set_kernel_override(name: str | None) -> None:
    """Pin (or with ``None`` unpin) the kernel for this process.

    Takes precedence over both the measured selection and the
    ``REPRO_GF_KERNEL`` environment variable; used by the perf harness
    to time each kernel on identical workloads and by tests.
    """
    if name is not None and name not in _COMBINERS:
        raise ValueError(f"unknown GF kernel {name!r}; expected one of {KERNELS}")
    global _override
    _override = name


def reset_selection() -> None:
    """Forget the measured kernel choice (tests / benchmarking)."""
    global _selected
    _selected = None


def _measure_kernels(probe_bytes: int = 256 * 1024, reps: int = 3) -> str:
    """Best measured kernel for a parity-shaped combine on this machine."""
    t = get_tables()
    rng = np.random.default_rng(0)
    srcs = [rng.integers(0, 256, probe_bytes, dtype=np.uint8) for _ in range(4)]
    outs = [np.zeros(probe_bytes, dtype=np.uint8) for _ in range(2)]
    coeffs = [[1, 1, 1, 1], [37, 91, 143, 250]]
    best_name, best_time = KERNELS[0], float("inf")
    for name in KERNELS:
        impl = _COMBINERS[name]
        impl(coeffs, srcs, outs, t)  # warm tables + pools
        elapsed = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            impl(coeffs, srcs, outs, t)
            elapsed = min(elapsed, time.perf_counter() - t0)
        if elapsed < best_time:
            best_name, best_time = name, elapsed
    return best_name


def select_kernel() -> str:
    """The kernel name the batched matmul should use on this process.

    Resolution order: :func:`set_kernel_override`, the
    ``REPRO_GF_KERNEL`` environment variable, then a one-off in-situ
    measurement cached for the process lifetime.  Selection only ever
    affects speed — all kernels produce identical bytes.
    """
    if _override is not None:
        return _override
    global _selected
    if _selected is None:
        env = os.environ.get(KERNEL_ENV)
        if env:
            if env not in _COMBINERS:
                raise ValueError(f"{KERNEL_ENV}={env!r} is not one of {KERNELS}")
            _selected = env
        else:
            _selected = _measure_kernels()
    return _selected


def mul_into(
    coeff: int,
    src: np.ndarray,
    out: np.ndarray,
    tables: GFTables | None = None,
    kernel: str | None = None,
) -> np.ndarray:
    """``out[:] = coeff * src`` over GF(256) for flat contiguous uint8 arrays."""
    t = tables or get_tables()
    _COMBINERS[kernel or select_kernel()]([[coeff]], [src], [out], t)
    return out


def mul_xor_into(
    coeff: int,
    src: np.ndarray,
    acc: np.ndarray,
    tables: GFTables | None = None,
    kernel: str | None = None,
) -> np.ndarray:
    """``acc ^= coeff * src`` over GF(256) — the fused multiply-XOR primitive.

    Expressed as the two-term combine ``acc = 1 * acc ^ coeff * src`` so
    the accumulate shares the tile machinery (and its scratch reuse)
    with the matmul path; the leading unit term is a same-buffer no-op.
    """
    t = tables or get_tables()
    _COMBINERS[kernel or select_kernel()]([[1, coeff]], [acc, src], [acc], t)
    return acc
