"""Log/antilog table construction for GF(2^8).

The Reed--Solomon stack operates over the finite field GF(2^8), the same
field Jerasure uses for its ``w = 8`` codes.  The field is realised as
polynomials over GF(2) modulo an irreducible polynomial; we use the
standard polynomial

    x^8 + x^4 + x^3 + x^2 + 1   (0x11D)

whose root ``x`` (i.e. the element ``2``) generates the multiplicative
group of the field.  Multiplication is implemented through discrete
logarithm tables: ``a * b = exp[log[a] + log[b]]`` for non-zero ``a, b``.

The tables are built once at import time and shared, read-only, by the
vectorised kernels in :mod:`repro.gf.arithmetic`.  Table construction is
pure Python (256 iterations) and therefore costs microseconds; all hot
paths are table lookups via numpy fancy indexing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: The default irreducible polynomial for GF(2^8) (Jerasure / AES-adjacent
#: storage convention).  Bit ``i`` is the coefficient of ``x^i``; the value
#: includes the leading ``x^8`` term.
DEFAULT_PRIM_POLY = 0x11D

#: Order of the multiplicative group of GF(2^8).
GROUP_ORDER = 255

#: Number of field elements.
FIELD_SIZE = 256


class GFTableError(ValueError):
    """Raised when table construction is asked for an invalid polynomial."""


def _is_generator(prim_poly: int) -> bool:
    """Return True if ``x`` (element 2) generates GF(256)* under ``prim_poly``.

    This doubles as an irreducibility check that is sufficient for our use:
    if ``x`` has multiplicative order 255, the 255 powers of ``x`` are
    distinct and non-zero, which is exactly what the log/exp construction
    requires.
    """
    seen = set()
    value = 1
    for _ in range(GROUP_ORDER):
        if value in seen:
            return False
        seen.add(value)
        value <<= 1
        if value & 0x100:
            value ^= prim_poly
    return value == 1 and len(seen) == GROUP_ORDER


@dataclass(frozen=True)
class GFTables:
    """Immutable lookup tables for one GF(2^8) realisation.

    Attributes
    ----------
    prim_poly:
        The irreducible polynomial the tables were built from.
    exp:
        ``exp[i] = x^i`` for ``i`` in ``[0, 509]``.  The table is doubled
        in length so that ``exp[log[a] + log[b]]`` never needs an explicit
        ``% 255`` on the hot path.
    log:
        ``log[a]`` = discrete log of ``a`` base ``x``; ``log[0]`` is a
        sentinel (``2 * 255``) that indexes into a zero region of ``exp``
        so multiplication by zero yields zero without branching.
    inv:
        ``inv[a] = a^{-1}`` for ``a != 0``; ``inv[0] = 0`` as a sentinel.
    mul_table:
        Full 256x256 product table, ``mul_table[a, b] = a * b``.  Used by
        the array kernels: one gather instead of three.
    """

    prim_poly: int
    exp: np.ndarray = field(repr=False)
    log: np.ndarray = field(repr=False)
    inv: np.ndarray = field(repr=False)
    mul_table: np.ndarray = field(repr=False)

    @classmethod
    def build(cls, prim_poly: int = DEFAULT_PRIM_POLY) -> "GFTables":
        """Construct the tables for ``prim_poly``.

        Raises
        ------
        GFTableError
            If ``prim_poly`` does not describe a degree-8 polynomial under
            which ``x`` generates the multiplicative group.
        """
        if not (0x100 <= prim_poly <= 0x1FF):
            raise GFTableError(
                f"prim_poly must be a degree-8 polynomial (0x100..0x1FF), got {prim_poly:#x}"
            )
        if not _is_generator(prim_poly):
            raise GFTableError(
                f"x is not a generator under {prim_poly:#x}; polynomial is not usable"
            )

        # exp has a padded tail of zeros so that any sum of two log values —
        # including two log[0] sentinels (2 * 510 = 1020) — lands in a region
        # that returns 0.
        exp = np.zeros(4 * GROUP_ORDER + 4, dtype=np.uint8)
        log = np.zeros(FIELD_SIZE, dtype=np.int32)

        value = 1
        for i in range(GROUP_ORDER):
            exp[i] = value
            log[value] = i
            value <<= 1
            if value & 0x100:
                value ^= prim_poly
        # Double the cyclic part: exp[i + 255] == exp[i].
        exp[GROUP_ORDER : 2 * GROUP_ORDER] = exp[:GROUP_ORDER]
        # log[0] sentinel points past the doubled cyclic region into zeros.
        log[0] = 2 * GROUP_ORDER

        inv = np.zeros(FIELD_SIZE, dtype=np.uint8)
        nz = np.arange(1, FIELD_SIZE)
        inv[nz] = exp[(GROUP_ORDER - log[nz]) % GROUP_ORDER]

        a = np.arange(FIELD_SIZE, dtype=np.int32)
        mul_table = exp[log[a][:, None] + log[a][None, :]].copy()

        tables = cls(
            prim_poly=prim_poly, exp=exp, log=log, inv=inv, mul_table=mul_table
        )
        for arr in (tables.exp, tables.log, tables.inv, tables.mul_table):
            arr.setflags(write=False)
        return tables


_TABLE_CACHE: dict[int, GFTables] = {}


def get_tables(prim_poly: int = DEFAULT_PRIM_POLY) -> GFTables:
    """Return the (cached) tables for ``prim_poly``."""
    tables = _TABLE_CACHE.get(prim_poly)
    if tables is None:
        tables = GFTables.build(prim_poly)
        _TABLE_CACHE[prim_poly] = tables
    return tables
