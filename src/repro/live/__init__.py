"""repro.live — an asyncio testbed runtime for repair plans.

The simulator (:mod:`repro.sim`) replaces the paper's Simics +
wondershaper testbed with a scheduled clock.  This package walks the
step back toward a real system: it executes any :class:`repro.repair.RepairPlan`
on *real bytes over real concurrency* — every cluster node becomes an
asyncio endpoint holding its payload store, sends travel as framed
transfers over localhost TCP (or in-process streams for CI), combines
run as GF(2^8) kernels at the receiver, and a wondershaper-style
token-bucket shaper (:class:`~repro.live.shaper.LinkShaper`) enforces the
scenario's :class:`~repro.cluster.BandwidthModel` rates and latencies.
Pipelining is not scheduled here; it *emerges* from port exclusivity and
socket backpressure, exactly as it did on the paper's testbed.

Layers:

* :mod:`repro.live.shaper` — token-bucket pacing per directed link.
* :mod:`repro.live.transport` — byte-stream transports: in-process
  memory streams (CI-safe) and localhost TCP servers.
* :mod:`repro.live.wire` — the framed wire protocol (header + chunked
  payload + ack).
* :mod:`repro.live.runtime` — the plan executor: per-op tasks,
  dependency waits, port exclusivity, measured timings.
* :mod:`repro.live.validate` — cross-validation against
  :class:`repro.sim.SimulationEngine`: byte-identical recovery plus
  measured-vs-predicted makespan per scheme, and
  :func:`~repro.live.validate.audit_store_repairs` to re-check the
  multi-process store service's (:mod:`repro.store`) repair ledgers.

See ``docs/LIVE.md`` for the full specification and ``rpr live`` for the
CLI entry point.
"""

from .runtime import (
    LiveError,
    LiveOpTiming,
    LiveResult,
    LiveTimeoutError,
    run_plan_live,
    run_plan_live_sync,
)
from .shaper import (
    ClassedBucket,
    LinkShaper,
    QoSLinkShaper,
    TokenBucket,
    WeightedTokenBucket,
)
from .transport import (
    MemoryTransport,
    TcpTransport,
    cancel_and_wait,
    connect_tcp,
    open_transport,
)
from .wire import WireError, read_ack, read_frame, send_frame
from .validate import (
    DEFAULT_LIVE_BANDWIDTH,
    LiveSchemeReport,
    LiveValidationReport,
    StoreRepairAudit,
    audit_store_repairs,
    live_environment,
    run_live_validation,
)

__all__ = [
    "ClassedBucket",
    "DEFAULT_LIVE_BANDWIDTH",
    "LinkShaper",
    "QoSLinkShaper",
    "WeightedTokenBucket",
    "LiveError",
    "LiveOpTiming",
    "LiveResult",
    "LiveSchemeReport",
    "LiveTimeoutError",
    "LiveValidationReport",
    "MemoryTransport",
    "StoreRepairAudit",
    "TcpTransport",
    "TokenBucket",
    "WireError",
    "audit_store_repairs",
    "cancel_and_wait",
    "connect_tcp",
    "live_environment",
    "open_transport",
    "read_ack",
    "read_frame",
    "run_live_validation",
    "run_plan_live",
    "run_plan_live_sync",
    "send_frame",
]
