"""The live plan executor: real bytes, real concurrency, measured time.

Every op of a :class:`repro.repair.RepairPlan` becomes one asyncio task:

* A :class:`~repro.repair.plan.SendOp` runs at its *source* node.  It
  waits for its declared dependencies, claims the source's upload port
  and the destination's download port (the engine's port-exclusivity
  contract, held for the whole transfer), sleeps the link latency, then
  streams the payload as a framed transfer through the link's token
  bucket and waits for the receiver's ack.
* A :class:`~repro.repair.plan.CombineOp` runs at its node: it waits for
  dependencies, claims the node's CPU slot, and computes the GF(2^8)
  linear combination on the received bytes — combines happen *at the
  receiver*, like ECPipe's agents, not in a central reducer.

Dependency completion is the control plane (one ``asyncio.Event`` per
op, held by the in-process coordinator — the moral equivalent of the
testbed's command distributor); payload bytes are the data plane and
only ever move through the transport.  Pipelining is emergent: nothing
here schedules overlap, it falls out of disjoint ports, shaped links and
socket backpressure — the same mechanism the paper's testbed relied on.

Missing payloads abort the run with the same
:class:`~repro.repair.executor.ExecutionError` message shape as the byte
executor (full missing-key set + op index), so a live failure is
diagnosable without replaying it.
"""

from __future__ import annotations

import asyncio
import time
from contextlib import asynccontextmanager
from dataclasses import dataclass, field

import numpy as np

from ..cluster import BandwidthModel, Cluster
from ..gf import GFTables, get_tables, linear_combine
from ..repair.executor import ExecutionError, missing_payload_message
from ..repair.plan import CombineOp, RepairPlan, SendOp
from ..telemetry.model import OP_CATEGORY, TelemetryRecorder, TelemetryTrace
from .shaper import LinkShaper
from .transport import MemoryTransport, Stream, TcpTransport, open_transport
from .wire import ACK, DEFAULT_CHUNK, read_ack, read_frame, send_frame

__all__ = [
    "LiveError",
    "LiveTimeoutError",
    "LiveOpTiming",
    "LiveResult",
    "run_plan_live",
    "run_plan_live_sync",
]


class LiveError(RuntimeError):
    """Raised when the live runtime fails for non-plan reasons."""


class LiveTimeoutError(LiveError):
    """The run exceeded its wall-clock budget (likely a hang/deadlock)."""


@dataclass(frozen=True)
class LiveOpTiming:
    """Measured start/end of one executed op, seconds since run start."""

    op_id: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class LiveResult:
    """Outcome of one live plan execution.

    Mirrors :class:`repro.repair.ExecutionResult`'s ledgers (byte counts
    must agree exactly — tests pin it) and adds measured wall-clock
    timings, the live counterpart of :class:`repro.sim.SimResult`.

    ``telemetry`` carries the run's wall-clock
    :class:`~repro.telemetry.TelemetryTrace` — per-op spans with nested
    wait/transfer phases, pacing stalls, per-link throughput samples —
    when the run was given a recorder; ``None`` otherwise.
    """

    recovered: dict[int, np.ndarray]
    makespan: float
    timings: dict[str, LiveOpTiming]
    transport: str
    shaped: bool
    intra_rack_bytes: int = 0
    cross_rack_bytes: int = 0
    combine_count: int = 0
    sends_executed: int = 0
    uploaded_by_node: dict[int, int] = field(default_factory=dict)
    downloaded_by_node: dict[int, int] = field(default_factory=dict)
    cross_uploaded_by_rack: dict[int, int] = field(default_factory=dict)
    telemetry: TelemetryTrace | None = None

    def to_dict(self) -> dict:
        """JSON-serializable summary (payload bytes omitted)."""
        return {
            "recovered_blocks": sorted(self.recovered),
            "makespan_s": self.makespan,
            "transport": self.transport,
            "shaped": self.shaped,
            "intra_rack_bytes": self.intra_rack_bytes,
            "cross_rack_bytes": self.cross_rack_bytes,
            "combine_count": self.combine_count,
            "sends_executed": self.sends_executed,
            "uploaded_by_node": dict(self.uploaded_by_node),
            "downloaded_by_node": dict(self.downloaded_by_node),
            "cross_uploaded_by_rack": dict(self.cross_uploaded_by_rack),
            "timings": [
                {"op_id": t.op_id, "start": t.start, "end": t.end}
                for t in self.timings.values()
            ],
            "telemetry": (
                self.telemetry.to_dict() if self.telemetry is not None else None
            ),
        }


class _PortRegistry:
    """Atomic multi-resource claims, mirroring the engine's port model.

    A claim waits until *every* requested resource is free and then takes
    them all at once — no hold-and-wait, hence no deadlock, and the same
    semantics as :class:`repro.sim.SimulationEngine`'s scheduler (a job
    starts only when all of its resources are simultaneously free).
    """

    def __init__(self) -> None:
        self._busy: set[tuple[str, int]] = set()
        self._cond = asyncio.Condition()

    @asynccontextmanager
    async def hold(self, *keys: tuple[str, int]):
        wanted = set(keys)
        async with self._cond:
            await self._cond.wait_for(lambda: not (self._busy & wanted))
            self._busy |= wanted
        try:
            yield
        finally:
            async with self._cond:
                self._busy -= wanted
                self._cond.notify_all()


class _NullRegistry:
    """Port model switched off: transfers share links freely."""

    @asynccontextmanager
    async def hold(self, *keys):
        yield


class _LiveRun:
    """One plan execution: nodes, shaper, transport, op tasks."""

    def __init__(
        self,
        plan: RepairPlan,
        cluster: Cluster,
        store: dict[int, dict[str, np.ndarray]],
        *,
        shaper: LinkShaper,
        transport,
        tables: GFTables,
        chunk_size: int,
        exclusive_ports: bool,
        recorder: TelemetryRecorder | None = None,
    ) -> None:
        plan.validate()
        self.plan = plan
        self.cluster = cluster
        self.store = store
        self.shaper = shaper
        self.transport = transport
        self.tables = tables
        self.chunk_size = chunk_size
        # A falsy recorder (NULL_RECORDER) collapses to None here, so
        # every emission site below is a single identity check when
        # telemetry is off.
        self.rec = recorder if recorder else None
        self.ports = _PortRegistry() if exclusive_ports else _NullRegistry()
        self.events = {oid: asyncio.Event() for oid in plan.ops}
        self.indices = {oid: i for i, oid in enumerate(plan.ops)}
        self.result = LiveResult(
            recovered={},
            makespan=0.0,
            timings={},
            transport=getattr(transport, "name", "?"),
            shaped=shaper.shaped,
        )
        self._t0 = 0.0

    # -- server side -------------------------------------------------------

    async def handle_connection(self, node_id: int, stream: Stream) -> None:
        """Receive one framed transfer, store it, ack it."""
        try:
            header, payload = await read_frame(stream, chunk_size=self.chunk_size)
            # read_frame assembled the payload into one preallocated
            # bytearray; wrap it in place rather than copying to bytes.
            # Stored blocks are read-only by contract (combines write to
            # fresh arenas), so drop writability at the boundary.
            received = np.frombuffer(payload, dtype=np.uint8)
            received.flags.writeable = False
            self.store.setdefault(node_id, {})[header["key"]] = received
            await stream.write(ACK)
        except asyncio.CancelledError:  # teardown
            raise
        except (ConnectionError, asyncio.IncompleteReadError):
            # The sender aborted (its task failed or was cancelled); the
            # sender side reports the real error.
            pass
        finally:
            await stream.aclose()

    # -- op tasks ----------------------------------------------------------

    async def _await_deps(self, deps) -> None:
        for dep in deps:
            await self.events[dep].wait()

    def _record(self, oid: str, start: float, end: float) -> None:
        self.result.timings[oid] = LiveOpTiming(
            op_id=oid, start=start - self._t0, end=end - self._t0
        )
        self.events[oid].set()

    async def _run_send(self, oid: str, op: SendOp) -> None:
        rec = self.rec
        t_spawn = time.monotonic() if rec is not None else 0.0
        await self._await_deps(op.deps)
        src_store = self.store.get(op.src, {})
        if op.key not in src_store:
            raise ExecutionError(
                missing_payload_message(
                    "send", oid, self.indices[oid], len(self.plan.ops), [op.key], op.src
                )
            )
        payload = np.ascontiguousarray(src_store[op.key])
        nbytes = int(payload.nbytes)
        latency = self.shaper.latency(op.src, op.dst)
        t_deps = time.monotonic() if rec is not None else 0.0
        async with self.ports.hold(("up", op.src), ("down", op.dst)):
            t_ports = time.monotonic() if rec is not None else 0.0
            bucket = self.shaper.bucket(op.src, op.dst)
            if bucket is not None:
                bucket.reset()
            start = time.monotonic()
            if latency > 0:
                await asyncio.sleep(latency)
            t_lat = time.monotonic() if rec is not None else 0.0
            stream = await self.transport.connect(op.src, op.dst)
            t_conn = time.monotonic() if rec is not None else 0.0
            t_sent = t_conn
            try:
                # The frame is chunked as memoryview slices of the stored
                # array itself — no tobytes() staging copy of the payload.
                await send_frame(
                    stream,
                    {"op": oid, "key": op.key},
                    payload.data,
                    bucket=bucket,
                    chunk_size=self.chunk_size,
                    recorder=rec,
                )
                if rec is not None:
                    t_sent = time.monotonic()
                # A vanished or wedged receiver surfaces as WireError
                # (the run's outer timeout is the only other backstop).
                await read_ack(stream)
            finally:
                await stream.aclose()
            end = time.monotonic()
        res = self.result
        res.sends_executed += 1
        res.uploaded_by_node[op.src] = res.uploaded_by_node.get(op.src, 0) + nbytes
        res.downloaded_by_node[op.dst] = res.downloaded_by_node.get(op.dst, 0) + nbytes
        cross = not self.cluster.same_rack(op.src, op.dst)
        if not cross:
            res.intra_rack_bytes += nbytes
        else:
            res.cross_rack_bytes += nbytes
            rack = self.cluster.rack_of(op.src)
            res.cross_uploaded_by_rack[rack] = (
                res.cross_uploaded_by_rack.get(rack, 0) + nbytes
            )
        self._record(oid, start, end)
        if rec is not None:
            rec.span(
                oid,
                start,
                end,
                category=OP_CATEGORY,
                op_id=oid,
                kind="transfer",
                node=op.src,
                peer=op.dst,
                cross_rack=cross,
                nbytes=nbytes,
            )
            rec.span("send.dep_wait", t_spawn, t_deps, op_id=oid, parent=oid)
            rec.span("send.port_wait", t_deps, t_ports, op_id=oid, parent=oid)
            rec.span("send.latency", start, t_lat, op_id=oid, parent=oid)
            rec.span("send.connect", t_lat, t_conn, op_id=oid, parent=oid)
            rec.span("send.stream", t_conn, t_sent, op_id=oid, parent=oid)
            rec.span("send.ack_wait", t_sent, end, op_id=oid, parent=oid)
            if t_sent > t_conn:
                rec.gauge(
                    f"throughput.n{op.src}->n{op.dst}",
                    nbytes / (t_sent - t_conn),
                    at=end,
                )

    async def _run_combine(self, oid: str, op: CombineOp) -> None:
        rec = self.rec
        t_spawn = time.monotonic() if rec is not None else 0.0
        await self._await_deps(op.deps)
        node_store = self.store.setdefault(op.node, {})
        missing = [key for key, _ in op.terms if key not in node_store]
        if missing:
            raise ExecutionError(
                missing_payload_message(
                    "combine", oid, self.indices[oid], len(self.plan.ops), missing, op.node
                )
            )
        t_deps = time.monotonic() if rec is not None else 0.0
        async with self.ports.hold(("cpu", op.node)):
            start = time.monotonic()
            # The GF kernel is a C-speed numpy pass over a (small, in the
            # validation harness) block; yield once around it so other
            # tasks are not starved at combine-heavy moments.
            await asyncio.sleep(0)
            node_store[op.out_key] = linear_combine(
                [c for _, c in op.terms],
                [node_store[key] for key, _ in op.terms],
                self.tables,
            )
            end = time.monotonic()
        self.result.combine_count += 1
        self._record(oid, start, end)
        if rec is not None:
            rec.span(
                oid,
                start,
                end,
                category=OP_CATEGORY,
                op_id=oid,
                kind="compute",
                node=op.node,
            )
            rec.span("combine.dep_wait", t_spawn, t_deps, op_id=oid, parent=oid)
            rec.span("combine.cpu_wait", t_deps, start, op_id=oid, parent=oid)

    # -- orchestration -----------------------------------------------------

    async def run(self, timeout: float | None) -> LiveResult:
        await self.transport.start(self.cluster.node_ids(), self.handle_connection)
        tasks = {}
        try:
            self._t0 = time.monotonic()
            if self.rec is not None:
                self.rec.set_origin(self._t0)
            for oid, op in self.plan.ops.items():
                runner = self._run_send if isinstance(op, SendOp) else self._run_combine
                tasks[oid] = asyncio.ensure_future(runner(oid, op))
            if tasks:
                done, pending = await asyncio.wait(
                    tasks.values(),
                    timeout=timeout,
                    return_when=asyncio.FIRST_EXCEPTION,
                )
                for task in pending:
                    task.cancel()
                if pending:
                    await asyncio.gather(*pending, return_exceptions=True)
                for task in done:
                    task.result()  # re-raise the first op failure
                if pending:
                    stuck = sorted(oid for oid, t in tasks.items() if not t.done() or t.cancelled())
                    raise LiveTimeoutError(
                        f"live run exceeded {timeout}s; unfinished ops: {stuck}"
                    )
        finally:
            for task in tasks.values():
                task.cancel()
            await self.transport.aclose()

        for block_id, (node, key) in self.plan.outputs.items():
            node_store = self.store.get(node, {})
            if key not in node_store:
                raise ExecutionError(
                    f"output for block {block_id}: payload {key!r} missing on node {node}"
                )
            self.result.recovered[block_id] = node_store[key]
        self.result.makespan = max(
            (t.end for t in self.result.timings.values()), default=0.0
        )
        if self.rec is not None:
            self.rec.count("bytes.cross_rack", float(self.result.cross_rack_bytes))
            self.rec.count("bytes.intra_rack", float(self.result.intra_rack_bytes))
            self.rec.count("ops.sends", float(self.result.sends_executed))
            self.rec.count("ops.combines", float(self.result.combine_count))
            self.result.telemetry = self.rec.trace()
        return self.result


async def run_plan_live(
    plan: RepairPlan,
    cluster: Cluster,
    store: dict[int, dict[str, np.ndarray]],
    *,
    bandwidth: BandwidthModel | None = None,
    transport: str | MemoryTransport | TcpTransport = "memory",
    tables: GFTables | None = None,
    chunk_size: int = DEFAULT_CHUNK,
    exclusive_ports: bool = True,
    timeout: float | None = 120.0,
    recorder: TelemetryRecorder | None = None,
) -> LiveResult:
    """Execute ``plan`` against ``store`` over the live runtime.

    Parameters
    ----------
    bandwidth:
        Shapes every link at the model's rate/latency; ``None`` runs
        unshaped (memory/loopback speed), the mode whose ledgers and
        recovered bytes must match :func:`repro.repair.execute_plan`.
    transport:
        ``"memory"`` (in-process streams), ``"tcp"`` (localhost
        sockets), or a pre-built transport instance.
    exclusive_ports:
        Enforce the engine's one-upload/one-download/one-CPU port model;
        turning it off lets transfers share links (pure backpressure).
    timeout:
        Hard wall-clock budget; a hang raises :class:`LiveTimeoutError`
        instead of stalling forever (CI jobs rely on this).
    recorder:
        Optional :class:`repro.telemetry.TelemetryRecorder` the run
        emits into — per-op spans with nested dep/port/latency/stream/
        ack phases, per-chunk write timings, token-bucket pacing stalls
        and per-link throughput samples; the finished trace lands on
        ``LiveResult.telemetry``.  ``None`` (or the falsy
        :data:`~repro.telemetry.NULL_RECORDER`) keeps the hot path
        uninstrumented.

    The store is mutated in place, exactly like the byte executor's.
    """
    live_transport = (
        open_transport(transport) if isinstance(transport, str) else transport
    )
    rec = recorder if recorder else None
    run = _LiveRun(
        plan,
        cluster,
        store,
        shaper=LinkShaper(cluster, bandwidth, recorder=rec),
        transport=live_transport,
        tables=tables or get_tables(),
        chunk_size=chunk_size,
        exclusive_ports=exclusive_ports,
        recorder=rec,
    )
    return await run.run(timeout)


def run_plan_live_sync(*args, **kwargs) -> LiveResult:
    """Blocking wrapper: ``asyncio.run`` around :func:`run_plan_live`."""
    return asyncio.run(run_plan_live(*args, **kwargs))
