"""Token-bucket link shaping — the wondershaper stand-in.

The paper's testbed throttled links with wondershaper (§5.1); here every
directed node pair gets a :class:`TokenBucket` fed at the scenario's
:meth:`repro.cluster.BandwidthModel.rate` and charged one chunk at a
time by the sender.  Pacing is *debt-based*: a send deducts its bytes
immediately and sleeps off any deficit, so long-run throughput converges
to the configured rate regardless of sleep jitter — oversleeping one
chunk accrues tokens for the next (bounded by ``capacity``), which is
what keeps shaped transfers within a few percent of ``nbytes / rate``
even on a noisy CI host.

The clock and sleep functions are injectable so the bucket's accounting
can be property-tested deterministically against a fake clock
(``tests/live/test_shaper.py``).
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable

from ..cluster import BandwidthModel, Cluster

__all__ = [
    "TokenBucket",
    "WeightedTokenBucket",
    "ClassedBucket",
    "LinkShaper",
    "QoSLinkShaper",
]

#: Default burst window in seconds: the bucket holds at most this much
#: rate-worth of credit, so a transfer can never run ahead of the shaped
#: rate by more than ``DEFAULT_BURST_S * rate`` bytes.
DEFAULT_BURST_S = 0.02


class TokenBucket:
    """Debt-based token bucket for one directed link.

    Parameters
    ----------
    rate:
        Bytes/second the link may carry.
    capacity:
        Maximum accrued credit in bytes (the burst).  Defaults to
        ``rate * DEFAULT_BURST_S``, floored at one typical chunk so tiny
        rates still make progress.
    clock / sleep:
        Injectable time sources (monotonic seconds, async sleep); tests
        substitute a fake pair to verify the accounting without real
        waiting.
    recorder / label:
        Optional :class:`repro.telemetry.TelemetryRecorder` the bucket
        reports pacing into (stall counts and durations, debt-at-stall
        gauge samples tagged with ``label``).  ``None`` — the default —
        keeps :meth:`acquire` on the exact uninstrumented instruction
        path; the perf harness bounds the residue.
    """

    def __init__(
        self,
        rate: float,
        capacity: float | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        sleep=asyncio.sleep,
        recorder=None,
        label: str = "",
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.rate = float(rate)
        self.capacity = (
            float(capacity)
            if capacity is not None
            else max(self.rate * DEFAULT_BURST_S, 16 * 1024.0)
        )
        self._clock = clock
        self._sleep = sleep
        # Start empty: the first transfer pays full fare from byte one,
        # matching the simulator's nbytes/rate accounting.  Credit only
        # accrues (up to ``capacity``) while the link sits idle, and as
        # compensation for oversleeping a pacing wait.
        self._tokens = 0.0
        self._last = clock()
        self._lock = asyncio.Lock()
        self._recorder = recorder if recorder else None
        self.label = label

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._last
        if elapsed > 0:
            self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)
        self._last = now

    def reset(self) -> None:
        """Drop idle credit at the start of a transfer.

        Credit accrued while the link sat idle (e.g. the sender was
        waiting for ports) would let the next transfer start up to
        ``capacity`` bytes ahead of the shaped rate; a transfer begins
        from zero so its duration is ``nbytes / rate`` like the
        simulator's.  Outstanding debt is kept — resets never forgive
        pacing already owed.
        """
        self._tokens = min(self._tokens, 0.0)
        self._last = self._clock()

    async def acquire(self, nbytes: int) -> None:
        """Charge ``nbytes`` against the bucket, sleeping off any deficit.

        The deduction happens before the wait, so concurrent senders on
        one link serialise fairly behind the lock and the aggregate
        long-run throughput is exactly ``rate``.

        The charge is exception-safe: if the pacing sleep is cancelled
        (the sender's task died mid-transfer), the deduction is rolled
        back — those bytes never went out, and the bucket outlives the
        transfer, so a leaked charge would tax the link's *next*
        transfer.
        """
        if nbytes <= 0:
            return
        async with self._lock:
            self._refill()
            self._tokens -= nbytes
            if self._tokens < 0:
                wait = -self._tokens / self.rate
                rec = self._recorder
                if rec is not None:
                    rec.count("pacing.stalls")
                    rec.observe("pacing.stall_s", wait)
                    rec.gauge(f"bucket.debt_bytes:{self.label}", -self._tokens)
                try:
                    await self._sleep(wait)
                except BaseException:
                    self._tokens = min(self._tokens + nbytes, self.capacity)
                    raise

    def refund(self, nbytes: int) -> None:
        """Return ``nbytes`` of charge that never reached the wire.

        Called by :func:`repro.live.wire.send_frame` when a chunk's
        write raises after its tokens were acquired.  Capped at
        ``capacity`` like any other credit, so a refund can never mint a
        burst larger than the configured one.
        """
        if nbytes <= 0:
            return
        self._tokens = min(self._tokens + nbytes, self.capacity)


class WeightedTokenBucket:
    """One link's rate split across priority classes, work-conserving.

    The QoS half of the shaper (docs/QOS.md): every class named in
    ``weights`` owns a guaranteed share ``rate * weight / sum(weights)``
    of the link, refilled continuously like :class:`TokenBucket`.  The
    split is *work-conserving* through borrowing: credit accrued to a
    class with no outstanding debt (nobody of that class is waiting) is
    donated to classes in debt, so a lone sender always sees the full
    link rate while competing classes converge to their weight ratio.

    Unlike :class:`TokenBucket`, pacing waits serialise only *within* a
    class (one lock per class): a foreground send never queues behind a
    background-repair send's pacing sleep — that head-of-line blocking
    is exactly what the priority split exists to remove.
    """

    def __init__(
        self,
        rate: float,
        weights: dict[str, float],
        *,
        capacity: float | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep=asyncio.sleep,
        recorder=None,
        label: str = "",
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if not weights:
            raise ValueError("need at least one traffic class")
        if any(w <= 0 for w in weights.values()):
            raise ValueError(f"weights must be positive, got {weights}")
        self.rate = float(rate)
        total = float(sum(weights.values()))
        self.shares: dict[str, float] = {
            cls: w / total for cls, w in weights.items()
        }
        self.capacity = (
            float(capacity)
            if capacity is not None
            else max(self.rate * DEFAULT_BURST_S, 16 * 1024.0)
        )
        self._clock = clock
        self._sleep = sleep
        self._recorder = recorder if recorder else None
        self.label = label
        self._tokens: dict[str, float] = {cls: 0.0 for cls in weights}
        self._last = clock()
        self._locks: dict[str, asyncio.Lock] = {
            cls: asyncio.Lock() for cls in weights
        }
        #: Cumulative bytes successfully charged per class — the NIC
        #: utilization ledger the store's ``stats`` RPC reports from.
        #: Refunds (bytes that never reached the wire) are subtracted.
        self.sent: dict[str, float] = {cls: 0.0 for cls in weights}

    def _cap(self, cls: str) -> float:
        return max(self.capacity * self.shares[cls], 1.0)

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._last
        if elapsed > 0:
            overflow = 0.0
            for cls, share in self.shares.items():
                cap = self._cap(cls)
                new = self._tokens[cls] + elapsed * self.rate * share
                if new > cap:
                    overflow += new - cap
                    new = cap
                self._tokens[cls] = new
            if overflow > 0:
                # Work conservation at refill time: credit an idle class
                # cannot hold (its accrual clipped at the burst cap) pays
                # down other classes' debt instead of evaporating.  Debt
                # only rises toward zero, never past it, so this mints no
                # burst — it just stops a lone sender's effective rate
                # from sagging below ``rate`` across long pacing stalls.
                for cls in self.shares:
                    bal = self._tokens[cls]
                    if bal < 0:
                        pay = min(overflow, -bal)
                        self._tokens[cls] = bal + pay
                        overflow -= pay
                        if overflow <= 0:
                            break
        self._last = now

    def _borrow(self, cls: str) -> None:
        """Pull idle classes' credit into ``cls``'s debt (work conservation).

        A class is *idle* when its balance is non-negative — no sender of
        that class is paying off debt — so its accrued tokens would
        otherwise sit unused while ``cls`` sleeps.
        """
        debt = -self._tokens[cls]
        if debt <= 0:
            return
        for donor in self.shares:
            if donor == cls:
                continue
            spare = self._tokens[donor]
            if spare <= 0:
                continue
            take = min(spare, debt)
            self._tokens[donor] -= take
            self._tokens[cls] += take
            debt -= take
            if debt <= 0:
                return

    def _idle_share(self, cls: str) -> float:
        """``cls``'s effective rate fraction: its share plus idle classes'."""
        share = self.shares[cls]
        for donor, donor_share in self.shares.items():
            if donor != cls and self._tokens[donor] >= 0:
                share += donor_share
        return share

    async def acquire(self, nbytes: int, cls: str) -> None:
        """Charge ``nbytes`` to class ``cls``, sleeping off any deficit.

        Debt-based like :meth:`TokenBucket.acquire`, but the pacing wait
        is recomputed each round at the class's *current* effective rate
        (guaranteed share plus whatever idle classes donate), so a class
        that becomes the lone sender speeds up mid-wait instead of
        honouring a stale worst-case estimate.
        """
        if nbytes <= 0:
            return
        if cls not in self.shares:
            raise KeyError(f"unknown traffic class {cls!r}; have {sorted(self.shares)}")
        async with self._locks[cls]:
            self._refill()
            self._tokens[cls] -= nbytes
            try:
                while True:
                    self._borrow(cls)
                    debt = -self._tokens[cls]
                    # Sub-byte residue is paid: a femtosecond wait would
                    # vanish into float absorption on a large clock value
                    # and spin this loop forever.
                    if debt <= 1e-6:
                        self.sent[cls] += nbytes
                        return
                    wait = debt / (self.rate * self._idle_share(cls))
                    rec = self._recorder
                    if rec is not None:
                        rec.count(f"pacing.stalls:{cls}")
                        rec.observe(f"pacing.stall_s:{cls}", wait)
                        rec.gauge(f"bucket.debt_bytes:{cls}:{self.label}", debt)
                    await self._sleep(wait)
                    self._refill()
            except BaseException:
                # Cancelled mid-wait: those bytes never went out; a leaked
                # charge would tax the class's next transfer.
                self._tokens[cls] = min(self._tokens[cls] + nbytes, self._cap(cls))
                raise

    def refund(self, nbytes: int, cls: str) -> None:
        """Return ``nbytes`` of ``cls`` charge that never reached the wire."""
        if nbytes <= 0:
            return
        self._tokens[cls] = min(self._tokens[cls] + nbytes, self._cap(cls))
        self.sent[cls] = max(0.0, self.sent[cls] - nbytes)


class ClassedBucket:
    """A single-class view of a :class:`WeightedTokenBucket`.

    Exposes the :class:`TokenBucket` ``acquire``/``refund`` surface so
    code written against plain buckets (the wire layer, repair sessions)
    can be pointed at one QoS class without knowing about the split.
    """

    __slots__ = ("bucket", "cls")

    def __init__(self, bucket: WeightedTokenBucket, cls: str) -> None:
        if cls not in bucket.shares:
            raise KeyError(f"unknown traffic class {cls!r}")
        self.bucket = bucket
        self.cls = cls

    @property
    def rate(self) -> float:
        return self.bucket.rate * self.bucket.shares[self.cls]

    async def acquire(self, nbytes: int) -> None:
        await self.bucket.acquire(nbytes, self.cls)

    def refund(self, nbytes: int) -> None:
        self.bucket.refund(nbytes, self.cls)

    def reset(self) -> None:
        """No-op: QoS buckets are shared across transfers and classes."""


class LinkShaper:
    """Per-link pacing for a cluster under a bandwidth model.

    Buckets are created lazily per directed ``(src, dst)`` pair at the
    model's rate for that pair; :meth:`latency` exposes the model's
    per-transfer setup delay so the runtime can apply it before the
    first byte (the wondershaper analogue of propagation delay).  A
    ``None`` bandwidth model turns shaping off entirely — transfers run
    at memory/loopback speed, which is the mode the byte-oracle
    equivalence tests use.
    """

    def __init__(
        self,
        cluster: Cluster,
        bandwidth: BandwidthModel | None,
        *,
        burst_s: float = DEFAULT_BURST_S,
        clock: Callable[[], float] = time.monotonic,
        sleep=asyncio.sleep,
        recorder=None,
    ) -> None:
        self.cluster = cluster
        self.bandwidth = bandwidth
        self.burst_s = burst_s
        self._clock = clock
        self._sleep = sleep
        self._recorder = recorder if recorder else None
        self._buckets: dict[tuple[int, int], TokenBucket] = {}

    @property
    def shaped(self) -> bool:
        return self.bandwidth is not None

    def bucket(self, src: int, dst: int) -> TokenBucket | None:
        """The pacing bucket for ``src -> dst`` (``None`` when unshaped)."""
        if self.bandwidth is None:
            return None
        key = (src, dst)
        found = self._buckets.get(key)
        if found is None:
            rate = self.bandwidth.rate(self.cluster, src, dst)
            found = self._buckets[key] = TokenBucket(
                rate,
                capacity=max(rate * self.burst_s, 1.0),
                clock=self._clock,
                sleep=self._sleep,
                recorder=self._recorder,
                label=f"n{src}->n{dst}",
            )
        return found

    def rate(self, src: int, dst: int) -> float | None:
        if self.bandwidth is None:
            return None
        return self.bandwidth.rate(self.cluster, src, dst)

    def latency(self, src: int, dst: int) -> float:
        if self.bandwidth is None:
            return 0.0
        return self.bandwidth.latency(self.cluster, src, dst)


class QoSLinkShaper(LinkShaper):
    """A :class:`LinkShaper` whose links are split across traffic classes.

    Each directed link gets one :class:`WeightedTokenBucket` instead of a
    plain :class:`TokenBucket`; :meth:`bucket` takes the traffic class
    and hands back a :class:`ClassedBucket` view, so existing bucket
    consumers keep their interface while every class on a link shares
    one rate budget with weighted guarantees and work-conserving
    borrowing.  Class names are caller-defined; the canonical
    foreground/deadline-repair/background-repair split lives in
    :mod:`repro.qos.classes`.
    """

    def __init__(
        self,
        cluster: Cluster,
        bandwidth: BandwidthModel | None,
        weights: dict[str, float],
        *,
        burst_s: float = DEFAULT_BURST_S,
        clock: Callable[[], float] = time.monotonic,
        sleep=asyncio.sleep,
        recorder=None,
    ) -> None:
        super().__init__(
            cluster, bandwidth, burst_s=burst_s, clock=clock, sleep=sleep,
            recorder=recorder,
        )
        if not weights:
            raise ValueError("need at least one traffic class")
        self.weights = dict(weights)
        self._links: dict[tuple[int, int], WeightedTokenBucket] = {}

    def link(self, src: int, dst: int) -> WeightedTokenBucket | None:
        """The shared weighted bucket for ``src -> dst`` (lazily built)."""
        if self.bandwidth is None:
            return None
        key = (src, dst)
        found = self._links.get(key)
        if found is None:
            rate = self.bandwidth.rate(self.cluster, src, dst)
            found = self._links[key] = WeightedTokenBucket(
                rate,
                self.weights,
                capacity=max(rate * self.burst_s, 1.0),
                clock=self._clock,
                sleep=self._sleep,
                recorder=self._recorder,
                label=f"n{src}->n{dst}",
            )
        return found

    def bucket(self, src: int, dst: int, cls: str | None = None):
        """The pacing bucket for one class on ``src -> dst``.

        With ``cls=None`` this degrades to the base class's unclassed
        bucket (so a :class:`QoSLinkShaper` can stand in anywhere a
        :class:`LinkShaper` is expected); with a class name it returns
        the weighted link's :class:`ClassedBucket` view.
        """
        if cls is None:
            return super().bucket(src, dst)
        link = self.link(src, dst)
        if link is None:
            return None
        return ClassedBucket(link, cls)
