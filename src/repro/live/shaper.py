"""Token-bucket link shaping — the wondershaper stand-in.

The paper's testbed throttled links with wondershaper (§5.1); here every
directed node pair gets a :class:`TokenBucket` fed at the scenario's
:meth:`repro.cluster.BandwidthModel.rate` and charged one chunk at a
time by the sender.  Pacing is *debt-based*: a send deducts its bytes
immediately and sleeps off any deficit, so long-run throughput converges
to the configured rate regardless of sleep jitter — oversleeping one
chunk accrues tokens for the next (bounded by ``capacity``), which is
what keeps shaped transfers within a few percent of ``nbytes / rate``
even on a noisy CI host.

The clock and sleep functions are injectable so the bucket's accounting
can be property-tested deterministically against a fake clock
(``tests/live/test_shaper.py``).
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable

from ..cluster import BandwidthModel, Cluster

__all__ = ["TokenBucket", "LinkShaper"]

#: Default burst window in seconds: the bucket holds at most this much
#: rate-worth of credit, so a transfer can never run ahead of the shaped
#: rate by more than ``DEFAULT_BURST_S * rate`` bytes.
DEFAULT_BURST_S = 0.02


class TokenBucket:
    """Debt-based token bucket for one directed link.

    Parameters
    ----------
    rate:
        Bytes/second the link may carry.
    capacity:
        Maximum accrued credit in bytes (the burst).  Defaults to
        ``rate * DEFAULT_BURST_S``, floored at one typical chunk so tiny
        rates still make progress.
    clock / sleep:
        Injectable time sources (monotonic seconds, async sleep); tests
        substitute a fake pair to verify the accounting without real
        waiting.
    recorder / label:
        Optional :class:`repro.telemetry.TelemetryRecorder` the bucket
        reports pacing into (stall counts and durations, debt-at-stall
        gauge samples tagged with ``label``).  ``None`` — the default —
        keeps :meth:`acquire` on the exact uninstrumented instruction
        path; the perf harness bounds the residue.
    """

    def __init__(
        self,
        rate: float,
        capacity: float | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        sleep=asyncio.sleep,
        recorder=None,
        label: str = "",
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.rate = float(rate)
        self.capacity = (
            float(capacity)
            if capacity is not None
            else max(self.rate * DEFAULT_BURST_S, 16 * 1024.0)
        )
        self._clock = clock
        self._sleep = sleep
        # Start empty: the first transfer pays full fare from byte one,
        # matching the simulator's nbytes/rate accounting.  Credit only
        # accrues (up to ``capacity``) while the link sits idle, and as
        # compensation for oversleeping a pacing wait.
        self._tokens = 0.0
        self._last = clock()
        self._lock = asyncio.Lock()
        self._recorder = recorder if recorder else None
        self.label = label

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._last
        if elapsed > 0:
            self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)
        self._last = now

    def reset(self) -> None:
        """Drop idle credit at the start of a transfer.

        Credit accrued while the link sat idle (e.g. the sender was
        waiting for ports) would let the next transfer start up to
        ``capacity`` bytes ahead of the shaped rate; a transfer begins
        from zero so its duration is ``nbytes / rate`` like the
        simulator's.  Outstanding debt is kept — resets never forgive
        pacing already owed.
        """
        self._tokens = min(self._tokens, 0.0)
        self._last = self._clock()

    async def acquire(self, nbytes: int) -> None:
        """Charge ``nbytes`` against the bucket, sleeping off any deficit.

        The deduction happens before the wait, so concurrent senders on
        one link serialise fairly behind the lock and the aggregate
        long-run throughput is exactly ``rate``.

        The charge is exception-safe: if the pacing sleep is cancelled
        (the sender's task died mid-transfer), the deduction is rolled
        back — those bytes never went out, and the bucket outlives the
        transfer, so a leaked charge would tax the link's *next*
        transfer.
        """
        if nbytes <= 0:
            return
        async with self._lock:
            self._refill()
            self._tokens -= nbytes
            if self._tokens < 0:
                wait = -self._tokens / self.rate
                rec = self._recorder
                if rec is not None:
                    rec.count("pacing.stalls")
                    rec.observe("pacing.stall_s", wait)
                    rec.gauge(f"bucket.debt_bytes:{self.label}", -self._tokens)
                try:
                    await self._sleep(wait)
                except BaseException:
                    self._tokens = min(self._tokens + nbytes, self.capacity)
                    raise

    def refund(self, nbytes: int) -> None:
        """Return ``nbytes`` of charge that never reached the wire.

        Called by :func:`repro.live.wire.send_frame` when a chunk's
        write raises after its tokens were acquired.  Capped at
        ``capacity`` like any other credit, so a refund can never mint a
        burst larger than the configured one.
        """
        if nbytes <= 0:
            return
        self._tokens = min(self._tokens + nbytes, self.capacity)


class LinkShaper:
    """Per-link pacing for a cluster under a bandwidth model.

    Buckets are created lazily per directed ``(src, dst)`` pair at the
    model's rate for that pair; :meth:`latency` exposes the model's
    per-transfer setup delay so the runtime can apply it before the
    first byte (the wondershaper analogue of propagation delay).  A
    ``None`` bandwidth model turns shaping off entirely — transfers run
    at memory/loopback speed, which is the mode the byte-oracle
    equivalence tests use.
    """

    def __init__(
        self,
        cluster: Cluster,
        bandwidth: BandwidthModel | None,
        *,
        burst_s: float = DEFAULT_BURST_S,
        clock: Callable[[], float] = time.monotonic,
        sleep=asyncio.sleep,
        recorder=None,
    ) -> None:
        self.cluster = cluster
        self.bandwidth = bandwidth
        self.burst_s = burst_s
        self._clock = clock
        self._sleep = sleep
        self._recorder = recorder if recorder else None
        self._buckets: dict[tuple[int, int], TokenBucket] = {}

    @property
    def shaped(self) -> bool:
        return self.bandwidth is not None

    def bucket(self, src: int, dst: int) -> TokenBucket | None:
        """The pacing bucket for ``src -> dst`` (``None`` when unshaped)."""
        if self.bandwidth is None:
            return None
        key = (src, dst)
        found = self._buckets.get(key)
        if found is None:
            rate = self.bandwidth.rate(self.cluster, src, dst)
            found = self._buckets[key] = TokenBucket(
                rate,
                capacity=max(rate * self.burst_s, 1.0),
                clock=self._clock,
                sleep=self._sleep,
                recorder=self._recorder,
                label=f"n{src}->n{dst}",
            )
        return found

    def rate(self, src: int, dst: int) -> float | None:
        if self.bandwidth is None:
            return None
        return self.bandwidth.rate(self.cluster, src, dst)

    def latency(self, src: int, dst: int) -> float:
        if self.bandwidth is None:
            return 0.0
        return self.bandwidth.latency(self.cluster, src, dst)
