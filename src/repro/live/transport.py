"""Byte-stream transports for the live runtime.

Two interchangeable transports carry the wire protocol:

* :class:`TcpTransport` — every node runs a real ``asyncio`` TCP server
  on ``127.0.0.1`` (ephemeral port); sends open a localhost connection
  per transfer.  This is the "real sockets" mode: kernel buffers, TCP
  flow control, genuine backpressure.
* :class:`MemoryTransport` — in-process duplex streams with an explicit
  high-water mark, for CI and sandboxes where sockets are unavailable
  or flaky.  Backpressure is preserved: a writer outrunning its reader
  blocks once the buffered bytes exceed the high-water mark, exactly
  like a full TCP window.

Both hand out :class:`Stream` objects (``read_exactly`` / ``write`` /
``aclose``) so the runtime and wire layers never branch on the mode.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Iterable

__all__ = [
    "Stream",
    "MemoryStream",
    "TcpStream",
    "MemoryTransport",
    "TcpTransport",
    "cancel_and_wait",
    "connect_tcp",
    "open_transport",
]


async def cancel_and_wait(task: asyncio.Task, *, poke_interval: float = 0.25) -> None:
    """Cancel ``task`` and wait until it has actually finished.

    A bare ``task.cancel(); await task`` can hang forever on a task that
    does network I/O: the one injected ``CancelledError`` can be absorbed
    mid-RPC — a ``finally`` await raising its own error over it, or the
    ``wait_for`` race where the inner future completes just as the cancel
    arrives — after which the task goes back to its idle loop with nobody
    left to cancel it again.  Re-issuing the cancel every
    ``poke_interval`` seconds until ``task.done()`` makes teardown
    converge no matter where the first cancel landed.
    """
    while not task.done():
        task.cancel()
        await asyncio.wait({task}, timeout=poke_interval)
    try:
        task.result()
    except asyncio.CancelledError:
        pass

#: Handler invoked server-side per incoming connection: (node_id, stream).
ConnectionHandler = Callable[[int, "Stream"], Awaitable[None]]

#: Buffered bytes per direction before a memory-stream writer blocks.
DEFAULT_HIGH_WATER = 256 * 1024


class Stream:
    """Minimal duplex byte-stream interface shared by both transports.

    ``write`` accepts any bytes-like object — the wire layer passes
    ``memoryview`` slices of the sender's payload arena straight
    through, so chunking a frame never copies on the send side.
    ``read_exactly_into`` is the receive-side counterpart: it fills a
    caller-provided view (a slice of one preallocated frame buffer), so
    transports that can copy straight from their internal buffer skip
    the intermediate ``bytes`` object ``read_exactly`` must build.
    """

    async def read_exactly(self, n: int) -> bytes:
        raise NotImplementedError

    async def read_exactly_into(self, view: memoryview) -> None:
        """Fill ``view`` completely from the stream.

        Default falls back to :meth:`read_exactly` plus one copy;
        transports override it when they can do better.
        """
        view[:] = await self.read_exactly(len(view))

    async def write(self, data: "bytes | bytearray | memoryview") -> None:
        """Write ``data`` honouring the transport's backpressure."""
        raise NotImplementedError

    async def aclose(self) -> None:
        raise NotImplementedError


class _MemoryDuct:
    """One direction of an in-process pipe with a high-water mark."""

    def __init__(self, high_water: int) -> None:
        self._buffer = bytearray()
        self._high_water = high_water
        self._eof = False
        self._cond = asyncio.Condition()

    async def feed(self, data: "bytes | bytearray | memoryview") -> None:
        async with self._cond:
            if self._eof:
                raise ConnectionResetError("peer closed the stream")
            # Backpressure: block while the reader is behind.
            while len(self._buffer) >= self._high_water and not self._eof:
                await self._cond.wait()
            if self._eof:
                raise ConnectionResetError("peer closed the stream")
            self._buffer.extend(data)
            self._cond.notify_all()

    async def read_exactly(self, n: int) -> bytes:
        async with self._cond:
            while len(self._buffer) < n:
                if self._eof:
                    raise asyncio.IncompleteReadError(bytes(self._buffer), n)
                await self._cond.wait()
            out = bytes(self._buffer[:n])
            del self._buffer[:n]
            self._cond.notify_all()
            return out

    async def read_into(self, view: memoryview) -> None:
        """Copy straight from the duct buffer into ``view`` (one copy)."""
        n = len(view)
        async with self._cond:
            while len(self._buffer) < n:
                if self._eof:
                    raise asyncio.IncompleteReadError(bytes(self._buffer), n)
                await self._cond.wait()
            with memoryview(self._buffer) as buffered:
                view[:] = buffered[:n]
            del self._buffer[:n]
            self._cond.notify_all()

    async def close(self) -> None:
        async with self._cond:
            self._eof = True
            self._cond.notify_all()


class MemoryStream(Stream):
    """One endpoint of an in-process duplex connection."""

    def __init__(self, read_duct: _MemoryDuct, write_duct: _MemoryDuct) -> None:
        self._read = read_duct
        self._write = write_duct

    @classmethod
    def pair(cls, high_water: int = DEFAULT_HIGH_WATER) -> tuple["MemoryStream", "MemoryStream"]:
        """A connected (client, server) stream pair."""
        a_to_b = _MemoryDuct(high_water)
        b_to_a = _MemoryDuct(high_water)
        return cls(b_to_a, a_to_b), cls(a_to_b, b_to_a)

    async def read_exactly(self, n: int) -> bytes:
        return await self._read.read_exactly(n)

    async def read_exactly_into(self, view: memoryview) -> None:
        await self._read.read_into(view)

    async def write(self, data: "bytes | bytearray | memoryview") -> None:
        await self._write.feed(data)

    async def aclose(self) -> None:
        await self._write.close()
        await self._read.close()


class TcpStream(Stream):
    """A real socket connection wrapped in the common interface."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer

    async def read_exactly(self, n: int) -> bytes:
        return await self._reader.readexactly(n)

    async def write(self, data: "bytes | bytearray | memoryview") -> None:
        # StreamWriter.write copies bytes-like data into the transport
        # buffer immediately, so passing a view of a reused arena is safe.
        self._writer.write(data)
        await self._writer.drain()

    async def aclose(self) -> None:
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, BrokenPipeError):  # pragma: no cover - teardown race
            pass


class MemoryTransport:
    """In-process streams: ``connect`` spawns the node's handler directly."""

    name = "memory"

    def __init__(self, high_water: int = DEFAULT_HIGH_WATER) -> None:
        self._high_water = high_water
        self._handler: ConnectionHandler | None = None
        self._tasks: set[asyncio.Task] = set()

    async def start(self, node_ids: Iterable[int], handler: ConnectionHandler) -> None:
        self._handler = handler

    async def connect(self, src: int, dst: int) -> Stream:
        if self._handler is None:
            raise RuntimeError("transport not started")
        client, server = MemoryStream.pair(self._high_water)
        task = asyncio.ensure_future(self._handler(dst, server))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return client

    async def aclose(self) -> None:
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()


async def connect_tcp(
    host: str,
    port: int,
    *,
    attempts: int = 5,
    initial_backoff: float = 0.05,
    max_backoff: float = 1.0,
) -> TcpStream:
    """Open a TCP connection, retrying ``ConnectionRefusedError``.

    A freshly-spawned daemon (or a node server racing a back-to-back
    validation run) may not be listening yet when the first connect
    lands; refusals are retried with capped exponential backoff instead
    of failing the whole run on a startup race.  Any other error — and
    the final refusal — propagates.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    delay = initial_backoff
    for attempt in range(attempts):
        try:
            reader, writer = await asyncio.open_connection(host, port)
            return TcpStream(reader, writer)
        except ConnectionRefusedError:
            if attempt == attempts - 1:
                raise
            await asyncio.sleep(delay)
            delay = min(delay * 2, max_backoff)
    raise AssertionError("unreachable")  # pragma: no cover


class TcpTransport:
    """Localhost TCP: one ``asyncio`` server per node.

    Every node binds port 0 — the kernel picks a free ephemeral port —
    and the chosen port is recorded in the transport's node registry
    (:meth:`port_of`), never assumed.  Binding a remembered port would
    race back-to-back runs: the old server's socket can linger in
    TIME_WAIT while the next run tries to claim the same number.
    """

    name = "tcp"

    def __init__(self, host: str = "127.0.0.1") -> None:
        self.host = host
        self._servers: dict[int, asyncio.base_events.Server] = {}
        self._ports: dict[int, int] = {}

    async def start(self, node_ids: Iterable[int], handler: ConnectionHandler) -> None:
        if self._servers:
            raise RuntimeError(
                "TcpTransport already started; aclose() it before reuse — "
                "restarting over live servers leaks them and leaves the "
                "port registry pointing at dead sockets"
            )
        for node_id in node_ids:

            async def on_connect(reader, writer, node_id=node_id):
                await handler(node_id, TcpStream(reader, writer))

            server = await asyncio.start_server(on_connect, self.host, 0)
            self._servers[node_id] = server
            self._ports[node_id] = server.sockets[0].getsockname()[1]

    def port_of(self, node_id: int) -> int:
        """The ephemeral port node ``node_id`` listens on (after start)."""
        return self._ports[node_id]

    async def connect(self, src: int, dst: int) -> Stream:
        return await connect_tcp(self.host, self._ports[dst], attempts=3)

    async def aclose(self) -> None:
        for server in self._servers.values():
            server.close()
        for server in self._servers.values():
            await server.wait_closed()
        self._servers.clear()
        self._ports.clear()


def open_transport(kind: str):
    """Build a transport by name (``memory`` or ``tcp``)."""
    if kind == "memory":
        return MemoryTransport()
    if kind == "tcp":
        return TcpTransport()
    raise ValueError(f"unknown transport {kind!r}; expected 'memory' or 'tcp'")
