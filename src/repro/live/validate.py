"""Cross-validation: the live runtime vs the discrete-event simulator.

The simulator predicts; the live runtime measures.  This module runs the
*same scenario* — same code, placement, failure set, bandwidth model and
plan objects — through both and reports, per scheme:

* **byte oracle** — the live runtime's recovered payloads must equal the
  lost originals bit for bit (the correctness half);
* **measured vs predicted makespan** — the live wall clock against the
  simulated makespan, as a ratio (the calibration half, the CR-SIM-style
  trust argument: a simulator is only believed once measurements agree).

Scenarios are scaled down from the paper's 256 MB / 1 Gb/s testbed to
block sizes and rates where a repair takes tenths of a second, keeping
the *shape* of the schedule (serialisation on ports, pipelined rounds)
while making the harness runnable in CI.  The acceptance bar is the
scheme *ordering*: measured makespans must rank the schemes the way the
simulator does (RPR <= CAR <= traditional).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..cluster import BandwidthModel, HierarchicalBandwidth
from ..experiments import ExperimentEnv, build_simics_environment, context_for
from ..repair import (
    CARRepair,
    RepairScheme,
    RPRScheme,
    TraditionalRepair,
    initial_store_for,
    simulate_repair,
)
from ..telemetry import CLOCK_WALL, TelemetryRecorder, TraceDiff, diff_repair
from ..workloads import encoded_stripe
from .runtime import LiveResult, run_plan_live_sync

__all__ = [
    "DEFAULT_LIVE_BANDWIDTH",
    "DEFAULT_LIVE_BLOCK",
    "LiveSchemeReport",
    "LiveValidationReport",
    "StoreRepairAudit",
    "audit_store_repairs",
    "live_environment",
    "run_live_validation",
]

#: Scaled-down testbed rates: the paper's 10:1 intra/cross ratio at
#: speeds where one cross-rack block transfer takes ~80 ms (64 KiB
#: blocks), so full repairs finish in well under a second but stay far
#: above event-loop jitter.
DEFAULT_LIVE_BANDWIDTH = HierarchicalBandwidth(intra=8e6, cross=8e5)

#: Default live block size (bytes).
DEFAULT_LIVE_BLOCK = 64 * 1024

_SCHEMES: dict[str, type[RepairScheme]] = {
    "traditional": TraditionalRepair,
    "car": CARRepair,
    "rpr": RPRScheme,
}


@dataclass(frozen=True)
class LiveSchemeReport:
    """One scheme's cross-validation row.

    ``diff`` upgrades the row from aggregate calibration to per-op
    attribution: when the validation ran with ``telemetry=True`` it
    holds the :class:`~repro.telemetry.TraceDiff` aligning every sim op
    span against its measured counterpart (so a drifted ``ratio`` can be
    pinned to the transfer or port claim that caused it).
    """

    scheme: str
    predicted_s: float
    measured_s: float
    bytes_ok: bool
    ops: int
    sends: int
    combines: int
    cross_rack_bytes: int
    sim_cross_rack_bytes: int
    diff: TraceDiff | None = None

    @property
    def ratio(self) -> float:
        """Measured / predicted makespan (1.0 = perfect calibration)."""
        return self.measured_s / self.predicted_s if self.predicted_s > 0 else float("inf")

    def to_dict(self) -> dict:
        return {
            "scheme": self.scheme,
            "predicted_s": self.predicted_s,
            "measured_s": self.measured_s,
            "ratio": self.ratio,
            "bytes_ok": self.bytes_ok,
            "ops": self.ops,
            "sends": self.sends,
            "combines": self.combines,
            "cross_rack_bytes": self.cross_rack_bytes,
            "sim_cross_rack_bytes": self.sim_cross_rack_bytes,
            "diff": self.diff.to_dict() if self.diff is not None else None,
        }


@dataclass(frozen=True)
class LiveValidationReport:
    """Cross-validation verdict for one scenario across schemes."""

    n: int
    k: int
    failed: tuple[int, ...]
    block_size: int
    transport: str
    rows: tuple[LiveSchemeReport, ...]

    @property
    def all_bytes_ok(self) -> bool:
        return all(row.bytes_ok for row in self.rows)

    def ordering_ok(self, tolerance: float = 0.05) -> bool:
        """Do measured makespans rank schemes like the predictions?

        Schemes are sorted by predicted makespan; the measured series
        must be non-decreasing in that order, allowing ``tolerance``
        relative slack for timer noise between near-tied schemes.
        """
        ranked = sorted(self.rows, key=lambda r: r.predicted_s)
        return all(
            later.measured_s >= earlier.measured_s * (1.0 - tolerance)
            for earlier, later in zip(ranked, ranked[1:])
        )

    def to_dict(self) -> dict:
        return {
            "code": [self.n, self.k],
            "failed": list(self.failed),
            "block_size": self.block_size,
            "transport": self.transport,
            "all_bytes_ok": self.all_bytes_ok,
            "ordering_ok": self.ordering_ok(),
            "schemes": [row.to_dict() for row in self.rows],
        }


@dataclass(frozen=True)
class StoreRepairAudit:
    """Independent verdict over a store service's repair records.

    The coordinator stamps each record with its own ``ledger_match``;
    this audit re-derives the comparison from the raw ``measured`` and
    ``simulated`` numbers so a coordinator bug cannot grade its own
    homework.  ``mismatches`` holds the offending records verbatim.
    """

    repairs: int
    ledger_ok: bool
    measured_cross_rack_bytes: int
    simulated_cross_rack_bytes: int
    mismatches: tuple[dict, ...]

    def to_dict(self) -> dict:
        return {
            "repairs": self.repairs,
            "ledger_ok": self.ledger_ok,
            "measured_cross_rack_bytes": self.measured_cross_rack_bytes,
            "simulated_cross_rack_bytes": self.simulated_cross_rack_bytes,
            "mismatches": list(self.mismatches),
        }


def audit_store_repairs(records) -> StoreRepairAudit:
    """Cross-check store repair records against the simulator's ledger.

    ``records`` is the ``repairs`` list from a coordinator ``status``
    reply (or :meth:`repro.store.StoreClient.status`): one dict per
    repaired stripe carrying the ``measured`` ledger aggregated from
    daemon op reports and the ``simulated`` outcome for the same plan.
    A record mismatches when its measured cross-rack bytes differ from
    the simulator's prediction — the byte-exactness contract the whole
    service is built around.
    """
    records = list(records)
    mismatches = tuple(
        rec
        for rec in records
        if int(rec["measured"]["cross_rack_bytes"])
        != int(rec["simulated"]["cross_rack_bytes"])
    )
    return StoreRepairAudit(
        repairs=len(records),
        ledger_ok=not mismatches,
        measured_cross_rack_bytes=sum(
            int(rec["measured"]["cross_rack_bytes"]) for rec in records
        ),
        simulated_cross_rack_bytes=sum(
            int(rec["simulated"]["cross_rack_bytes"]) for rec in records
        ),
        mismatches=mismatches,
    )


def live_environment(
    n: int,
    k: int,
    *,
    block_size: int = DEFAULT_LIVE_BLOCK,
    bandwidth: BandwidthModel | None = None,
    placement: str = "rpr",
) -> ExperimentEnv:
    """The Simics-shaped testbed, scaled for live execution.

    Same topology and placement as
    :func:`repro.experiments.build_simics_environment`, but with small
    blocks and the scaled :data:`DEFAULT_LIVE_BANDWIDTH` so wall-clock
    repairs finish in tenths of a second.
    """
    env = build_simics_environment(n, k, placement=placement, block_size=block_size)
    return replace(env, bandwidth=bandwidth or DEFAULT_LIVE_BANDWIDTH)


def run_live_validation(
    n: int,
    k: int,
    failed,
    *,
    schemes=None,
    block_size: int = DEFAULT_LIVE_BLOCK,
    bandwidth: BandwidthModel | None = None,
    transport: str = "memory",
    seed: int = 0,
    timeout: float = 120.0,
    placement: str = "rpr",
    telemetry: bool = False,
) -> LiveValidationReport:
    """Run one scenario through the simulator *and* the live runtime.

    For every scheme: plan once, predict the makespan with
    :func:`repro.repair.simulate_repair`, execute the very same plan on
    real bytes through :func:`repro.live.run_plan_live`, and check the
    recovered payloads against the lost originals.

    With ``telemetry=True`` every live run records a full wall-clock
    telemetry trace and each row carries the sim↔live
    :class:`~repro.telemetry.TraceDiff` (per-op measured/predicted
    ratios, critical-path delta) in its ``diff`` field.

    Multi-block failures drop CAR automatically (it is single-failure
    only, as in the paper).
    """
    failed = tuple(sorted(failed))
    env = live_environment(
        n, k, block_size=block_size, bandwidth=bandwidth, placement=placement
    )
    if schemes is None:
        schemes = ["traditional", "rpr"] if len(failed) > 1 else list(_SCHEMES)
    stripe = encoded_stripe(env.code, block_size, seed=seed)
    ctx = context_for(env, failed)

    rows = []
    for name in schemes:
        scheme = _SCHEMES[name]()
        predicted = simulate_repair(scheme, ctx, env.bandwidth)
        store = initial_store_for(stripe, env.placement, failed)
        recorder = (
            TelemetryRecorder(
                CLOCK_WALL,
                meta={"source": "live", "scheme": scheme.name, "transport": transport},
            )
            if telemetry
            else None
        )
        live: LiveResult = run_plan_live_sync(
            predicted.plan,
            env.cluster,
            store,
            bandwidth=env.bandwidth,
            transport=transport,
            timeout=timeout,
            recorder=recorder,
        )
        bytes_ok = all(
            block in live.recovered
            and np.array_equal(live.recovered[block], stripe.get_payload(block))
            for block in failed
        )
        rows.append(
            LiveSchemeReport(
                scheme=scheme.name,
                predicted_s=predicted.total_repair_time,
                measured_s=live.makespan,
                bytes_ok=bytes_ok,
                ops=len(predicted.plan.ops),
                sends=len(predicted.plan.sends()),
                combines=len(predicted.plan.combines()),
                cross_rack_bytes=live.cross_rack_bytes,
                sim_cross_rack_bytes=int(predicted.cross_rack_bytes),
                diff=diff_repair(predicted, live) if telemetry else None,
            )
        )
    return LiveValidationReport(
        n=n,
        k=k,
        failed=failed,
        block_size=block_size,
        transport=transport,
        rows=tuple(rows),
    )
