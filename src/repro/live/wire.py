"""The framed wire protocol the live runtime speaks.

One transfer is one frame on one connection:

```
+----------+----------------+--------------------------+
| !I hlen  | hlen JSON hdr  | payload bytes (chunked)  |
+----------+----------------+--------------------------+
```

The header names the op and the payload key; the payload streams in
``chunk_size`` pieces, each charged against the link's
:class:`~repro.live.shaper.TokenBucket` *before* it is written, so the
shaped rate bounds the wire rate and backpressure from a slow receiver
propagates to the sender naturally.  The receiver stores the payload and
answers a single :data:`ACK` byte; the sender treats the ack as transfer
completion (the moment the simulator calls ``TRANSFER_END``).
"""

from __future__ import annotations

import json
import struct

from .shaper import TokenBucket
from .transport import Stream

__all__ = ["ACK", "DEFAULT_CHUNK", "send_frame", "read_frame", "WireError"]

_HEADER_LEN = struct.Struct("!I")

#: Single ack byte the receiver returns once the payload is stored.
ACK = b"\x06"

#: Default streaming chunk; small enough that shaping is smooth at the
#: validation harness's scaled-down rates, large enough to amortise
#: per-chunk overhead on real sockets.
DEFAULT_CHUNK = 16 * 1024


class WireError(ConnectionError):
    """Raised on malformed frames or unexpected stream endings."""


async def send_frame(
    stream: Stream,
    header: dict,
    payload,  # any C-contiguous buffer: bytes, bytearray, memoryview, ndarray
    *,
    bucket: TokenBucket | None = None,
    chunk_size: int = DEFAULT_CHUNK,
    recorder=None,
) -> None:
    """Write one frame, pacing payload chunks through ``bucket``.

    With a truthy ``recorder`` (a
    :class:`repro.telemetry.TelemetryRecorder`), every chunk write lands
    in the ``chunk.write_s`` histogram plus a ``chunks.sent`` counter —
    the per-chunk half of the live runtime's send timing (the pacing
    half is the bucket's own ``pacing.*`` emission).  ``None`` keeps the
    loop on the uninstrumented path.
    """
    view = memoryview(payload)
    if view.ndim != 1 or view.itemsize != 1:
        view = view.cast("B")
    head = dict(header)
    head["nbytes"] = len(view)
    encoded = json.dumps(head, separators=(",", ":")).encode()
    await stream.write(_HEADER_LEN.pack(len(encoded)) + encoded)
    rec = recorder if recorder else None
    # Chunks go to the transport as slices of the caller's buffer — no
    # per-chunk bytes() copies; both transports accept views directly.
    for offset in range(0, len(view), chunk_size):
        chunk = view[offset : offset + chunk_size]
        if bucket is not None:
            await bucket.acquire(len(chunk))
        if rec is not None:
            t0 = rec.now()
            await stream.write(chunk)
            rec.observe("chunk.write_s", rec.now() - t0)
            rec.count("chunks.sent")
        else:
            await stream.write(chunk)


async def read_frame(
    stream: Stream, *, chunk_size: int = DEFAULT_CHUNK
) -> tuple[dict, bytearray]:
    """Read one frame; returns ``(header, payload)``.

    The payload is assembled chunk by chunk straight into one bytearray
    preallocated at the header's ``nbytes`` — no growing, no chunk-list
    join, no final copy.  The bytearray is handed to the caller, who
    typically wraps it zero-copy (``np.frombuffer``) for storage.
    """
    try:
        (hlen,) = _HEADER_LEN.unpack(await stream.read_exactly(_HEADER_LEN.size))
        header = json.loads(await stream.read_exactly(hlen))
        nbytes = int(header["nbytes"])
        if nbytes < 0:
            raise ValueError(f"negative payload length {nbytes}")
        payload = bytearray(nbytes)
        with memoryview(payload) as view:
            for offset in range(0, nbytes, chunk_size):
                await stream.read_exactly_into(
                    view[offset : offset + chunk_size]
                )
    except (json.JSONDecodeError, KeyError, ValueError, struct.error) as exc:
        raise WireError(f"malformed frame: {exc}") from exc
    return header, payload
