"""The framed wire protocol the live runtime and store service speak.

One transfer is one frame on one connection:

```
+----------+----------------+--------------------------+
| !I hlen  | hlen JSON hdr  | payload bytes (chunked)  |
+----------+----------------+--------------------------+
```

The header names the op and the payload key; the payload streams in
``chunk_size`` pieces, each charged against the link's
:class:`~repro.live.shaper.TokenBucket` *before* it is written, so the
shaped rate bounds the wire rate and backpressure from a slow receiver
propagates to the sender naturally.  The receiver stores the payload and
answers a single :data:`ACK` byte; the sender treats the ack as transfer
completion (the moment the simulator calls ``TRANSFER_END``).

Failure semantics (the part a single process never exercises):

* A peer dying mid-frame — EOF after the length prefix, inside the
  header, or anywhere in the payload — raises :class:`WireError`; a
  frame read never hangs on a half-delivered frame and never returns
  short bytes.
* ``timeout`` bounds how long a read may sit without progress, so a
  live-but-silent peer (SIGSTOP, dropped ack, wedged event loop on the
  other side) surfaces as :class:`WireError` instead of a stuck task.
* Adversarial headers — an oversized ``!I`` length, non-JSON bytes, a
  negative or absurd payload length — are rejected before any large
  allocation happens.
* ``send_frame`` is exception-safe against the shaper: tokens charged
  for a chunk that was never written are refunded, so a dropped
  connection cannot starve the next transfer on that link.
"""

from __future__ import annotations

import asyncio
import json
import struct

from .shaper import TokenBucket
from .transport import Stream

__all__ = [
    "ACK",
    "DEFAULT_CHUNK",
    "MAX_HEADER_BYTES",
    "MAX_FRAME_PAYLOAD",
    "send_frame",
    "read_frame",
    "read_ack",
    "WireError",
]

_HEADER_LEN = struct.Struct("!I")

#: Single ack byte the receiver returns once the payload is stored.
ACK = b"\x06"

#: Default streaming chunk; small enough that shaping is smooth at the
#: validation harness's scaled-down rates, large enough to amortise
#: per-chunk overhead on real sockets.
DEFAULT_CHUNK = 16 * 1024

#: Headers are small JSON envelopes; anything claiming more than this is
#: a corrupt or hostile length prefix, rejected before allocation.
MAX_HEADER_BYTES = 64 * 1024

#: Upper bound on a frame payload (1 GiB).  The largest legitimate
#: payload in the system is one 256 MB block; a header claiming more is
#: corrupt and must not drive a giant ``bytearray`` allocation.
MAX_FRAME_PAYLOAD = 1 << 30


class WireError(ConnectionError):
    """Raised on malformed frames, truncation, or read timeouts."""


async def _read_step(awaitable, timeout: float | None, what: str):
    """One bounded read: EOF and timeouts both surface as WireError."""
    try:
        if timeout is None:
            return await awaitable
        return await asyncio.wait_for(awaitable, timeout)
    except asyncio.TimeoutError:
        raise WireError(f"frame read timed out after {timeout}s ({what})") from None
    except asyncio.IncompleteReadError as exc:
        raise WireError(
            f"peer closed mid-frame ({what}: got {len(exc.partial)} of "
            f"{exc.expected} bytes)"
        ) from exc
    except WireError:
        raise
    except (ConnectionError, EOFError) as exc:
        raise WireError(f"connection lost mid-frame ({what}): {exc}") from exc


async def send_frame(
    stream: Stream,
    header: dict,
    payload,  # any C-contiguous buffer: bytes, bytearray, memoryview, ndarray
    *,
    bucket: TokenBucket | None = None,
    chunk_size: int = DEFAULT_CHUNK,
    recorder=None,
) -> None:
    """Write one frame, pacing payload chunks through ``bucket``.

    With a truthy ``recorder`` (a
    :class:`repro.telemetry.TelemetryRecorder`), every chunk write lands
    in the ``chunk.write_s`` histogram plus a ``chunks.sent`` counter —
    the per-chunk half of the live runtime's send timing (the pacing
    half is the bucket's own ``pacing.*`` emission).  ``None`` keeps the
    loop on the uninstrumented path.

    Bucket accounting is exception-safe: a chunk's tokens are charged
    before its write, and refunded if that write raises (the bytes never
    hit the wire, so the link owes nothing for them).  Without the
    refund a connection dropping mid-chunk would leave the per-link
    bucket permanently in debt, starving the next transfer.
    """
    view = memoryview(payload)
    if view.ndim != 1 or view.itemsize != 1:
        view = view.cast("B")
    head = dict(header)
    head["nbytes"] = len(view)
    encoded = json.dumps(head, separators=(",", ":")).encode()
    await stream.write(_HEADER_LEN.pack(len(encoded)) + encoded)
    rec = recorder if recorder else None
    # Chunks go to the transport as slices of the caller's buffer — no
    # per-chunk bytes() copies; both transports accept views directly.
    for offset in range(0, len(view), chunk_size):
        chunk = view[offset : offset + chunk_size]
        if bucket is not None:
            await bucket.acquire(len(chunk))
        try:
            if rec is not None:
                t0 = rec.now()
                await stream.write(chunk)
                rec.observe("chunk.write_s", rec.now() - t0)
                rec.count("chunks.sent")
            else:
                await stream.write(chunk)
        except BaseException:
            if bucket is not None:
                bucket.refund(len(chunk))
            raise


async def read_frame(
    stream: Stream,
    *,
    chunk_size: int = DEFAULT_CHUNK,
    timeout: float | None = None,
    max_payload: int = MAX_FRAME_PAYLOAD,
) -> tuple[dict, bytearray]:
    """Read one frame; returns ``(header, payload)``.

    The payload is assembled chunk by chunk straight into one bytearray
    preallocated at the header's ``nbytes`` — no growing, no chunk-list
    join, no final copy.  The bytearray is handed to the caller, who
    typically wraps it zero-copy (``np.frombuffer``) for storage.

    ``timeout`` bounds each individual read (a *progress* timeout, not a
    whole-frame budget, so a long payload at a shaped rate is fine as
    long as bytes keep arriving).  Truncation at any boundary, a stalled
    peer, or a malformed header all raise :class:`WireError`.
    """
    raw_len = await _read_step(
        stream.read_exactly(_HEADER_LEN.size), timeout, "header length"
    )
    try:
        (hlen,) = _HEADER_LEN.unpack(raw_len)
    except struct.error as exc:  # pragma: no cover - read_exactly guarantees 4
        raise WireError(f"malformed frame: {exc}") from exc
    if hlen > MAX_HEADER_BYTES:
        raise WireError(
            f"header length {hlen} exceeds the {MAX_HEADER_BYTES}-byte cap"
        )
    raw_header = await _read_step(stream.read_exactly(hlen), timeout, "header")
    try:
        header = json.loads(raw_header)
        nbytes = int(header["nbytes"])
    except (json.JSONDecodeError, UnicodeDecodeError, KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed frame: {exc}") from exc
    if nbytes < 0:
        raise WireError(f"malformed frame: negative payload length {nbytes}")
    if nbytes > max_payload:
        raise WireError(
            f"payload length {nbytes} exceeds the {max_payload}-byte cap"
        )
    payload = bytearray(nbytes)
    with memoryview(payload) as view:
        for offset in range(0, nbytes, chunk_size):
            await _read_step(
                stream.read_exactly_into(view[offset : offset + chunk_size]),
                timeout,
                f"payload byte {offset} of {nbytes}",
            )
    return header, payload


async def read_ack(stream: Stream, *, timeout: float | None = None) -> None:
    """Await the receiver's single :data:`ACK` byte.

    A missing ack — peer gone (EOF), peer wedged (``timeout``), or a
    stray byte that is not :data:`ACK` — raises :class:`WireError`; the
    sender can always distinguish "delivered" from "unknown".
    """
    byte = await _read_step(stream.read_exactly(1), timeout, "ack")
    if byte != ACK:
        raise WireError(f"bad ack {byte!r} (expected {ACK!r})")
