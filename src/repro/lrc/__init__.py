"""Locally Repairable Codes (extension; Azure's LRC family, §4.3.1).

An alternative code substrate with cheap local repair, integrated with
the same placement, plan, executor and simulator machinery as the RS
stack — including RPR-style pipelining for the repairs that do go wide.
"""

from .code import LRCCode
from .decode import UnrecoverableError, is_recoverable, lrc_recovery_equations
from .repair import LRCLocalRepair

__all__ = [
    "LRCCode",
    "LRCLocalRepair",
    "UnrecoverableError",
    "is_recoverable",
    "lrc_recovery_equations",
]
