"""Locally Repairable Codes — the Azure (12, 2, 2) family (§4.3.1).

The paper cites Windows Azure's LRC(12, 2, 2) as an industry code worth
supporting.  An ``LRC(n, l, g)`` splits the ``n`` data blocks into ``l``
equal local groups, adds one XOR parity per group, and ``g`` global
parities with Reed--Solomon-style coefficients:

* block ids ``0..n-1`` — data;
* ``n..n+l-1`` — local parities (``L_j`` = XOR of group ``j``);
* ``n+l..n+l+g-1`` — global parities.

The selling point is cheap common-case repair: a single data-block loss
is fixed from its local group (``n/l`` helpers) instead of ``n`` — at
the same storage overhead as an MDS code with ``l + g`` parities.  The
price is weaker worst-case tolerance: not every ``l + g``-failure
pattern is recoverable (LRC is not MDS); the decoder in
:mod:`repro.lrc.decode` reports unrecoverable patterns explicitly.

Global-parity coefficients come from the systematic Vandermonde coding
rows *after* the all-ones row: the XOR of all local parities already
equals the all-ones combination, so including it would waste a parity.

**Construction caveat** — production LRCs (Azure's) pick global
coefficients to be *maximally recoverable*: every failure pattern that
is information-theoretically decodable decodes.  Generic Vandermonde
rows are close but not maximal: for LRC(12,2,2), 5 of the 1820
four-failure patterns (certain 2+2 splits across the groups) are
decodable in principle but singular under these coefficients.  The
exhaustive census lives in ``tests/lrc/test_lrc.py``.
"""

from __future__ import annotations

import numpy as np

from ..gf import (
    GFTables,
    apply_matrix_to_blocks,
    get_tables,
    mat_identity,
    systematic_vandermonde_generator,
)
from ..rs import Stripe

__all__ = ["LRCCode"]


class LRCCode:
    """A systematic LRC(n, l, g) code over GF(2^8).

    The public surface mirrors :class:`repro.rs.RSCode` where the
    concepts coincide (``n``, ``k = l + g``, ``width``, ``generator``,
    ``encode``, ``verify_stripe``), so cluster/placement machinery works
    unchanged.
    """

    def __init__(
        self, n: int, l: int, g: int, tables: GFTables | None = None
    ) -> None:
        if n < 1 or l < 1 or g < 0:
            raise ValueError(f"invalid LRC parameters n={n}, l={l}, g={g}")
        if n % l != 0:
            raise ValueError(f"l={l} must divide n={n} (equal local groups)")
        if n + l + g > 256:
            raise ValueError("LRC over GF(256) needs n + l + g <= 256")
        self.n = n
        self.l = l
        self.g = g
        self.tables = tables or get_tables()
        self.group_size = n // l

        generator = np.zeros((n + l + g, n), dtype=np.uint8)
        generator[:n] = mat_identity(n)
        for j in range(l):
            generator[n + j, self.group(j)] = 1
        if g > 0:
            # Vandermonde coding rows 1..g (row 0 is the all-ones row the
            # local parities already span).
            rs = systematic_vandermonde_generator(n, g + 1, self.tables)
            generator[n + l :] = rs[n + 1 :]
        self.generator = generator
        self.generator.setflags(write=False)

    # -- structure -------------------------------------------------------

    @property
    def k(self) -> int:
        """Total parity count, ``l + g`` (RSCode-compatible)."""
        return self.l + self.g

    @property
    def width(self) -> int:
        return self.n + self.k

    @property
    def storage_overhead(self) -> float:
        return self.k / self.n

    def group(self, j: int) -> list[int]:
        """Data block ids of local group ``j``."""
        if not 0 <= j < self.l:
            raise ValueError(f"no local group {j} (l={self.l})")
        return list(range(j * self.group_size, (j + 1) * self.group_size))

    def group_of(self, block_id: int) -> int | None:
        """Local group of a data block or local parity; None for globals."""
        if 0 <= block_id < self.n:
            return block_id // self.group_size
        if self.n <= block_id < self.n + self.l:
            return block_id - self.n
        if block_id < self.width:
            return None
        raise ValueError(f"block {block_id} outside code of width {self.width}")

    def local_parity(self, j: int) -> int:
        """Block id of group ``j``'s local parity."""
        if not 0 <= j < self.l:
            raise ValueError(f"no local group {j} (l={self.l})")
        return self.n + j

    def is_global_parity(self, block_id: int) -> bool:
        return self.n + self.l <= block_id < self.width

    def generator_row(self, block_id: int) -> np.ndarray:
        if not 0 <= block_id < self.width:
            raise ValueError(f"block {block_id} outside code of width {self.width}")
        return self.generator[block_id]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LRCCode(n={self.n}, l={self.l}, g={self.g})"

    # -- encoding ------------------------------------------------------------

    def encode(self, data_blocks) -> list[np.ndarray]:
        """Encode ``n`` data blocks into all ``n + l + g`` stripe blocks."""
        data_blocks = list(data_blocks)
        if len(data_blocks) != self.n:
            raise ValueError(f"expected {self.n} data blocks, got {len(data_blocks)}")
        return apply_matrix_to_blocks(self.generator, data_blocks, self.tables)

    def encode_stripe(self, data_blocks, block_size: int | None = None) -> Stripe:
        blocks = self.encode(data_blocks)
        size = block_size if block_size is not None else len(blocks[0])
        stripe = Stripe(self.n, self.k, size)
        for bid, payload in enumerate(blocks):
            stripe.set_payload(bid, payload)
        return stripe

    def verify_stripe(self, stripe: Stripe) -> bool:
        if stripe.n != self.n or stripe.k != self.k:
            raise ValueError("stripe shape does not match code")
        data = [stripe.get_payload(i) for i in range(self.n)]
        expected = self.encode(data)
        return all(
            np.array_equal(expected[bid], stripe.get_payload(bid))
            for bid in range(self.width)
        )
