"""LRC decoding: locality-aware recovery equations.

The decoder expresses each failed block's generator row over surviving
rows, preferring the cheapest helper set:

1. **Local repair** — a lost data block (or local parity) whose group is
   otherwise intact decodes as the XOR of the ``n/l`` group survivors
   plus/using the local parity: the LRC fast path.
2. **General repair** — any other recoverable pattern solves
   ``c · G[available] = G[target]`` over GF(256)
   (:func:`repro.gf.mat_solve`), with available rows ordered
   group-first so the solution stays as local as the pattern allows.

LRC is not MDS: some ``l + g``-failure patterns (e.g. three failures
inside one group of an LRC(12, 2, 2)) have no solution.  Those raise
:class:`UnrecoverableError` rather than returning silently wrong data.
"""

from __future__ import annotations

import numpy as np

from ..gf import mat_solve
from ..rs import RecoveryEquation
from .code import LRCCode

__all__ = ["UnrecoverableError", "lrc_recovery_equations", "is_recoverable"]


class UnrecoverableError(ValueError):
    """The failure pattern exceeds the LRC's recovery capability."""


def _local_equation(code: LRCCode, target: int, available: set[int]) -> RecoveryEquation | None:
    """The group-XOR fast path, if the target's group is otherwise intact."""
    group = code.group_of(target)
    if group is None:
        return None
    members = set(code.group(group)) | {code.local_parity(group)}
    helpers = members - {target}
    if not helpers <= available:
        return None
    return RecoveryEquation(
        target=target,
        terms=tuple((h, 1) for h in sorted(helpers)),
        requires_matrix_build=False,
    )


def _helper_order(code: LRCCode, target: int, available: list[int]) -> list[int]:
    """Order available rows so elimination prefers local helpers."""
    group = code.group_of(target)

    def key(block: int) -> tuple[int, int]:
        if group is not None and code.group_of(block) == group:
            return (0, block)
        if not code.is_global_parity(block):
            return (1, block)
        return (2, block)

    return sorted(available, key=key)


def lrc_recovery_equations(
    code: LRCCode, failed_ids, available_ids
) -> list[RecoveryEquation]:
    """One recovery equation per failed block, cheapest-first.

    Parameters
    ----------
    failed_ids:
        Blocks to reconstruct.
    available_ids:
        Surviving blocks (any number — unlike MDS decoding there is no
        fixed helper count; the solver uses as few as the pattern allows).

    Raises
    ------
    UnrecoverableError
        If any failed block cannot be expressed over the survivors.
    """
    failed = list(failed_ids)
    available = sorted(set(available_ids))
    if set(failed) & set(available):
        raise ValueError("a block cannot be both failed and available")
    for bid in failed + available:
        if not 0 <= bid < code.width:
            raise ValueError(f"block id {bid} outside code of width {code.width}")

    equations = []
    avail_set = set(available)
    for target in failed:
        local = _local_equation(code, target, avail_set)
        if local is not None:
            equations.append(local)
            continue
        ordered = _helper_order(code, target, available)
        a = code.generator[ordered].T.astype(np.uint8)  # n x m
        b = code.generator_row(target).astype(np.uint8)
        x = mat_solve(a, b, code.tables)
        if x is None:
            raise UnrecoverableError(
                f"block {target} cannot be recovered from survivors "
                f"{available} (LRC({code.n},{code.l},{code.g}) is not MDS)"
            )
        terms = tuple(
            (h, int(c)) for h, c in sorted(zip(ordered, x.tolist())) if c != 0
        )
        equations.append(
            RecoveryEquation(
                target=target, terms=terms, requires_matrix_build=True
            )
        )
    return equations


def is_recoverable(code: LRCCode, failed_ids) -> bool:
    """Can this failure pattern be repaired at all?"""
    failed = sorted(set(failed_ids))
    available = [b for b in range(code.width) if b not in failed]
    try:
        lrc_recovery_equations(code, failed, available)
        return True
    except UnrecoverableError:
        return False
