"""LRC repair planner: local-first, pipelined when repair goes wide.

``LRCLocalRepair`` plans against the same :class:`RepairContext` /
:class:`RepairPlan` machinery as the RS schemes, so the executor,
simulator, metrics and benchmarks apply unchanged:

* equations come from :func:`repro.lrc.decode.lrc_recovery_equations`
  (group-XOR when the pattern allows, general solve otherwise);
* within each rack, helpers combine through the same pairwise inner
  trees as RPR (Algorithm 1 is equation-agnostic);
* across racks, intermediates aggregate through RPR's greedy binomial
  pipeline (Algorithm 2) toward the recovery node.

In other words: LRC brings the smaller helper sets, RPR brings the
scheduling — the bench ``bench_lrc_comparison.py`` quantifies the
combination against RS(12,4)+RPR.
"""

from __future__ import annotations

from ..repair.base import RepairContext, RepairScheme, recovery_targets
from ..repair.plan import RepairPlan, block_key
from ..repair.rpr.cross import build_cross_gather
from ..repair.rpr.inner import build_inner_trees
from ..rs import slice_equation_by_group
from .code import LRCCode
from .decode import lrc_recovery_equations

__all__ = ["LRCLocalRepair"]


class LRCLocalRepair(RepairScheme):
    """Locality-first LRC repair with RPR-style cross-rack pipelining."""

    name = "lrc-local"

    def plan(self, ctx: RepairContext) -> RepairPlan:
        code = ctx.code
        if not isinstance(code, LRCCode):
            raise TypeError("LRCLocalRepair requires an LRCCode context")
        targets = recovery_targets(ctx)
        equations = lrc_recovery_equations(
            code, list(ctx.failed_blocks), ctx.surviving_blocks
        )
        groups = ctx.placement.group_of_blocks(ctx.cluster)

        plan = RepairPlan(block_size=ctx.block_size)
        raw_sends: dict[tuple[int, int], str] = {}

        # Rack trees are built per equation here (helper sets differ per
        # equation under locality, unlike the shared-set RS case).
        for eq_idx, eq in enumerate(equations):
            target = targets[eq.target]
            target_rack = ctx.cluster.rack_of(target)
            slices = slice_equation_by_group(eq, groups)

            final_terms: list[tuple[str, int]] = []
            final_deps: list[str] = []

            local_terms = (
                sorted(dict(slices[target_rack].terms).items())
                if target_rack in slices
                else []
            )
            for block, coeff in local_terms:
                src = ctx.node_of_block(block)
                final_terms.append((block_key(block), coeff))
                if src == target:
                    continue
                key = (block, target)
                if key not in raw_sends:
                    raw_sends[key] = plan.add_send(
                        f"lrc:local:b{block}-to-{target}",
                        src=src,
                        dst=target,
                        key=block_key(block),
                    )
                final_deps.append(raw_sends[key])

            remote = []
            for rack in sorted(slices):
                if rack == target_rack:
                    continue
                positions = [
                    (ctx.node_of_block(b), b)
                    for b in sorted(h for h, _ in slices[rack].terms)
                ]
                [result] = build_inner_trees(
                    plan,
                    positions,
                    [dict(slices[rack].terms)],
                    prefix=f"lrc:eq{eq_idx}:r{rack}",
                )
                if result is not None:
                    remote.append(result)

            arrivals = build_cross_gather(
                plan,
                target_node=target,
                sources=remote,
                prefix=f"lrc:eq{eq_idx}:cross",
            )
            for arrival in arrivals:
                final_terms.append((arrival.key, arrival.coeff))
                final_deps.append(arrival.dep)

            out_key = f"lrc:recovered:{eq.target}"
            plan.add_combine(
                f"lrc:eq{eq_idx}:final",
                node=target,
                out_key=out_key,
                terms=final_terms,
                with_matrix_build=eq.requires_matrix_build,
                deps=final_deps,
            )
            plan.mark_output(eq.target, target, out_key)
        return plan
