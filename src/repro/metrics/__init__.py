"""Metrics over simulation traces: traffic, repair time, load balance,
utilization and critical-path attribution (the observability rollups)."""

from .faults import FaultRollup
from .loadbalance import coefficient_of_variation, imbalance_summary, max_mean_ratio
from .repairtime import TimeBreakdown, percent_reduction
from .traffic import TrafficLedger
from .utilization import UtilizationSummary, critical_path_breakdown

__all__ = [
    "FaultRollup",
    "TimeBreakdown",
    "TrafficLedger",
    "UtilizationSummary",
    "coefficient_of_variation",
    "critical_path_breakdown",
    "imbalance_summary",
    "max_mean_ratio",
    "percent_reduction",
]
