"""Metrics over simulation traces: traffic, repair time, load balance."""

from .loadbalance import coefficient_of_variation, imbalance_summary, max_mean_ratio
from .repairtime import TimeBreakdown, percent_reduction
from .traffic import TrafficLedger

__all__ = [
    "TimeBreakdown",
    "TrafficLedger",
    "coefficient_of_variation",
    "imbalance_summary",
    "max_mean_ratio",
    "percent_reduction",
]
