"""Rollups over degraded-repair outcomes (fault-injection sweeps).

Aggregates :class:`repro.repair.DegradedRepairOutcome` objects — and the
``None`` placeholders a sweep records for irrecoverable scenarios — into
the quantities ``benchmarks/bench_degraded_repair.py`` and the ``rpr
faults`` CLI report: degraded makespans, retried/wasted work, re-plan
rates, and how often a scheme reused already-delivered intermediates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from ..repair import DegradedRepairOutcome

__all__ = ["FaultRollup"]


@dataclass(frozen=True)
class FaultRollup:
    """Summary of one scheme's behaviour across a faulted sweep.

    Attributes
    ----------
    scenarios / completed / irrecoverable:
        How many faulted repairs ran, finished, and gave up
        (``completed + irrecoverable == scenarios``).
    mean_attempts / max_attempts:
        Re-planning pressure over the completed repairs.
    mean_makespan / max_makespan:
        Degraded repair time over the completed repairs (seconds).
    retry_count / retried_bytes / wasted_bytes:
        Total lost-transfer retries and wire work that did not contribute
        to any final repair.
    reuse_count:
        Completed repairs whose final plan consumed at least one
        intermediate delivered by an earlier, failed attempt.
    """

    scenarios: int
    completed: int
    irrecoverable: int
    mean_attempts: float
    max_attempts: int
    mean_makespan: float
    max_makespan: float
    retry_count: int
    retried_bytes: float
    wasted_bytes: float
    reuse_count: int

    @classmethod
    def from_outcomes(
        cls, outcomes: Iterable["DegradedRepairOutcome | None"]
    ) -> "FaultRollup":
        """Aggregate a sweep; ``None`` entries count as irrecoverable."""
        all_outcomes = list(outcomes)
        done = [o for o in all_outcomes if o is not None]
        attempts = [o.attempts for o in done]
        times = [o.total_repair_time for o in done]
        return cls(
            scenarios=len(all_outcomes),
            completed=len(done),
            irrecoverable=len(all_outcomes) - len(done),
            mean_attempts=sum(attempts) / len(attempts) if attempts else 0.0,
            max_attempts=max(attempts, default=0),
            mean_makespan=sum(times) / len(times) if times else 0.0,
            max_makespan=max(times, default=0.0),
            retry_count=sum(o.retry_count for o in done),
            retried_bytes=sum(o.retried_bytes for o in done),
            wasted_bytes=sum(o.wasted_bytes for o in done),
            reuse_count=sum(1 for o in done if o.reused_payloads),
        )

    def to_dict(self) -> dict:
        return {
            "scenarios": self.scenarios,
            "completed": self.completed,
            "irrecoverable": self.irrecoverable,
            "mean_attempts": self.mean_attempts,
            "max_attempts": self.max_attempts,
            "mean_makespan": self.mean_makespan,
            "max_makespan": self.max_makespan,
            "retry_count": self.retry_count,
            "retried_bytes": self.retried_bytes,
            "wasted_bytes": self.wasted_bytes,
            "reuse_count": self.reuse_count,
        }
