"""Load-balance metrics.

The paper motivates RPR partly by load balance: traditional repair funnels
every byte into one node (§2.3), while partial decoding spreads upload
work across racks (§3.1).  These helpers quantify that spread.
"""

from __future__ import annotations

from statistics import pstdev

__all__ = ["max_mean_ratio", "coefficient_of_variation", "imbalance_summary"]


def max_mean_ratio(values) -> float:
    """Peak-to-mean ratio of a load distribution (1.0 = perfectly even).

    Zero-valued participants count toward the mean; an empty input is an
    error because a repair always moves some bytes.
    """
    values = list(values)
    if not values:
        raise ValueError("no load values supplied")
    mean = sum(values) / len(values)
    if mean == 0:
        return 1.0
    return max(values) / mean


def coefficient_of_variation(values) -> float:
    """Population stddev over mean (0 = perfectly even)."""
    values = list(values)
    if not values:
        raise ValueError("no load values supplied")
    mean = sum(values) / len(values)
    if mean == 0:
        return 0.0
    return pstdev(values) / mean


def imbalance_summary(loads: dict) -> dict[str, float]:
    """Summary dict for a ``participant -> bytes`` load mapping."""
    values = list(loads.values())
    if not values:
        return {"participants": 0, "max": 0.0, "mean": 0.0, "max_mean_ratio": 1.0, "cv": 0.0}
    return {
        "participants": len(values),
        "max": max(values),
        "mean": sum(values) / len(values),
        "max_mean_ratio": max_mean_ratio(values),
        "cv": coefficient_of_variation(values),
    }
