"""Repair-time metrics and the reduction arithmetic the paper reports."""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import EventKind, SimResult

__all__ = ["percent_reduction", "TimeBreakdown"]


def percent_reduction(baseline: float, improved: float) -> float:
    """``100 * (baseline - improved) / baseline`` — the paper's headline
    "reduces the total repair time by X %" metric.

    Raises
    ------
    ValueError
        If ``baseline`` is not positive.
    """
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return 100.0 * (baseline - improved) / baseline


@dataclass(frozen=True)
class TimeBreakdown:
    """Where a repair's wall-clock went.

    ``transfer_busy`` / ``compute_busy`` are summed job durations (they
    can exceed the makespan when jobs overlap — that overlap is the
    pipeline working).
    """

    makespan: float
    transfer_busy: float
    compute_busy: float

    @classmethod
    def from_sim(cls, result: SimResult) -> "TimeBreakdown":
        transfer = compute = 0.0
        for event in result.events:
            if event.kind == EventKind.TRANSFER_END:
                timing = result.timings[event.job_id]
                transfer += timing.duration
            elif event.kind == EventKind.COMPUTE_END:
                timing = result.timings[event.job_id]
                compute += timing.duration
        return cls(
            makespan=result.makespan,
            transfer_busy=transfer,
            compute_busy=compute,
        )

    @property
    def parallelism(self) -> float:
        """Busy time over makespan — >1 means work genuinely overlapped."""
        if self.makespan == 0:
            return 0.0
        return (self.transfer_busy + self.compute_busy) / self.makespan
