"""Traffic accounting over simulation traces.

Aggregates the engine's transfer events into the quantities the paper
plots: cross-rack vs inner-rack volume (Figures 7 and 10) and per-node /
per-rack byte counts for the load-balance discussion (§2.3, §3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster import Cluster
from ..sim import SimResult

__all__ = ["TrafficLedger"]


@dataclass
class TrafficLedger:
    """Per-direction, per-node byte counters derived from a trace.

    Attributes
    ----------
    cross_rack_bytes / intra_rack_bytes:
        Total volume by link class.
    uploaded_by_node / downloaded_by_node:
        Bytes sent / received per node (all link classes).
    cross_uploaded_by_rack:
        Bytes each rack pushed through the aggregation switch — CAR's
        load-balance objective and the quantity RPR's pipeline spreads.

    All counters are exact ints: byte counts are integral by nature, and
    keeping them integral end-to-end lets tests pin the simulated ledger
    against the byte-level executor's
    (:class:`repro.repair.ExecutionResult`) with ``==``, no tolerance.
    """

    cross_rack_bytes: int = 0
    intra_rack_bytes: int = 0
    uploaded_by_node: dict[int, int] = field(default_factory=dict)
    downloaded_by_node: dict[int, int] = field(default_factory=dict)
    cross_uploaded_by_rack: dict[int, int] = field(default_factory=dict)

    @classmethod
    def from_sim(cls, result: SimResult, cluster: Cluster) -> "TrafficLedger":
        ledger = cls()
        for event in result.transfers():
            src, dst = event.node, event.peer
            nbytes = int(event.nbytes)
            if nbytes != event.nbytes:
                raise ValueError(
                    f"transfer {event.job_id!r} carries a fractional byte "
                    f"count ({event.nbytes}); byte ledgers are integral"
                )
            ledger.uploaded_by_node[src] = (
                ledger.uploaded_by_node.get(src, 0) + nbytes
            )
            ledger.downloaded_by_node[dst] = (
                ledger.downloaded_by_node.get(dst, 0) + nbytes
            )
            if event.cross_rack:
                ledger.cross_rack_bytes += nbytes
                rack = cluster.rack_of(src)
                ledger.cross_uploaded_by_rack[rack] = (
                    ledger.cross_uploaded_by_rack.get(rack, 0) + nbytes
                )
            else:
                ledger.intra_rack_bytes += nbytes
        return ledger

    @property
    def total_bytes(self) -> int:
        return self.cross_rack_bytes + self.intra_rack_bytes

    def cross_rack_blocks(self, block_size: int) -> float:
        """Cross-rack volume in block units (the paper's Fig. 7/10 axis)."""
        if block_size < 1:
            raise ValueError("block_size must be positive")
        return self.cross_rack_bytes / block_size
