"""Utilization and critical-path metrics over simulation traces.

Rollups of :class:`repro.sim.RunTrace` into the scalar quantities the
benchmarks annotate figures with: how busy the cluster's ports were, who
the bottleneck resource was, how idle each rack sat (the paper's Fig. 5
schedule-1 complaint), and where the makespan went along the critical
path.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster import Cluster
from ..sim import RunTrace, SimResult

__all__ = ["UtilizationSummary", "critical_path_breakdown"]


@dataclass(frozen=True)
class UtilizationSummary:
    """Scalar utilization rollup of one simulated run.

    Attributes
    ----------
    makespan:
        The run's total time.
    mean_port_utilization / peak_port_utilization:
        Busy fraction across all *active* ports (up + down; a port that
        never carried a transfer does not appear in the trace and is not
        averaged in).
    peak_resource:
        Label of the single busiest resource of any kind — the bottleneck
        candidate.
    rack_upload_idle:
        Per participating rack, the fraction of the run its upload ports
        were all silent (union-of-intervals accounting).
    """

    makespan: float
    mean_port_utilization: float
    peak_port_utilization: float
    peak_resource: str
    rack_upload_idle: dict[int, float]

    @property
    def mean_rack_upload_idle(self) -> float:
        """Mean idle fraction across participating racks (Fig. 5's number)."""
        if not self.rack_upload_idle:
            return 0.0
        values = self.rack_upload_idle.values()
        return sum(values) / len(values)

    @classmethod
    def from_sim(cls, result: SimResult, cluster: Cluster) -> "UtilizationSummary":
        return cls.from_trace(RunTrace.from_result(result, cluster))

    @classmethod
    def from_trace(cls, trace: RunTrace) -> "UtilizationSummary":
        ports = [r for r in trace.resources if r.kind in ("up", "down")]
        if not ports or trace.makespan <= 0:
            return cls(
                makespan=trace.makespan,
                mean_port_utilization=0.0,
                peak_port_utilization=0.0,
                peak_resource="",
                rack_upload_idle={},
            )
        utils = [p.utilization(trace.makespan) for p in ports]
        return cls(
            makespan=trace.makespan,
            mean_port_utilization=sum(utils) / len(utils),
            peak_port_utilization=max(utils),
            peak_resource=trace.busiest().label,
            rack_upload_idle=trace.rack_idle_fraction("up"),
        )


def critical_path_breakdown(trace: RunTrace) -> dict[str, float]:
    """Percentage attribution of the makespan along the critical path.

    Returns the :meth:`RunTrace.path_attribution` seconds plus
    ``*_pct`` shares of the makespan for each category — the numbers a
    figure caption can quote ("61 % of RPR's repair time is cross-rack
    transfer on the critical path").
    """
    attribution = trace.path_attribution()
    span = attribution["makespan_s"]
    out = dict(attribution)
    for key in ("cross_transfer_s", "intra_transfer_s", "compute_s", "wait_s"):
        share = 100.0 * attribution[key] / span if span > 0 else 0.0
        out[key.replace("_s", "_pct")] = share
    return out
