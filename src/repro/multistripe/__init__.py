"""Multi-stripe repair: node-failure rebuilds over a stripe store.

Extends the paper's per-stripe schemes to the workload real clusters
face — a dead node losing one block from every stripe it held — with
parallel/sequential orchestration and CAR-style cross-stripe traffic
balancing.
"""

from .payloads import encode_store_payloads, rebuild_node_payloads
from .nodefail import (
    NodeFailure,
    node_failure_contexts,
    pick_replacement_node,
    rack_failure_contexts,
)
from .scheduler import (
    MultiStripeOutcome,
    PRIORITY_POLICIES,
    merge_plans,
    order_repair_contexts,
    repair_node_failure,
    repair_rack_failure,
)
from .store import StoredStripe, StripeStore, rotate_placement

__all__ = [
    "MultiStripeOutcome",
    "NodeFailure",
    "PRIORITY_POLICIES",
    "order_repair_contexts",
    "StoredStripe",
    "StripeStore",
    "encode_store_payloads",
    "merge_plans",
    "rebuild_node_payloads",
    "node_failure_contexts",
    "pick_replacement_node",
    "rack_failure_contexts",
    "repair_node_failure",
    "repair_rack_failure",
    "rotate_placement",
]
