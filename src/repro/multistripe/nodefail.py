"""Node-failure workloads: from one dead node to a set of stripe repairs.

A storage-node failure loses one block from every stripe placed on it.
This module turns that event into per-stripe :class:`RepairContext`s,
choosing where the rebuilt blocks land:

* ``replacement`` mode — all blocks are rebuilt onto one designated
  replacement node (hot-spare semantics).  The replacement must be in
  the failed node's rack and hold no surviving block of any affected
  stripe.
* ``scatter`` mode — each stripe independently picks a spare in the
  failed node's rack (declustered rebuild; spreads the write load).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..repair import RepairContext, RepairPlanningError
from ..rs import MB, DecodeCostModel, SIMICS_DECODE
from .store import StripeStore

__all__ = [
    "NodeFailure",
    "node_failure_contexts",
    "pick_replacement_node",
    "rack_failure_contexts",
]


@dataclass(frozen=True)
class NodeFailure:
    """One node-failure event over a store."""

    failed_node: int
    lost: tuple[tuple[int, int], ...]  # (stripe_id, block_id)

    @property
    def stripes_affected(self) -> int:
        return len(self.lost)


def pick_replacement_node(store: StripeStore, failed_node: int) -> int:
    """A same-rack node holding no surviving block of any affected stripe.

    Raises
    ------
    RepairPlanningError
        If the rack has no such node.
    """
    rack = store.cluster.rack_of(failed_node)
    affected = [sid for sid, _ in store.blocks_on_node(failed_node)]
    blocked: set[int] = set()
    for sid in affected:
        placement = store.stripe(sid).placement
        for block, node in placement.block_to_node.items():
            if node != failed_node:
                blocked.add(node)
    for candidate in store.cluster.nodes_in_rack(rack):
        if candidate != failed_node and candidate not in blocked:
            return candidate
    raise RepairPlanningError(
        f"rack {rack} has no node free of the {len(affected)} affected stripes"
    )


def node_failure_contexts(
    store: StripeStore,
    failed_node: int,
    mode: str = "replacement",
    block_size: int = 256 * MB,
    cost_model: DecodeCostModel = SIMICS_DECODE,
) -> tuple[NodeFailure, list[RepairContext]]:
    """Build the repair contexts for every stripe hit by a node failure.

    Returns the failure description plus one context per affected stripe
    (empty when the node held nothing).

    Raises
    ------
    ValueError
        For an unknown mode.
    RepairPlanningError
        When ``replacement`` mode cannot find a replacement node.
    """
    if mode not in ("replacement", "scatter"):
        raise ValueError(f"unknown rebuild mode {mode!r}")
    lost = tuple(store.blocks_on_node(failed_node))
    return _node_failure_contexts_from(
        store, failed_node, lost, mode, block_size, cost_model
    )


def _node_failure_contexts_from(
    store, failed_node, lost, mode, block_size, cost_model
):
    failure = NodeFailure(failed_node=failed_node, lost=lost)
    if not lost:
        return failure, []

    replacement = (
        pick_replacement_node(store, failed_node) if mode == "replacement" else None
    )

    contexts = []
    for idx, (stripe_id, block_id) in enumerate(lost):
        stored = store.stripe(stripe_id)
        if replacement is not None:
            override = ((block_id, replacement),)
        else:
            # Scatter mode: rotate through the rack's spares so rebuilt
            # blocks (and their download load) spread across nodes
            # instead of all landing on the first spare.
            rack = store.cluster.rack_of(failed_node)
            spares = [
                node
                for node in stored.placement.spare_nodes_in_rack(
                    store.cluster, rack
                )
                if node != failed_node
            ]
            if not spares:
                raise RepairPlanningError(
                    f"rack {rack} has no spare for stripe {stripe_id}"
                )
            override = ((block_id, spares[idx % len(spares)]),)
        contexts.append(
            RepairContext(
                code=stored.code,
                cluster=store.cluster,
                placement=stored.placement,
                failed_blocks=(block_id,),
                block_size=block_size,
                cost_model=cost_model,
                recovery_override=override,
            )
        )
    return failure, contexts

def rack_failure_contexts(
    store: StripeStore,
    failed_rack: int,
    block_size: int = 256 * MB,
    cost_model: DecodeCostModel = SIMICS_DECODE,
) -> tuple[NodeFailure, list[RepairContext]]:
    """Build repair contexts for a whole-rack failure.

    Under the paper's single-rack-fault-tolerant placements a rack loss
    costs every resident stripe up to ``k`` blocks at once — the §4.3
    worst case, in store form.  Rebuilt blocks cannot return to the dead
    rack, so recovery targets scatter round-robin over the *surviving*
    racks, onto nodes that hold no surviving block of the stripe.

    Returns a :class:`NodeFailure` record (``failed_node`` is set to the
    rack's first node id as an identifier) plus one multi-block context
    per affected stripe.

    Raises
    ------
    RepairPlanningError
        If a stripe's failures exceed its tolerance (the placement was
        not single-rack fault tolerant) or no target node is available.
    """
    rack_nodes = set(store.cluster.nodes_in_rack(failed_rack))
    if not rack_nodes:
        raise RepairPlanningError(f"rack {failed_rack} has no nodes")

    lost: list[tuple[int, int]] = []
    per_stripe: dict[int, list[int]] = {}
    for stored in store.stripes:
        blocks = [
            bid
            for bid, node in sorted(stored.placement.block_to_node.items())
            if node in rack_nodes
        ]
        if blocks:
            per_stripe[stored.stripe_id] = blocks
            lost.extend((stored.stripe_id, bid) for bid in blocks)

    failure = NodeFailure(
        failed_node=min(rack_nodes), lost=tuple(lost)
    )
    if not per_stripe:
        return failure, []

    live_racks = [r for r in store.cluster.rack_ids() if r != failed_rack]
    contexts = []
    spread = 0
    for stripe_id, blocks in sorted(per_stripe.items()):
        stored = store.stripe(stripe_id)
        if len(blocks) > stored.code.k:
            raise RepairPlanningError(
                f"stripe {stripe_id} lost {len(blocks)} blocks to rack "
                f"{failed_rack}; RS({stored.code.n},{stored.code.k}) cannot "
                f"recover (placement was not single-rack fault tolerant)"
            )
        used = {
            node
            for bid, node in stored.placement.block_to_node.items()
            if bid not in blocks
        }
        override = []
        taken: set[int] = set()
        for bid in blocks:
            target = None
            for attempt in range(len(live_racks)):
                rack = live_racks[(spread + attempt) % len(live_racks)]
                candidates = [
                    node
                    for node in store.cluster.nodes_in_rack(rack)
                    if node not in used and node not in taken
                ]
                if candidates:
                    target = candidates[0]
                    break
            spread += 1
            if target is None:
                raise RepairPlanningError(
                    f"no live node available for block {bid} of stripe "
                    f"{stripe_id}"
                )
            override.append((bid, target))
            taken.add(target)
        contexts.append(
            RepairContext(
                code=stored.code,
                cluster=store.cluster,
                placement=stored.placement,
                failed_blocks=tuple(blocks),
                block_size=block_size,
                cost_model=cost_model,
                recovery_override=tuple(override),
            )
        )
    return failure, contexts
