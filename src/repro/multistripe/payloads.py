"""Byte-level payloads for whole stores: batched encode and rebuild.

The planning layers in this package are placement-only; this module is
their concrete counterpart.  It materialises every stripe's payload bytes
and rebuilds a failed node's blocks, routing all bulk work through the
batched coding stack (:meth:`repro.rs.code.RSCode.encode_many` /
:meth:`~repro.rs.code.RSCode.decode_many`) instead of looping the
single-stripe kernels: one store-wide encode pass, and one decode pass
per distinct lost block id.

Grouping by lost block id is what makes the decode batchable: stripes in
a store share one code, and every stripe that lost the same block id
repairs with the same recovery equations, so their helper payloads stack
into one matrix application (the declustered rotation in
:mod:`repro.multistripe.store` spreads a node's blocks across ids, giving
a few large groups rather than many singletons).
"""

from __future__ import annotations

import numpy as np

from .store import StripeStore

__all__ = ["encode_store_payloads", "rebuild_node_payloads"]


def encode_store_payloads(
    store: StripeStore, block_size: int, seed: int = 0
) -> np.ndarray:
    """Deterministic payload bytes for every stripe of ``store``.

    Returns a ``(num_stripes, n + k, block_size)`` uint8 array — stripe
    ``sid``'s blocks at index ``sid`` — produced by one batched
    :meth:`~repro.rs.code.RSCode.encode_many` pass over seeded random
    data.
    """
    if block_size < 1:
        raise ValueError("block_size must be positive")
    if not len(store):
        raise ValueError("store has no stripes")
    code = store.stripes[0].code
    rng = np.random.default_rng(seed)
    data = rng.integers(
        0, 256, size=(len(store), code.n, block_size), dtype=np.uint8
    )
    return code.encode_many(data)


def rebuild_node_payloads(
    store: StripeStore, failed_node: int, payloads: np.ndarray
) -> dict[int, np.ndarray]:
    """Reconstruct every block lost with ``failed_node``, batched.

    Parameters
    ----------
    store:
        The placement store the payloads belong to.
    failed_node:
        Node whose blocks are gone.
    payloads:
        ``(num_stripes, n + k, block_size)`` store payloads as built by
        :func:`encode_store_payloads` (the failed node's entries are
        treated as lost and never read).

    Returns
    -------
    ``stripe_id -> rebuilt payload`` for every affected stripe,
    byte-identical to a per-stripe decode.
    """
    lost = store.blocks_on_node(failed_node)
    if not lost:
        return {}
    code = store.stripes[0].code
    if payloads.shape != (len(store), code.width, payloads.shape[2]):
        raise ValueError(
            f"payloads shape {payloads.shape} does not match store of "
            f"{len(store)} stripes of width {code.width}"
        )
    by_block: dict[int, list[int]] = {}
    for sid, bid in lost:
        by_block.setdefault(bid, []).append(sid)

    rebuilt: dict[int, np.ndarray] = {}
    for bid, sids in by_block.items():
        # One stacked decode per lost block id: same failure, same
        # helpers, same recovery equation across the whole group.
        stack = payloads[sids]  # (group, width, B)
        available = {
            b: np.ascontiguousarray(stack[:, b, :])
            for b in range(code.width)
            if b != bid
        }
        recovered = code.decode_many(available, [bid])[bid]
        for row, sid in enumerate(sids):
            rebuilt[sid] = recovered[row]
    return rebuilt
