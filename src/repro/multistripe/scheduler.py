"""Multi-stripe repair scheduling: rebuild a whole node's worth of blocks.

Three orchestration axes, composable:

* **Scheme** — any single-stripe planner (traditional, CAR, RPR); the
  scheduler plans each affected stripe with it.
* **Mode** — ``parallel`` merges every stripe's plan into one job graph
  and lets the event engine pipeline repairs across stripes (port
  contention arbitrates); ``sequential`` chains stripes one after
  another (the naive rebuild loop real systems start from).
* **Balance** — when enabled, stripes are planned in order with a
  load-aware rack tiebreak: each stripe's helper selection prefers the
  remote racks that have pushed the fewest cross-rack bytes so far.
  This is the cross-stripe traffic balancing CAR introduces ([32] §6),
  generalised to any scheme whose selection is rack-aware.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..cluster import BandwidthModel
from ..metrics import TrafficLedger, imbalance_summary
from ..repair import RepairScheme
from ..repair.plan import CombineOp, RepairPlan, SendOp
from ..rs import MB, DecodeCostModel, SIMICS_DECODE
from ..sim import JobGraph, SimResult, SimulationEngine
from .nodefail import NodeFailure, node_failure_contexts, rack_failure_contexts
from .store import StripeStore

__all__ = [
    "MultiStripeOutcome",
    "PRIORITY_POLICIES",
    "merge_plans",
    "order_repair_contexts",
    "repair_node_failure",
    "repair_rack_failure",
]

#: Orderings :func:`order_repair_contexts` understands.
PRIORITY_POLICIES = ("arrival", "most-at-risk", "deadline")


def order_repair_contexts(contexts, policy: str = "arrival", deadlines=None):
    """Order per-stripe repair contexts for scheduling.

    * ``"arrival"`` — as given (stripe order).
    * ``"most-at-risk"`` — stripes with the most failed blocks first
      (closest to unrecoverable), stable within a risk level.  This is
      the ordering the store coordinator applies to its repair queue.
    * ``"deadline"`` — earliest deadline first; ``deadlines`` maps a
      context's position in ``contexts`` to its deadline (seconds, any
      epoch), missing entries sort last.

    In ``sequential`` mode the ordering *is* the execution order; in
    ``parallel`` mode it decides which stripe's plan is laid down first,
    which steers the balance tiebreak and port-contention arbitration.
    """
    contexts = list(contexts)
    if policy == "arrival":
        return contexts
    if policy == "most-at-risk":
        indexed = sorted(
            enumerate(contexts),
            key=lambda pair: (-len(pair[1].failed_blocks), pair[0]),
        )
        return [ctx for _, ctx in indexed]
    if policy == "deadline":
        deadlines = deadlines or {}
        indexed = sorted(
            enumerate(contexts),
            key=lambda pair: (deadlines.get(pair[0], float("inf")), pair[0]),
        )
        return [ctx for _, ctx in indexed]
    raise ValueError(
        f"unknown priority policy {policy!r}; expected one of {PRIORITY_POLICIES}"
    )


@dataclass(frozen=True)
class MultiStripeOutcome:
    """Result of one node-failure rebuild.

    Attributes
    ----------
    failure:
        What was lost.
    makespan:
        Wall-clock of the whole rebuild (seconds).
    total_cross_rack_bytes / total_intra_rack_bytes:
        Aggregate traffic over all stripes — exact ints, matching the
        byte-level executor's integral ledgers.
    rack_upload_imbalance:
        Summary of per-rack cross-rack upload bytes (max/mean ratio 1.0 =
        perfectly balanced) — CAR's objective.
    plans:
        The per-stripe plans, in stripe order (for byte-level verification).
    sim:
        The merged simulation result.
    """

    failure: NodeFailure
    makespan: float
    total_cross_rack_bytes: int
    total_intra_rack_bytes: int
    rack_upload_imbalance: dict
    plans: list[RepairPlan]
    sim: SimResult


def _namespaced(op, prefix: str):
    deps = tuple(f"{prefix}{d}" for d in op.deps)
    if isinstance(op, SendOp):
        return SendOp(
            op_id=f"{prefix}{op.op_id}", src=op.src, dst=op.dst, key=op.key, deps=deps
        )
    return CombineOp(
        op_id=f"{prefix}{op.op_id}",
        node=op.node,
        out_key=op.out_key,
        terms=op.terms,
        with_matrix_build=op.with_matrix_build,
        deps=deps,
    )


def merge_plans(
    plans: list[RepairPlan],
    cost_model: DecodeCostModel,
    sequential: bool = False,
) -> JobGraph:
    """Merge per-stripe plans into one simulator job graph.

    Op ids are namespaced ``s<i>:``.  With ``sequential=True`` every root
    job of stripe ``i+1`` additionally depends on stripe ``i``'s terminal
    jobs, forcing one-at-a-time rebuild.
    """
    graph = JobGraph()
    previous_terminals: list[str] = []
    for idx, plan in enumerate(plans):
        prefix = f"s{idx}:"
        depended_on = {dep for op in plan.ops.values() for dep in op.deps}
        terminals = [
            f"{prefix}{oid}" for oid in plan.ops if oid not in depended_on
        ]
        for op in plan.ops.values():
            ns_op = _namespaced(op, prefix)
            extra = ()
            if sequential and not op.deps and previous_terminals:
                extra = tuple(previous_terminals)
            if isinstance(ns_op, SendOp):
                graph.add_transfer(
                    ns_op.op_id,
                    src=ns_op.src,
                    dst=ns_op.dst,
                    nbytes=plan.block_size,
                    deps=ns_op.deps + extra,
                    tag=ns_op.key,
                )
            else:
                graph.add_compute(
                    ns_op.op_id,
                    node=ns_op.node,
                    seconds=cost_model.decode_time(
                        plan.block_size, with_matrix_build=ns_op.with_matrix_build
                    ),
                    deps=ns_op.deps + extra,
                    tag=ns_op.out_key,
                )
        previous_terminals = terminals
    return graph


def _plan_cross_upload_by_rack(plan: RepairPlan, cluster) -> dict[int, int]:
    loads: dict[int, int] = {}
    for op in plan.sends():
        if not cluster.same_rack(op.src, op.dst):
            rack = cluster.rack_of(op.src)
            loads[rack] = loads.get(rack, 0) + plan.block_size
    return loads


def repair_node_failure(
    store: StripeStore,
    failed_node: int,
    scheme: RepairScheme,
    bandwidth: BandwidthModel,
    mode: str = "parallel",
    rebuild: str = "replacement",
    balance: bool = False,
    block_size: int = 256 * MB,
    cost_model: DecodeCostModel = SIMICS_DECODE,
    priority: str = "arrival",
    deadlines=None,
) -> MultiStripeOutcome:
    """Rebuild everything ``failed_node`` held.

    Parameters
    ----------
    mode:
        ``"parallel"`` (pipelined across stripes) or ``"sequential"``.
    rebuild:
        ``"replacement"`` (all blocks onto one spare node) or
        ``"scatter"`` (per-stripe spares) — see
        :func:`repro.multistripe.nodefail.node_failure_contexts`.
    balance:
        Enable the CAR-style load-aware rack tiebreak across stripes.
    priority / deadlines:
        Stripe scheduling order — see :func:`order_repair_contexts`.
    """
    if mode not in ("parallel", "sequential"):
        raise ValueError(f"unknown mode {mode!r}")
    failure, contexts = node_failure_contexts(
        store, failed_node, mode=rebuild, block_size=block_size, cost_model=cost_model
    )
    contexts = order_repair_contexts(contexts, priority, deadlines)
    return _execute_contexts(
        store, failure, contexts, scheme, bandwidth, mode, balance, cost_model
    )


def repair_rack_failure(
    store: StripeStore,
    failed_rack: int,
    scheme: RepairScheme,
    bandwidth: BandwidthModel,
    mode: str = "parallel",
    balance: bool = False,
    block_size: int = 256 * MB,
    cost_model: DecodeCostModel = SIMICS_DECODE,
    priority: str = "arrival",
    deadlines=None,
) -> MultiStripeOutcome:
    """Rebuild everything a whole rack held (the §4.3 worst case at
    store scale).

    Each resident stripe loses up to ``k`` blocks; rebuilt blocks scatter
    over the surviving racks.  Orchestration options are as in
    :func:`repair_node_failure`, including ``priority``/``deadlines``
    scheduling.
    """
    if mode not in ("parallel", "sequential"):
        raise ValueError(f"unknown mode {mode!r}")
    failure, contexts = rack_failure_contexts(
        store, failed_rack, block_size=block_size, cost_model=cost_model
    )
    contexts = order_repair_contexts(contexts, priority, deadlines)
    return _execute_contexts(
        store, failure, contexts, scheme, bandwidth, mode, balance, cost_model
    )


def _execute_contexts(
    store: StripeStore,
    failure: NodeFailure,
    contexts,
    scheme: RepairScheme,
    bandwidth: BandwidthModel,
    mode: str,
    balance: bool,
    cost_model: DecodeCostModel,
) -> MultiStripeOutcome:
    plans: list[RepairPlan] = []
    cumulative: dict[int, int] = {}
    for ctx in contexts:
        if balance:
            order = tuple(
                sorted(
                    store.cluster.rack_ids(),
                    key=lambda r: (cumulative.get(r, 0), r),
                )
            )
            ctx = replace(ctx, rack_tiebreak=order)
        plan = scheme.plan(ctx)
        plans.append(plan)
        for rack, nbytes in _plan_cross_upload_by_rack(plan, store.cluster).items():
            cumulative[rack] = cumulative.get(rack, 0) + nbytes

    if not plans:
        empty = SimResult(makespan=0.0, timings={}, events=[])
        return MultiStripeOutcome(
            failure=failure,
            makespan=0.0,
            total_cross_rack_bytes=0,
            total_intra_rack_bytes=0,
            rack_upload_imbalance=imbalance_summary({}),
            plans=[],
            sim=empty,
        )

    graph = merge_plans(plans, cost_model, sequential=(mode == "sequential"))
    engine = SimulationEngine(store.cluster, bandwidth)
    sim = engine.run(graph)
    ledger = TrafficLedger.from_sim(sim, store.cluster)
    # Balance is judged over every rack, including those that pushed nothing.
    uploads = {rack: 0 for rack in store.cluster.rack_ids()}
    uploads.update(ledger.cross_uploaded_by_rack)
    return MultiStripeOutcome(
        failure=failure,
        makespan=sim.makespan,
        total_cross_rack_bytes=ledger.cross_rack_bytes,
        total_intra_rack_bytes=ledger.intra_rack_bytes,
        rack_upload_imbalance=imbalance_summary(uploads),
        plans=plans,
        sim=sim,
    )
