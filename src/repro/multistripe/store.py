"""A stripe store: many stripes placed across one cluster.

Real deployments hold thousands of stripes; a node failure loses one
block from every stripe that touched the node, and the repair workload
is the *set* of those single-block repairs.  The store tracks stripe
placements and answers "what did node X hold?".

Placements are rotated round-robin across racks so stripes spread load —
the standard declustered layout that gives every rack both data and
parity duty.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..cluster import Cluster, Placement, PlacementError, RPRPlacement
from ..rs import RSCode

__all__ = ["StoredStripe", "StripeStore", "rotate_placement"]


def rotate_placement(
    cluster: Cluster, placement: Placement, rack_offset: int, slot_offset: int = 0
) -> Placement:
    """Shift a placement by ``rack_offset`` racks and ``slot_offset`` slots.

    Requires homogeneous rack sizes (node ids rack-major, as built by
    :meth:`Cluster.homogeneous`).  Rotating by the rack count / rack size
    is the identity in that axis.  Rotating both axes as the stripe id
    advances declusters the layout: every node ends up holding blocks
    from many stripes, so a node failure spreads repair work evenly.
    """
    rack_ids = cluster.rack_ids()
    sizes = {cluster.rack(r).size for r in rack_ids}
    if len(sizes) != 1:
        raise PlacementError("rotation requires homogeneous rack sizes")
    rack_size = sizes.pop()
    num_racks = len(rack_ids)
    mapping = {}
    for block, node in placement.block_to_node.items():
        rack = cluster.rack_of(node)
        slot = cluster.nodes_in_rack(rack).index(node)
        new_rack = rack_ids[(rack_ids.index(rack) + rack_offset) % num_racks]
        new_slot = (slot + slot_offset) % rack_size
        mapping[block] = cluster.nodes_in_rack(new_rack)[new_slot]
    return Placement(n=placement.n, k=placement.k, block_to_node=mapping)


@dataclass(frozen=True)
class StoredStripe:
    """One stripe's identity and layout within a store."""

    stripe_id: int
    code: RSCode
    placement: Placement


@dataclass
class StripeStore:
    """All stripes of one (code, cluster) deployment."""

    cluster: Cluster
    stripes: list[StoredStripe] = field(default_factory=list)

    @classmethod
    def build(
        cls,
        cluster: Cluster,
        code: RSCode,
        num_stripes: int,
        placement_policy=None,
        rotate: bool = True,
    ) -> "StripeStore":
        """Place ``num_stripes`` stripes, rotating racks per stripe.

        ``placement_policy`` defaults to the §3.3 pre-placement.
        """
        if num_stripes < 1:
            raise ValueError("num_stripes must be positive")
        policy = placement_policy if placement_policy is not None else RPRPlacement()
        base = policy.place(cluster, code.n, code.k)
        stripes = []
        for sid in range(num_stripes):
            placement = (
                rotate_placement(
                    cluster,
                    base,
                    rack_offset=sid % cluster.num_racks,
                    slot_offset=sid // cluster.num_racks,
                )
                if rotate
                else base
            )
            stripes.append(
                StoredStripe(stripe_id=sid, code=code, placement=placement)
            )
        return cls(cluster=cluster, stripes=stripes)

    def __len__(self) -> int:
        return len(self.stripes)

    def __iter__(self) -> Iterator[StoredStripe]:
        return iter(self.stripes)

    def stripe(self, stripe_id: int) -> StoredStripe:
        try:
            return self.stripes[stripe_id]
        except IndexError:
            raise KeyError(f"no stripe {stripe_id} in store") from None

    def blocks_on_node(self, node_id: int) -> list[tuple[int, int]]:
        """All ``(stripe_id, block_id)`` pairs stored on ``node_id``."""
        self.cluster.node(node_id)
        found = []
        for stored in self.stripes:
            block = stored.placement.block_at(node_id)
            if block is not None:
                found.append((stored.stripe_id, block))
        return found

    def blocks_per_node(self) -> dict[int, int]:
        """Block count per node — layout balance check."""
        counts = {nid: 0 for nid in self.cluster.node_ids()}
        for stored in self.stripes:
            for node in stored.placement.block_to_node.values():
                counts[node] += 1
        return counts
