"""Performance-regression harness for the hot paths.

Times the event engine on merged node-rebuild graphs, the GF/RS coding
kernels (single-stripe vs batched), and the live asyncio runtime
(telemetry off vs on), then writes machine-readable reports —
``BENCH_engine.json``, ``BENCH_coding.json`` and ``BENCH_live.json`` —
so perf changes show up in review diffs instead of anecdotes.  Run it
via ``benchmarks/run_perf.py``, ``rpr perf``, or ``python -m
repro.perfharness``; pass ``--quick`` for the CI-sized variant.
:func:`compare_reports` turns two such reports into a pass/fail gate
(see ``benchmarks/check_perf_regression.py``).

Timing style: best-of-N wall clock around whole calls.  Best-of (not
mean) because the quantity under regression test is the code's cost, and
every slower sample is noise from elsewhere on the machine; N is small
because the workloads are already sized to dominate per-call overhead.

See ``docs/PERFORMANCE.md`` for how to read and regenerate the reports.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

__all__ = [
    "engine_suite",
    "coding_suite",
    "live_suite",
    "qos_suite",
    "compare_reports",
    "append_history",
    "write_reports",
    "main",
]

SCHEMA_VERSION = 1

#: Rolling log of every harness run, one JSON object per line.  Unlike
#: the ``BENCH_*.json`` snapshots (overwritten each run), the history
#: accumulates, so trends across commits/CI runs can be plotted from one
#: file.
HISTORY_NAME = "BENCH_history.jsonl"


def _measure(fn, reps: int, warmup: int = 1, nbytes: int | None = None) -> dict:
    """Best-of-``reps`` seconds for ``fn()``, after ``warmup`` calls.

    ``nbytes`` is the benchmark's estimated memory traffic (logical
    bytes read + written per call); when given it is recorded as
    ``bytes_touched`` so reports can derive ``bytes_touched / best_s``
    as a memory-bandwidth figure.
    """
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
    entry = {"best_s": best, "reps": reps}
    if nbytes is not None:
        entry["bytes_touched"] = nbytes
    return entry


def _env_info(quick: bool) -> dict:
    return {
        "schema": SCHEMA_VERSION,
        "quick": quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
    }


def engine_suite(quick: bool = False) -> dict:
    """Event-engine timings on merged node-rebuild graphs.

    Exercises the resource-indexed scheduler end to end: RS(6,2) over a
    5x8 cluster, scatter rebuild of node 0, all stripes' plans merged
    into one graph (the ``benchmarks/bench_engine_scale.py`` scenario).
    """
    from .cluster import Cluster, SIMICS_BANDWIDTH
    from .multistripe import StripeStore, merge_plans, node_failure_contexts
    from .repair import RPRScheme
    from .rs import SIMICS_DECODE, get_code
    from .sim import SimulationEngine

    # The 100k-stripe graph (~202k jobs) is the scale headline for the
    # signature-group scheduler; it only runs in full mode, with fewer
    # reps — a single run is seconds, so best-of-2 is already stable.
    stripe_counts = [40] if quick else [40, 200, 100_000]
    reps = 3 if quick else 7
    report = _env_info(quick)
    report["results"] = {}
    for num_stripes in stripe_counts:
        cluster = Cluster.homogeneous(5, 8)
        store = StripeStore.build(cluster, get_code(6, 2), num_stripes)
        _, contexts = node_failure_contexts(store, 0, mode="scatter")
        plans = [RPRScheme().plan(ctx) for ctx in contexts]
        graph = merge_plans(plans, SIMICS_DECODE)
        engine = SimulationEngine(cluster, SIMICS_BANDWIDTH)
        result = engine.run(graph)
        count_reps = 2 if num_stripes >= 100_000 else reps
        timing = _measure(lambda: engine.run(graph), count_reps, warmup=0)
        timing.update(
            jobs=len(graph),
            events=len(result.events),
            makespan_s=result.makespan,
        )
        report["results"][f"node_rebuild_{num_stripes}_stripes"] = timing
    return report


#: Worker counts the parallel-codec scaling curve measures by default.
DEFAULT_WORKER_CURVE = (1, 2, 4, 8)


def coding_suite(
    quick: bool = False, worker_counts: tuple[int, ...] | None = None
) -> dict:
    """GF/RS kernel timings: per-stripe baselines vs the batched stack.

    The ``derived`` section holds the speedup ratios the acceptance bars
    track (batched encode/decode vs N single-stripe calls at the same
    total byte count, split-table kernels vs the ``translate`` baseline,
    and the multicore codec's worker-scaling curve).  Entries that move
    a known number of bytes carry a ``bytes_touched`` estimate (logical
    bytes in + bytes out) so a memory-bandwidth figure can be derived.

    ``worker_counts`` overrides :data:`DEFAULT_WORKER_CURVE` (the
    ``rpr perf --workers N`` knob); the serial baseline is always
    measured regardless.
    """
    from .gf import linear_combine, scale, scale_accumulate, scratch_pool
    from .gf.splittable import KERNELS, set_kernel_override
    from .multistripe import (
        StripeStore,
        encode_store_payloads,
        rebuild_node_payloads,
    )
    from .cluster import Cluster
    from .rs import get_code
    from .rs.decode import decode_blocks

    reps = 3 if quick else 9
    if worker_counts is None:
        worker_counts = DEFAULT_WORKER_CURVE
    num_stripes, block = 64, 64 * 1024
    big = (1 if quick else 4) * 1024 * 1024
    rng = np.random.default_rng(42)
    code = get_code(6, 2)

    report = _env_info(quick)
    results: dict = {}
    report["results"] = results

    # -- scalar kernels ----------------------------------------------------
    buf = rng.integers(0, 256, big, dtype=np.uint8)
    acc = np.zeros(big, dtype=np.uint8)
    results["scale_4MiB" if not quick else "scale_1MiB"] = _measure(
        lambda: scale(37, buf), reps, nbytes=2 * big
    )
    results["scale_accumulate"] = _measure(
        lambda: scale_accumulate(acc, 91, buf), reps, nbytes=3 * big
    )
    terms = [rng.integers(0, 256, big, dtype=np.uint8) for _ in range(6)]
    results["linear_combine_6"] = _measure(
        lambda: linear_combine([3, 7, 19, 33, 101, 250], terms),
        reps,
        nbytes=7 * big,
    )

    # -- batched encode vs per-stripe --------------------------------------
    data = rng.integers(0, 256, (num_stripes, code.n, block), dtype=np.uint8)
    arena = np.empty((num_stripes, code.width, block), dtype=np.uint8)
    encode_bytes = (code.n + code.width) * num_stripes * block

    def encode_per_stripe():
        return [
            code.encode([data[s, j] for j in range(code.n)])
            for s in range(num_stripes)
        ]

    results["encode_per_stripe"] = _measure(
        encode_per_stripe, reps, nbytes=encode_bytes
    )
    results["encode_many"] = _measure(
        lambda: code.encode_many(data), reps, nbytes=encode_bytes
    )
    results["encode_many_arena"] = _measure(
        lambda: code.encode_many(data, out=arena), reps, nbytes=encode_bytes
    )

    # -- batched decode vs per-stripe --------------------------------------
    encoded = code.encode_many(data)
    failed = [0, code.n + 1]
    available = {
        b: np.ascontiguousarray(encoded[:, b, :])
        for b in range(code.width)
        if b not in failed
    }

    def decode_per_stripe():
        return [
            decode_blocks(
                code, {b: available[b][s] for b in available}, failed
            )
            for s in range(num_stripes)
        ]

    decode_bytes = (code.n + len(failed)) * num_stripes * block
    results["decode_per_stripe"] = _measure(
        decode_per_stripe, reps, nbytes=decode_bytes
    )
    results["decode_many"] = _measure(
        lambda: code.decode_many(available, failed), reps, nbytes=decode_bytes
    )

    # -- split-table kernels vs the translate baseline ---------------------
    # Same 64-stripe encode/decode workload, each GF kernel pinned in
    # turn so the comparison is pure kernel cost (no selection races).
    try:
        for kernel in KERNELS:
            set_kernel_override(kernel)
            results[f"encode_many_kernel_{kernel}"] = _measure(
                lambda: code.encode_many(data, out=arena),
                reps,
                nbytes=encode_bytes,
            )
            results[f"decode_many_kernel_{kernel}"] = _measure(
                lambda: code.decode_many(available, failed),
                reps,
                nbytes=decode_bytes,
            )
    finally:
        set_kernel_override(None)

    # -- multicore codec scaling curve -------------------------------------
    parallel_curve: dict = {}
    for workers in sorted(set(worker_counts)):
        entry = _measure(
            lambda w=workers: code.encode_many_parallel(
                data, out=arena, workers=w
            ),
            reps,
            nbytes=encode_bytes,
        )
        entry["workers"] = workers
        results[f"encode_many_parallel_w{workers}"] = entry
        # Speedup vs the serial arena encode: same workload, same output
        # buffer, so the ratio is pure scheduling gain.
        parallel_curve[str(workers)] = round(
            results["encode_many_arena"]["best_s"] / entry["best_s"], 3
        )

    # -- store-level rebuild through the batched stack ---------------------
    cluster = Cluster.homogeneous(5, 8)
    store = StripeStore.build(cluster, code, 40)
    payloads = encode_store_payloads(store, block)
    results["store_rebuild_40_stripes"] = _measure(
        lambda: rebuild_node_payloads(store, 0, payloads), reps
    )

    results["buffer_pool"] = scratch_pool.stats()
    report["derived"] = {
        "stripes": num_stripes,
        "block_bytes": block,
        "encode_many_speedup_x": round(
            results["encode_per_stripe"]["best_s"]
            / results["encode_many"]["best_s"],
            3,
        ),
        "encode_many_arena_speedup_x": round(
            results["encode_per_stripe"]["best_s"]
            / results["encode_many_arena"]["best_s"],
            3,
        ),
        "decode_many_speedup_x": round(
            results["decode_per_stripe"]["best_s"]
            / results["decode_many"]["best_s"],
            3,
        ),
        "split16_encode_vs_translate_x": round(
            results["encode_many_kernel_translate"]["best_s"]
            / results["encode_many_kernel_split16"]["best_s"],
            3,
        ),
        "split16_decode_vs_translate_x": round(
            results["decode_many_kernel_translate"]["best_s"]
            / results["decode_many_kernel_split16"]["best_s"],
            3,
        ),
        "parallel_encode_speedup_by_workers": parallel_curve,
    }
    return report


def live_suite(quick: bool = False) -> dict:
    """Live-runtime timings: plan execution with telemetry off vs on.

    Runs an RS(6,3) single-failure RPR plan end to end on the asyncio
    runtime — in-process streams, *unshaped* links so wall clock is
    dominated by runtime overhead rather than token-bucket sleeps.  The
    ``derived.telemetry_overhead_ratio`` is the acceptance bar for the
    zero-cost-when-disabled claim: the plain run exercises the
    instrumented code with the recorder compiled out (``None``), the
    ``_telemetry`` run records every span, phase and gauge.
    """
    from .experiments import context_for
    from .live import run_plan_live_sync
    from .live.validate import live_environment
    from .repair import RPRScheme, initial_store_for, simulate_repair
    from .telemetry import CLOCK_WALL, TelemetryRecorder
    from .workloads import encoded_stripe

    reps = 7 if quick else 15
    block = (16 if quick else 64) * 1024
    env = live_environment(6, 3, block_size=block)
    ctx = context_for(env, [1])
    predicted = simulate_repair(RPRScheme(), ctx, env.bandwidth)
    stripe = encoded_stripe(env.code, block, seed=0)

    def execute(recorder=None):
        store = initial_store_for(stripe, env.placement, [1])
        return run_plan_live_sync(
            predicted.plan, env.cluster, store, bandwidth=None, recorder=recorder
        )

    from .repair.plan import SendOp

    wire_bytes = block * sum(
        1 for op in predicted.plan.ops.values() if isinstance(op, SendOp)
    )

    report = _env_info(quick)
    results: dict = {}
    report["results"] = results

    plain = _measure(execute, reps, nbytes=wire_bytes)
    plain.update(ops=len(predicted.plan.ops))
    results["plan_execute_rs6_3"] = plain

    def execute_with_telemetry():
        return execute(TelemetryRecorder(CLOCK_WALL, meta={"source": "live"}))

    instrumented = _measure(execute_with_telemetry, reps)
    instrumented.update(ops=len(predicted.plan.ops))
    results["plan_execute_rs6_3_telemetry"] = instrumented

    # Store service path: block.put + block.get round trips against one
    # in-process daemon over real localhost TCP, recorder off (explicit
    # NULL_RECORDER) vs the deployed config (streaming recorder flushing
    # every span to disk).  Gates the observability plane's hot-path
    # cost: derived.store_telemetry_overhead beyond the perf-regression
    # threshold means stats/span recording leaked into the data path.
    import asyncio
    import os
    import tempfile

    from .store import StorageDaemon
    from .store.messages import call as store_call
    from .telemetry import NULL_RECORDER, StreamingRecorder

    rounds = 12 if quick else 24
    payload = os.urandom(block)

    def store_roundtrips(recorder):
        async def run():
            daemon = StorageDaemon(0, None, recorder=recorder)
            port = await daemon.start()
            try:
                for i in range(rounds):
                    key = f"bench-{i % 4}"
                    await store_call(
                        "127.0.0.1", port, "block.put", {"key": key},
                        blob=payload,
                    )
                    await store_call(
                        "127.0.0.1", port, "block.get", {"key": key}
                    )
            finally:
                await daemon.aclose()

        asyncio.run(run())

    bare = _measure(
        lambda: store_roundtrips(NULL_RECORDER),
        reps,
        nbytes=2 * rounds * block,
    )
    bare.update(round_trips=2 * rounds)
    results["store_block_roundtrip"] = bare

    with tempfile.TemporaryDirectory(prefix="rpr-bench-") as tmp:

        def recorded():
            rec = StreamingRecorder(
                Path(tmp) / "telemetry-bench.jsonl",
                CLOCK_WALL,
                meta={"component": "daemon", "node": "bench"},
            )
            try:
                store_roundtrips(rec)
            finally:
                rec.close()

        streamed = _measure(recorded, reps)
    streamed.update(round_trips=2 * rounds)
    results["store_block_roundtrip_telemetry"] = streamed

    report["derived"] = {
        "block_bytes": block,
        "telemetry_overhead_ratio": round(
            instrumented["best_s"] / plain["best_s"], 3
        ),
        "store_telemetry_overhead": round(
            streamed["best_s"] / bare["best_s"], 3
        ),
        # Zero-copy headline: payload bytes crossing the wire (SendOps x
        # block size) over the plain run's wall clock.  The memoryview
        # send path and preallocated-frame receive path show up here.
        "wire_throughput_MiBps": round(
            wire_bytes / plain["best_s"] / (1024 * 1024), 1
        ),
    }
    return report


def qos_suite(quick: bool = False) -> dict:
    """Foreground tail latency vs repair bandwidth on the live store.

    Replays one seeded Zipfian GET trace three times against an
    in-process store cluster (:class:`repro.qos.LocalService`), killing
    the same daemon mid-run each time:

    * ``replay_unshaped`` — no link shaping (reference point);
    * ``replay_repair_hog`` — links shaped, 95% guaranteed to repair
      (what an unthrottled repair plane does to users);
    * ``replay_qos`` — links shaped, 20% to repair (the QoS policy).

    The ``best_s`` entries gate end-to-end replay wall clock; the
    ``derived.curve`` holds the latency/repair trade-off.  The suite
    *raises* if the p99 of *degraded* GETs (the requests served while
    the outage is live, flagged per-sample so the metric does not
    depend on catching the repair window with a status poll) is not
    strictly better under the QoS split than under the repair hog — the
    ordering is token-bucket arithmetic (80% vs 5% of the link), so a
    violation means the QoS plane is broken, and the CI perf gate
    (which reruns this suite) turns that into a red build.
    """
    import asyncio

    from .qos import LocalService, percentiles, preload_working_set, replay_trace
    from .workloads import zipf_object_trace

    block = 16 * 1024
    # The victim daemon holds a block of most stripes, so the repair
    # volume — and with it how long repair traffic occupies the links —
    # scales with the object count.  Sized so the repair-hog run spends
    # ~1 s of the trace squeezing foreground GETs to its 5% share;
    # smaller working sets let repair slip between user requests and
    # the trade-off disappears into sampling noise.
    objects = 30 if quick else 40
    requests = 350 if quick else 500
    object_bytes = 3 * block
    link_rate = 1.5e6
    kill_at = 0.25
    seed = 42

    async def one_run(rate, repair_share):
        async with LocalService(
            block_size=block,
            link_rate=rate,
            repair_share=repair_share,
            suspect_after=0.45,
            sweep_interval=0.05,
            heartbeat=0.1,
        ) as svc:
            expected = await preload_working_set(
                svc.client, objects, object_bytes, seed=seed
            )
            events = zipf_object_trace(
                objects, requests, get_fraction=0.95, seed=seed
            )
            victim = svc.coordinator.stripes[0].placement.node_of(0)
            return await replay_trace(
                svc.client,
                events,
                mode="closed",
                concurrency=8,
                expected=expected,
                kills=[(kill_at, victim)],
                kill_fn=svc.kill,
                object_bytes=object_bytes,
                seed=seed,
            )

    report = _env_info(quick)
    results: dict = {}
    report["results"] = results
    curve: dict = {}

    def measure(name: str, rate, share: float) -> dict:
        t0 = time.perf_counter()
        rep = asyncio.run(one_run(rate, share))
        wall = time.perf_counter() - t0
        if rep.errors:
            first = rep.errors[0]
            raise RuntimeError(
                f"{name}: {len(rep.errors)} replay errors under failure "
                f"(first: {first.op} {first.obj}: {first.error}) — "
                f"degraded reads must never fail"
            )
        get_all = rep.summary(op="get")
        degraded = percentiles(
            [s.latency for s in rep.samples if s.op == "get" and s.ok and s.degraded]
        )
        results[name] = {
            "best_s": wall,
            "reps": 1,
            "requests": len(rep.samples),
            "degraded_gets": rep.degraded_gets,
        }
        curve[name] = {
            "link_rate_Bps": rate,
            "repair_share": share,
            "get_p50_s": get_all["p50"],
            "get_p99_s": get_all["p99"],
            "get_p999_s": get_all["p999"],
            "degraded_get_p99_s": degraded["p99"],
            "degraded_get_count": degraded["count"],
            "repair_window_s": (
                None
                if rep.repair_window is None or rep.repair_window[1] is None
                else round(rep.repair_window[1] - rep.repair_window[0], 3)
            ),
            "rejected_puts": len(rep.rejections),
        }
        return curve[name]

    measure("replay_unshaped", None, 0.5)
    # The latency ordering is token-bucket arithmetic, but one replay is
    # one sample of it: repair traffic is bursty, so a single hog run can
    # finish its sends in the gaps between user requests and show no
    # squeeze at all.  One re-measure of the shaped pair separates that
    # sampling accident from an actually broken QoS plane.
    for attempt in (1, 2):
        hog = measure("replay_repair_hog", link_rate, 0.95)["degraded_get_p99_s"]
        qos = measure("replay_qos", link_rate, 0.2)["degraded_get_p99_s"]
        if hog is not None and qos is not None and qos < hog:
            break
        if attempt == 2:
            raise RuntimeError(
                f"QoS ordering violated: degraded GET p99 is {qos} s with "
                f"QoS throttling vs {hog} s with repair hogging the link — "
                f"throttled repair must serve users strictly better"
            )
    report["derived"] = {
        "block_bytes": block,
        "objects": objects,
        "requests": requests,
        "kill_at_s": kill_at,
        "curve": curve,
        "qos_repair_p99_improvement_x": round(hog / qos, 3),
    }
    return report


#: Benchmarks faster than this are skipped by :func:`compare_reports` —
#: at tens of microseconds the 25% band is all timer noise.
COMPARE_FLOOR_S = 5e-5


def compare_reports(
    baseline: dict, current: dict, threshold: float = 0.25
) -> list[str]:
    """Regression messages for ``current`` vs ``baseline``, empty if clean.

    Compares every ``best_s`` entry present in both reports; a benchmark
    slower than ``baseline * (1 + threshold)`` is a regression.  Entries
    below :data:`COMPARE_FLOOR_S` in the baseline are skipped, and a
    benchmark that vanished from ``current`` is reported too (a silent
    rename would otherwise un-gate it).  Reports from mismatched
    ``quick`` modes are refused: quick and full runs size their
    workloads differently, so the ratio would be meaningless.
    """
    if baseline.get("quick") != current.get("quick"):
        return [
            f"quick-mode mismatch: baseline quick={baseline.get('quick')} "
            f"vs current quick={current.get('quick')} — rerun with the "
            f"baseline's mode"
        ]
    messages = []
    for name, entry in sorted(baseline.get("results", {}).items()):
        if not isinstance(entry, dict) or "best_s" not in entry:
            continue
        if entry["best_s"] < COMPARE_FLOOR_S:
            continue
        now = current.get("results", {}).get(name)
        if not isinstance(now, dict) or "best_s" not in now:
            messages.append(f"{name}: present in baseline but missing from current run")
            continue
        ratio = now["best_s"] / entry["best_s"]
        if ratio > 1.0 + threshold:
            messages.append(
                f"{name}: {now['best_s'] * 1e3:.2f} ms vs baseline "
                f"{entry['best_s'] * 1e3:.2f} ms ({ratio:.2f}x, "
                f"threshold {1.0 + threshold:.2f}x)"
            )
    return messages


def append_history(out_dir: Path, reports: dict[str, dict]) -> Path:
    """Append one timestamped record for this run to the history log.

    The record keeps only the regression-relevant numbers (``best_s``
    per benchmark, plus derived speedups) so the file stays small enough
    to commit or upload as a CI artifact indefinitely.
    """
    import datetime

    record: dict = {
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
    }
    for suite_name, report in reports.items():
        record[suite_name] = {
            name: entry["best_s"]
            for name, entry in report["results"].items()
            if isinstance(entry, dict) and "best_s" in entry
        }
        if report.get("derived"):
            record[f"{suite_name}_derived"] = report["derived"]
        record.setdefault("quick", report.get("quick"))
        record.setdefault("python", report.get("python"))
    path = Path(out_dir) / HISTORY_NAME
    with path.open("a") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def write_reports(
    out_dir: Path,
    quick: bool = False,
    worker_counts: tuple[int, ...] | None = None,
) -> list[Path]:
    """Run both suites, write the ``BENCH_*.json`` reports, log history."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written = []
    reports = {}
    for name, suite in (
        ("BENCH_engine.json", engine_suite),
        ("BENCH_coding.json", coding_suite),
        ("BENCH_live.json", live_suite),
        ("BENCH_qos.json", qos_suite),
    ):
        if suite is coding_suite:
            report = suite(quick, worker_counts=worker_counts)
        else:
            report = suite(quick)
        reports[name.removeprefix("BENCH_").removesuffix(".json")] = report
        path = out_dir / name
        path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        written.append(path)
    written.append(append_history(out_dir, reports))
    return written


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="time the engine and coding hot paths, write BENCH_*.json"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized run: fewer reps, smaller graphs and blocks",
    )
    parser.add_argument(
        "--out-dir",
        type=Path,
        default=Path.cwd(),
        help="where to write the reports (default: current directory)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="measure the parallel codec at N workers (plus the serial "
        "baseline) instead of the default 1/2/4/8 curve",
    )
    args = parser.parse_args(argv)
    if args.workers is not None and args.workers < 1:
        parser.error("--workers must be >= 1")
    worker_counts = (
        None if args.workers is None else tuple(sorted({1, args.workers}))
    )
    for path in write_reports(
        args.out_dir, quick=args.quick, worker_counts=worker_counts
    ):
        if path.name == HISTORY_NAME:
            print(f"appended run to {path}")
            continue
        report = json.loads(path.read_text())
        print(f"wrote {path}")
        for name, entry in sorted(report["results"].items()):
            if "best_s" not in entry:
                continue
            line = f"  {name:<32} {entry['best_s'] * 1e3:9.2f} ms"
            if entry.get("bytes_touched"):
                # Memory-bandwidth estimate: logical bytes in + out over
                # the best wall clock — a roofline sanity figure.
                gbps = entry["bytes_touched"] / entry["best_s"] / 1e9
                line += f"  ~{gbps:6.2f} GB/s"
            print(line)
        for name, value in sorted(report.get("derived", {}).items()):
            print(f"  {name:<32} {value}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
