"""repro.qos — the foreground traffic plane.

Everything up to here measures repair in a vacuum: a node dies, a plan
runs, the makespan is the verdict.  Real clusters repair *while serving
users*, and the operative question becomes a trade-off — how much does
repair throughput cost in foreground tail latency, and how much tail
latency does throttling repair buy?  This package supplies the three
pieces needed to ask it against the live store service
(:mod:`repro.store`):

* **Service classes** (:mod:`repro.qos.classes`) — the priority model
  (foreground > deadline repair > background repair) and its mapping
  onto :class:`repro.live.WeightedTokenBucket` weight splits.
* **Workload driver** (:mod:`repro.qos.driver`) — replay seeded
  Zipfian GET/PUT traces (:func:`repro.workloads.zipf_object_trace`)
  against a live store in closed- or open-loop mode, kill daemons
  mid-run, track the repair window via status polls, and report
  per-request latency samples with p50/p99/p999 summaries per phase.
* **Degraded reads** live in the store client itself
  (:meth:`repro.store.StoreClient.get` with ``degraded=True``); the
  driver exercises them whenever a GET lands in the repair window.

``rpr qos`` runs a replay from the CLI;
``benchmarks/bench_qos_tradeoff.py`` produces the latency-vs-repair
trade-off curve gated in CI.  See ``docs/QOS.md``.
"""

from .classes import (
    BACKGROUND_REPAIR,
    DEADLINE_REPAIR,
    DEFAULT_POLICY,
    FOREGROUND,
    PRIORITY_CLASSES,
    QoSPolicy,
)
from .driver import (
    LocalService,
    ReplayReport,
    RequestSample,
    object_payload,
    percentiles,
    preload_working_set,
    replay_trace,
)

__all__ = [
    "BACKGROUND_REPAIR",
    "DEADLINE_REPAIR",
    "DEFAULT_POLICY",
    "FOREGROUND",
    "LocalService",
    "PRIORITY_CLASSES",
    "QoSPolicy",
    "ReplayReport",
    "RequestSample",
    "object_payload",
    "percentiles",
    "preload_working_set",
    "replay_trace",
]
