"""Service classes: who gets the link when everyone wants it.

Three classes, strictly ordered by how much a stall costs:

* ``foreground`` — user reads and writes; every stalled byte is tail
  latency a person can feel.
* ``deadline-repair`` — repairs racing a durability clock (a stripe one
  more failure from data loss, or an operator-set deadline).
* ``background-repair`` — ordinary re-replication; it only has to win
  eventually.

The model is *weighted fair sharing with work conservation*, not strict
priority: each class owns a guaranteed fraction of the link
(:class:`repro.live.WeightedTokenBucket` enforces it) and idle classes
donate their fraction to whoever is backlogged.  Strict priority would
starve repair forever under saturating foreground load — and a stripe
that never repairs eventually loses data, which is a worse user
experience than any p99.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "BACKGROUND_REPAIR",
    "DEADLINE_REPAIR",
    "DEFAULT_POLICY",
    "FOREGROUND",
    "PRIORITY_CLASSES",
    "QoSPolicy",
]

FOREGROUND = "foreground"
DEADLINE_REPAIR = "deadline-repair"
BACKGROUND_REPAIR = "background-repair"

#: All classes, highest priority first.
PRIORITY_CLASSES = (FOREGROUND, DEADLINE_REPAIR, BACKGROUND_REPAIR)


@dataclass(frozen=True)
class QoSPolicy:
    """One link's bandwidth split across the three service classes.

    Weights are relative (they need not sum to 1); each must be
    positive so no class can be configured into starvation.
    """

    foreground: float = 0.6
    deadline_repair: float = 0.3
    background_repair: float = 0.1

    def __post_init__(self) -> None:
        for name, share in self.weights().items():
            if share <= 0:
                raise ValueError(
                    f"class {name!r} must have a positive weight, got {share} "
                    f"(zero-weight classes starve under load)"
                )

    def weights(self) -> dict[str, float]:
        """The three-class weight map for a :class:`WeightedTokenBucket`."""
        return {
            FOREGROUND: self.foreground,
            DEADLINE_REPAIR: self.deadline_repair,
            BACKGROUND_REPAIR: self.background_repair,
        }

    def store_weights(self) -> dict[str, float]:
        """The two-class collapse the store daemons run.

        Daemons distinguish only user I/O from repair traffic (the
        coordinator already serialises repairs most-at-risk-first, so
        the deadline/background split happens in *ordering*, not
        bandwidth); both repair classes pool their guarantee.
        """
        return {
            "foreground": self.foreground,
            "repair": self.deadline_repair + self.background_repair,
        }

    @property
    def repair_share(self) -> float:
        """Fraction of the link guaranteed to repair, normalised."""
        total = self.foreground + self.deadline_repair + self.background_repair
        return (self.deadline_repair + self.background_repair) / total


DEFAULT_POLICY = QoSPolicy()
