"""Replay a user workload against a live store while nodes die.

The harness the trade-off curve comes from: preload a working set,
replay a seeded Zipfian GET/PUT trace (closed- or open-loop) through
:class:`repro.store.StoreClient`, SIGKILL-equivalent daemons mid-run,
and record one latency sample per request plus the repair window the
status poller observed.  Everything is wall-clock honest — the store is
real sockets and real GF arithmetic — but runs in one process
(:class:`LocalService`) so a full curve fits in a CI job.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field

from ..cluster import Cluster
from ..rs import get_code
from ..store import Coordinator, StorageDaemon, StoreClient, StoreError
from ..telemetry import CLOCK_WALL, LogHistogram, TelemetryRecorder
from ..workloads import RequestEvent

__all__ = [
    "LocalService",
    "ReplayReport",
    "RequestSample",
    "object_payload",
    "percentiles",
    "preload_working_set",
    "replay_trace",
]


def percentiles(values) -> dict:
    """Nearest-rank latency summary: count/mean/p50/p90/p99/p999/max.

    Empty input yields ``count: 0`` with ``None`` stats, so callers can
    always serialise the result without special-casing.
    """
    data = sorted(values)
    if not data:
        return {
            "count": 0, "mean": None, "p50": None, "p90": None,
            "p99": None, "p999": None, "max": None,
        }

    def rank(q: float) -> float:
        return data[min(len(data) - 1, max(0, int(q * len(data) + 0.5) - 1))]

    return {
        "count": len(data),
        "mean": sum(data) / len(data),
        "p50": rank(0.50),
        "p90": rank(0.90),
        "p99": rank(0.99),
        "p999": rank(0.999),
        "max": data[-1],
    }


@dataclass(frozen=True)
class RequestSample:
    """One replayed request's outcome."""

    op: str
    obj: str
    start: float  #: seconds since replay start
    end: float
    latency: float
    ok: bool
    degraded: bool  #: a GET that reconstructed at least one block
    error: str = ""
    #: The service *refused* the op (e.g. a PUT whose placement would
    #: land on a dead node during the degraded window) — unavailability,
    #: not a data-path failure; reported separately from errors.
    rejected: bool = False


@dataclass
class ReplayReport:
    """Everything one replay run measured."""

    samples: list[RequestSample] = field(default_factory=list)
    duration: float = 0.0
    #: (first moment the service reported degraded/repairing, moment it
    #: reported healthy again) — seconds since replay start; ``None``
    #: when no repair was ever observed / it never finished in-run.
    repair_window: tuple[float, float | None] | None = None

    def phase_of(self, sample: RequestSample) -> str:
        """``pre`` / ``repair`` / ``post`` by the sample's start time."""
        if self.repair_window is None or sample.start < self.repair_window[0]:
            return "pre"
        end = self.repair_window[1]
        if end is not None and sample.start >= end:
            return "post"
        return "repair"

    def latencies(self, op: str | None = None, phase: str | None = None):
        return [
            s.latency
            for s in self.samples
            if s.ok
            and (op is None or s.op == op)
            and (phase is None or self.phase_of(s) == phase)
        ]

    @property
    def errors(self) -> list[RequestSample]:
        return [s for s in self.samples if not s.ok and not s.rejected]

    @property
    def rejections(self) -> list[RequestSample]:
        return [s for s in self.samples if s.rejected]

    @property
    def degraded_gets(self) -> int:
        return sum(1 for s in self.samples if s.ok and s.degraded)

    def summary(self, op: str | None = None, phase: str | None = None) -> dict:
        return percentiles(self.latencies(op, phase))

    def latency_histogram(
        self, op: str | None = None, phase: str | None = None
    ) -> LogHistogram:
        """Ok-latencies as a log-bucketed histogram — the same geometric
        bucket scheme the store's ``stats`` RPC serves, so a replay's
        per-phase distributions merge/compare directly with live scrapes."""
        hist = LogHistogram()
        for value in self.latencies(op, phase):
            hist.observe(value)
        return hist

    def to_dict(self) -> dict:
        return {
            "duration": self.duration,
            "requests": len(self.samples),
            "errors": len(self.errors),
            "rejected": len(self.rejections),
            "degraded_gets": self.degraded_gets,
            "repair_window": (
                list(self.repair_window) if self.repair_window else None
            ),
            "all": self.summary(),
            "get": self.summary(op="get"),
            "put": self.summary(op="put"),
            "get_repair_phase": self.summary(op="get", phase="repair"),
            "get_pre_phase": self.summary(op="get", phase="pre"),
            "latency_histograms": {
                f"{op}:{phase}": hist.to_dict()
                for op in ("get", "put")
                for phase in ("pre", "repair", "post")
                if (hist := self.latency_histogram(op, phase)).count
            },
        }


def object_payload(name: str, nbytes: int, seed: int = 0) -> bytes:
    """Deterministic per-object payload, so any GET can be verified."""
    return random.Random(f"{seed}:{name}").randbytes(nbytes)


async def preload_working_set(
    client: StoreClient,
    num_objects: int,
    object_bytes: int,
    *,
    seed: int = 0,
    name_prefix: str = "obj",
) -> dict[str, bytes]:
    """PUT the trace's GET targets; returns name → bytes for verification."""
    expected: dict[str, bytes] = {}
    for rank in range(num_objects):
        name = f"{name_prefix}-{rank}"
        payload = object_payload(name, object_bytes, seed)
        await client.put(name, payload)
        expected[name] = payload
    return expected


async def _phase_tracker(client, t0, poll, window, stop):
    """Record when the service enters and leaves its repair window."""
    loop = asyncio.get_event_loop()
    while not stop.is_set():
        try:
            status = await client.status()
        except (StoreError, ConnectionError, OSError):
            status = None
        if status is not None:
            busy = bool(status["degraded"] or status["repairing"])
            now = loop.time() - t0
            if busy:
                if window[0] is None:
                    window[0] = now
                window[1] = None  # still (or again) repairing
            elif window[0] is not None and window[1] is None:
                window[1] = now
        try:
            await asyncio.wait_for(stop.wait(), timeout=poll)
        except asyncio.TimeoutError:
            pass


async def replay_trace(
    client: StoreClient,
    events: list[RequestEvent],
    *,
    mode: str = "closed",
    concurrency: int = 4,
    time_scale: float = 1.0,
    degraded: bool = True,
    object_bytes: int = 8192,
    seed: int = 0,
    expected: dict[str, bytes] | None = None,
    kills: list[tuple[float, int]] | None = None,
    kill_fn=None,
    status_poll: float = 0.05,
) -> ReplayReport:
    """Replay ``events`` against a live store; returns per-request samples.

    Parameters
    ----------
    mode:
        ``"closed"`` — ``concurrency`` workers drain the trace in order,
        each issuing its next request the moment the last returns (the
        load adapts to service speed, like a fixed client fleet).
        ``"open"`` — every request fires at its trace time scaled by
        ``time_scale``, regardless of how slow the store is (the honest
        way to measure tail latency under a fixed offered load).
    degraded:
        GETs use the degraded-read path, so a request landing in the
        repair window reconstructs instead of failing.
    expected:
        Name → bytes (from :func:`preload_working_set`); GETs of known
        objects are verified and a mismatch counts as an error.
    kills / kill_fn:
        ``[(seconds_since_start, node_id), ...]`` — at each time,
        ``await kill_fn(node_id)`` (e.g. ``LocalService.kill``) murders
        a daemon mid-replay.
    """
    if mode not in ("closed", "open"):
        raise ValueError(f"unknown replay mode {mode!r}")
    if kills and kill_fn is None:
        raise ValueError("kills given without a kill_fn")
    loop = asyncio.get_event_loop()
    t0 = loop.time()
    samples: list[RequestSample] = []
    stop = asyncio.Event()
    window: list[float | None] = [None, None]
    tracker = asyncio.ensure_future(
        _phase_tracker(client, t0, status_poll, window, stop)
    )

    async def killer(at: float, node_id: int) -> None:
        await asyncio.sleep(max(0.0, at - (loop.time() - t0)))
        await kill_fn(node_id)

    killers = [
        asyncio.ensure_future(killer(at, node_id))
        for at, node_id in (kills or [])
    ]

    async def run_one(ev: RequestEvent) -> None:
        start = loop.time() - t0
        ok, was_degraded, error, rejected = True, False, "", False
        try:
            if ev.op == "get":
                if degraded:
                    data, report = await client.get_with_report(
                        ev.obj, degraded=True
                    )
                    was_degraded = report["degraded"]
                else:
                    data = await client.get(ev.obj)
                if expected is not None and ev.obj in expected:
                    if data != expected[ev.obj]:
                        ok, error = False, "bytes differ from written payload"
            elif ev.op == "put":
                await client.put(
                    ev.obj, object_payload(ev.obj, object_bytes, seed)
                )
            else:
                raise ValueError(f"unknown trace op {ev.op!r}")
        except (StoreError, ConnectionError, OSError) as exc:
            ok, error = False, f"{type(exc).__name__}: {exc}"
            # PUTs have no degraded path: a grant can race the failure
            # detector and route a block at a daemon that just died, and
            # the store never re-grants placements.  That whole family
            # is write unavailability, not a data-path failure.  GETs
            # are held to the hard standard — they must always succeed.
            rejected = "would land on dead nodes" in str(exc) or (
                ev.op == "put"
                and (
                    isinstance(exc, (ConnectionError, OSError))
                    or "Connection" in str(exc)
                    or "died during put" in str(exc)
                )
            )
        end = loop.time() - t0
        samples.append(
            RequestSample(
                op=ev.op, obj=ev.obj, start=start, end=end,
                latency=end - start, ok=ok, degraded=was_degraded,
                error=error, rejected=rejected,
            )
        )

    try:
        if mode == "closed":
            queue: asyncio.Queue = asyncio.Queue()
            for ev in events:
                queue.put_nowait(ev)

            async def worker() -> None:
                while True:
                    try:
                        ev = queue.get_nowait()
                    except asyncio.QueueEmpty:
                        return
                    await run_one(ev)

            await asyncio.gather(*(worker() for _ in range(concurrency)))
        else:

            async def fire(ev: RequestEvent) -> None:
                await asyncio.sleep(
                    max(0.0, ev.time * time_scale - (loop.time() - t0))
                )
                await run_one(ev)

            await asyncio.gather(*(fire(ev) for ev in events))
        if killers:
            await asyncio.gather(*killers)
    finally:
        stop.set()
        for task in killers:
            task.cancel()
        await asyncio.gather(tracker, *killers, return_exceptions=True)

    samples.sort(key=lambda s: s.start)
    report = ReplayReport(samples=samples, duration=loop.time() - t0)
    if window[0] is not None:
        report.repair_window = (window[0], window[1])
    return report


class LocalService:
    """One in-process store cluster: coordinator + a daemon per node.

    The replay harness's stand-in for ``rpr store up`` — identical
    components over real localhost TCP, but as tasks in one loop so a
    bench or test can bring a cluster up, kill nodes, and tear it down
    in milliseconds.  ``link_rate``/``repair_share`` switch on the
    daemons' QoS NIC split.
    """

    def __init__(
        self,
        *,
        racks: int = 3,
        per_rack: int = 2,
        n: int = 3,
        k: int = 2,
        scheme: str = "rpr",
        block_size: int = 16 * 1024,
        suspect_after: float = 0.8,
        sweep_interval: float = 0.1,
        heartbeat: float = 0.15,
        link_rate: float | None = None,
        repair_share: float = 0.5,
    ) -> None:
        self.cluster = Cluster.homogeneous(racks, per_rack)
        self.code = get_code(n, k)
        self.scheme = scheme
        self.block_size = block_size
        self.heartbeat = heartbeat
        self.link_rate = link_rate
        self.repair_share = repair_share
        self.coordinator = Coordinator(
            self.cluster,
            self.code,
            scheme=scheme,
            block_size=block_size,
            suspect_after=suspect_after,
            sweep_interval=sweep_interval,
        )
        self.daemons: dict[int, StorageDaemon] = {}
        self.client: StoreClient | None = None

    async def __aenter__(self) -> "LocalService":
        port = await self.coordinator.start()
        for nid in self.cluster.node_ids():
            daemon = StorageDaemon(
                nid,
                ("127.0.0.1", port),
                heartbeat_interval=self.heartbeat,
                link_rate=self.link_rate,
                repair_share=self.repair_share,
            )
            await daemon.start()
            self.daemons[nid] = daemon
        self.client = StoreClient(
            "127.0.0.1",
            port,
            recorder=TelemetryRecorder(CLOCK_WALL, meta={"component": "qos"}),
        )
        deadline = asyncio.get_event_loop().time() + 10.0
        while True:
            status = await self.client.status()
            alive = sum(1 for e in status["nodes"].values() if e["alive"])
            if alive == len(self.daemons):
                return self
            if asyncio.get_event_loop().time() > deadline:
                raise RuntimeError("daemons never registered")
            await asyncio.sleep(0.05)

    async def __aexit__(self, *exc) -> None:
        for daemon in self.daemons.values():
            await daemon.aclose()
        await self.coordinator.aclose()

    async def kill(self, node_id: int) -> None:
        """In-process SIGKILL: the daemon stops serving AND beating."""
        await self.daemons.pop(node_id).aclose()
