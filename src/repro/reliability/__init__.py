"""Durability analysis: repair speed → mean time to data loss.

Extension quantifying the paper's motivation ("slow repair widens the
window of vulnerability"): an analytic birth-death MTTDL model and a
Monte-Carlo trajectory simulator, both driven by the schemes' *measured*
repair times on the configured testbed.
"""

from .markov import mttdl, mttdl_from_repair_times
from .montecarlo import DurabilityResult, simulate_stripe_lifetimes

__all__ = [
    "DurabilityResult",
    "mttdl",
    "mttdl_from_repair_times",
    "simulate_stripe_lifetimes",
]
