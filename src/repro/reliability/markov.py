"""Analytic stripe durability: a birth-death Markov chain driven by
measured repair times.

Why this module exists: the paper's motivation is that slow repair
keeps stripes in degraded states longer, widening the window in which
further failures cause data loss.  Here the connection is made
quantitative.  A stripe is modelled as a birth-death chain on the
number of concurrently failed blocks:

* state ``i``  (0 <= i <= k): ``i`` blocks lost, repair under way;
* failure rate out of state ``i``: ``(width - i) * lam`` (each surviving
  block fails independently at rate ``lam``);
* repair rate in state ``i >= 1``: ``1 / T_i`` where ``T_i`` is the
  *measured* total repair time for an ``i``-block failure under the
  scheme being analysed (this is where RPR's speed enters);
* state ``k + 1`` is absorbing: data loss.

``mttdl`` computes the expected absorption time from state 0 exactly via
the standard one-step-up recursion

    T_i = 1/f_i + (mu_i / f_i) * T_{i-1},      MTTDL = sum_i T_i

(``T_i`` = expected time for the chain to move from ``i`` to ``i+1`` for
good).  The recursion adds and multiplies only positive quantities, so
it stays numerically exact at production parameters, where repair rates
exceed failure rates by many orders of magnitude and MTTDL reaches
~1e30 seconds (a naive linear-system solve loses everything there to
cancellation).  Halving repair time roughly multiplies MTTDL by ``2^k``
in the rare-failure regime — the quantitative form of the paper's
motivation.
"""

from __future__ import annotations

__all__ = ["mttdl", "mttdl_from_repair_times"]


def mttdl(width: int, k: int, lam: float, repair_rates) -> float:
    """Mean time to data loss for one stripe.

    Parameters
    ----------
    width:
        Total blocks in the stripe (``n + k``).
    k:
        Fault tolerance (loss occurs at ``k + 1`` concurrent failures).
    lam:
        Per-block failure rate (failures / second).
    repair_rates:
        ``repair_rates[i]`` = repair completion rate (1/seconds) while
        ``i + 1`` blocks are failed, i.e. index 0 covers state 1.  Length
        must be ``k``.

    Returns
    -------
    Expected seconds from an all-healthy stripe to data loss.

    """
    if width < 1 or not 0 <= k < width:
        raise ValueError(f"invalid stripe shape width={width}, k={k}")
    if lam <= 0:
        raise ValueError("failure rate must be positive")
    rates = list(repair_rates)
    if len(rates) != k:
        raise ValueError(f"need {k} repair rates (states 1..{k}), got {len(rates)}")
    if any(r <= 0 for r in rates):
        raise ValueError("repair rates must be positive")

    total = 0.0
    t_prev = 0.0
    for i in range(k + 1):
        fail = (width - i) * lam
        mu = rates[i - 1] if i >= 1 else 0.0
        t_i = 1.0 / fail + (mu / fail) * t_prev
        total += t_i
        t_prev = t_i
    return total


def mttdl_from_repair_times(width: int, k: int, lam: float, repair_times) -> float:
    """Convenience wrapper taking repair *times* (seconds) per state."""
    times = list(repair_times)
    if any(t <= 0 for t in times):
        raise ValueError("repair times must be positive")
    return mttdl(width, k, lam, [1.0 / t for t in times])
