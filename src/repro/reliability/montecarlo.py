"""Monte-Carlo stripe durability with scheme-measured repair times.

Complements the Markov model with a trajectory simulation that keeps the
full failure-set state (the Markov chain only counts failures; actual
repair time also depends on *which* blocks failed and where they live).

Each trial plays one stripe forward:

* every surviving block fails independently after Exp(lam) time;
* the moment a failure occurs, a repair of the *current failure set*
  starts (or restarts — an in-flight repair that gains another failure
  is re-planned for the larger set, a conservative model);
* the repair duration is the scheme's simulated total repair time for
  exactly that failure set on the configured testbed (cached per set);
* when repairs complete, all failed blocks return at once;
* the trial ends at the first instant ``k + 1`` blocks are down.

The mean over trials estimates MTTDL under the scheme — faster schemes
spend less time exposed and survive longer.

**Rare-event caveat.**  At production failure rates, data loss on a
k>=2 stripe is astronomically rare: a run-to-loss simulation would need
~MTTDL x failure-rate events per trial.  The simulator therefore bounds
each trial at ``max_events`` and raises if loss was not reached —
callers must pick an *accelerated* failure rate (comparable to
``1 / repair_time``) where trajectories terminate; the scheme *ordering*
is preserved under acceleration, and the analytic Markov model
(:func:`repro.reliability.mttdl`) covers realistic rates exactly.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..repair import RepairContext, RepairScheme, simulate_repair
from ..experiments.common import ExperimentEnv

__all__ = ["DurabilityResult", "simulate_stripe_lifetimes"]


@dataclass(frozen=True)
class DurabilityResult:
    """Monte-Carlo durability estimate."""

    mttdl_seconds: float
    trials: int
    min_lifetime: float
    max_lifetime: float
    repair_sets_evaluated: int

    @property
    def mttdl_years(self) -> float:
        return self.mttdl_seconds / (365.25 * 24 * 3600)


def simulate_stripe_lifetimes(
    env: ExperimentEnv,
    scheme: RepairScheme,
    lam: float,
    trials: int = 100,
    seed: int = 0,
    repair_time_scale: float = 1.0,
    max_events: int = 2_000_000,
    loss_predicate=None,
) -> DurabilityResult:
    """Estimate MTTDL of one stripe under ``scheme`` on ``env``.

    Parameters
    ----------
    lam:
        Per-block failure rate (1/seconds).  Must be *accelerated* — on
        the order of ``1 / repair_time`` — or trials will not terminate
        (see the module's rare-event caveat).
    trials:
        Monte-Carlo trials (each runs to data loss).
    repair_time_scale:
        Multiplier on measured repair times — lets sensitivity sweeps ask
        "what if repair were twice as slow" without rebuilding plans.
    max_events:
        Per-trial event budget; exceeded budgets raise RuntimeError with
        guidance rather than spinning forever.
    loss_predicate:
        Optional ``callable(failed_set) -> bool`` deciding when data is
        lost.  Defaults to the MDS rule ``len(failed) > k``; non-MDS
        codes (LRC) pass a recoverability check so pattern-dependent
        losses — e.g. four failures concentrated in one local group —
        count even though the failure count is within ``k``.
    """
    if lam <= 0:
        raise ValueError("failure rate must be positive")
    if trials < 1:
        raise ValueError("need at least one trial")
    if repair_time_scale <= 0:
        raise ValueError("repair_time_scale must be positive")

    width = env.code.width
    k = env.code.k
    if loss_predicate is None:
        loss_predicate = lambda failed: len(failed) > k  # noqa: E731
    rng = random.Random(seed)
    repair_cache: dict[tuple[int, ...], float] = {}

    def repair_time(failed: frozenset[int]) -> float:
        key = tuple(sorted(failed))
        if key not in repair_cache:
            ctx = RepairContext(
                code=env.code,
                cluster=env.cluster,
                placement=env.placement,
                failed_blocks=key,
                block_size=env.block_size,
                cost_model=env.cost_model,
            )
            outcome = simulate_repair(scheme, ctx, env.bandwidth)
            repair_cache[key] = outcome.total_repair_time
        return repair_cache[key] * repair_time_scale

    lifetimes = []
    for _ in range(trials):
        now = 0.0
        failed: set[int] = set()
        repair_done = math.inf
        events = 0
        while True:
            events += 1
            if events > max_events:
                raise RuntimeError(
                    f"trial exceeded {max_events} events without data loss; "
                    f"the failure rate is too low for run-to-loss Monte "
                    f"Carlo — accelerate lam toward 1/repair_time or use "
                    f"the analytic mttdl() model"
                )
            healthy = width - len(failed)
            next_failure = now + rng.expovariate(healthy * lam)
            if repair_done <= next_failure:
                # repair completes before the next failure
                now = repair_done
                failed.clear()
                repair_done = math.inf
                continue
            now = next_failure
            survivors = sorted(set(range(width)) - failed)
            failed.add(rng.choice(survivors))
            if loss_predicate(failed):
                lifetimes.append(now)
                break
            # (re)start the repair for the enlarged failure set
            repair_done = now + repair_time(frozenset(failed))

    return DurabilityResult(
        mttdl_seconds=sum(lifetimes) / len(lifetimes),
        trials=trials,
        min_lifetime=min(lifetimes),
        max_lifetime=max(lifetimes),
        repair_sets_evaluated=len(repair_cache),
    )
