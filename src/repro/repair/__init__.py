"""Repair schemes and the plan/execution machinery.

Public surface:

* :class:`RepairContext` — one stripe repair's inputs.
* :class:`TraditionalRepair`, :class:`CARRepair`, :class:`RPRScheme` —
  the three planners the paper compares.
* :class:`RepairPlan` + :func:`execute_plan` — the op-DAG and its
  concrete (byte-level) executor.
* :func:`simulate_repair` — compile a plan and run it on the
  discrete-event engine, returning time and traffic.
* :func:`simulate_repair_with_faults` — the degraded path: run a repair
  under an injected :class:`repro.sim.FaultPlan`, re-planning around dead
  helpers via :meth:`RepairScheme.replan` (see ``docs/FAULTS.md``).
"""

from .base import (
    RepairContext,
    RepairPlanningError,
    RepairScheme,
    recovery_targets,
)
from .car import CARRepair
from .degraded import degraded_read_context, plan_degraded_read
from .executor import (
    ExecutionError,
    ExecutionResult,
    execute_ops,
    execute_plan,
    initial_store_for,
    missing_payload_message,
)
from .faults import (
    DegradedRepairOutcome,
    IrrecoverableError,
    RepairSnapshot,
    payload_compositions,
    plan_degraded_gather,
    simulate_repair_with_faults,
)
from .plan import CombineOp, PlanError, RepairPlan, SendOp, block_key
from .planstats import PlanStats, critical_path_hops
from .rpr import HeterogeneityAwareRPR, RPRScheme
from .selection import (
    first_n_helpers,
    group_survivors_by_rack,
    pick_live_spares,
    rack_aware_helpers,
    remote_rack_count,
)
from .simulate import RepairOutcome, simulate_repair
from .traditional import TraditionalRepair
from .update import apply_update_payloads, plan_update

__all__ = [
    "CARRepair",
    "CombineOp",
    "DegradedRepairOutcome",
    "ExecutionError",
    "ExecutionResult",
    "HeterogeneityAwareRPR",
    "IrrecoverableError",
    "RepairSnapshot",
    "PlanError",
    "PlanStats",
    "RPRScheme",
    "RepairContext",
    "RepairOutcome",
    "RepairPlan",
    "RepairPlanningError",
    "RepairScheme",
    "SendOp",
    "TraditionalRepair",
    "apply_update_payloads",
    "block_key",
    "critical_path_hops",
    "degraded_read_context",
    "execute_ops",
    "execute_plan",
    "payload_compositions",
    "plan_degraded_gather",
    "plan_degraded_read",
    "plan_update",
    "first_n_helpers",
    "group_survivors_by_rack",
    "initial_store_for",
    "missing_payload_message",
    "pick_live_spares",
    "rack_aware_helpers",
    "recovery_targets",
    "remote_rack_count",
    "simulate_repair",
    "simulate_repair_with_faults",
]
