"""Scheme interface and the repair context shared by all planners."""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster import Cluster, Placement
from ..rs import MB, DecodeCostModel, RSCode, SIMICS_DECODE
from .plan import RepairPlan

__all__ = ["RepairContext", "RepairScheme", "RepairPlanningError", "recovery_targets"]


class RepairPlanningError(ValueError):
    """Raised when a repair cannot be planned (no spares, too many failures)."""


@dataclass(frozen=True)
class RepairContext:
    """Everything a scheme needs to plan one stripe repair.

    Attributes
    ----------
    code:
        The RS(n, k) code of the stripe.
    cluster:
        The data-center topology.
    placement:
        Block → node mapping of the stripe being repaired.
    failed_blocks:
        Block ids that were lost (1 to ``k`` of them).
    block_size:
        Bytes per block; defaults to the paper's 256 MB (§5.1.1).
    cost_model:
        Decode cost model used when compiling plans to simulator jobs.
    recovery_override:
        Optional explicit ``failed block -> recovery node`` mapping.  Used
        by multi-stripe orchestration (e.g. rebuilding a whole node onto a
        designated replacement) to pin where reconstructed blocks land;
        when absent, :func:`recovery_targets` picks spares in each failed
        block's rack.
    rack_tiebreak:
        Optional rack-id preference order used by the rack-aware helper
        selection when remote racks tie on survivor count.  Multi-stripe
        balancing (CAR's cross-stripe objective) passes racks ordered by
        their accumulated cross-rack upload so new repairs lean on the
        least-loaded racks.
    unavailable_blocks:
        Blocks that still exist but cannot serve as helpers — their host
        node died mid-repair (fault injection, :mod:`repro.repair.faults`)
        or is otherwise unreachable.  Unlike ``failed_blocks`` they are
        not repair targets; they are simply excluded from
        :attr:`surviving_blocks`, so every scheme's helper selection
        avoids them automatically.
    """

    code: RSCode
    cluster: Cluster
    placement: Placement
    failed_blocks: tuple[int, ...]
    block_size: int = 256 * MB
    cost_model: DecodeCostModel = SIMICS_DECODE
    recovery_override: tuple[tuple[int, int], ...] | None = None
    rack_tiebreak: tuple[int, ...] | None = None
    unavailable_blocks: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        failed = tuple(self.failed_blocks)
        # An empty failure set is legal at the context level: update plans
        # (repro.repair.update) reuse the context for healthy-path
        # operations.  Repair schemes reject it via recovery_targets.
        if len(set(failed)) != len(failed):
            raise RepairPlanningError("duplicate failed block ids")
        if len(failed) > self.code.k:
            raise RepairPlanningError(
                f"RS({self.code.n},{self.code.k}) cannot repair {len(failed)} failures"
            )
        for b in failed:
            if not 0 <= b < self.code.width:
                raise RepairPlanningError(f"failed block {b} outside stripe")
        if self.placement.n != self.code.n or self.placement.k != self.code.k:
            raise RepairPlanningError("placement shape does not match code")
        unavailable = tuple(self.unavailable_blocks)
        if len(set(unavailable)) != len(unavailable):
            raise RepairPlanningError("duplicate unavailable block ids")
        for b in unavailable:
            if not 0 <= b < self.code.width:
                raise RepairPlanningError(f"unavailable block {b} outside stripe")
            if b in failed:
                raise RepairPlanningError(
                    f"block {b} is both failed and unavailable; failed blocks "
                    "are already excluded from helpers"
                )

    @property
    def surviving_blocks(self) -> list[int]:
        gone = set(self.failed_blocks) | set(self.unavailable_blocks)
        return [b for b in range(self.code.width) if b not in gone]

    def rack_of_block(self, block_id: int) -> int:
        return self.placement.rack_of_block(self.cluster, block_id)

    def node_of_block(self, block_id: int) -> int:
        return self.placement.node_of(block_id)


def recovery_targets(ctx: RepairContext) -> dict[int, int]:
    """Pick the recovery node for every failed block.

    Policy (matching the paper's "recovery node/rack"): the replacement
    node lives in the failed block's own rack — the first spare node
    there.  Distinct failed blocks get distinct spares.  An explicit
    ``ctx.recovery_override`` wins over the policy (the override node
    may hold other stripes' data but must not hold a surviving block of
    *this* stripe).

    Raises
    ------
    RepairPlanningError
        If the context has no failed blocks, or some rack has no spare
        node left for its failed block(s).
    """
    if not ctx.failed_blocks:
        raise RepairPlanningError("no failed blocks to repair")
    if ctx.recovery_override is not None:
        override = dict(ctx.recovery_override)
        missing = set(ctx.failed_blocks) - set(override)
        if missing:
            raise RepairPlanningError(
                f"recovery_override lacks targets for blocks {sorted(missing)}"
            )
        for block in ctx.failed_blocks:
            ctx.cluster.node(override[block])  # raises KeyError when unknown
        # Note: an override target MAY hold a surviving block of the same
        # stripe (degraded reads deliver to arbitrary clients; schemes
        # treat a helper resident on the target as a zero-cost local
        # input).  Durable-repair callers that care about placement
        # invariants pick genuine spares.
        return {block: override[block] for block in ctx.failed_blocks}

    taken: set[int] = set()
    targets: dict[int, int] = {}
    for block in ctx.failed_blocks:
        rack = ctx.rack_of_block(block)
        spares = [
            node
            for node in ctx.placement.spare_nodes_in_rack(ctx.cluster, rack)
            if node not in taken
        ]
        if not spares:
            raise RepairPlanningError(
                f"rack {rack} has no spare node to host recovered block {block}"
            )
        targets[block] = spares[0]
        taken.add(spares[0])
    return targets


class RepairScheme:
    """Interface: plan a repair for a context.

    Concrete schemes: :class:`repro.repair.traditional.TraditionalRepair`,
    :class:`repro.repair.car.CARRepair`,
    :class:`repro.repair.rpr.RPRScheme`.
    """

    #: Human-readable scheme name, used in benchmark output rows.
    name: str = "abstract"

    def plan(self, ctx: RepairContext) -> RepairPlan:
        raise NotImplementedError

    def replan(self, ctx: RepairContext, snapshot=None) -> RepairPlan:
        """Plan a repair after a mid-repair fault.

        ``ctx`` carries the post-fault world: dead helpers appear in
        ``ctx.unavailable_blocks`` and recovery targets are re-pinned via
        ``ctx.recovery_override``.  ``snapshot`` is a
        :class:`repro.repair.faults.RepairSnapshot` describing payloads
        already delivered by the failed attempt.

        The default re-plans from scratch with fresh helper selection
        (traditional and CAR have no reusable intermediate state worth
        chasing); :class:`repro.repair.rpr.RPRScheme` overrides this to
        reuse already-delivered partial sums.
        """
        return self.plan(ctx)
