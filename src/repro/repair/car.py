"""CAR baseline (Shen, Shu, Lee — DSN'16), as characterised in the paper.

CAR is the state-of-the-art *single-failure* rack-aware repair RPR is
compared against (Figures 7, 8, 12).  Per the paper's description (§5.1.1,
§6):

* it applies inner-rack partial decoding, so its cross-rack traffic equals
  RPR's (one intermediate per remote rack — Fig. 7 shows identical bars);
* it has **no repair schedule**: every remote rack sends its intermediate
  straight to the recovery node, so the recovery rack's download port
  serialises the cross-rack transfers (Fig. 5's schedule 1), and
  intermediates "wait for the other cross-rack transfers to finish";
* it uses the generic matrix decoder (no pre-placement), which is what
  makes its EC2 gap to RPR bigger than its Simics gap (§5.2.1).

Within a rack, helpers are gathered star-wise at a gateway node (the
rack's lowest-id helper); the gateway's download port serialises the
intra-rack hops.  CAR only supports single-block failures.
"""

from __future__ import annotations

from ..rs import recovery_equations, slice_equation_by_group
from .base import RepairContext, RepairPlanningError, RepairScheme, recovery_targets
from .plan import RepairPlan, block_key
from .selection import rack_aware_helpers

__all__ = ["CARRepair"]


class CARRepair(RepairScheme):
    """The CAR single-failure baseline."""

    name = "car"

    def plan(self, ctx: RepairContext) -> RepairPlan:
        if len(ctx.failed_blocks) != 1:
            raise RepairPlanningError(
                "CAR only supports single-block failures (paper §6)"
            )
        failed = ctx.failed_blocks[0]
        helpers = rack_aware_helpers(ctx, prefer_xor=False)
        [equation] = recovery_equations(ctx.code, [failed], helpers)
        target = recovery_targets(ctx)[failed]
        target_rack = ctx.cluster.rack_of(target)

        groups = ctx.placement.group_of_blocks(ctx.cluster)
        slices = slice_equation_by_group(equation, groups)

        plan = RepairPlan(block_size=ctx.block_size)
        final_terms: list[tuple[str, int]] = []
        final_deps: list[str] = []

        for rack in sorted(slices):
            sl = slices[rack]
            if rack == target_rack:
                # Local helpers stream straight to the recovery node; their
                # coefficients are applied in the final combine.  A helper
                # resident on the recovery node itself (degraded-read
                # override) is consumed in place.
                for h, c in sl.terms:
                    src = ctx.node_of_block(h)
                    final_terms.append((block_key(h), c))
                    if src != target:
                        final_deps.append(
                            plan.add_send(
                                f"car:local:{h}",
                                src=src,
                                dst=target,
                                key=block_key(h),
                            )
                        )
                continue

            blocks = list(sl.terms)
            if len(blocks) == 1:
                # Nothing to partially decode: ship the raw block.
                h, c = blocks[0]
                op = plan.add_send(
                    f"car:direct:r{rack}",
                    src=ctx.node_of_block(h),
                    dst=target,
                    key=block_key(h),
                )
                final_terms.append((block_key(h), c))
                final_deps.append(op)
                continue

            # Star-gather at the rack gateway (lowest-id helper's node),
            # partial-decode there, ship one intermediate across racks.
            gateway_block = blocks[0][0]
            gateway = ctx.node_of_block(gateway_block)
            gather_deps = []
            for h, _ in blocks[1:]:
                gather_deps.append(
                    plan.add_send(
                        f"car:gather:r{rack}:{h}",
                        src=ctx.node_of_block(h),
                        dst=gateway,
                        key=block_key(h),
                    )
                )
            im_key = f"car:im:r{rack}"
            combine = plan.add_combine(
                f"car:partial:r{rack}",
                node=gateway,
                out_key=im_key,
                terms=[(block_key(h), c) for h, c in blocks],
                deps=gather_deps,
            )
            send = plan.add_send(
                f"car:cross:r{rack}",
                src=gateway,
                dst=target,
                key=im_key,
                deps=[combine],
            )
            final_terms.append((im_key, 1))
            final_deps.append(send)

        out_key = f"car:recovered:{failed}"
        plan.add_combine(
            f"car:decode:{failed}",
            node=target,
            out_key=out_key,
            terms=final_terms,
            with_matrix_build=True,  # CAR has no pre-placement fast path
            deps=final_deps,
        )
        plan.mark_output(failed, target, out_key)
        return plan
