"""Degraded reads: serve a lost block to a client without re-inserting it.

When a client requests a block whose node is down, storage systems
perform a *degraded read* — reconstruct the block on the fly and deliver
it to the requester, leaving durable repair for later.  Structurally it
is a single-block repair whose "recovery node" is the client, so the
whole RPR machinery (partial decoding, pipeline, XOR fast path) applies
unchanged: intermediates aggregate toward the client's rack instead of
the failed block's rack.

This is an extension beyond the paper (which repairs in place), but
Khan et al. [18] — cited in §3.3 — motivate exactly this operation
("minimizing I/O for recovery and *degraded reads*").
"""

from __future__ import annotations

from dataclasses import replace

from .base import RepairContext, RepairPlanningError, RepairScheme
from .plan import RepairPlan

__all__ = ["degraded_read_context", "plan_degraded_read"]


def degraded_read_context(ctx: RepairContext, client_node: int) -> RepairContext:
    """Retarget a single-failure repair context at a client node.

    The client may itself hold a surviving block of the stripe — then
    that block becomes a transfer-free local helper.

    Raises
    ------
    RepairPlanningError
        If the context has more than one failed block (a degraded read
        serves one block).
    """
    if len(ctx.failed_blocks) != 1:
        raise RepairPlanningError(
            "a degraded read serves exactly one lost block"
        )
    ctx.cluster.node(client_node)
    failed = ctx.failed_blocks[0]
    return replace(ctx, recovery_override=((failed, client_node),))


def plan_degraded_read(
    scheme: RepairScheme, ctx: RepairContext, client_node: int
) -> RepairPlan:
    """Plan the reconstruction of ``ctx``'s lost block at ``client_node``."""
    return scheme.plan(degraded_read_context(ctx, client_node))
