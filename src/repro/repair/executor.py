"""Concrete plan execution on real byte buffers.

This module is the correctness oracle: it executes a :class:`RepairPlan`
against a per-node payload store, performing every send as a copy between
node stores and every combine as a GF linear combination.  A plan passes
only if every declared output payload exists at its recovery node — and
integration tests additionally check the bytes equal the lost originals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cluster import Cluster
from ..gf import GFTables, get_tables, linear_combine
from ..rs import Stripe
from ..cluster import Placement
from .plan import CombineOp, RepairPlan, SendOp, block_key

__all__ = [
    "ExecutionError",
    "ExecutionResult",
    "execute_ops",
    "execute_plan",
    "initial_store_for",
    "missing_payload_message",
]


class ExecutionError(RuntimeError):
    """Raised when a plan references payloads that do not exist when needed."""


def missing_payload_message(
    kind: str, op_id: str, op_index: int, op_count: int, missing, node: int
) -> str:
    """Message shape shared by the byte executor and the live runtime.

    Always names the *full* set of missing payload keys and the op's
    position in the plan, so an aborted run can be diagnosed without
    replaying it (the shape is pinned in ``tests/repair/test_executor.py``).
    """
    return (
        f"{kind} {op_id!r} (op {op_index + 1}/{op_count}): "
        f"missing payloads {sorted(missing)} on node {node}"
    )


@dataclass
class ExecutionResult:
    """Outcome of a concrete plan execution.

    Attributes
    ----------
    recovered:
        Failed block id → reconstructed payload.
    intra_rack_bytes / cross_rack_bytes:
        Bytes moved by send ops, split by rack relationship — the concrete
        counterpart of the simulator's traffic ledger (they must agree;
        tests enforce it).
    combine_count:
        Number of (partial) decodes performed.
    uploaded_by_node / downloaded_by_node / cross_uploaded_by_rack:
        Per-participant byte ledgers, mirroring
        :class:`repro.metrics.TrafficLedger` so the byte-level and
        simulated accountings can be pinned to each other per node, not
        just in aggregate.
    """

    recovered: dict[int, np.ndarray]
    intra_rack_bytes: int = 0
    cross_rack_bytes: int = 0
    combine_count: int = 0
    sends_executed: int = 0
    uploaded_by_node: dict[int, int] = field(default_factory=dict)
    downloaded_by_node: dict[int, int] = field(default_factory=dict)
    cross_uploaded_by_rack: dict[int, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-serializable ledger summary (payload bytes omitted)."""
        return {
            "recovered_blocks": sorted(self.recovered),
            "intra_rack_bytes": self.intra_rack_bytes,
            "cross_rack_bytes": self.cross_rack_bytes,
            "combine_count": self.combine_count,
            "sends_executed": self.sends_executed,
            "uploaded_by_node": dict(self.uploaded_by_node),
            "downloaded_by_node": dict(self.downloaded_by_node),
            "cross_uploaded_by_rack": dict(self.cross_uploaded_by_rack),
        }


def initial_store_for(
    stripe: Stripe, placement: Placement, failed_blocks
) -> dict[int, dict[str, np.ndarray]]:
    """Build the per-node payload store before repair starts.

    Every surviving block's payload sits on its placement node; failed
    blocks contribute nothing (their bytes are gone).
    """
    failed = set(failed_blocks)
    store: dict[int, dict[str, np.ndarray]] = {}
    for bid in stripe.block_ids():
        if bid in failed:
            continue
        node = placement.node_of(bid)
        store.setdefault(node, {})[block_key(bid)] = stripe.get_payload(bid)
    return store


def _topo_order(plan: RepairPlan) -> list[str]:
    indeg = {oid: len(set(op.deps)) for oid, op in plan.ops.items()}
    children: dict[str, list[str]] = {oid: [] for oid in plan.ops}
    for oid, op in plan.ops.items():
        for dep in set(op.deps):
            children[dep].append(oid)
    # Preserve insertion order among ready ops for determinism.
    order = []
    ready = [oid for oid in plan.ops if indeg[oid] == 0]
    while ready:
        oid = ready.pop(0)
        order.append(oid)
        for child in children[oid]:
            indeg[child] -= 1
            if indeg[child] == 0:
                ready.append(child)
    if len(order) != len(plan.ops):
        raise ExecutionError("plan has a dependency cycle")
    return order


def _apply_op(
    oid: str,
    op: SendOp | CombineOp,
    cluster: Cluster,
    store: dict[int, dict[str, np.ndarray]],
    t: GFTables,
    result: ExecutionResult,
    op_index: int,
    op_count: int,
) -> None:
    """Execute one op against the store, updating ``result``'s ledgers."""
    if isinstance(op, SendOp):
        src_store = store.get(op.src, {})
        if op.key not in src_store:
            raise ExecutionError(
                missing_payload_message(
                    "send", oid, op_index, op_count, [op.key], op.src
                )
            )
        payload = src_store[op.key]
        store.setdefault(op.dst, {})[op.key] = payload
        nbytes = int(payload.nbytes)
        result.uploaded_by_node[op.src] = (
            result.uploaded_by_node.get(op.src, 0) + nbytes
        )
        result.downloaded_by_node[op.dst] = (
            result.downloaded_by_node.get(op.dst, 0) + nbytes
        )
        if cluster.same_rack(op.src, op.dst):
            result.intra_rack_bytes += nbytes
        else:
            result.cross_rack_bytes += nbytes
            rack = cluster.rack_of(op.src)
            result.cross_uploaded_by_rack[rack] = (
                result.cross_uploaded_by_rack.get(rack, 0) + nbytes
            )
        result.sends_executed += 1
    else:
        assert isinstance(op, CombineOp)
        node_store = store.setdefault(op.node, {})
        missing = [key for key, _ in op.terms if key not in node_store]
        if missing:
            raise ExecutionError(
                missing_payload_message(
                    "combine", oid, op_index, op_count, missing, op.node
                )
            )
        coeffs = [c for _, c in op.terms]
        blocks = [node_store[key] for key, _ in op.terms]
        node_store[op.out_key] = linear_combine(coeffs, blocks, t)
        result.combine_count += 1


def execute_plan(
    plan: RepairPlan,
    cluster: Cluster,
    store: dict[int, dict[str, np.ndarray]],
    tables: GFTables | None = None,
) -> ExecutionResult:
    """Run ``plan`` against ``store`` (mutated in place) and collect outputs.

    Ops run in a topological order.  Data-flow dependencies are enforced
    *strictly*: an op whose input payload is not yet present on its node
    fails, which catches planners that rely on scheduling accidents rather
    than declared dependencies.

    Raises
    ------
    ExecutionError
        On missing payloads or missing declared outputs.
    """
    plan.validate()
    t = tables or get_tables()
    result = ExecutionResult(recovered={})

    indices = {oid: i for i, oid in enumerate(plan.ops)}
    for oid in _topo_order(plan):
        _apply_op(
            oid, plan.ops[oid], cluster, store, t, result, indices[oid], len(plan.ops)
        )

    for block_id, (node, key) in plan.outputs.items():
        node_store = store.get(node, {})
        if key not in node_store:
            raise ExecutionError(
                f"output for block {block_id}: payload {key!r} missing on node {node}"
            )
        result.recovered[block_id] = node_store[key]
    return result


def execute_ops(
    plan: RepairPlan,
    op_ids,
    cluster: Cluster,
    store: dict[int, dict[str, np.ndarray]],
    tables: GFTables | None = None,
) -> ExecutionResult:
    """Execute a dependency-closed subset of ``plan``'s ops against ``store``.

    This is the byte-level mirror of a *partially completed* simulated
    run (fault injection): the engine reports which jobs finished before
    a fault, and — because job ids are op ids and the engine enforces
    dependencies — that set is dependency-closed, so replaying exactly
    those ops leaves the store in the state a real degraded repair would
    see.  Declared outputs are not collected (a partial run normally has
    not produced them); ledgers cover only the executed ops.

    Raises
    ------
    ExecutionError
        If ``op_ids`` contains an unknown op or is not dependency-closed,
        or an input payload is missing.
    """
    wanted = set(op_ids)
    unknown = wanted - set(plan.ops)
    if unknown:
        raise ExecutionError(f"unknown ops {sorted(unknown)} in partial execution")
    for oid in wanted:
        missing = set(plan.ops[oid].deps) - wanted
        if missing:
            raise ExecutionError(
                f"partial execution not dependency-closed: {oid!r} needs "
                f"{sorted(missing)}"
            )
    t = tables or get_tables()
    result = ExecutionResult(recovered={})
    indices = {oid: i for i, oid in enumerate(plan.ops)}
    for oid in _topo_order(plan):
        if oid in wanted:
            _apply_op(
                oid,
                plan.ops[oid],
                cluster,
                store,
                t,
                result,
                indices[oid],
                len(plan.ops),
            )
    return result
