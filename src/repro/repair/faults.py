"""Degraded repair: re-planning around helpers that die mid-repair.

This is the robustness layer the paper's evaluation skips: its schemes
assume every helper survives the whole repair.  Here a repair runs under
an injected :class:`repro.sim.FaultPlan`; when a helper node dies
mid-gather the orchestrator

1. replays the *completed* prefix of the plan on the byte store (the
   engine's job ids are op ids, and finished jobs form a
   dependency-closed set — :func:`repro.repair.executor.execute_ops`),
2. drops everything the dead node held,
3. asks the scheme to re-plan via :meth:`RepairScheme.replan` with a
   :class:`RepairSnapshot` of what survived — including
   already-delivered intermediates, and
4. re-simulates under the remaining faults, up to ``max_attempts``.

Traditional and CAR re-plan from scratch with fresh helper selection
(their intermediate state is a half-summed buffer on a node that may be
gone).  RPR's partial sums are first-class reusable state: its ``replan``
routes through :func:`plan_degraded_gather`, which treats every surviving
payload — raw block or delivered intermediate — as a known GF(256)
linear combination of the data blocks and solves for coefficients that
re-express the failed block, preferring payloads already at the recovery
node, then delivered partial sums, then raw blocks.  A repair below the
decode threshold (no payload combination spans the failed block) raises
the typed :class:`IrrecoverableError`.

Determinism: every step is a pure function of (plan, fault plan), so the
same seed reproduces the same degraded schedule bit-for-bit (golden
tests pin this).  See ``docs/FAULTS.md`` for the full model.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..cluster import BandwidthModel, Cluster
from ..gf import GFTables, get_tables, gf_mul
from ..gf.matrix import mat_solve
from ..rs import InsufficientHelpersError, Stripe
from ..sim import (
    FaultPlan,
    FaultReport,
    RunTrace,
    SimResult,
    SimulationEngine,
    telemetry_from_sim,
)
from ..telemetry import TelemetryTrace
from .base import RepairContext, RepairPlanningError, RepairScheme, recovery_targets
from .executor import ExecutionResult, _topo_order, execute_ops, execute_plan, initial_store_for
from .plan import CombineOp, RepairPlan, SendOp, block_key

__all__ = [
    "DegradedRepairOutcome",
    "IrrecoverableError",
    "RepairSnapshot",
    "payload_compositions",
    "plan_degraded_gather",
    "simulate_repair_with_faults",
]


class IrrecoverableError(RuntimeError):
    """The repair cannot complete: survivors are below the decode threshold.

    Raised when no GF-linear combination of the payloads still reachable
    (raw blocks on live nodes plus delivered intermediates) expresses a
    failed block, when a recovery rack has no live spare left, or when
    the bounded retry budget is exhausted.

    Attributes
    ----------
    failed_blocks / attempt:
        What was being repaired and on which attempt the repair gave up.
    """

    def __init__(
        self, message: str, failed_blocks: tuple[int, ...] = (), attempt: int = 0
    ) -> None:
        super().__init__(message)
        self.failed_blocks = tuple(failed_blocks)
        self.attempt = attempt


@dataclass(frozen=True)
class RepairSnapshot:
    """Surviving payload state after a fault, handed to ``replan``.

    Attributes
    ----------
    payloads:
        Live node → payload key → *composition*: the payload's GF(256)
        coefficient vector over the ``n`` data blocks.  Raw block ``i``
        has composition ``code.generator_row(i)``; a delivered
        intermediate has the combination its combine chain computed.
        This is symbolic state — schemes can re-plan without touching
        bytes, and the byte-level mirror stays a separate concern.
    dead_nodes:
        Every node that has died so far (cumulative across attempts).
    attempt:
        1-based index of the re-plan this snapshot feeds (used to
        namespace re-planned payload keys).
    """

    payloads: dict[int, dict[str, np.ndarray]]
    dead_nodes: frozenset[int]
    attempt: int

    def intermediates(self) -> list[str]:
        """Keys of surviving non-raw payloads (delivered partial sums)."""
        return sorted(
            {
                key
                for keys in self.payloads.values()
                for key in keys
                if not key.startswith("block:")
            }
        )


def payload_compositions(
    plan: RepairPlan,
    code,
    base: dict[str, np.ndarray] | None = None,
    tables: GFTables | None = None,
) -> dict[str, np.ndarray]:
    """Composition of every payload key a plan touches, in the data basis.

    Walks the plan's combines in topological order: raw ``block:i`` keys
    start from ``code.generator_row(i)`` and each combine's output is the
    GF-linear combination of its inputs' compositions.  ``base`` supplies
    compositions of keys minted by earlier plans (re-planned repairs
    consume intermediates across attempts).
    """
    t = tables or get_tables()
    comps: dict[str, np.ndarray] = dict(base) if base else {}
    for op in plan.ops.values():
        keys = [op.key] if isinstance(op, SendOp) else [k for k, _ in op.terms]
        for key in keys:
            if key.startswith("block:") and key not in comps:
                comps[key] = code.generator_row(int(key.split(":", 1)[1]))
    for oid in _topo_order(plan):
        op = plan.ops[oid]
        if not isinstance(op, CombineOp):
            continue
        acc = np.zeros(code.n, dtype=np.uint8)
        for key, coeff in op.terms:
            if key not in comps:
                raise KeyError(
                    f"combine {oid!r} consumes {key!r} with unknown composition"
                )
            acc ^= gf_mul(coeff, comps[key], t)
        comps[op.out_key] = acc
    return comps


def plan_degraded_gather(
    ctx: RepairContext,
    snapshot: RepairSnapshot,
    prefix: str = "degraded",
    tables: GFTables | None = None,
) -> RepairPlan:
    """Re-plan a repair from surviving payloads via a GF(256) solve.

    For each failed block the planner greedily selects a minimal
    rank-increasing set of surviving payloads whose span contains the
    block's generator row, ordered by cost: payloads already resident on
    the recovery node, then delivered intermediates (heaviest — most
    blocks summed — first, since each one replaces several raw sends),
    then raw blocks.  :func:`repro.gf.matrix.mat_solve` pivots columns in
    that order, so the returned coefficients are biased toward reusing
    what earlier attempts already moved.  Selected payloads are shipped
    straight to the recovery node and combined there — the degraded path
    favours completing the repair over re-building the full pipeline.

    Raises
    ------
    IrrecoverableError
        When the surviving payloads do not span a failed block.
    """
    t = tables or get_tables()
    code = ctx.code
    targets = recovery_targets(ctx)
    plan = RepairPlan(block_size=ctx.block_size)
    attempt = snapshot.attempt
    sent: dict[tuple[str, int], str] = {}

    for failed in ctx.failed_blocks:
        target = targets[failed]
        want = code.generator_row(failed)

        # One location per key: prefer a copy already on the target, else
        # the lowest live node id (deterministic).
        locations: dict[str, tuple[int, np.ndarray]] = {}
        for node in sorted(snapshot.payloads):
            for key, comp in snapshot.payloads[node].items():
                held = locations.get(key)
                if held is None or (node == target and held[0] != target):
                    locations[key] = (node, comp)

        def order_key(item):
            key, (node, comp) = item
            return (
                0 if node == target else 1,
                1 if key.startswith("block:") else 0,
                -int(np.count_nonzero(comp)),
                key,
            )

        candidates = sorted(locations.items(), key=order_key)

        # Greedy rank-increasing selection until `want` is in the span.
        echelon: dict[int, np.ndarray] = {}  # pivot index -> normalised row
        selected: list[tuple[str, int, np.ndarray]] = []
        solution: np.ndarray | None = None
        for key, (node, comp) in candidates:
            vec = comp.copy()
            for pivot, row in echelon.items():
                if vec[pivot]:
                    vec ^= gf_mul(int(vec[pivot]), row, t)
            nz = np.nonzero(vec)[0]
            if nz.size == 0:
                continue  # linearly dependent on the selection so far
            pivot = int(nz[0])
            lead = int(vec[pivot])
            if lead != 1:
                inv = int(mat_solve(
                    np.array([[lead]], dtype=np.uint8),
                    np.array([1], dtype=np.uint8),
                    t,
                )[0])
                vec = gf_mul(inv, vec, t)
            echelon[pivot] = vec
            selected.append((key, node, comp))
            a = np.stack([c for _, _, c in selected], axis=1)
            solution = mat_solve(a, want, t)
            if solution is not None:
                break
        if solution is None:
            raise IrrecoverableError(
                f"block {failed} is below the decode threshold: the "
                f"{len(locations)} surviving payloads do not span it "
                f"(dead nodes: {sorted(snapshot.dead_nodes)})",
                failed_blocks=ctx.failed_blocks,
                attempt=attempt,
            )

        terms: list[tuple[str, int]] = []
        deps: list[str] = []
        for (key, node, _), coeff in zip(selected, solution):
            if coeff == 0:
                continue
            terms.append((key, int(coeff)))
            if node == target:
                continue
            send_key = (key, target)
            if send_key not in sent:
                sent[send_key] = plan.add_send(
                    f"{prefix}:a{attempt}:send:{key}-to-n{target}",
                    src=node,
                    dst=target,
                    key=key,
                )
            deps.append(sent[send_key])
        out_key = f"{prefix}:a{attempt}:recovered:{failed}"
        plan.add_combine(
            f"{prefix}:a{attempt}:final:{failed}",
            node=target,
            out_key=out_key,
            terms=terms,
            with_matrix_build=True,
            deps=deps,
        )
        plan.mark_output(failed, target, out_key)
    return plan


@dataclass
class DegradedRepairOutcome:
    """Result of one repair run under fault injection.

    Attributes
    ----------
    scheme / attempts:
        Scheme name and how many simulated attempts it took (1 = no
        re-plan was needed).
    total_repair_time:
        Degraded makespan: the attempt makespans summed — attempts are
        composed sequentially (failure detection and re-planning are
        assumed to take no simulated time, but no work overlaps a
        re-plan; a conservative accounting).
    cross_rack_bytes / intra_rack_bytes:
        Bytes moved by *completed* transfers across all attempts,
        including transfers whose payloads were later wasted.
    retry_count / retried_bytes:
        Lost-transfer retries and the bytes their lost attempts carried.
    wasted_bytes:
        Wire work that did not contribute to the final repair: completed
        sends of failed attempts whose delivered payload no later plan
        consumed, plus lost-attempt bytes, plus the pro-rata bytes of
        transfers aborted mid-flight.
    reused_payloads:
        Intermediate payload keys minted by a failed attempt and consumed
        by the final plan — RPR's reusable partial sums.  Empty when the
        re-plan started from scratch.
    dead_nodes:
        Node → absolute death time on the concatenated attempt timeline.
    sims / plans:
        Per-attempt simulation results (each carrying its
        :class:`~repro.sim.FaultReport`) and plans.
    execution / recovered:
        Byte-level oracle results for the final plan when a stripe was
        supplied: the executor ledgers and the reconstructed payloads
        (``None`` in symbolic-only runs).
    """

    scheme: str
    total_repair_time: float
    attempts: int
    cross_rack_bytes: float
    intra_rack_bytes: float
    retry_count: int
    retried_bytes: float
    wasted_bytes: float
    reused_payloads: tuple[str, ...]
    dead_nodes: dict[int, float]
    sims: list[SimResult] = field(default_factory=list)
    plans: list[RepairPlan] = field(default_factory=list)
    cluster: Cluster | None = None
    execution: ExecutionResult | None = None
    recovered: dict[int, np.ndarray] | None = None

    @property
    def degraded(self) -> bool:
        """True when any fault actually altered the run."""
        return self.attempts > 1 or self.retry_count > 0 or bool(self.dead_nodes)

    def trace(self, attempt: int = -1) -> RunTrace:
        """Observability view of one attempt (default: the final one).

        The returned :class:`~repro.sim.RunTrace` covers that attempt's
        schedule on its own clock (each attempt restarts at t=0);
        aborted jobs appear as occupancy intervals and — when an abort
        set the makespan or released a critical resource — as
        critical-path segments flagged ``aborted``.
        """
        if self.cluster is None:
            raise ValueError(
                "outcome has no cluster; build RunTrace.from_result directly"
            )
        return RunTrace.from_result(self.sims[attempt], self.cluster)

    def telemetry(self) -> TelemetryTrace:
        """All attempts stitched onto one sim-clock telemetry timeline.

        Attempt ``i``'s spans/events are shifted by the summed makespans
        of the attempts before it (the same sequential composition
        ``total_repair_time`` uses) and tagged ``attempt=i+1``; fault
        counters accumulate across attempts.
        """
        combined: TelemetryTrace | None = None
        offset = 0.0
        for i, sim in enumerate(self.sims):
            part = telemetry_from_sim(
                sim,
                self.cluster,
                meta={"scheme": self.scheme, "attempts": self.attempts},
                offset=offset,
                attempt=i + 1,
            )
            combined = part if combined is None else combined.merged(part)
            offset += sim.makespan
        if combined is None:
            combined = TelemetryTrace(
                clock="sim", meta={"scheme": self.scheme, "attempts": 0}
            )
        elif self.dead_nodes:
            # Each attempt's shifted fault plan re-reports nodes that are
            # already dead, so the per-attempt sum over-counts; the
            # outcome's own ledger is authoritative.
            combined.counters["fault.deaths"] = float(len(self.dead_nodes))
        return combined

    def to_dict(self) -> dict:
        """JSON-serializable summary (payload bytes omitted)."""
        return {
            "scheme": self.scheme,
            "total_repair_time": self.total_repair_time,
            "attempts": self.attempts,
            "cross_rack_bytes": self.cross_rack_bytes,
            "intra_rack_bytes": self.intra_rack_bytes,
            "retry_count": self.retry_count,
            "retried_bytes": self.retried_bytes,
            "wasted_bytes": self.wasted_bytes,
            "reused_payloads": list(self.reused_payloads),
            "dead_nodes": {str(n): t for n, t in self.dead_nodes.items()},
            "recovered_blocks": (
                sorted(self.recovered) if self.recovered is not None else None
            ),
        }


def _consumed_at(plan: RepairPlan) -> set[tuple[str, int]]:
    """(payload key, node) pairs a plan reads: send sources + combine inputs."""
    used: set[tuple[str, int]] = set()
    for op in plan.ops.values():
        if isinstance(op, SendOp):
            used.add((op.key, op.src))
        else:
            for key, _ in op.terms:
                used.add((key, op.node))
    return used


def _consumed_keys(plan: RepairPlan) -> set[str]:
    return {key for key, _ in _consumed_at(plan)}


def _retarget(
    plan: RepairPlan, ctx: RepairContext, dead: set[int], attempt: int
) -> tuple[tuple[int, int], ...]:
    """Recovery targets for a re-plan: keep live ones, replace dead ones.

    Replacement policy matches :func:`repro.repair.base.recovery_targets`:
    the first live spare in the failed block's own rack.
    """
    override: list[tuple[int, int]] = []
    taken = {node for _, (node, _) in plan.outputs.items() if node not in dead}
    for block, (node, _) in sorted(plan.outputs.items()):
        if node not in dead:
            override.append((block, node))
            continue
        rack = ctx.rack_of_block(block)
        spares = [
            spare
            for spare in ctx.placement.spare_nodes_in_rack(ctx.cluster, rack)
            if spare not in dead and spare not in taken
        ]
        if not spares:
            raise IrrecoverableError(
                f"rack {rack} has no live spare left to host recovered "
                f"block {block} (dead nodes: {sorted(dead)})",
                failed_blocks=ctx.failed_blocks,
                attempt=attempt,
            )
        override.append((block, spares[0]))
        taken.add(spares[0])
    return tuple(override)


def simulate_repair_with_faults(
    scheme: RepairScheme,
    ctx: RepairContext,
    bandwidth: BandwidthModel,
    faults: FaultPlan | None,
    stripe: Stripe | None = None,
    max_attempts: int = 3,
    tables: GFTables | None = None,
) -> DegradedRepairOutcome:
    """Run one repair under fault injection, re-planning as helpers die.

    Simulates the scheme's plan on the event engine with ``faults``
    injected.  If the attempt completes (possibly after lost-transfer
    retries), done.  If a node death aborted part of it, the completed
    op prefix is committed — symbolically always, and on real bytes when
    ``stripe`` is given — the dead node's payloads are dropped, and the
    scheme re-plans via :meth:`RepairScheme.replan` against the surviving
    state; the next attempt runs under the same fault plan shifted by the
    elapsed time.  With a stripe, the final plan is executed on the byte
    store so ``recovered`` holds the reconstructed payloads (the
    correctness oracle for degraded repairs).

    Raises
    ------
    IrrecoverableError
        When survivors drop below the decode threshold, a recovery rack
        runs out of live spares, or ``max_attempts`` is exhausted.
    """
    if max_attempts < 1:
        raise ValueError("max_attempts must be >= 1")
    t = tables or get_tables()
    code = ctx.code
    engine = SimulationEngine(ctx.cluster, bandwidth)

    # Symbolic store: node -> key -> composition over the data blocks.
    sym: dict[int, dict[str, np.ndarray]] = {}
    failed_set = set(ctx.failed_blocks)
    for block in range(code.width):
        if block in failed_set:
            continue
        node = ctx.placement.node_of(block)
        sym.setdefault(node, {})[block_key(block)] = code.generator_row(block)
    store = (
        initial_store_for(stripe, ctx.placement, ctx.failed_blocks)
        if stripe is not None
        else None
    )

    comps: dict[str, np.ndarray] = {}
    dead: dict[int, float] = {}
    produced_earlier: set[str] = set()
    sims: list[SimResult] = []
    plans: list[RepairPlan] = []
    finished_per_attempt: list[set[str]] = []
    offset = 0.0
    current_ctx = ctx
    plan = scheme.plan(ctx)
    success = False

    for attempt in range(max_attempts):
        graph = plan.to_job_graph(current_ctx.cost_model)
        shifted = faults.shifted(offset) if faults else None
        sim = engine.run(graph, shifted)
        report = sim.faults if sim.faults is not None else FaultReport()
        sims.append(sim)
        plans.append(plan)
        comps = payload_compositions(plan, code, base=comps, tables=t)

        finished = set(sim.timings) - set(report.aborted)
        finished_per_attempt.append(finished)
        for node, when in report.dead_nodes.items():
            if node not in dead:
                dead[node] = offset + when
        offset += sim.makespan

        if report.complete:
            success = True
            break

        # Commit the completed prefix, then drop the dead nodes' state.
        for oid in _topo_order(plan):
            if oid not in finished:
                continue
            op = plan.ops[oid]
            if isinstance(op, SendOp):
                sym.setdefault(op.dst, {})[op.key] = comps[op.key]
            else:
                sym.setdefault(op.node, {})[op.out_key] = comps[op.out_key]
        if store is not None:
            execute_ops(plan, finished, ctx.cluster, store, tables=t)
        for node in report.dead_nodes:
            sym.pop(node, None)
            if store is not None:
                store.pop(node, None)
        produced_earlier.update(
            plan.ops[oid].out_key
            for oid in finished
            if isinstance(plan.ops[oid], CombineOp)
        )

        if attempt + 1 >= max_attempts:
            break

        # Re-plan against the surviving world.
        unavailable = tuple(
            sorted(
                block
                for block in range(code.width)
                if block not in failed_set
                and ctx.placement.node_of(block) in dead
            )
        )
        override = _retarget(plan, ctx, set(dead), attempt + 1)
        current_ctx = replace(
            ctx, unavailable_blocks=unavailable, recovery_override=override
        )
        snapshot = RepairSnapshot(
            payloads={node: dict(keys) for node, keys in sym.items()},
            dead_nodes=frozenset(dead),
            attempt=attempt + 1,
        )
        try:
            plan = scheme.replan(current_ctx, snapshot)
        except (InsufficientHelpersError, RepairPlanningError) as exc:
            raise IrrecoverableError(
                f"re-planning failed after node deaths {sorted(dead)}: {exc}",
                failed_blocks=ctx.failed_blocks,
                attempt=attempt + 1,
            ) from exc

    if not success:
        raise IrrecoverableError(
            f"repair of blocks {sorted(ctx.failed_blocks)} did not complete "
            f"within {max_attempts} attempts (dead nodes: {sorted(dead)})",
            failed_blocks=ctx.failed_blocks,
            attempt=len(sims),
        )

    # Accounting over the failed prefix attempts + the successful final one.
    final_plan = plans[-1]
    reused = tuple(sorted(_consumed_keys(final_plan) & produced_earlier))
    retried_bytes = sum(
        s.faults.retried_bytes for s in sims if s.faults is not None
    )
    retry_count = sum(s.faults.retry_count for s in sims if s.faults is not None)
    aborted_bytes = sum(
        s.faults.aborted_bytes for s in sims if s.faults is not None
    )
    wasted = retried_bytes + aborted_bytes
    for idx in range(len(plans) - 1):
        later_consumed: set[tuple[str, int]] = set()
        for later in plans[idx + 1 :]:
            later_consumed |= _consumed_at(later)
        for oid in finished_per_attempt[idx]:
            op = plans[idx].ops[oid]
            if isinstance(op, SendOp) and (op.key, op.dst) not in later_consumed:
                wasted += plans[idx].block_size

    execution = None
    recovered = None
    if store is not None:
        execution = execute_plan(final_plan, ctx.cluster, store, tables=t)
        recovered = execution.recovered

    return DegradedRepairOutcome(
        scheme=scheme.name,
        total_repair_time=offset,
        attempts=len(sims),
        cross_rack_bytes=sum(s.cross_rack_bytes() for s in sims),
        intra_rack_bytes=sum(s.intra_rack_bytes() for s in sims),
        retry_count=retry_count,
        retried_bytes=retried_bytes,
        wasted_bytes=wasted,
        reused_payloads=reused,
        dead_nodes=dead,
        sims=sims,
        plans=plans,
        cluster=ctx.cluster,
        execution=execution,
        recovered=recovered,
    )
