"""Repair plans: the op-DAG every repair scheme emits.

A :class:`RepairPlan` describes a repair as a DAG of two op kinds over
named *payloads* (blocks and intermediate blocks):

* :class:`SendOp` — move a payload from one node to another.
* :class:`CombineOp` — GF-linear-combine payloads present on one node
  into a new payload (a partial or final decode).

The plan is the hinge of the whole library (DESIGN.md §3): it compiles to
a :class:`repro.sim.JobGraph` for timing/traffic simulation, and it is
executed on real byte buffers by :mod:`repro.repair.executor` to prove
the repair actually reconstructs the lost data.  A scheme therefore
cannot report a repair time for a plan that would not decode.

Payload keys are strings; :func:`block_key` names original stripe blocks
and schemes mint their own keys for intermediates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..rs import DecodeCostModel
from ..sim import JobGraph

__all__ = ["PlanError", "SendOp", "CombineOp", "RepairPlan", "block_key"]


class PlanError(ValueError):
    """Raised for malformed repair plans."""


def block_key(block_id: int) -> str:
    """Payload key of an original stripe block."""
    return f"block:{block_id}"


@dataclass(frozen=True)
class SendOp:
    """Move payload ``key`` from node ``src`` to node ``dst``."""

    op_id: str
    src: int
    dst: int
    key: str
    deps: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise PlanError(f"send {self.op_id}: src == dst == {self.src}")


@dataclass(frozen=True)
class CombineOp:
    """Compute ``out_key = sum(coeff * payload)`` on ``node``.

    ``with_matrix_build`` marks the op that pays the decoding-matrix
    construction surcharge (§3.3); schemes set it on the final decode when
    the recovery equation needed ``M'^{-1}``.
    """

    op_id: str
    node: int
    out_key: str
    terms: tuple[tuple[str, int], ...]
    with_matrix_build: bool = False
    deps: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.terms:
            raise PlanError(f"combine {self.op_id}: no input terms")
        keys = [key for key, _ in self.terms]
        if len(set(keys)) != len(keys):
            raise PlanError(f"combine {self.op_id}: duplicate input payload")
        if any(not 1 <= c <= 255 for _, c in self.terms):
            raise PlanError(f"combine {self.op_id}: coefficients must be in [1, 255]")
        if self.out_key in set(keys):
            raise PlanError(f"combine {self.op_id}: output aliases an input")


@dataclass
class RepairPlan:
    """A complete repair: ops plus the mapping of outputs to targets.

    Attributes
    ----------
    block_size:
        Bytes per block (every payload in a repair is block-sized, incl.
        intermediates — §3.1).
    ops:
        Op id → op, insertion-ordered.
    outputs:
        Failed block id → ``(recovery_node, payload_key)`` where the
        reconstructed bytes must end up.
    """

    block_size: int
    ops: dict[str, SendOp | CombineOp] = field(default_factory=dict)
    outputs: dict[int, tuple[int, str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.block_size < 1:
            raise PlanError(f"block_size must be positive, got {self.block_size}")

    # -- construction -------------------------------------------------------

    def add(self, op: SendOp | CombineOp) -> str:
        if op.op_id in self.ops:
            raise PlanError(f"duplicate op id {op.op_id!r}")
        self.ops[op.op_id] = op
        return op.op_id

    def add_send(self, op_id: str, src: int, dst: int, key: str, deps=()) -> str:
        return self.add(SendOp(op_id=op_id, src=src, dst=dst, key=key, deps=tuple(deps)))

    def add_combine(
        self,
        op_id: str,
        node: int,
        out_key: str,
        terms: Iterable[tuple[str, int]],
        with_matrix_build: bool = False,
        deps=(),
    ) -> str:
        return self.add(
            CombineOp(
                op_id=op_id,
                node=node,
                out_key=out_key,
                terms=tuple(terms),
                with_matrix_build=with_matrix_build,
                deps=tuple(deps),
            )
        )

    def mark_output(self, block_id: int, node: int, key: str) -> None:
        if block_id in self.outputs:
            raise PlanError(f"output for block {block_id} already marked")
        self.outputs[block_id] = (node, key)

    # -- introspection ------------------------------------------------------

    def sends(self) -> list[SendOp]:
        return [op for op in self.ops.values() if isinstance(op, SendOp)]

    def combines(self) -> list[CombineOp]:
        return [op for op in self.ops.values() if isinstance(op, CombineOp)]

    def validate(self) -> None:
        """Structural checks: dep integrity and acyclicity (via JobGraph)."""
        for op in self.ops.values():
            for dep in op.deps:
                if dep not in self.ops:
                    raise PlanError(f"op {op.op_id!r} depends on unknown {dep!r}")
        if not self.outputs:
            raise PlanError("plan reconstructs nothing (no outputs marked)")
        # Reuse JobGraph's cycle detection with dummy durations.
        graph = JobGraph()
        for op in self.ops.values():
            graph.add_compute(op.op_id, 0, 0.0, deps=op.deps)
        graph.validate()

    # -- compilation ----------------------------------------------------------

    def to_job_graph(self, cost_model: DecodeCostModel) -> JobGraph:
        """Compile to simulator jobs.

        Sends become block-sized transfers; combines become compute jobs
        whose duration comes from ``cost_model`` (with the matrix-build
        factor applied where flagged).
        """
        self.validate()
        graph = JobGraph()
        for op in self.ops.values():
            if isinstance(op, SendOp):
                graph.add_transfer(
                    op.op_id,
                    src=op.src,
                    dst=op.dst,
                    nbytes=self.block_size,
                    deps=op.deps,
                    tag=op.key,
                )
            else:
                seconds = cost_model.decode_time(
                    self.block_size, with_matrix_build=op.with_matrix_build
                )
                graph.add_compute(
                    op.op_id, node=op.node, seconds=seconds, deps=op.deps, tag=op.out_key
                )
        return graph
