"""Plan introspection: structural statistics of a repair plan.

Answers "what would this plan do?" without executing or simulating it —
useful for tests that assert scheme *shape* (hop counts, decode counts),
for the CLI's verbose output, and for quickly comparing planner variants.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster import Cluster
from .plan import RepairPlan, SendOp

__all__ = ["PlanStats", "critical_path_hops"]


@dataclass(frozen=True)
class PlanStats:
    """Counts and structural measures of one plan.

    Attributes
    ----------
    sends / intra_sends / cross_sends:
        Transfer op counts, split by rack relationship.
    combines / matrix_builds:
        Decode op counts and how many pay the matrix-build surcharge.
    cross_bytes / intra_bytes:
        Volume implied by the sends at the plan's block size.
    critical_path_ops / critical_path_cross:
        Two independent structural maxima: the longest dependency chain
        (in ops), and the largest number of *chained* cross-rack
        transfers anywhere in the DAG — the paper's "cross-rack
        timesteps" as a structural lower bound (port contention can only
        stretch it; e.g. CAR's three parallel-by-structure cross sends
        show depth 1 here but serialise to 3 timesteps on the recovery
        port).
    """

    sends: int
    intra_sends: int
    cross_sends: int
    combines: int
    matrix_builds: int
    cross_bytes: float
    intra_bytes: float
    critical_path_ops: int
    critical_path_cross: int

    @classmethod
    def from_plan(cls, plan: RepairPlan, cluster: Cluster) -> "PlanStats":
        intra = cross = combines = builds = 0
        for op in plan.ops.values():
            if isinstance(op, SendOp):
                if cluster.same_rack(op.src, op.dst):
                    intra += 1
                else:
                    cross += 1
            else:
                combines += 1
                if op.with_matrix_build:
                    builds += 1
        ops_depth, cross_depth = critical_path_hops(plan, cluster)
        return cls(
            sends=intra + cross,
            intra_sends=intra,
            cross_sends=cross,
            combines=combines,
            matrix_builds=builds,
            cross_bytes=cross * plan.block_size,
            intra_bytes=intra * plan.block_size,
            critical_path_ops=ops_depth,
            critical_path_cross=cross_depth,
        )


def critical_path_hops(plan: RepairPlan, cluster: Cluster) -> tuple[int, int]:
    """Structural maxima: (longest op chain, deepest cross-transfer chain).

    Computed over declared dependencies only — the lower bounds the §4.1
    timestep analysis reasons about.  The two values may come from
    different chains.
    """
    plan.validate()
    op_depth: dict[str, int] = {}
    cross_depth: dict[str, int] = {}

    # Plans are built append-only, so insertion order is topological.
    for op_id, op in plan.ops.items():
        base_ops = max((op_depth[d] for d in op.deps), default=0)
        base_cross = max((cross_depth[d] for d in op.deps), default=0)
        is_cross = isinstance(op, SendOp) and not cluster.same_rack(op.src, op.dst)
        op_depth[op_id] = base_ops + 1
        cross_depth[op_id] = base_cross + (1 if is_cross else 0)
    if not op_depth:
        return (0, 0)
    return (max(op_depth.values()), max(cross_depth.values()))
