"""RPR: rack-aware pipeline repair (the paper's contribution).

Submodules map to the paper's techniques:

* :mod:`.inner` — Algorithm 1 (*Inner*) and its multi-failure extension
  (Algorithm 3, *Inner-multi*): per-rack pairwise partial-decoding trees.
* :mod:`.cross` — Algorithm 2 (*Cross*) and its multi-failure extension
  (Algorithm 4, *Cross-multi*): the greedy binomial pipeline of rack
  intermediates onto the recovery node.
* :mod:`.preplacement` — §3.3 helpers (the placement policy itself is
  :class:`repro.cluster.RPRPlacement`).
* :mod:`.scheme` — the :class:`RPRScheme` planner tying them together.
"""

from .cross import CrossArrival, build_cross_gather, build_direct_gather
from .hetero import (
    HeterogeneityAwareRPR,
    estimate_gather_makespan,
    order_sources_by_link_speed,
)
from .inner import InnerResult, build_inner_trees
from .preplacement import (
    matrix_build_free_probability,
    p0_rack_is_all_data,
    xor_fast_path_applicable,
)
from .scheme import RPRScheme

__all__ = [
    "CrossArrival",
    "HeterogeneityAwareRPR",
    "InnerResult",
    "RPRScheme",
    "estimate_gather_makespan",
    "order_sources_by_link_speed",
    "build_cross_gather",
    "build_direct_gather",
    "build_inner_trees",
    "matrix_build_free_probability",
    "p0_rack_is_all_data",
    "xor_fast_path_applicable",
]
