"""RPR cross-rack pipeline scheduling — the paper's Algorithm 2 (*Cross*).

Given one finished intermediate per remote rack, the greedy pipeline
aggregates them to the recovery node in ``ceil(log2 (r + 1))`` cross-rack
timesteps instead of the ``r`` serial timesteps a direct all-to-recovery
gather costs (Fig. 5, schedule 2 vs schedule 1):

* each round pairs every idle holder with another idle holder (no rack
  sits on an occupied port), honouring the algorithm's "start a
  cross-rack transfer with any other rack which has no cross-rack
  transfer";
* the recovery node is a holder from the start, so it receives one
  intermediate per round while other racks combine in parallel;
* a rack sends the moment its own payload is ready — the *pipeline*:
  nothing waits for a global barrier, only for its dependencies (the
  simulation engine's port model supplies the rest).

The builder emits sends/combines; it performs no timing itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..plan import RepairPlan
from .inner import InnerResult

__all__ = ["CrossArrival", "build_cross_gather", "build_direct_gather"]


@dataclass(frozen=True)
class CrossArrival:
    """One payload landed on the recovery node by the cross stage.

    ``coeff`` is the pending coefficient the final combine must apply
    (1 for anything a partial decode already touched).
    """

    key: str
    dep: str
    coeff: int = 1


def build_direct_gather(
    plan: RepairPlan,
    target_node: int,
    sources: list[InnerResult],
    prefix: str,
) -> list[CrossArrival]:
    """Schedule 1 of Fig. 5: every rack sends straight to the recovery node.

    The no-pipeline baseline used by the scheduling ablation — all sends
    contend for the recovery node's download port and serialise
    (``r * t_c`` for ``r`` remote racks).
    """
    arrivals = []
    for idx, source in enumerate(sources):
        op = plan.add_send(
            f"{prefix}:direct{idx}",
            src=source.node,
            dst=target_node,
            key=source.key,
            deps=[source.dep] if source.dep else [],
        )
        arrivals.append(CrossArrival(key=source.key, dep=op, coeff=source.coeff))
    return arrivals


def build_cross_gather(
    plan: RepairPlan,
    target_node: int,
    sources: list[InnerResult],
    prefix: str,
) -> list[CrossArrival]:
    """Binomial-tree gather of rack intermediates onto ``target_node``.

    Parameters
    ----------
    plan:
        Plan being built.
    target_node:
        The recovery node (Algorithm 2's repair rack endpoint).
    sources:
        One intermediate per remote rack (key, holder node, producing op).
    prefix:
        Unique op-id prefix for this equation.

    Returns
    -------
    The payloads that ended up on ``target_node`` (one per aggregation
    round; combined with any recovery-rack-local partials they
    reconstruct the failed block).  Intermediates merged at non-target
    racks are combined there, applying any coefficient still pending from
    a raw single-block contribution.
    """
    holders: list[InnerResult] = list(sources)
    arrivals: list[CrossArrival] = []
    round_no = 0

    while holders:
        # holders[0] pairs with the target; remaining holders pair among
        # themselves: (1,2), (3,4), ... senders are the higher indices.
        to_target = holders[0]
        op = plan.add_send(
            f"{prefix}:R{round_no}:to-target",
            src=to_target.node,
            dst=target_node,
            key=to_target.key,
            deps=[to_target.dep] if to_target.dep else [],
        )
        arrivals.append(
            CrossArrival(key=to_target.key, dep=op, coeff=to_target.coeff)
        )

        next_holders: list[InnerResult] = []
        rest = holders[1:]
        for pair_idx in range(0, len(rest) - 1, 2):
            recv, send = rest[pair_idx], rest[pair_idx + 1]
            send_op = plan.add_send(
                f"{prefix}:R{round_no}:pair{pair_idx // 2}:send",
                src=send.node,
                dst=recv.node,
                key=send.key,
                deps=[send.dep] if send.dep else [],
            )
            out_key = f"{prefix}:R{round_no}:pair{pair_idx // 2}:im"
            deps = [send_op]
            if recv.dep:
                deps.append(recv.dep)
            combine = plan.add_combine(
                f"{prefix}:R{round_no}:pair{pair_idx // 2}:combine",
                node=recv.node,
                out_key=out_key,
                terms=[(recv.key, recv.coeff), (send.key, send.coeff)],
                deps=deps,
            )
            next_holders.append(InnerResult(key=out_key, node=recv.node, dep=combine))
        if len(rest) % 2 == 1:
            next_holders.append(rest[-1])
        holders = next_holders
        round_no += 1

    return arrivals
