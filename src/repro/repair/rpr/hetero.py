"""Bandwidth-aware RPR for heterogeneous networks (extension).

The paper's Algorithm 2 treats every cross-rack link as equal (the 10:1
Simics assumption).  On the EC2 testbed the links differ by up to 2.6x
(Table 1: 34.4–91.2 Mbps), so *which* rack delivers to the recovery
node in which round changes the makespan.  This follows the direction
of Gong et al. [11] ("optimal node selection for data regeneration in
heterogeneous storage systems"), which the paper's related work notes
"only works well when the nodes' bandwidth vary significantly" —
exactly the EC2 regime.

Heuristic (greedy, deterministic): the gather's position 0 — the rack
whose intermediate goes straight to the recovery node in round 0 — is
given to the **fastest link to the target**; the slowest-linked racks
merge among themselves first, hiding their long transfers inside the
early rounds and keeping the target's scarce download port busy with
short transfers.  With uniform links the ordering is a no-op and the
schedule matches Algorithm 2 exactly.
"""

from __future__ import annotations

import itertools

from ...cluster import BandwidthModel, Cluster
from ...rs import DecodeCostModel
from ...sim import SimulationEngine
from ..base import RepairContext
from ..plan import RepairPlan
from .cross import build_cross_gather
from .inner import InnerResult
from .scheme import RPRScheme

__all__ = [
    "HeterogeneityAwareRPR",
    "order_sources_by_link_speed",
    "estimate_gather_makespan",
]

#: Brute-force the gather ordering up to this many remote racks
#: (5! = 120 candidate schedules, each a ~10-job simulation); beyond it,
#: fall back to the fastest-link-first heuristic.
EXHAUSTIVE_LIMIT = 5

#: Zero-cost decode model for schedule estimation (transfers only).
_FREE_DECODE = DecodeCostModel(xor_speed=1e30, matrix_build_factor=1.0)


def order_sources_by_link_speed(
    cluster: Cluster,
    bandwidth: BandwidthModel,
    sources: list[InnerResult],
    target: int,
) -> list[InnerResult]:
    """Sort rack intermediates fastest-link-to-target first.

    The sort is stable: with uniform links the incoming (rack-id) order —
    plain Algorithm 2 — is preserved.
    """
    return sorted(
        sources,
        key=lambda s: -bandwidth.rate(cluster, s.node, target),
    )


def estimate_gather_makespan(
    cluster: Cluster,
    bandwidth: BandwidthModel,
    sources: list[InnerResult],
    target: int,
    block_size: int,
) -> float:
    """Transfer-only makespan of one gather ordering.

    Builds a throwaway plan containing just the binomial gather (all
    sources ready at time zero, decodes free) and runs it on the event
    engine — the same port/contention semantics the real repair will see.
    """
    if not sources:
        return 0.0
    plan = RepairPlan(block_size=block_size)
    ready = [
        InnerResult(key=s.key, node=s.node, dep=None, coeff=1) for s in sources
    ]
    arrivals = build_cross_gather(plan, target, ready, prefix="probe")
    plan.mark_output(0, target, arrivals[0].key)
    graph = plan.to_job_graph(_FREE_DECODE)
    return SimulationEngine(cluster, bandwidth).run(graph).makespan


class HeterogeneityAwareRPR(RPRScheme):
    """RPR whose cross-rack gather ordering accounts for link speeds.

    Parameters
    ----------
    bandwidth:
        The link model the planner should optimise against (normally the
        same one the repair is simulated/executed on).
    """

    name = "rpr-hetero"

    def __init__(
        self,
        bandwidth: BandwidthModel,
        prefer_xor: bool = True,
        pipeline: bool = True,
    ) -> None:
        super().__init__(prefer_xor=prefer_xor, pipeline=pipeline)
        self.name = "rpr-hetero" if pipeline else "rpr-hetero-nopipe"
        self.bandwidth = bandwidth

    def _order_remote_sources(
        self, ctx: RepairContext, target: int, remote: list[InnerResult]
    ) -> list[InnerResult]:
        if len(remote) < 2 or not self.pipeline:
            return remote
        if len(remote) > EXHAUSTIVE_LIMIT:
            return order_sources_by_link_speed(
                ctx.cluster, self.bandwidth, remote, target
            )
        best = None
        best_time = float("inf")
        for perm in itertools.permutations(remote):
            t = estimate_gather_makespan(
                ctx.cluster, self.bandwidth, list(perm), target, ctx.block_size
            )
            if t < best_time - 1e-12:
                best_time = t
                best = list(perm)
        return best if best is not None else remote
