"""RPR inner-rack partial decoding — the paper's Algorithm 1 (*Inner*).

Within one rack, surviving helper blocks are combined pair-wise in a
binary tree: each level moves one block of every pair to its partner's
node (disjoint node pairs, so all of a level's intra-rack transfers run
in parallel) and XOR/GF-combines there.  Depth is ``ceil(log2 m)`` for
``m`` helpers, the source of eq. (11)'s logarithmic inner-transfer term.

The builder is *multi-equation aware* (Algorithm 3, *Inner-multi*): for
``l`` simultaneous failures each rack must produce ``l`` intermediates —
one per recovery sub-equation of eq. (9) — from the same local blocks.
The tree's *sends* of raw blocks are shared across equations (the bytes
only need to reach the combining node once); only the per-equation
combines (whose coefficients differ) are duplicated.  Higher tree levels
carry per-equation intermediates, so their sends are per-equation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..plan import RepairPlan, block_key

__all__ = ["InnerResult", "build_inner_trees"]


@dataclass(frozen=True)
class InnerResult:
    """Where one equation's rack intermediate ends up.

    Attributes
    ----------
    key:
        Payload key of the finished intermediate.
    node:
        Node holding it (the rack "gateway" for the cross stage).
    dep:
        Op id producing it, or None when it is a raw unmodified block.
    coeff:
        Pending GF coefficient still to be applied to this payload.  A
        rack whose tree actually combined something always yields 1; a
        rack contributing a single raw block carries that block's
        equation coefficient here, to be folded into the next downstream
        combine instead of paying a local scaling pass.
    """

    key: str
    node: int
    dep: str | None
    coeff: int = 1


@dataclass
class _EqState:
    """Per-equation running payload at one tree position."""

    key: str
    coeff: int
    dep: str | None


def build_inner_trees(
    plan: RepairPlan,
    positions: list[tuple[int, int]],
    eq_coeffs: list[dict[int, int]],
    prefix: str,
) -> list[InnerResult | None]:
    """Emit the pairwise inner tree for one rack, for all equations at once.

    Parameters
    ----------
    plan:
        Plan being built (ops are appended).
    positions:
        ``(node, block_id)`` for each local helper, in deterministic order.
    eq_coeffs:
        One mapping per recovery sub-equation: ``block_id -> coefficient``
        for the blocks of this rack that participate in that equation
        (blocks may be absent when their coefficient is zero).
    prefix:
        Unique op-id prefix for this rack.

    Returns
    -------
    One :class:`InnerResult` per equation (None when no local block
    participates in that equation).  Each result's payload equals
    ``sum(coeff * block)`` over the equation's local terms.
    """
    if not positions:
        return [None] * len(eq_coeffs)

    # states[pos][eq] — the equation's partial payload at that position.
    states: list[list[_EqState | None]] = []
    nodes: list[int] = []
    for node, block in positions:
        nodes.append(node)
        states.append(
            [
                _EqState(key=block_key(block), coeff=coeffs[block], dep=None)
                if block in coeffs
                else None
                for coeffs in eq_coeffs
            ]
        )

    level = 0
    while len(nodes) > 1:
        next_states: list[list[_EqState | None]] = []
        next_nodes: list[int] = []
        pair_count = len(nodes) // 2
        for p in range(pair_count):
            recv, send = 2 * p, 2 * p + 1
            merged = _merge_positions(
                plan,
                recv_node=nodes[recv],
                send_node=nodes[send],
                recv_states=states[recv],
                send_states=states[send],
                prefix=f"{prefix}:L{level}:p{p}",
            )
            next_nodes.append(nodes[recv])
            next_states.append(merged)
        if len(nodes) % 2 == 1:
            # Odd position carries to the next level unchanged (the
            # algorithm's trailing-element fold, one level deferred).
            next_nodes.append(nodes[-1])
            next_states.append(states[-1])
        nodes, states = next_nodes, next_states
        level += 1

    return [
        None
        if state is None
        else InnerResult(
            key=state.key, node=nodes[0], dep=state.dep, coeff=state.coeff
        )
        for state in states[0]
    ]


def _merge_positions(
    plan: RepairPlan,
    recv_node: int,
    send_node: int,
    recv_states: list[_EqState | None],
    send_states: list[_EqState | None],
    prefix: str,
) -> list[_EqState | None]:
    """Move the sender position's payloads to the receiver and combine.

    Distinct payload keys are sent once each (raw blocks are shared by all
    equations; per-equation intermediates are separate keys and transfer
    separately, as they would in a real system).
    """
    # Which payloads must cross from send_node to recv_node?
    send_ops: dict[str, str] = {}
    for state in send_states:
        if state is None or state.key in send_ops:
            continue
        op = plan.add_send(
            f"{prefix}:send:{len(send_ops)}",
            src=send_node,
            dst=recv_node,
            key=state.key,
            deps=[state.dep] if state.dep else [],
        )
        send_ops[state.key] = op

    merged: list[_EqState | None] = []
    for eq_idx, (a, b) in enumerate(zip(recv_states, send_states)):
        if a is None and b is None:
            merged.append(None)
        elif b is None:
            merged.append(a)
        elif a is None:
            # Payload arrived at recv_node; it keeps its pending coefficient.
            merged.append(_EqState(key=b.key, coeff=b.coeff, dep=send_ops[b.key]))
        else:
            out_key = f"{prefix}:eq{eq_idx}:im"
            deps = [send_ops[b.key]]
            if a.dep:
                deps.append(a.dep)
            op = plan.add_combine(
                f"{prefix}:eq{eq_idx}:combine",
                node=recv_node,
                out_key=out_key,
                terms=[(a.key, a.coeff), (b.key, b.coeff)],
                deps=deps,
            )
            merged.append(_EqState(key=out_key, coeff=1, dep=op))
    return merged
