"""Pre-placement utilities (§3.3).

The placement policy itself lives in
:class:`repro.cluster.placement.RPRPlacement` (it is a cluster-layer
concern); this module provides the scheme-side helpers: predicting when
the XOR-only fast path applies and quantifying its benefit.
"""

from __future__ import annotations

from ...cluster import Cluster, Placement
from ...rs import RSCode

__all__ = [
    "xor_fast_path_applicable",
    "matrix_build_free_probability",
    "p0_rack_is_all_data",
]


def p0_rack_is_all_data(code: RSCode, cluster: Cluster, placement: Placement) -> bool:
    """True when P0 shares its rack only with data blocks.

    This is the §3.3 placement property: it makes the eq. (6) helper set
    (all other data + P0) involve no extra rack, so the XOR-only decode is
    free to choose.
    """
    if code.k < 1:
        return False
    p0_rack = placement.rack_of_block(cluster, code.n)
    mates = [
        b for b in placement.blocks_in_rack(cluster, p0_rack) if b != code.n
    ]
    return all(b < code.n for b in mates)


def xor_fast_path_applicable(
    code: RSCode, failed_blocks: tuple[int, ...] | list[int]
) -> bool:
    """Can this failure use eq. (6) (no decoding-matrix build) at all?

    Only a *single data-block* failure qualifies; multi-block failures
    always build ``M'^{-1}`` (§3.3: "this does not benefit the multi-block
    failure scenario ... [but] does not negatively impact it either").
    """
    failed = list(failed_blocks)
    return len(failed) == 1 and 0 <= failed[0] < code.n and code.k >= 1


def matrix_build_free_probability(code: RSCode) -> float:
    """§3.3's headline: probability a uniform single-block failure skips
    the matrix build when P0 is placed with data blocks.

    The paper states ``1/n``; precisely, any of the ``n`` data blocks can
    use eq. (6), and the paper's figure counts the chance that the failure
    hits the one block whose repair would otherwise have built a matrix
    anyway under its helper-selection convention.  We expose the paper's
    ``1/n`` for the analysis benches and note that our helper selection
    actually achieves the fast path for *every* single data-block failure
    (``n / (n + k)`` of uniform failures) when pre-placement is active.
    """
    return 1.0 / code.n
