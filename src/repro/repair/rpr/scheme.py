"""The RPR scheme: pre-placement + Inner + Cross, single and multi failure.

This planner realises the full pipeline of §3:

1. **Helper selection** — rack-aware, preferring the eq. (6) XOR-only set
   when pre-placement makes it free (§3.3).
2. **Recovery equations** — eq. (6) fast path or eq. (8) via ``M'^{-1}``;
   one sub-equation per failed block (§3.4).
3. **Inner** (Alg. 1 / Alg. 3) — per rack, per equation: pairwise partial
   decoding trees producing one intermediate per (rack, equation), with
   raw-block movements shared between equations.
4. **Cross** (Alg. 2 / Alg. 4) — per equation: greedy binomial pipeline of
   the remote racks' intermediates onto that failure's recovery node.
5. **Final decode** — XOR of the arrivals plus the recovery rack's own
   partial; pays the matrix-build surcharge only when the equations
   required ``M'^{-1}``.

The emitted plan is pure data: the simulation engine provides timing and
the port contention that makes the pipeline matter; the concrete executor
proves the plan decodes the genuinely lost bytes.
"""

from __future__ import annotations

from ...rs import (
    InsufficientHelpersError,
    RecoveryEquation,
    recovery_equations,
    slice_equation_by_group,
)
from ..base import RepairContext, RepairPlanningError, RepairScheme, recovery_targets
from ..faults import plan_degraded_gather
from ..plan import RepairPlan, block_key
from ..selection import rack_aware_helpers
from .cross import build_cross_gather, build_direct_gather
from .inner import InnerResult, build_inner_trees

__all__ = ["RPRScheme"]


class RPRScheme(RepairScheme):
    """Rack-aware Pipeline Repair (the paper's contribution).

    Parameters
    ----------
    prefer_xor:
        Enable the §3.3 XOR-only helper preference (the pre-placement fast
        path).  Disable for the ablation of pre-placement's decode effect.
    pipeline:
        Enable the Algorithm 2 greedy cross-rack pipeline.  Disabled, every
        remote rack sends its intermediate straight to the recovery node —
        Fig. 5's schedule 1 — for the scheduling ablation.
    """

    name = "rpr"

    def __init__(self, prefer_xor: bool = True, pipeline: bool = True) -> None:
        self.prefer_xor = prefer_xor
        self.pipeline = pipeline
        if not pipeline:
            self.name = "rpr-nopipe"

    def plan(self, ctx: RepairContext) -> RepairPlan:
        helpers = rack_aware_helpers(ctx, prefer_xor=self.prefer_xor)
        equations = recovery_equations(ctx.code, list(ctx.failed_blocks), helpers)
        targets = recovery_targets(ctx)
        groups = ctx.placement.group_of_blocks(ctx.cluster)

        plan = RepairPlan(block_size=ctx.block_size)

        # eq_slices[e][rack] -> {block: coeff}
        eq_slices: list[dict[int, dict[int, int]]] = []
        racks_involved: set[int] = set()
        for eq in equations:
            slices = slice_equation_by_group(eq, groups)
            eq_slices.append(
                {rack: dict(sl.terms) for rack, sl in slices.items()}
            )
            racks_involved.update(slices.keys())

        target_rack_of_eq = [
            ctx.cluster.rack_of(targets[eq.target]) for eq in equations
        ]

        helper_racks = sorted(racks_involved)
        # positions per rack, deterministic order by block id.
        rack_positions = {
            rack: [
                (ctx.node_of_block(b), b)
                for b in sorted(h for h in helpers if groups[h] == rack)
            ]
            for rack in helper_racks
        }

        # -- Inner stage: one tree per rack covering the equations whose
        # recovery node is NOT in that rack.  Helpers local to an equation's
        # recovery rack stream raw to the recovery node instead (Fig. 4's
        # timestep 1): they are ready at time zero, the recovery node's
        # download port is idle until the first cross arrival, and the raw
        # sends are shared between equations targeting the same node.
        rack_results: dict[int, list[InnerResult | None]] = {}
        for rack in helper_racks:
            coeffs_per_eq = [
                slices.get(rack, {}) if target_rack_of_eq[e] != rack else {}
                for e, slices in enumerate(eq_slices)
            ]
            rack_results[rack] = build_inner_trees(
                plan,
                positions=rack_positions[rack],
                eq_coeffs=coeffs_per_eq,
                prefix=f"rpr:inner:r{rack}",
            )

        # Raw local streams, deduplicated per (block, target node).
        raw_sends: dict[tuple[int, int], str] = {}

        # -- Cross stage + final decode, per equation.
        for eq_idx, eq in enumerate(equations):
            self._finish_equation(
                ctx,
                plan,
                eq,
                eq_idx,
                targets[eq.target],
                eq_slices[eq_idx],
                rack_results,
                raw_sends,
            )
        return plan

    def replan(self, ctx: RepairContext, snapshot=None) -> RepairPlan:
        """Re-plan after a mid-repair fault, reusing delivered partial sums.

        RPR's intermediates are GF-linear combinations of data blocks with
        known coefficients, so any partial sum a failed attempt already
        delivered is first-class decode input.  When the snapshot holds at
        least one surviving intermediate the re-plan routes through
        :func:`repro.repair.faults.plan_degraded_gather`, which solves for
        a decode expression biased toward those intermediates instead of
        re-shipping the raw blocks they summarise.  With nothing delivered
        (or no snapshot) a fresh pipeline plan is at least as good; if the
        fresh plan is infeasible (fewer than ``n`` raw survivors) the
        gather solve over the surviving payload span is the last resort.
        """
        if snapshot is not None and snapshot.intermediates():
            return plan_degraded_gather(ctx, snapshot, prefix="rpr:degraded")
        try:
            return self.plan(ctx)
        except (InsufficientHelpersError, RepairPlanningError):
            if snapshot is None:
                raise
            return plan_degraded_gather(ctx, snapshot, prefix="rpr:degraded")

    def _order_remote_sources(
        self, ctx: RepairContext, target: int, remote: list[InnerResult]
    ) -> list[InnerResult]:
        """Hook: ordering of remote intermediates entering the gather.

        Position 0 reaches the recovery node in the first round.  The base
        scheme keeps rack-id order (all links equal under the paper's
        uniform model); :class:`~repro.repair.rpr.hetero.HeterogeneityAwareRPR`
        overrides this with a link-speed ordering.
        """
        return remote

    def _finish_equation(
        self,
        ctx: RepairContext,
        plan: RepairPlan,
        eq: RecoveryEquation,
        eq_idx: int,
        target: int,
        slices: dict[int, dict[int, int]],
        rack_results: dict[int, list[InnerResult | None]],
        raw_sends: dict[tuple[int, int], str],
    ) -> None:
        target_rack = ctx.cluster.rack_of(target)
        final_terms: list[tuple[str, int]] = []
        final_deps: list[str] = []

        # Local helpers stream raw to the recovery node (shared across
        # equations); their coefficients apply in the final combine.  A
        # helper resident on the recovery node itself (degraded-read
        # override) is consumed in place, transfer-free.
        for block, coeff in sorted(slices.get(target_rack, {}).items()):
            src = ctx.node_of_block(block)
            final_terms.append((block_key(block), coeff))
            if src == target:
                continue
            key = (block, target)
            if key not in raw_sends:
                raw_sends[key] = plan.add_send(
                    f"rpr:local:b{block}-to-{target}",
                    src=src,
                    dst=target,
                    key=block_key(block),
                )
            final_deps.append(raw_sends[key])

        remote: list[InnerResult] = []
        for rack, results in sorted(rack_results.items()):
            if rack == target_rack:
                continue
            result = results[eq_idx]
            if result is not None:
                remote.append(result)
        remote = self._order_remote_sources(ctx, target, remote)

        gather = build_cross_gather if self.pipeline else build_direct_gather
        arrivals = gather(
            plan, target_node=target, sources=remote, prefix=f"rpr:eq{eq_idx}:cross"
        )
        for arrival in arrivals:
            final_terms.append((arrival.key, arrival.coeff))
            final_deps.append(arrival.dep)

        out_key = f"rpr:recovered:{eq.target}"
        plan.add_combine(
            f"rpr:eq{eq_idx}:final",
            node=target,
            out_key=out_key,
            terms=final_terms,
            with_matrix_build=eq.requires_matrix_build,
            deps=final_deps,
        )
        plan.mark_output(eq.target, target, out_key)
