"""Helper-block selection policies.

Given a failure, a repair must pick exactly ``n`` surviving blocks to
decode from.  The choice drives both the traffic and the decode cost:

* :func:`first_n_helpers` — the traditional scheme's arbitrary pick (the
  lowest-id survivors), as in the paper's Fig. 3 example.
* :func:`rack_aware_helpers` — the rack-aware pick used by CAR and RPR:
  minimise the number of *remote* racks involved (each remote rack ships
  exactly one intermediate per recovery sub-equation after partial
  decoding), and — when asked — prefer the eq. (6) XOR-only helper set
  (all other data blocks + P0) whenever it is no worse in remote-rack
  count, unlocking the matrix-build-free decode path of §3.3.
"""

from __future__ import annotations

from typing import Iterable

from ..cluster import Cluster, Placement
from .base import RepairContext, RepairPlanningError

__all__ = [
    "first_n_helpers",
    "rack_aware_helpers",
    "group_survivors_by_rack",
    "remote_rack_count",
    "pick_live_spares",
]


def first_n_helpers(ctx: RepairContext) -> list[int]:
    """The ``n`` lowest-id surviving blocks (traditional repair's pick)."""
    return ctx.surviving_blocks[: ctx.code.n]


def group_survivors_by_rack(ctx: RepairContext) -> dict[int, list[int]]:
    """Surviving blocks grouped by the rack they live in."""
    groups: dict[int, list[int]] = {}
    for block in ctx.surviving_blocks:
        groups.setdefault(ctx.rack_of_block(block), []).append(block)
    return {rack: sorted(blocks) for rack, blocks in groups.items()}


def remote_rack_count(ctx: RepairContext, helpers) -> int:
    """Racks holding helpers that are not recovery racks of any failure.

    After partial decoding each such rack ships one intermediate block per
    recovery sub-equation, so this count *is* the per-equation cross-rack
    transfer volume in blocks.
    """
    recovery_racks = {ctx.rack_of_block(b) for b in ctx.failed_blocks}
    helper_racks = {ctx.rack_of_block(b) for b in helpers}
    return len(helper_racks - recovery_racks)


def _parity_preference(
    ctx: RepairContext, block: int, prefer_p0: bool
) -> tuple[int, int]:
    """Sort key for partial-rack picks.

    With ``prefer_p0`` (the §3.3-aware behaviour) data blocks come first,
    then P0, then other parities — raising the chance the derived equation
    degenerates to the XOR-only form.  Without it (modelling a scheme with
    no pre-placement awareness) parities are taken highest-id first, which
    forces a matrix-build decode whenever a parity is involved.
    """
    if block < ctx.code.n:
        return (0, block)
    if prefer_p0:
        return (1, block) if block == ctx.code.n else (2, block)
    return (1, -block)


def _greedy_rack_packing(ctx: RepairContext, prefer_p0: bool) -> list[int]:
    """Minimise remote racks: recovery racks first, then fullest racks."""
    n = ctx.code.n
    groups = group_survivors_by_rack(ctx)
    recovery_racks = {ctx.rack_of_block(b) for b in ctx.failed_blocks}

    helpers: list[int] = []
    # Local survivors are free of cross-rack cost — always take them all
    # (up to n).
    for rack in sorted(recovery_racks):
        for block in groups.get(rack, []):
            if len(helpers) < n:
                helpers.append(block)

    if ctx.rack_tiebreak is not None:
        priority = {rack: i for i, rack in enumerate(ctx.rack_tiebreak)}
        tiebreak = lambda r: (priority.get(r, len(priority)), r)  # noqa: E731
    else:
        tiebreak = lambda r: (0, r)  # noqa: E731
    remote = sorted(
        (rack for rack in groups if rack not in recovery_racks),
        key=lambda r: (-len(groups[r]), *tiebreak(r)),
    )
    for rack in remote:
        if len(helpers) >= n:
            break
        need = n - len(helpers)
        blocks = sorted(
            groups[rack], key=lambda b: _parity_preference(ctx, b, prefer_p0)
        )
        helpers.extend(blocks[:need])
    return sorted(helpers)


def _xor_candidate(ctx: RepairContext) -> list[int] | None:
    """The eq. (6) helper set, if applicable: other data blocks + P0.

    Only defined for a *single data-block* failure on a code with parity.
    """
    if len(ctx.failed_blocks) != 1 or ctx.code.k < 1:
        return None
    failed = ctx.failed_blocks[0]
    if failed >= ctx.code.n:  # parity failure: eq. (6) does not apply
        return None
    return sorted([b for b in range(ctx.code.n) if b != failed] + [ctx.code.n])


def rack_aware_helpers(ctx: RepairContext, prefer_xor: bool = True) -> list[int]:
    """Rack-aware helper pick; optionally prefer the XOR-only set.

    With ``prefer_xor`` the eq. (6) set (all other data + P0) replaces the
    greedy pick when it involves no more remote racks, and partial-rack
    picks favour P0 — together these realise the §3.3 fast path whenever
    placement makes it free.  Without it, the selection models a scheme
    with no pre-placement awareness: parities are taken highest-id first
    and the decode pays the matrix build.
    """
    greedy = _greedy_rack_packing(ctx, prefer_p0=prefer_xor)
    if len(greedy) < ctx.code.n:
        # Fewer survivors than n can only mean the context invariants were
        # violated upstream; recovery_equations will reject it anyway.
        return greedy
    if prefer_xor:
        xor_set = _xor_candidate(ctx)
        if (
            xor_set is not None
            # Degraded contexts may have lost part of the eq. (6) set to a
            # dead node; the XOR fast path only applies when all of it
            # survives.
            and set(xor_set) <= set(ctx.surviving_blocks)
            and remote_rack_count(ctx, xor_set) <= remote_rack_count(ctx, greedy)
        ):
            return xor_set
    return greedy


def pick_live_spares(
    cluster: Cluster,
    placement: Placement,
    failed_blocks: Iterable[int],
    *,
    dead_nodes: Iterable[int] = (),
) -> tuple[tuple[int, int], ...]:
    """Pick a live recovery node for every failed block.

    :func:`repro.repair.recovery_targets` implements the paper's pure
    policy — first spare in the failed block's rack — but assumes every
    node is alive.  Systems that actually lose nodes (the in-process
    :class:`repro.system.StorageSystem`, the multi-process store
    service) need the same policy *minus dead nodes*: prefer a free live
    node in the failed block's own rack, fall back to any free live node
    when that rack is out of spares.  Nodes holding surviving blocks of
    the stripe are never candidates, and distinct failed blocks get
    distinct targets.

    Returns ``((block_id, node_id), ...)`` in ``failed_blocks`` order —
    directly usable as a :class:`~repro.repair.RepairContext`
    ``recovery_override``.

    Raises
    ------
    RepairPlanningError
        When some block has no live free node anywhere.
    """
    failed = list(failed_blocks)
    dead = set(dead_nodes)
    used = {
        node
        for bid, node in placement.block_to_node.items()
        if bid not in set(failed)
    }
    taken: set[int] = set()

    def free(nodes: Iterable[int]) -> list[int]:
        return [
            node
            for node in nodes
            if node not in used and node not in taken and node not in dead
        ]

    override: list[tuple[int, int]] = []
    for bid in failed:
        rack = cluster.rack_of(placement.node_of(bid))
        candidates = free(cluster.nodes_in_rack(rack)) or free(cluster.node_ids())
        if not candidates:
            raise RepairPlanningError(
                f"no live node available to rebuild block {bid}"
            )
        override.append((bid, candidates[0]))
        taken.add(candidates[0])
    return tuple(override)
