"""Symbolic repair execution: plan → simulator → time and traffic.

The one-call entry the benchmarks use: plan a repair with a scheme,
compile it against the context's decode cost model, run it on the
discrete-event engine, and package the numbers the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster import BandwidthModel, Cluster
from ..sim import RunTrace, SimResult, SimulationEngine, telemetry_from_sim
from ..telemetry import TelemetryTrace
from .base import RepairContext, RepairScheme
from .plan import RepairPlan

__all__ = ["RepairOutcome", "simulate_repair"]


@dataclass(frozen=True)
class RepairOutcome:
    """Timing and traffic of one simulated repair.

    Attributes
    ----------
    scheme:
        Name of the scheme that produced the plan.
    total_repair_time:
        Simulation makespan in seconds — the paper's "total repair time".
    cross_rack_bytes / intra_rack_bytes:
        Bytes moved across / below the aggregation switch.
    cross_rack_blocks:
        Cross-rack traffic in block units (the paper's Fig. 7/10 y-axis).
    sim:
        Full simulation result for deeper inspection.
    plan:
        The executed plan.
    cluster:
        Topology the repair ran on (kept so :meth:`trace` can attribute
        resources to racks without re-threading the context).
    """

    scheme: str
    total_repair_time: float
    cross_rack_bytes: float
    intra_rack_bytes: float
    cross_rack_blocks: float
    sim: SimResult
    plan: RepairPlan
    cluster: Cluster | None = None

    def trace(self) -> RunTrace:
        """Observability view of this repair (see :mod:`repro.sim.tracing`)."""
        if self.cluster is None:
            raise ValueError("outcome has no cluster; build RunTrace.from_result directly")
        return RunTrace.from_result(self.sim, self.cluster)

    def telemetry(self) -> TelemetryTrace:
        """This repair in the unified span schema (see :mod:`repro.telemetry`)."""
        return telemetry_from_sim(
            self.sim, self.cluster, meta={"scheme": self.scheme}
        )


def simulate_repair(
    scheme: RepairScheme, ctx: RepairContext, bandwidth: BandwidthModel
) -> RepairOutcome:
    """Plan ``ctx``'s repair with ``scheme`` and simulate it.

    The plan is compiled with the context's decode cost model; transfer
    durations come from ``bandwidth`` over the context's cluster.
    """
    plan = scheme.plan(ctx)
    graph = plan.to_job_graph(ctx.cost_model)
    engine = SimulationEngine(ctx.cluster, bandwidth)
    sim = engine.run(graph)
    return RepairOutcome(
        scheme=scheme.name,
        total_repair_time=sim.makespan,
        cross_rack_bytes=sim.cross_rack_bytes(),
        intra_rack_bytes=sim.intra_rack_bytes(),
        cross_rack_blocks=sim.cross_rack_bytes() / ctx.block_size,
        sim=sim,
        plan=plan,
        cluster=ctx.cluster,
    )
