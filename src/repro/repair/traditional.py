"""Traditional RS repair (§2.3): stream everything to the recovery node.

The baseline against which both CAR and RPR are measured.  For ``l``
failures it:

1. picks the ``n`` lowest-id survivors as helpers (Fig. 3's arbitrary
   selection),
2. streams every helper block to one coordinator — the recovery node of
   the first failed block — where the serial download port produces the
   ``n`` back-to-back transfer timesteps of eq. (10),
3. decodes there with the generic matrix decoder (always paying the
   matrix build), and
4. re-distributes any other reconstructed blocks to their own recovery
   nodes.

No partial decoding, no pipelining, no placement awareness.
"""

from __future__ import annotations

from ..rs import recovery_equations
from .base import RepairContext, RepairScheme, recovery_targets
from .plan import RepairPlan, block_key
from .selection import first_n_helpers

__all__ = ["TraditionalRepair"]


class TraditionalRepair(RepairScheme):
    """The paper's baseline repair (Tra in Figures 7-14)."""

    name = "traditional"

    def plan(self, ctx: RepairContext) -> RepairPlan:
        helpers = first_n_helpers(ctx)
        equations = recovery_equations(ctx.code, list(ctx.failed_blocks), helpers)
        targets = recovery_targets(ctx)
        coordinator = targets[ctx.failed_blocks[0]]

        plan = RepairPlan(block_size=ctx.block_size)

        # 1) Gather: every helper streams its block to the coordinator.  All
        # sends contend for the coordinator's download port, which serialises
        # them — the eq. (10) behaviour emerges from port exclusivity.  A
        # helper already resident on the coordinator (possible under a
        # recovery override, e.g. degraded reads) needs no transfer.
        send_of_helper: dict[int, str | None] = {}
        for h in helpers:
            src = ctx.node_of_block(h)
            if src == coordinator:
                send_of_helper[h] = None
                continue
            op = plan.add_send(
                f"tra:gather:{h}",
                src=src,
                dst=coordinator,
                key=block_key(h),
            )
            send_of_helper[h] = op

        # 2) Decode each failed block at the coordinator.  The decoding
        # matrix is built once; its cost is attached to the first combine.
        prev_combine: str | None = None
        combine_of_block: dict[int, str] = {}
        for idx, eq in enumerate(equations):
            deps = [
                dep
                for h in eq.helper_ids
                if (dep := send_of_helper[h]) is not None
            ]
            if prev_combine is not None:
                deps.append(prev_combine)  # one CPU, sequential decodes
            out_key = f"tra:recovered:{eq.target}"
            prev_combine = plan.add_combine(
                f"tra:decode:{eq.target}",
                node=coordinator,
                out_key=out_key,
                terms=[(block_key(h), c) for h, c in eq.terms],
                with_matrix_build=(idx == 0),
                deps=deps,
            )
            combine_of_block[eq.target] = prev_combine

        # 3) Re-distribute blocks whose recovery node is not the coordinator.
        for block, node in targets.items():
            key = f"tra:recovered:{block}"
            if node == coordinator:
                plan.mark_output(block, coordinator, key)
            else:
                op = plan.add_send(
                    f"tra:redistribute:{block}",
                    src=coordinator,
                    dst=node,
                    key=key,
                    deps=[combine_of_block[block]],
                )
                plan.mark_output(block, node, key)
        return plan
