"""Data-block updates via parity deltas (the CAU setting, §6 related work).

When a data block ``d_i`` is overwritten, every parity must absorb the
change: ``p_j' = p_j XOR e_{j,i} * delta`` with ``delta = d_i_old XOR
d_i_new`` (linearity of the code).  The update plan is therefore:

1. compute ``delta`` at the data node (one XOR pass),
2. stream ``delta`` to each parity node (cross- or intra-rack depending
   on placement),
3. combine at each parity: scale by the generator coefficient and XOR
   into the stored parity.

This module exists for two reasons: it completes the write path a real
store needs, and it lets us *measure* §3.3's claim that the RPR
pre-placement "has no negative effect on other performance metrics" —
update traffic included (see ``benchmarks/bench_update_traffic.py``).
Cross-rack-optimal update scheduling (CAU, Shen & Lee ICPP'18) is out of
scope; the plan here is the straightforward delta broadcast.
"""

from __future__ import annotations

import numpy as np

from ..gf import linear_combine
from ..rs import Stripe
from .base import RepairContext, RepairPlanningError
from .plan import RepairPlan, block_key

__all__ = ["plan_update", "apply_update_payloads"]

#: Payload key of the delta produced by an update of ``block_id``.
def _delta_key(block_id: int) -> str:
    return f"update:delta:{block_id}"


def _new_key(block_id: int) -> str:
    return f"update:new:{block_id}"


def plan_update(ctx: RepairContext, block_id: int) -> RepairPlan:
    """Plan the parity refresh for overwriting data block ``block_id``.

    The context's ``failed_blocks`` are ignored (an update is a healthy
    path operation) but its code/cluster/placement/cost model are used.
    The plan expects the payload ``update:new:<block>`` to be present at
    the data node (the freshly written content), alongside the old block.

    Outputs are marked for every parity (their refreshed payloads) and
    for the updated block itself.

    Raises
    ------
    RepairPlanningError
        If ``block_id`` is a parity (parities are derived, not updated)
        or the code has no parities to refresh.
    """
    code = ctx.code
    if not 0 <= block_id < code.n:
        raise RepairPlanningError(
            f"only data blocks can be updated; {block_id} is not one"
        )
    if code.k == 0:
        raise RepairPlanningError("code has no parities to refresh")

    data_node = ctx.node_of_block(block_id)
    plan = RepairPlan(block_size=ctx.block_size)

    # 1) delta = old XOR new, at the data node.
    delta_op = plan.add_combine(
        "upd:delta",
        node=data_node,
        out_key=_delta_key(block_id),
        terms=[(block_key(block_id), 1), (_new_key(block_id), 1)],
    )
    plan.mark_output(block_id, data_node, _new_key(block_id))

    # 2, 3) stream the delta to each parity and fold it in.
    for parity in range(code.n, code.width):
        parity_node = ctx.node_of_block(parity)
        coeff = int(code.generator[parity, block_id])
        deps = [delta_op]
        if parity_node != data_node:
            deps = [
                plan.add_send(
                    f"upd:send:p{parity - code.n}",
                    src=data_node,
                    dst=parity_node,
                    key=_delta_key(block_id),
                    deps=[delta_op],
                )
            ]
        plan.add_combine(
            f"upd:fold:p{parity - code.n}",
            node=parity_node,
            out_key=f"update:parity:{parity}",
            terms=[(block_key(parity), 1), (_delta_key(block_id), coeff)],
            deps=deps,
        )
        plan.mark_output(parity, parity_node, f"update:parity:{parity}")
    return plan


def apply_update_payloads(
    code, stripe: Stripe, block_id: int, new_payload: np.ndarray
) -> dict[int, np.ndarray]:
    """Reference implementation: the expected post-update stripe blocks.

    Computes ``delta`` and the refreshed parities directly (no plan), for
    tests to compare plan execution against.  ``code`` must be the
    :class:`repro.rs.RSCode` the stripe was encoded with.
    """
    old = stripe.get_payload(block_id)
    new_payload = np.asarray(new_payload, dtype=np.uint8)
    if new_payload.shape != old.shape:
        raise ValueError("replacement payload must match the block size")
    delta = old ^ new_payload
    expected: dict[int, np.ndarray] = {block_id: new_payload}
    for parity in range(stripe.n, stripe.width):
        coeff = int(code.generator[parity, block_id])
        expected[parity] = stripe.get_payload(parity) ^ linear_combine(
            [coeff], [delta]
        )
    return expected
