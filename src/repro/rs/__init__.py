"""Reed--Solomon coding substrate.

Systematic RS(n, k) codes over GF(2^8) with Jerasure-style Vandermonde
generators, recovery-equation derivation (eq. (8)), partial decoding into
per-rack intermediate blocks (eq. (9)), and decode-time cost models.
"""

from .code import (
    DEFAULT_CODEC_WORKERS,
    PAPER_NONWORST_MULTI_CODES,
    PAPER_SINGLE_FAILURE_CODES,
    PAPER_WORST_CASE_CODES,
    RSCode,
    get_code,
)
from .costmodel import EC2_DECODE, MB, SIMICS_DECODE, DecodeCostModel
from .decode import (
    InsufficientHelpersError,
    RecoveryEquation,
    decode_blocks,
    recovery_equations,
    xor_recovery_equation,
)
from .partial import PartialSlice, combine_intermediates, slice_equation_by_group
from .stripe import BlockKind, Stripe, block_kind, parity_index

__all__ = [
    "BlockKind",
    "DEFAULT_CODEC_WORKERS",
    "DecodeCostModel",
    "EC2_DECODE",
    "InsufficientHelpersError",
    "MB",
    "PAPER_NONWORST_MULTI_CODES",
    "PAPER_SINGLE_FAILURE_CODES",
    "PAPER_WORST_CASE_CODES",
    "PartialSlice",
    "RSCode",
    "RecoveryEquation",
    "SIMICS_DECODE",
    "Stripe",
    "block_kind",
    "combine_intermediates",
    "decode_blocks",
    "get_code",
    "parity_index",
    "recovery_equations",
    "slice_equation_by_group",
    "xor_recovery_equation",
]
