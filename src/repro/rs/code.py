"""RS(n, k) code objects: generator matrices and encoding.

Follows the paper's parameter convention: an RS(n, k) code has ``n``
original data chunks and ``k`` parity chunks; any ``l <= k`` failures are
recoverable from any ``n`` surviving chunks (§2.1.1).

The generator is the Jerasure-style systematic Vandermonde matrix from
:func:`repro.gf.matrix.systematic_vandermonde_generator`; in particular its
first coding row is all ones, so parity ``P0`` is the plain XOR of the data
blocks — the property both eq. (2) and the §3.3 pre-placement optimisation
rely on.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from functools import lru_cache

import numpy as np

from ..gf import (
    GFTables,
    apply_matrix_to_blocks,
    get_tables,
    gf_matmul_blocks,
    systematic_vandermonde_generator,
)
from .stripe import Stripe

__all__ = [
    "RSCode",
    "DEFAULT_CODEC_WORKERS",
    "PAPER_SINGLE_FAILURE_CODES",
    "PAPER_NONWORST_MULTI_CODES",
    "PAPER_WORST_CASE_CODES",
]

#: The six RS configurations of the paper's single-failure evaluation
#: (Figures 7, 8 and 12).
PAPER_SINGLE_FAILURE_CODES: tuple[tuple[int, int], ...] = (
    (4, 2),
    (6, 2),
    (8, 2),
    (6, 3),
    (8, 4),
    (12, 4),
)

#: Codes used in the non-worst-case multi-failure evaluation (Figures 9, 10
#: and 13): those with k > 2 so that a 2..k-1 failure count exists.
PAPER_NONWORST_MULTI_CODES: tuple[tuple[int, int], ...] = ((6, 3), (8, 4), (12, 4))

#: Codes used in the worst-case (k failures) evaluation (Figures 11 and 14):
#: those with (n + k) / k > 3.
PAPER_WORST_CASE_CODES: tuple[tuple[int, int], ...] = ((6, 2), (8, 2), (12, 4))


#: Worker-count default for the parallel codec: the machine's cores,
#: capped — past 8 workers the GF kernels are memory-bandwidth-bound and
#: extra threads only contend.
DEFAULT_CODEC_WORKERS = min(os.cpu_count() or 1, 8)

_executors: dict[int, ThreadPoolExecutor] = {}
_executors_lock = threading.Lock()


def _codec_executor(workers: int) -> ThreadPoolExecutor:
    """A process-wide thread pool per worker count, created lazily.

    Threads, not processes: the hot kernel ops (``np.take`` gathers,
    ``bitwise_xor``, bulk copies) all release the GIL over large buffers,
    so threads already scale with cores — while sharing the input/output
    arenas, the table LRU and the scratch pool directly, with zero
    pickling or shared-memory plumbing.  Pools are reused across calls
    so steady-state encode/decode pays no thread start-up.
    """
    with _executors_lock:
        pool = _executors.get(workers)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-codec"
            )
            _executors[workers] = pool
        return pool


def _shard_bounds(count: int, shards: int) -> list[tuple[int, int]]:
    """Split ``range(count)`` into ``shards`` near-equal contiguous ranges."""
    shards = max(1, min(shards, count))
    step, extra = divmod(count, shards)
    bounds = []
    lo = 0
    for i in range(shards):
        hi = lo + step + (1 if i < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


class RSCode:
    """A systematic Reed--Solomon code over GF(2^8).

    Parameters
    ----------
    n:
        Number of data blocks per stripe.
    k:
        Number of parity blocks per stripe.
    tables:
        Optional GF table set (defaults to the shared GF(2^8) tables).
    matrix:
        Generator construction: ``"vandermonde"`` (Jerasure's default,
        what the paper's prototype uses) or ``"cauchy"`` (provably MDS by
        construction).  Both yield an all-ones first coding row, so the
        eq. (2)/(6) XOR-parity properties hold identically.
    """

    def __init__(
        self,
        n: int,
        k: int,
        tables: GFTables | None = None,
        matrix: str = "vandermonde",
    ) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        if n + k > 256:
            raise ValueError(f"n + k must be <= 256 over GF(256), got {n + k}")
        self.n = n
        self.k = k
        self.tables = tables or get_tables()
        self.matrix_type = matrix
        if matrix == "vandermonde":
            self.generator = systematic_vandermonde_generator(n, k, self.tables)
        elif matrix == "cauchy":
            from ..gf.cauchy import systematic_cauchy_generator

            self.generator = systematic_cauchy_generator(n, k, self.tables)
        else:
            raise ValueError(
                f"unknown matrix construction {matrix!r}; "
                f"use 'vandermonde' or 'cauchy'"
            )
        self.generator.setflags(write=False)

    # -- structural properties ---------------------------------------------

    @property
    def width(self) -> int:
        """Stripe width, ``n + k``."""
        return self.n + self.k

    @property
    def storage_overhead(self) -> float:
        """Extra storage as a fraction of original data, ``k / n``."""
        return self.k / self.n

    def coding_matrix(self) -> np.ndarray:
        """The ``k x n`` coding sub-matrix (bottom rows of the generator)."""
        return self.generator[self.n :]

    def generator_row(self, block_id: int) -> np.ndarray:
        """Row of the generator expressing ``block_id`` over the data blocks."""
        if not 0 <= block_id < self.width:
            raise ValueError(f"block id {block_id} outside code of width {self.width}")
        return self.generator[block_id]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RSCode(n={self.n}, k={self.k})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RSCode)
            and other.n == self.n
            and other.k == self.k
            and other.matrix_type == self.matrix_type
            and other.tables.prim_poly == self.tables.prim_poly
        )

    def __hash__(self) -> int:
        return hash((self.n, self.k, self.matrix_type, self.tables.prim_poly))

    # -- encoding ------------------------------------------------------------

    def encode(self, data_blocks) -> list[np.ndarray]:
        """Encode ``n`` data blocks into the full ``n + k`` stripe blocks.

        Returns data blocks first (copies are *not* made for them — the
        systematic rows are applied like any other, producing fresh arrays)
        followed by the ``k`` parities.
        """
        data_blocks = list(data_blocks)
        if len(data_blocks) != self.n:
            raise ValueError(f"expected {self.n} data blocks, got {len(data_blocks)}")
        return apply_matrix_to_blocks(self.generator, data_blocks, self.tables)

    def encode_many(
        self, data: "np.ndarray", out: "np.ndarray | None" = None
    ) -> np.ndarray:
        """Encode many stripes in one batched kernel pass.

        Parameters
        ----------
        data:
            ``(num_stripes, n, block_size)`` uint8 array (or nested
            sequence coercible to one): stripe-major stacks of data
            blocks.
        out:
            Optional pre-allocated ``(num_stripes, n + k, block_size)``
            C-contiguous uint8 destination.  Reusing one arena across
            calls matters at stack sizes past the allocator's mmap
            threshold (~32 MiB), where a fresh output pays page-fault
            and unmap churn on every call.

        Returns
        -------
        ``(num_stripes, n + k, block_size)`` uint8 array with data blocks
        first and parities last, byte-identical to running
        :meth:`encode` per stripe.

        The code is systematic, so the ``n`` identity rows of the
        generator reduce to one bulk copy of the data into the output
        stack; only the ``k`` parity rows are computed, stripe tile by
        stripe tile, through :func:`repro.gf.batch.gf_matmul_blocks` so
        every slice the kernel touches is contiguous in the stripe-major
        layout (no transpose copies of the stack are ever made).
        """
        arr = np.ascontiguousarray(np.asarray(data, dtype=np.uint8))
        if arr.ndim != 3 or arr.shape[1] != self.n:
            raise ValueError(
                f"expected (num_stripes, {self.n}, block_size) data, "
                f"got shape {arr.shape}"
            )
        num_stripes, _, block_size = arr.shape
        out_shape = (num_stripes, self.width, block_size)
        if out is None:
            out = np.empty(out_shape, dtype=np.uint8)
        elif (
            out.shape != out_shape
            or out.dtype != np.uint8
            or not out.flags.c_contiguous
        ):
            raise ValueError(
                f"out buffer must be C-contiguous uint8 with shape {out_shape}"
            )
        out[:, : self.n] = arr
        if self.k:
            coding = self.generator[self.n :]
            for s in range(num_stripes):
                # arr[s] is a contiguous (n, B) stack and out[s, n:] a
                # contiguous (k, B) target: the kernel runs copy-free.
                gf_matmul_blocks(coding, arr[s], self.tables, out=out[s, self.n :])
        return out

    def encode_many_parallel(
        self,
        data: "np.ndarray",
        out: "np.ndarray | None" = None,
        workers: int | None = None,
    ) -> np.ndarray:
        """Multicore :meth:`encode_many`: stripe shards across a thread pool.

        The stripe axis is cut into ``workers`` contiguous shards; each
        worker runs the same systematic-copy + parity-matmul loop as
        :meth:`encode_many` over its own ``data[lo:hi]`` / ``out[lo:hi]``
        slices of the shared arenas.  Shards are disjoint and every
        worker writes only its own slice, so no locks guard the payload
        path and nothing is pickled — see :func:`_codec_executor` for
        why threads are the right pool.  Output is byte-identical to the
        serial method.

        Parameters
        ----------
        data, out:
            As :meth:`encode_many`.
        workers:
            Shard/thread count; default :data:`DEFAULT_CODEC_WORKERS`.
            ``1`` falls back to the serial path (same bytes, no pool).
        """
        arr = np.ascontiguousarray(np.asarray(data, dtype=np.uint8))
        if arr.ndim != 3 or arr.shape[1] != self.n:
            raise ValueError(
                f"expected (num_stripes, {self.n}, block_size) data, "
                f"got shape {arr.shape}"
            )
        workers = DEFAULT_CODEC_WORKERS if workers is None else workers
        if workers < 1:
            raise ValueError("workers must be >= 1")
        num_stripes = arr.shape[0]
        if workers == 1 or num_stripes < 2:
            return self.encode_many(arr, out=out)
        out_shape = (num_stripes, self.width, arr.shape[2])
        if out is None:
            out = np.empty(out_shape, dtype=np.uint8)
        elif (
            out.shape != out_shape
            or out.dtype != np.uint8
            or not out.flags.c_contiguous
        ):
            raise ValueError(
                f"out buffer must be C-contiguous uint8 with shape {out_shape}"
            )
        coding = self.generator[self.n :] if self.k else None

        def encode_shard(lo: int, hi: int) -> None:
            out[lo:hi, : self.n] = arr[lo:hi]
            if coding is None:
                return
            for s in range(lo, hi):
                gf_matmul_blocks(
                    coding, arr[s], self.tables, out=out[s, self.n :]
                )

        pool = _codec_executor(workers)
        futures = [
            pool.submit(encode_shard, lo, hi)
            for lo, hi in _shard_bounds(num_stripes, workers)
        ]
        for future in futures:
            future.result()
        return out

    def decode_many_parallel(
        self, available: dict, failed_ids, workers: int | None = None
    ) -> dict:
        """Multicore :meth:`decode_many`: stripe shards across a thread pool.

        The recovery coefficient matrix is derived once (helpers are
        shared by every stripe), then each worker applies it to its own
        contiguous stripe range of the stacked helper blocks, writing
        ``recovered[:, lo:hi]`` — a disjoint slice of one shared output
        arena whose rows stay contiguous, so there is no post-pass
        assembly copy.  Byte-identical to the serial method.
        """
        from .decode import InsufficientHelpersError, recovery_equations

        failed_ids = list(failed_ids)
        candidates = sorted(set(available) - set(failed_ids))
        if len(candidates) < self.n:
            raise InsufficientHelpersError(
                f"only {len(candidates)} surviving blocks; need {self.n}"
            )
        helpers = candidates[: self.n]
        blocks = [np.asarray(available[h], dtype=np.uint8) for h in helpers]
        stacked = blocks[0].ndim >= 2
        num_stripes = blocks[0].shape[0] if stacked else 1
        workers = DEFAULT_CODEC_WORKERS if workers is None else workers
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if workers == 1 or not stacked or num_stripes < 2:
            return self.decode_many(available, failed_ids)
        equations = recovery_equations(self, failed_ids, helpers)
        matrix = np.zeros((len(equations), self.n), dtype=np.uint8)
        for row, eq in enumerate(equations):
            for helper, coeff in eq.terms:
                matrix[row, helpers.index(helper)] = coeff
        blocks = [np.ascontiguousarray(b) for b in blocks]
        recovered = np.empty(
            (len(equations),) + blocks[0].shape, dtype=np.uint8
        )

        def decode_shard(lo: int, hi: int) -> None:
            gf_matmul_blocks(
                matrix,
                [b[lo:hi] for b in blocks],
                self.tables,
                out=recovered[:, lo:hi],
            )

        pool = _codec_executor(workers)
        futures = [
            pool.submit(decode_shard, lo, hi)
            for lo, hi in _shard_bounds(num_stripes, workers)
        ]
        for future in futures:
            future.result()
        return {eq.target: recovered[i] for i, eq in enumerate(equations)}

    def decode_many(self, available: dict, failed_ids) -> dict:
        """Batched counterpart of :func:`repro.rs.decode.decode_blocks`.

        Parameters
        ----------
        available:
            Block id -> stacked payloads.  Every array must share one
            shape; the natural layout is ``(num_stripes, block_size)``,
            but any common shape works (a single stripe's ``(block_size,)``
            included).
        failed_ids:
            Blocks to reconstruct.

        Returns
        -------
        Failed block id -> reconstructed stack, byte-identical to
        decoding stripe by stripe.

        The recovery equations (eq. (8)) are derived once — helpers are
        shared across the whole stack because every stripe uses the same
        code — and applied as one coefficient matrix over the stacked
        helper blocks.
        """
        from .decode import InsufficientHelpersError, recovery_equations

        failed_ids = list(failed_ids)
        candidates = sorted(set(available) - set(failed_ids))
        if len(candidates) < self.n:
            raise InsufficientHelpersError(
                f"only {len(candidates)} surviving blocks; need {self.n}"
            )
        helpers = candidates[: self.n]
        equations = recovery_equations(self, failed_ids, helpers)
        matrix = np.zeros((len(equations), self.n), dtype=np.uint8)
        for row, eq in enumerate(equations):
            for helper, coeff in eq.terms:
                matrix[row, helpers.index(helper)] = coeff
        blocks = [np.asarray(available[h], dtype=np.uint8) for h in helpers]
        recovered = gf_matmul_blocks(matrix, blocks, self.tables)
        return {eq.target: recovered[i] for i, eq in enumerate(equations)}

    def encode_stripe(self, data_blocks, block_size: int | None = None) -> Stripe:
        """Encode and package into a :class:`Stripe` with payloads attached."""
        blocks = self.encode(data_blocks)
        size = block_size if block_size is not None else len(blocks[0])
        stripe = Stripe(self.n, self.k, size)
        for bid, payload in enumerate(blocks):
            stripe.set_payload(bid, payload)
        return stripe

    def verify_stripe(self, stripe: Stripe) -> bool:
        """Check that a fully-populated stripe is a valid codeword."""
        if stripe.n != self.n or stripe.k != self.k:
            raise ValueError("stripe shape does not match code")
        data = [stripe.get_payload(i) for i in range(self.n)]
        expected = self.encode(data)
        return all(
            np.array_equal(expected[bid], stripe.get_payload(bid))
            for bid in range(self.width)
        )


@lru_cache(maxsize=64)
def _cached_code(n: int, k: int) -> RSCode:
    return RSCode(n, k)


def get_code(n: int, k: int) -> RSCode:
    """Shared, cached code instance for (n, k) with the default tables."""
    return _cached_code(n, k)
