"""RS(n, k) code objects: generator matrices and encoding.

Follows the paper's parameter convention: an RS(n, k) code has ``n``
original data chunks and ``k`` parity chunks; any ``l <= k`` failures are
recoverable from any ``n`` surviving chunks (§2.1.1).

The generator is the Jerasure-style systematic Vandermonde matrix from
:func:`repro.gf.matrix.systematic_vandermonde_generator`; in particular its
first coding row is all ones, so parity ``P0`` is the plain XOR of the data
blocks — the property both eq. (2) and the §3.3 pre-placement optimisation
rely on.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..gf import (
    GFTables,
    apply_matrix_to_blocks,
    get_tables,
    gf_matmul_blocks,
    systematic_vandermonde_generator,
)
from .stripe import Stripe

__all__ = ["RSCode", "PAPER_SINGLE_FAILURE_CODES", "PAPER_NONWORST_MULTI_CODES", "PAPER_WORST_CASE_CODES"]

#: The six RS configurations of the paper's single-failure evaluation
#: (Figures 7, 8 and 12).
PAPER_SINGLE_FAILURE_CODES: tuple[tuple[int, int], ...] = (
    (4, 2),
    (6, 2),
    (8, 2),
    (6, 3),
    (8, 4),
    (12, 4),
)

#: Codes used in the non-worst-case multi-failure evaluation (Figures 9, 10
#: and 13): those with k > 2 so that a 2..k-1 failure count exists.
PAPER_NONWORST_MULTI_CODES: tuple[tuple[int, int], ...] = ((6, 3), (8, 4), (12, 4))

#: Codes used in the worst-case (k failures) evaluation (Figures 11 and 14):
#: those with (n + k) / k > 3.
PAPER_WORST_CASE_CODES: tuple[tuple[int, int], ...] = ((6, 2), (8, 2), (12, 4))


class RSCode:
    """A systematic Reed--Solomon code over GF(2^8).

    Parameters
    ----------
    n:
        Number of data blocks per stripe.
    k:
        Number of parity blocks per stripe.
    tables:
        Optional GF table set (defaults to the shared GF(2^8) tables).
    matrix:
        Generator construction: ``"vandermonde"`` (Jerasure's default,
        what the paper's prototype uses) or ``"cauchy"`` (provably MDS by
        construction).  Both yield an all-ones first coding row, so the
        eq. (2)/(6) XOR-parity properties hold identically.
    """

    def __init__(
        self,
        n: int,
        k: int,
        tables: GFTables | None = None,
        matrix: str = "vandermonde",
    ) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        if n + k > 256:
            raise ValueError(f"n + k must be <= 256 over GF(256), got {n + k}")
        self.n = n
        self.k = k
        self.tables = tables or get_tables()
        self.matrix_type = matrix
        if matrix == "vandermonde":
            self.generator = systematic_vandermonde_generator(n, k, self.tables)
        elif matrix == "cauchy":
            from ..gf.cauchy import systematic_cauchy_generator

            self.generator = systematic_cauchy_generator(n, k, self.tables)
        else:
            raise ValueError(
                f"unknown matrix construction {matrix!r}; "
                f"use 'vandermonde' or 'cauchy'"
            )
        self.generator.setflags(write=False)

    # -- structural properties ---------------------------------------------

    @property
    def width(self) -> int:
        """Stripe width, ``n + k``."""
        return self.n + self.k

    @property
    def storage_overhead(self) -> float:
        """Extra storage as a fraction of original data, ``k / n``."""
        return self.k / self.n

    def coding_matrix(self) -> np.ndarray:
        """The ``k x n`` coding sub-matrix (bottom rows of the generator)."""
        return self.generator[self.n :]

    def generator_row(self, block_id: int) -> np.ndarray:
        """Row of the generator expressing ``block_id`` over the data blocks."""
        if not 0 <= block_id < self.width:
            raise ValueError(f"block id {block_id} outside code of width {self.width}")
        return self.generator[block_id]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RSCode(n={self.n}, k={self.k})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RSCode)
            and other.n == self.n
            and other.k == self.k
            and other.matrix_type == self.matrix_type
            and other.tables.prim_poly == self.tables.prim_poly
        )

    def __hash__(self) -> int:
        return hash((self.n, self.k, self.matrix_type, self.tables.prim_poly))

    # -- encoding ------------------------------------------------------------

    def encode(self, data_blocks) -> list[np.ndarray]:
        """Encode ``n`` data blocks into the full ``n + k`` stripe blocks.

        Returns data blocks first (copies are *not* made for them — the
        systematic rows are applied like any other, producing fresh arrays)
        followed by the ``k`` parities.
        """
        data_blocks = list(data_blocks)
        if len(data_blocks) != self.n:
            raise ValueError(f"expected {self.n} data blocks, got {len(data_blocks)}")
        return apply_matrix_to_blocks(self.generator, data_blocks, self.tables)

    def encode_many(
        self, data: "np.ndarray", out: "np.ndarray | None" = None
    ) -> np.ndarray:
        """Encode many stripes in one batched kernel pass.

        Parameters
        ----------
        data:
            ``(num_stripes, n, block_size)`` uint8 array (or nested
            sequence coercible to one): stripe-major stacks of data
            blocks.
        out:
            Optional pre-allocated ``(num_stripes, n + k, block_size)``
            C-contiguous uint8 destination.  Reusing one arena across
            calls matters at stack sizes past the allocator's mmap
            threshold (~32 MiB), where a fresh output pays page-fault
            and unmap churn on every call.

        Returns
        -------
        ``(num_stripes, n + k, block_size)`` uint8 array with data blocks
        first and parities last, byte-identical to running
        :meth:`encode` per stripe.

        The code is systematic, so the ``n`` identity rows of the
        generator reduce to one bulk copy of the data into the output
        stack; only the ``k`` parity rows are computed, stripe tile by
        stripe tile, through :func:`repro.gf.batch.gf_matmul_blocks` so
        every slice the kernel touches is contiguous in the stripe-major
        layout (no transpose copies of the stack are ever made).
        """
        arr = np.ascontiguousarray(np.asarray(data, dtype=np.uint8))
        if arr.ndim != 3 or arr.shape[1] != self.n:
            raise ValueError(
                f"expected (num_stripes, {self.n}, block_size) data, "
                f"got shape {arr.shape}"
            )
        num_stripes, _, block_size = arr.shape
        out_shape = (num_stripes, self.width, block_size)
        if out is None:
            out = np.empty(out_shape, dtype=np.uint8)
        elif (
            out.shape != out_shape
            or out.dtype != np.uint8
            or not out.flags.c_contiguous
        ):
            raise ValueError(
                f"out buffer must be C-contiguous uint8 with shape {out_shape}"
            )
        out[:, : self.n] = arr
        if self.k:
            coding = self.generator[self.n :]
            for s in range(num_stripes):
                # arr[s] is a contiguous (n, B) stack and out[s, n:] a
                # contiguous (k, B) target: the kernel runs copy-free.
                gf_matmul_blocks(coding, arr[s], self.tables, out=out[s, self.n :])
        return out

    def decode_many(self, available: dict, failed_ids) -> dict:
        """Batched counterpart of :func:`repro.rs.decode.decode_blocks`.

        Parameters
        ----------
        available:
            Block id -> stacked payloads.  Every array must share one
            shape; the natural layout is ``(num_stripes, block_size)``,
            but any common shape works (a single stripe's ``(block_size,)``
            included).
        failed_ids:
            Blocks to reconstruct.

        Returns
        -------
        Failed block id -> reconstructed stack, byte-identical to
        decoding stripe by stripe.

        The recovery equations (eq. (8)) are derived once — helpers are
        shared across the whole stack because every stripe uses the same
        code — and applied as one coefficient matrix over the stacked
        helper blocks.
        """
        from .decode import InsufficientHelpersError, recovery_equations

        failed_ids = list(failed_ids)
        candidates = sorted(set(available) - set(failed_ids))
        if len(candidates) < self.n:
            raise InsufficientHelpersError(
                f"only {len(candidates)} surviving blocks; need {self.n}"
            )
        helpers = candidates[: self.n]
        equations = recovery_equations(self, failed_ids, helpers)
        matrix = np.zeros((len(equations), self.n), dtype=np.uint8)
        for row, eq in enumerate(equations):
            for helper, coeff in eq.terms:
                matrix[row, helpers.index(helper)] = coeff
        blocks = [np.asarray(available[h], dtype=np.uint8) for h in helpers]
        recovered = gf_matmul_blocks(matrix, blocks, self.tables)
        return {eq.target: recovered[i] for i, eq in enumerate(equations)}

    def encode_stripe(self, data_blocks, block_size: int | None = None) -> Stripe:
        """Encode and package into a :class:`Stripe` with payloads attached."""
        blocks = self.encode(data_blocks)
        size = block_size if block_size is not None else len(blocks[0])
        stripe = Stripe(self.n, self.k, size)
        for bid, payload in enumerate(blocks):
            stripe.set_payload(bid, payload)
        return stripe

    def verify_stripe(self, stripe: Stripe) -> bool:
        """Check that a fully-populated stripe is a valid codeword."""
        if stripe.n != self.n or stripe.k != self.k:
            raise ValueError("stripe shape does not match code")
        data = [stripe.get_payload(i) for i in range(self.n)]
        expected = self.encode(data)
        return all(
            np.array_equal(expected[bid], stripe.get_payload(bid))
            for bid in range(self.width)
        )


@lru_cache(maxsize=64)
def _cached_code(n: int, k: int) -> RSCode:
    return RSCode(n, k)


def get_code(n: int, k: int) -> RSCode:
    """Shared, cached code instance for (n, k) with the default tables."""
    return _cached_code(n, k)
