"""Decode-time cost models.

The paper distinguishes two decode costs (§3.3, §4.1, §5.2.1):

* ``t_wd`` — decode including construction of the decoding matrix
  ``M'^{-1}``; the build step alone can be ~75 % of decode time.
* ``t_nd`` — decode when the matrix build is skipped (the eq. (6)
  XOR-only path enabled by pre-placement), with ``t_wd ≈ 4 * t_nd``.

Two concrete calibrations are provided:

* :data:`SIMICS_DECODE` — the Simics testbed: RS decode throughput
  ~1000 MB/s (§2.3), matrix-build factor 4.
* :data:`EC2_DECODE` — the t2.micro testbed: a 256 MB block takes ~20 s
  with the traditional decode function and ~2.5 s with the optimised one
  (§5.2.1), i.e. 12.8 MB/s baseline with an 8x matrix-build factor.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DecodeCostModel", "SIMICS_DECODE", "EC2_DECODE", "MB"]

#: One mebibyte-ish unit used throughout (the paper speaks in MB ~ 1e6).
MB = 1_000_000


@dataclass(frozen=True)
class DecodeCostModel:
    """Time model for (partial) decode operations.

    Attributes
    ----------
    xor_speed:
        Bytes/second for a decode that does *not* build a decoding matrix
        (XOR/linear-combination of already-known coefficients).
    matrix_build_factor:
        Multiplier applied when the decoding matrix must be constructed:
        ``t_wd = matrix_build_factor * t_nd``.
    """

    xor_speed: float
    matrix_build_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.xor_speed <= 0:
            raise ValueError("xor_speed must be positive")
        if self.matrix_build_factor < 1:
            raise ValueError("matrix_build_factor must be >= 1")

    def decode_time(self, nbytes: float, *, with_matrix_build: bool) -> float:
        """Seconds to decode ``nbytes`` of output block data."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        base = nbytes / self.xor_speed
        return base * self.matrix_build_factor if with_matrix_build else base

    def time_without_build(self, nbytes: float) -> float:
        """``t_nd`` for a block of ``nbytes``."""
        return self.decode_time(nbytes, with_matrix_build=False)

    def time_with_build(self, nbytes: float) -> float:
        """``t_wd`` for a block of ``nbytes``."""
        return self.decode_time(nbytes, with_matrix_build=True)


#: Simics testbed decode model: ~1000 MB/s XOR decode, t_wd = 4 * t_nd.
SIMICS_DECODE = DecodeCostModel(xor_speed=1000 * MB, matrix_build_factor=4.0)

#: EC2 t2.micro decode model: 256 MB in ~2.5 s without the matrix build
#: (102.4 MB/s) and ~20 s with it (factor 8) — §5.2.1.
EC2_DECODE = DecodeCostModel(xor_speed=256 * MB / 2.5, matrix_build_factor=8.0)
