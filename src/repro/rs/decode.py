"""Decoding: recovery equations and the decoding matrix ``M'^{-1}``.

The central object is the :class:`RecoveryEquation` — the paper's eq. (8):
one failed block expressed as a GF linear combination of surviving helper
blocks.  Everything downstream (partial decoding, rack scheduling, the
concrete executor) consumes equations, never raw matrices, which is what
lets a repair be split into per-rack intermediate blocks (eq. (9)).

``requires_matrix_build`` records whether producing the equation needed the
inversion of ``M'`` — the step §3.3 observes can take up to 75 % of decode
time and that the pre-placement optimisation avoids for ``1/n`` of single
data-block failures (eq. (6)).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gf import mat_inv, mat_mul
from .code import RSCode

__all__ = [
    "RecoveryEquation",
    "InsufficientHelpersError",
    "xor_recovery_equation",
    "recovery_equations",
    "decode_blocks",
]


class InsufficientHelpersError(ValueError):
    """Raised when fewer than ``n`` helpers are supplied for a decode."""


@dataclass(frozen=True)
class RecoveryEquation:
    """``target = sum(coeff * helper)`` over GF(2^8) — one row of eq. (8).

    Attributes
    ----------
    target:
        Block id being reconstructed.
    terms:
        ``(helper_block_id, coefficient)`` pairs with non-zero coefficients,
        sorted by helper id.
    requires_matrix_build:
        True when deriving the coefficients required inverting the decoding
        matrix (cost-model hook for §3.3 / the EC2 decode-time gap).
    """

    target: int
    terms: tuple[tuple[int, int], ...]
    requires_matrix_build: bool = True

    def __post_init__(self) -> None:
        ids = [h for h, _ in self.terms]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate helper in equation for block {self.target}")
        if any(not 1 <= c <= 255 for _, c in self.terms):
            raise ValueError("equation coefficients must be non-zero GF elements")
        if self.target in set(ids):
            raise ValueError(f"block {self.target} cannot help repair itself")

    @property
    def helper_ids(self) -> tuple[int, ...]:
        return tuple(h for h, _ in self.terms)

    @property
    def is_xor_only(self) -> bool:
        """True when every coefficient is 1 — pure-XOR reconstruction."""
        return all(c == 1 for _, c in self.terms)

    def coefficient(self, helper_id: int) -> int:
        for h, c in self.terms:
            if h == helper_id:
                return c
        return 0

    def restricted_to(self, helper_subset) -> "RecoveryEquation":
        """Sub-equation over only the helpers in ``helper_subset``.

        Used by partial decoding to slice one recovery equation into
        per-rack pieces; the restriction keeps ``requires_matrix_build``
        because the *coefficients* came from the same derivation.
        """
        subset = set(helper_subset)
        return RecoveryEquation(
            target=self.target,
            terms=tuple((h, c) for h, c in self.terms if h in subset),
            requires_matrix_build=self.requires_matrix_build,
        )


def _equation_from_row(
    target: int, helper_ids, row: np.ndarray, requires_matrix_build: bool
) -> RecoveryEquation:
    terms = tuple(
        (int(h), int(c))
        for h, c in sorted(zip(helper_ids, row.tolist()))
        if c != 0
    )
    return RecoveryEquation(
        target=target, terms=terms, requires_matrix_build=requires_matrix_build
    )


def xor_recovery_equation(code: RSCode, failed_data_id: int) -> RecoveryEquation:
    """The eq. (6) fast path: repair one data block via P0 with XOR only.

    ``D_f = D_0 ^ ... ^ D_{f-1} ^ D_{f+1} ^ ... ^ D_{n-1} ^ P_0``.

    Valid because the generator's first coding row is all ones.  No decoding
    matrix is built, so ``requires_matrix_build`` is False — the whole point
    of the §3.3 pre-placement.

    Raises
    ------
    ValueError
        If ``failed_data_id`` is not a data block or the code has no parity.
    """
    if not 0 <= failed_data_id < code.n:
        raise ValueError(
            f"XOR fast path only repairs data blocks; {failed_data_id} is not one"
        )
    if code.k < 1:
        raise ValueError("code has no parity; nothing can be repaired")
    helpers = [i for i in range(code.n) if i != failed_data_id] + [code.n]
    terms = tuple((h, 1) for h in sorted(helpers))
    return RecoveryEquation(
        target=failed_data_id, terms=terms, requires_matrix_build=False
    )


def recovery_equations(
    code: RSCode, failed_ids, helper_ids
) -> list[RecoveryEquation]:
    """Derive eq. (8): one recovery equation per failed block.

    Parameters
    ----------
    code:
        The RS(n, k) code.
    failed_ids:
        Blocks to reconstruct (any mix of data and parity ids).
    helper_ids:
        Exactly ``n`` surviving block ids, disjoint from ``failed_ids``.

    Returns
    -------
    list of RecoveryEquation, in ``failed_ids`` order.

    Notes
    -----
    The helpers' generator rows form ``M'``; inverting it recovers the data
    vector, and composing with generator rows re-expresses any failed block
    (data or parity) over the helpers.  When the failed block is a single
    data block and the resulting row is all ones the equation is marked as
    not requiring a matrix build — this happens exactly for the eq. (6)
    helper set, so the fast path is detected rather than special-cased.
    """
    failed_ids = list(failed_ids)
    helper_ids = sorted(set(helper_ids))
    if len(failed_ids) != len(set(failed_ids)):
        raise ValueError("duplicate failed block ids")
    if len(failed_ids) > code.k:
        raise ValueError(
            f"RS({code.n},{code.k}) tolerates at most {code.k} failures, "
            f"got {len(failed_ids)}"
        )
    if len(helper_ids) != code.n:
        raise InsufficientHelpersError(
            f"decoding needs exactly n={code.n} helpers, got {len(helper_ids)}"
        )
    overlap = set(failed_ids) & set(helper_ids)
    if overlap:
        raise ValueError(f"blocks {sorted(overlap)} are both failed and helpers")
    for bid in list(failed_ids) + helper_ids:
        if not 0 <= bid < code.width:
            raise ValueError(f"block id {bid} outside code of width {code.width}")

    # M' rows express each helper over the data blocks; M'^{-1} expresses each
    # data block over the helpers.
    m_prime = code.generator[helper_ids]
    m_inv = mat_inv(m_prime, code.tables)

    equations = []
    for target in failed_ids:
        # generator_row(target) expresses the target over the data blocks;
        # composing with m_inv expresses it over the helpers (eq. (8)).
        row = mat_mul(
            code.generator_row(target)[None, :], m_inv, code.tables
        )[0]
        eq = _equation_from_row(target, helper_ids, row, requires_matrix_build=True)
        if len(failed_ids) == 1 and eq.is_xor_only:
            # Same coefficients as eq. (6): the decode could have skipped the
            # matrix build entirely.  Reflect that in the cost flag.
            eq = RecoveryEquation(
                target=eq.target, terms=eq.terms, requires_matrix_build=False
            )
        equations.append(eq)
    return equations


def decode_blocks(code: RSCode, available: dict, failed_ids) -> dict:
    """Reference decoder: reconstruct ``failed_ids`` from available payloads.

    ``available`` maps block id to payload array.  Any ``n`` of them are
    used.  This is the ground truth the repair planners are tested against.
    """
    from ..gf import linear_combine

    failed_ids = list(failed_ids)
    candidates = sorted(set(available) - set(failed_ids))
    if len(candidates) < code.n:
        raise InsufficientHelpersError(
            f"only {len(candidates)} surviving blocks; need {code.n}"
        )
    helpers = candidates[: code.n]
    equations = recovery_equations(code, failed_ids, helpers)
    out = {}
    for eq in equations:
        coeffs = [c for _, c in eq.terms]
        blocks = [available[h] for h, _ in eq.terms]
        out[eq.target] = linear_combine(coeffs, blocks, code.tables)
    return out
