"""Partial decoding: slicing a recovery equation into intermediate blocks.

The paper's §2.1.2 / eq. (4) observation: because decoding is a GF linear
combination, any partition of an equation's terms can be combined
independently into *intermediate blocks* ``I_j`` of the same size as a data
block, and the XOR of the intermediates equals the lost block.  RPR slices
by rack (eq. (9)) so each rack ships at most one intermediate per recovery
sub-equation across the aggregation switch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..gf import GFTables, get_tables, linear_combine
from .decode import RecoveryEquation

__all__ = ["PartialSlice", "slice_equation_by_group", "combine_intermediates"]


@dataclass(frozen=True)
class PartialSlice:
    """One group's share of a recovery equation — an intermediate block spec.

    ``I_{target, group} = sum(coeff * helper)`` over the helpers that live
    in ``group`` (for RPR, a rack).
    """

    target: int
    group: object
    terms: tuple[tuple[int, int], ...]

    @property
    def helper_ids(self) -> tuple[int, ...]:
        return tuple(h for h, _ in self.terms)

    @property
    def is_xor_only(self) -> bool:
        return all(c == 1 for _, c in self.terms)

    def materialise(
        self, payloads: Mapping[int, np.ndarray], tables: GFTables | None = None
    ) -> np.ndarray:
        """Compute the intermediate block from concrete helper payloads."""
        t = tables or get_tables()
        coeffs = [c for _, c in self.terms]
        blocks = [payloads[h] for h, _ in self.terms]
        return linear_combine(coeffs, blocks, t)


def slice_equation_by_group(
    equation: RecoveryEquation, group_of: Mapping[int, object]
) -> dict[object, PartialSlice]:
    """Partition ``equation`` into per-group partial slices (eq. (9)).

    Parameters
    ----------
    equation:
        The full recovery equation (eq. (8) row).
    group_of:
        Maps each helper block id to its group key (rack id for RPR).

    Returns
    -------
    dict mapping group key to that group's :class:`PartialSlice`.  Groups
    contributing no helper do not appear.  The XOR of all slices'
    materialised blocks equals the equation's target block.

    Raises
    ------
    KeyError
        If a helper block has no group assignment.
    """
    by_group: dict[object, list[tuple[int, int]]] = {}
    for helper, coeff in equation.terms:
        group = group_of[helper]
        by_group.setdefault(group, []).append((helper, coeff))
    return {
        group: PartialSlice(target=equation.target, group=group, terms=tuple(terms))
        for group, terms in by_group.items()
    }


def combine_intermediates(intermediates, tables: GFTables | None = None) -> np.ndarray:
    """XOR intermediate blocks into the reconstructed target block.

    The final step of eq. (4)/(9): ``I_0 ^ I_1 ^ ... = d_f``.  Coefficients
    were already applied when the intermediates were materialised, so this
    is a pure XOR reduction.
    """
    intermediates = list(intermediates)
    if not intermediates:
        raise ValueError("need at least one intermediate block")
    t = tables or get_tables()
    return linear_combine([1] * len(intermediates), intermediates, t)
