"""Stripe abstraction: the unit of erasure-coded placement and repair.

A *stripe* is the set of ``n + k`` dependent blocks produced by encoding
``n`` data blocks with an RS(n, k) code (paper §1).  Block identifiers are
integers: ``0 .. n-1`` are data blocks, ``n .. n+k-1`` are parity blocks
(so block ``n`` is ``P0``, the XOR parity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

__all__ = ["BlockKind", "block_kind", "parity_index", "Stripe"]


class BlockKind:
    """Symbolic names for the two block roles within a stripe."""

    DATA = "data"
    PARITY = "parity"


def block_kind(block_id: int, n: int) -> str:
    """Classify ``block_id`` as data or parity for an RS(n, k) stripe."""
    if block_id < 0:
        raise ValueError(f"negative block id {block_id}")
    return BlockKind.DATA if block_id < n else BlockKind.PARITY


def parity_index(block_id: int, n: int) -> int:
    """Return ``j`` such that ``block_id`` is parity ``P_j``.

    Raises
    ------
    ValueError
        If ``block_id`` names a data block.
    """
    if block_id < n:
        raise ValueError(f"block {block_id} is a data block, not a parity")
    return block_id - n


@dataclass
class Stripe:
    """One encoded stripe: code parameters plus (optionally) block payloads.

    The payloads are optional because most of the library manipulates
    stripes *symbolically* — placement, scheduling, and traffic accounting
    do not need bytes.  The concrete executor attaches real payloads to
    verify that repair plans actually reconstruct data.

    Attributes
    ----------
    n:
        Number of data blocks.
    k:
        Number of parity blocks.
    block_size:
        Size of every block in bytes (all blocks in a stripe are equal-sized).
    payloads:
        Optional mapping ``block_id -> uint8 array``; absent entries model
        lost or never-materialised blocks.
    """

    n: int
    k: int
    block_size: int
    payloads: dict[int, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n < 1 or self.k < 0:
            raise ValueError(f"invalid stripe shape n={self.n}, k={self.k}")
        if self.block_size < 1:
            raise ValueError(f"block_size must be positive, got {self.block_size}")
        for bid, payload in self.payloads.items():
            self._check_payload(bid, payload)

    # -- identity helpers -------------------------------------------------

    @property
    def width(self) -> int:
        """Total number of blocks, ``n + k``."""
        return self.n + self.k

    def block_ids(self) -> Iterator[int]:
        """All block ids in the stripe, data first then parity."""
        return iter(range(self.width))

    def data_ids(self) -> list[int]:
        return list(range(self.n))

    def parity_ids(self) -> list[int]:
        return list(range(self.n, self.width))

    def kind(self, block_id: int) -> str:
        self._check_id(block_id)
        return block_kind(block_id, self.n)

    # -- payload management -----------------------------------------------

    def set_payload(self, block_id: int, payload: np.ndarray) -> None:
        self._check_id(block_id)
        self._check_payload(block_id, payload)
        self.payloads[block_id] = payload

    def get_payload(self, block_id: int) -> np.ndarray:
        self._check_id(block_id)
        try:
            return self.payloads[block_id]
        except KeyError:
            raise KeyError(f"block {block_id} has no payload attached") from None

    def drop_payload(self, block_id: int) -> None:
        """Simulate losing a block's bytes (the failure event)."""
        self._check_id(block_id)
        self.payloads.pop(block_id, None)

    def has_payload(self, block_id: int) -> bool:
        return block_id in self.payloads

    # -- validation --------------------------------------------------------

    def _check_id(self, block_id: int) -> None:
        if not 0 <= block_id < self.width:
            raise ValueError(
                f"block id {block_id} outside stripe of width {self.width}"
            )

    def _check_payload(self, block_id: int, payload: np.ndarray) -> None:
        payload = np.asarray(payload)
        if payload.dtype != np.uint8 or payload.ndim != 1:
            raise ValueError(f"payload for block {block_id} must be a 1-D uint8 array")
        if payload.shape[0] != self.block_size:
            raise ValueError(
                f"payload for block {block_id} has {payload.shape[0]} bytes, "
                f"expected {self.block_size}"
            )
