"""Discrete-event network/compute simulator.

Substitutes the paper's Simics + wondershaper testbed: per-node full-duplex
ports, per-class link bandwidths, one-at-a-time port occupancy, and
dependency-driven job starts.  See DESIGN.md ("Simulator semantics").

The observability layer lives in :mod:`repro.sim.tracing`: per-resource
utilization timelines, critical-path extraction, switch profiles, JSON
export and ASCII reports over a finished :class:`SimResult` (see
``docs/OBSERVABILITY.md``).
"""

from .engine import JobTiming, SimResult, SimulationEngine
from .events import EventKind, TraceEvent
from .jobs import ComputeJob, JobGraph, JobGraphError, TransferJob
from .timeline import TimelineRow, render_timeline, timeline_rows
from .tracing import (
    Interval,
    PathSegment,
    ResourceUsage,
    RunTrace,
    critical_path,
    render_gantt,
    render_report,
)

__all__ = [
    "ComputeJob",
    "EventKind",
    "Interval",
    "JobGraph",
    "JobGraphError",
    "JobTiming",
    "PathSegment",
    "ResourceUsage",
    "RunTrace",
    "SimResult",
    "SimulationEngine",
    "TimelineRow",
    "TraceEvent",
    "TransferJob",
    "critical_path",
    "render_gantt",
    "render_report",
    "render_timeline",
    "timeline_rows",
]
