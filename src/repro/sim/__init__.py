"""Discrete-event network/compute simulator.

Substitutes the paper's Simics + wondershaper testbed: per-node full-duplex
ports, per-class link bandwidths, one-at-a-time port occupancy, and
dependency-driven job starts.  See DESIGN.md ("Simulator semantics").
"""

from .engine import JobTiming, SimResult, SimulationEngine
from .events import EventKind, TraceEvent
from .jobs import ComputeJob, JobGraph, JobGraphError, TransferJob
from .timeline import TimelineRow, render_timeline, timeline_rows

__all__ = [
    "ComputeJob",
    "EventKind",
    "JobGraph",
    "JobGraphError",
    "JobTiming",
    "SimResult",
    "SimulationEngine",
    "TimelineRow",
    "TraceEvent",
    "TransferJob",
    "render_timeline",
    "timeline_rows",
]
