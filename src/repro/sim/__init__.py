"""Discrete-event network/compute simulator.

Substitutes the paper's Simics + wondershaper testbed: per-node full-duplex
ports, per-class link bandwidths, one-at-a-time port occupancy, and
dependency-driven job starts.  See DESIGN.md ("Simulator semantics").

The observability layer lives in :mod:`repro.sim.tracing`: per-resource
utilization timelines, critical-path extraction, switch profiles, JSON
export and ASCII reports over a finished :class:`SimResult` (see
``docs/OBSERVABILITY.md``).

Fault injection lives in :mod:`repro.sim.faults`: a seeded
:class:`FaultPlan` (node deaths, stragglers, transfer losses) passed to
:meth:`SimulationEngine.run` yields a deterministic degraded schedule
plus a :class:`FaultReport` on the result (see ``docs/FAULTS.md``).
"""

from .engine import JobTiming, SimResult, SimulationEngine
from .events import EventKind, TraceEvent
from .faults import (
    FaultPlan,
    FaultReport,
    NodeDeath,
    Straggler,
    TransferLoss,
    random_fault_plan,
)
from .jobs import ComputeJob, JobGraph, JobGraphError, TransferJob
from .timeline import TimelineRow, render_timeline, timeline_rows
from .tracing import (
    Interval,
    PathSegment,
    ResourceUsage,
    RunTrace,
    critical_path,
    render_gantt,
    render_report,
    telemetry_from_sim,
)

__all__ = [
    "ComputeJob",
    "EventKind",
    "FaultPlan",
    "FaultReport",
    "Interval",
    "JobGraph",
    "JobGraphError",
    "JobTiming",
    "NodeDeath",
    "PathSegment",
    "ResourceUsage",
    "RunTrace",
    "SimResult",
    "SimulationEngine",
    "Straggler",
    "TimelineRow",
    "TraceEvent",
    "TransferJob",
    "TransferLoss",
    "critical_path",
    "random_fault_plan",
    "render_gantt",
    "render_report",
    "render_timeline",
    "telemetry_from_sim",
    "timeline_rows",
]
