"""Discrete-event execution of a job graph on a cluster.

The engine replaces the paper's Simics + wondershaper testbed.  Its
contract:

* **Dependencies** — a job may start only after all of its dependencies
  have finished.
* **Port exclusivity** — each node owns one upload port and one download
  port; a transfer holds the source's upload port and the destination's
  download port for its whole duration.  This is the mechanism behind
  every serialisation the paper discusses (the recovery node receiving
  ``n`` blocks one after another in §2.3; schedule 1's idle racks in
  Fig. 5).
* **CPU exclusivity** — each node runs one compute job at a time.
* **Greedy, non-preemptive, deterministic** — when a resource frees, the
  ready job with the smallest (ready-time, insertion-order) key starts.
  Planners that want a specific order encode it via dependencies.

Transfer durations are ``nbytes / rate(src, dst)`` with the rate supplied
by the bandwidth model; there is no flow sharing, matching the paper's
whole-transfer "timestep" accounting.

Scheduling is *resource-indexed*: a blocked job registers as a waiter on
one of the busy resources it needs (or on the cross-rack token when the
switch cap is the blocker), and a completion only reconsiders the waiters
of the resources it actually freed — never the whole pending set.  Waking
a job through any one of its busy resources is sufficient because a job
can only become startable once *every* resource it needs is free, so the
registered one must free first; if the woken job is still blocked it
re-registers on whichever resource blocks it now.  Candidates woken at
one instant are processed in (ready-time, insertion-order) priority, so
the schedule is bit-for-bit the one the original rescan-everything
scheduler produced (golden tests in ``tests/sim/test_engine_golden.py``
pin this).  Per-job durations, resource tuples and rack relations are
precomputed once per run with per-endpoint-pair caching; see
``docs/PERFORMANCE.md`` for measurements.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

from ..cluster import BandwidthModel, Cluster
from .events import EventKind, TraceEvent
from .faults import FaultPlan, FaultReport
from .jobs import ComputeJob, JobGraph, TransferJob

__all__ = ["JobTiming", "SimResult", "SimulationEngine"]


@dataclass(frozen=True)
class JobTiming:
    """Start/end instants of one executed job."""

    job_id: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class SimResult:
    """Outcome of one simulation run.

    Attributes
    ----------
    makespan:
        Finish time of the last job (the paper's *total repair time*).
    timings:
        Per-job start/end times.
    events:
        Chronological trace of starts and finishes.
    jobs:
        The executed job graph's jobs, kept so post-processors (critical
        path extraction in :mod:`repro.sim.tracing`) can follow declared
        dependency edges.  Empty for hand-built results.
    faults:
        :class:`~repro.sim.faults.FaultReport` describing what injected
        faults did to this run; ``None`` for fault-free runs.
    """

    makespan: float
    timings: dict[str, JobTiming]
    events: list[TraceEvent] = field(default_factory=list)
    jobs: dict[str, TransferJob | ComputeJob] = field(default_factory=dict)
    faults: FaultReport | None = None

    def transfers(self) -> list[TraceEvent]:
        """All transfer-end events (one per completed transfer)."""
        return [e for e in self.events if e.kind == EventKind.TRANSFER_END]

    def cross_rack_bytes(self) -> float:
        """Total bytes moved through the aggregation switch."""
        return sum(e.nbytes for e in self.transfers() if e.cross_rack)

    def intra_rack_bytes(self) -> float:
        """Total bytes moved below TOR switches."""
        return sum(e.nbytes for e in self.transfers() if not e.cross_rack)

    def to_dict(self) -> dict:
        """JSON-serializable dump of the run; inverse of :meth:`from_dict`."""
        jobs = []
        for job in self.jobs.values():
            if isinstance(job, TransferJob):
                jobs.append(
                    {
                        "kind": "transfer",
                        "job_id": job.job_id,
                        "src": job.src,
                        "dst": job.dst,
                        "nbytes": job.nbytes,
                        "deps": list(job.deps),
                        "tag": job.tag,
                    }
                )
            else:
                jobs.append(
                    {
                        "kind": "compute",
                        "job_id": job.job_id,
                        "node": job.node,
                        "seconds": job.seconds,
                        "deps": list(job.deps),
                        "tag": job.tag,
                    }
                )
        return {
            "makespan": self.makespan,
            "timings": [
                {"job_id": t.job_id, "start": t.start, "end": t.end}
                for t in self.timings.values()
            ],
            "events": [
                {
                    "time": e.time,
                    "kind": e.kind,
                    "job_id": e.job_id,
                    "node": e.node,
                    "peer": e.peer,
                    "cross_rack": e.cross_rack,
                    "nbytes": e.nbytes,
                }
                for e in self.events
            ],
            "jobs": jobs,
            "faults": self.faults.to_dict() if self.faults is not None else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimResult":
        jobs: dict[str, TransferJob | ComputeJob] = {}
        for spec in data.get("jobs", []):
            spec = dict(spec)
            kind = spec.pop("kind")
            spec["deps"] = tuple(spec.get("deps", ()))
            jobs[spec["job_id"]] = (
                TransferJob(**spec) if kind == "transfer" else ComputeJob(**spec)
            )
        return cls(
            makespan=data["makespan"],
            timings={
                t["job_id"]: JobTiming(**t) for t in data.get("timings", [])
            },
            events=[TraceEvent(**e) for e in data.get("events", [])],
            jobs=jobs,
            faults=(
                FaultReport.from_dict(data["faults"])
                if data.get("faults") is not None
                else None
            ),
        )


class SimulationEngine:
    """Event-driven executor binding a cluster to a bandwidth model.

    Parameters
    ----------
    cluster / bandwidth:
        Topology and link model.
    cross_capacity:
        Optional cap on *concurrent cluster-wide cross-rack transfers* —
        models a constrained aggregation switch.  The paper's model (and
        the default, ``None``) only limits per-node ports; the cap is a
        sensitivity knob: RPR's pipeline schedules several simultaneous
        cross-rack transfers, so a tight switch erodes exactly that
        parallelism.
    """

    def __init__(
        self,
        cluster: Cluster,
        bandwidth: BandwidthModel,
        cross_capacity: int | None = None,
    ) -> None:
        if cross_capacity is not None and cross_capacity < 1:
            raise ValueError("cross_capacity must be >= 1 (or None)")
        self.cluster = cluster
        self.bandwidth = bandwidth
        self.cross_capacity = cross_capacity

    # -- resource keys ---------------------------------------------------

    @staticmethod
    def _uplink(node: int) -> tuple[str, int]:
        return ("up", node)

    @staticmethod
    def _downlink(node: int) -> tuple[str, int]:
        return ("down", node)

    @staticmethod
    def _cpu(node: int) -> tuple[str, int]:
        return ("cpu", node)

    # -- precomputation ----------------------------------------------------

    def _job_table(self, jobs: dict[str, TransferJob | ComputeJob]):
        """Precompute per-job facts, caching per-endpoint-pair lookups.

        Merged multi-stripe graphs reuse a handful of (src, dst) pairs
        across hundreds of transfers, so ``bandwidth.rate`` / ``latency``
        and ``cluster.same_rack`` are resolved once per pair instead of
        once per scheduling decision.  The lookups double as the fail-fast
        validation of unknown nodes / missing bandwidth entries.

        Returns ``(table, num_resources)`` where ``table`` maps job id to
        ``(resource_ids, duration, cross, start_kind, end_kind, node,
        peer, nbytes)`` and resource ids are dense ints (ports and CPUs
        interned per run) so the scheduler's busy/waiter bookkeeping runs
        on flat lists instead of hashed tuples.
        """
        pair_cache: dict[tuple[int, int], tuple[float, float, bool]] = {}
        resource_ids: dict[tuple[str, int], int] = {}

        def rid(key: tuple[str, int]) -> int:
            found = resource_ids.get(key)
            if found is None:
                found = resource_ids[key] = len(resource_ids)
            return found

        table: dict[str, tuple] = {}
        for jid, job in jobs.items():
            if isinstance(job, TransferJob):
                pair = (job.src, job.dst)
                cached = pair_cache.get(pair)
                if cached is None:
                    cached = (
                        self.bandwidth.rate(self.cluster, job.src, job.dst),
                        self.bandwidth.latency(self.cluster, job.src, job.dst),
                        self.cluster.same_rack(job.src, job.dst),
                    )
                    pair_cache[pair] = cached
                rate, latency, same_rack = cached
                table[jid] = (
                    (rid(self._uplink(job.src)), rid(self._downlink(job.dst))),
                    latency + job.nbytes / rate,
                    not same_rack,
                    EventKind.TRANSFER_START,
                    EventKind.TRANSFER_END,
                    job.src,
                    job.dst,
                    job.nbytes,
                )
            else:
                self.cluster.node(job.node)
                table[jid] = (
                    (rid(self._cpu(job.node)),),
                    job.seconds,
                    False,
                    EventKind.COMPUTE_START,
                    EventKind.COMPUTE_END,
                    job.node,
                    -1,
                    0.0,
                )
        return table, len(resource_ids)

    # -- execution ---------------------------------------------------------

    def run(self, graph: JobGraph, faults: FaultPlan | None = None) -> SimResult:
        """Execute ``graph`` to completion and return timings and trace.

        With a truthy ``faults`` plan the run goes through
        :meth:`_run_faulted`, which injects node deaths, straggler
        slowdowns and transfer losses deterministically and attaches a
        :class:`~repro.sim.faults.FaultReport` to the result.  An empty
        (or ``None``) plan takes this fault-free path, whose schedule is
        bit-for-bit unchanged.
        """
        if faults:
            return self._run_faulted(graph, faults)
        graph.validate()
        jobs = graph.jobs
        if not jobs:
            return SimResult(makespan=0.0, timings={}, events=[])

        info, num_resources = self._job_table(jobs)
        heappush, heappop, isclose = heapq.heappush, heapq.heappop, math.isclose

        order = {jid: i for i, jid in enumerate(jobs)}
        remaining_deps = {jid: set(job.deps) for jid, job in jobs.items()}
        dependents: dict[str, list[str]] = {jid: [] for jid in jobs}
        for jid, job in jobs.items():
            for dep in set(job.deps):
                dependents[dep].append(jid)

        busy = bytearray(num_resources)
        # Resource id -> jobs (as (ready_time, seq, jid) keys) blocked on it.
        waiters: list[list[tuple[float, int, str]] | None] = [None] * num_resources
        # Jobs blocked solely on the cross-rack switch token.
        token_waiters: list[tuple[float, int, str]] = []
        cross_inflight = 0
        cap = self.cross_capacity

        # Candidate heap: jobs to (re)consider at the current instant, in
        # deterministic (ready-time, insertion-order) priority.  A job's key
        # is fixed when its last dependency finishes and never changes, so
        # the greedy tie-break matches the original full-rescan scheduler.
        candidates: list[tuple[float, int, str]] = []
        for jid, deps in remaining_deps.items():
            if not deps:
                heappush(candidates, (0.0, order[jid], jid))

        running: list[tuple[float, int, str]] = []  # (end, order, jid)
        timings: dict[str, JobTiming] = {}
        events: list[TraceEvent] = []
        now = 0.0
        finished = 0
        total = len(jobs)

        while finished < total:
            # Start every candidate whose resources are free; park the rest
            # on the resource (or token) that blocks them.  Starting a job
            # frees nothing, so a single pass over the candidates suffices.
            while candidates:
                item = heappop(candidates)
                jid = item[2]
                res, duration, cross, start_kind, _, node, peer, nbytes = info[jid]
                blocker = -1
                for r in res:
                    if busy[r]:
                        blocker = r
                        break
                if blocker >= 0:
                    parked = waiters[blocker]
                    if parked is None:
                        waiters[blocker] = [item]
                    else:
                        parked.append(item)
                    continue
                needs_token = cross and cap is not None
                if needs_token and cross_inflight >= cap:
                    token_waiters.append(item)
                    continue
                for r in res:
                    busy[r] = 1
                if needs_token:
                    cross_inflight += 1
                end = now + duration
                heappush(running, (end, item[1], jid))
                timings[jid] = JobTiming(job_id=jid, start=now, end=end)
                events.append(
                    TraceEvent(
                        time=now,
                        kind=start_kind,
                        job_id=jid,
                        node=node,
                        peer=peer,
                        cross_rack=cross,
                        nbytes=nbytes,
                    )
                )

            if not running:
                raise RuntimeError(
                    "deadlock: jobs pending but nothing running "
                    "(resource conflict cycle?)"
                )
            # Advance to the next completion.
            end, _, jid = heappop(running)
            batch = [jid]
            # Complete everything ending at the same instant for determinism.
            while running and isclose(running[0][0], end, rel_tol=0, abs_tol=1e-12):
                batch.append(heappop(running)[2])
            now = end
            token_freed = False
            for done_id in batch:
                res, _, cross, _, end_kind, node, peer, nbytes = info[done_id]
                for r in res:
                    busy[r] = 0
                    woken = waiters[r]
                    if woken:
                        waiters[r] = None
                        for item in woken:
                            heappush(candidates, item)
                if cross and cap is not None:
                    cross_inflight -= 1
                    token_freed = True
                events.append(
                    TraceEvent(
                        time=now,
                        kind=end_kind,
                        job_id=done_id,
                        node=node,
                        peer=peer,
                        cross_rack=cross,
                        nbytes=nbytes,
                    )
                )
                finished += 1
                for child in dependents[done_id]:
                    deps_left = remaining_deps[child]
                    deps_left.discard(done_id)
                    if not deps_left:
                        heappush(candidates, (now, order[child], child))
            if token_freed and token_waiters:
                for item in token_waiters:
                    heappush(candidates, item)
                token_waiters = []

        events.sort(key=lambda e: (e.time, e.kind.endswith("start"), e.job_id))
        makespan = max(t.end for t in timings.values())
        return SimResult(
            makespan=makespan, timings=timings, events=events, jobs=dict(jobs)
        )

    def _run_faulted(self, graph: JobGraph, faults: FaultPlan) -> SimResult:
        """Execute ``graph`` under an injected :class:`FaultPlan`.

        Semantics (all deterministic; see :mod:`repro.sim.faults`):

        * At one instant, completions are processed first, then node
          deaths, then job starts — a transfer finishing exactly when its
          endpoint dies still completes, while a job becoming ready at
          the death instant fails instead of starting.
        * A node death aborts every running job touching the dead node
          (its timing ends at the death and its resources free), refuses
          later starts there, and transitively skips everything depending
          on an aborted or failed job.
        * A lost transfer occupies its ports for its full duration, then
          delivers nothing and is requeued immediately; its dependents
          wait for the successful attempt.

        A plan whose faults never fire (e.g. deaths beyond the makespan)
        reproduces the fault-free schedule bit-for-bit — the scheduling
        decisions below mirror :meth:`run` exactly.
        """
        graph.validate()
        jobs = graph.jobs
        report = FaultReport()
        if not jobs:
            return SimResult(makespan=0.0, timings={}, events=[], faults=report)

        info, num_resources = self._job_table(jobs)
        if faults.stragglers:
            scaled: dict[str, tuple] = {}
            for jid, row in info.items():
                res, duration, cross, sk, ek, node, peer, nbytes = row
                factor = faults.straggler_factor(node)
                if peer >= 0:
                    factor = max(factor, faults.straggler_factor(peer))
                scaled[jid] = (
                    res, duration * factor, cross, sk, ek, node, peer, nbytes
                )
            info = scaled
        heappush, heappop, isclose = heapq.heappush, heapq.heappop, math.isclose

        order = {jid: i for i, jid in enumerate(jobs)}
        remaining_deps = {jid: set(job.deps) for jid, job in jobs.items()}
        dependents: dict[str, list[str]] = {jid: [] for jid in jobs}
        for jid, job in jobs.items():
            for dep in set(job.deps):
                dependents[dep].append(jid)

        busy = bytearray(num_resources)
        waiters: list[list[tuple[float, int, str]] | None] = [None] * num_resources
        token_waiters: list[tuple[float, int, str]] = []
        cross_inflight = 0
        cap = self.cross_capacity

        candidates: list[tuple[float, int, str]] = []
        for jid, deps in remaining_deps.items():
            if not deps:
                heappush(candidates, (0.0, order[jid], jid))

        running: list[tuple[float, int, str]] = []
        timings: dict[str, JobTiming] = {}
        events: list[TraceEvent] = []
        now = 0.0
        completed = 0
        total = len(jobs)
        terminal: set[str] = set()
        dead: dict[int, float] = {}
        attempts: dict[str, int] = {}
        skipped: list[str] = []
        pending_deaths = sorted((t, n) for n, t in faults.death_times().items())

        def abort_kind_of(end_kind: str) -> str:
            if end_kind == EventKind.TRANSFER_END:
                return EventKind.TRANSFER_ABORT
            return EventKind.COMPUTE_ABORT

        def touches(jid: str, node: int) -> bool:
            row = info[jid]
            return row[5] == node or row[6] == node

        def cascade_skip(root: str) -> None:
            nonlocal completed
            stack = list(dependents[root])
            while stack:
                child = stack.pop()
                if child in terminal:
                    continue
                terminal.add(child)
                skipped.append(child)
                completed += 1
                stack.extend(dependents[child])

        def fail_job(jid: str) -> None:
            # The job never starts: an endpoint is already dead.
            nonlocal completed
            _, _, cross, _, end_kind, node, peer, nbytes = info[jid]
            terminal.add(jid)
            report.failed[jid] = now
            events.append(
                TraceEvent(
                    time=now,
                    kind=abort_kind_of(end_kind),
                    job_id=jid,
                    node=node,
                    peer=peer,
                    cross_rack=cross,
                    nbytes=nbytes,
                )
            )
            completed += 1
            cascade_skip(jid)

        def process_deaths(upto: float) -> None:
            """Fire every pending death at time <= ``upto``."""
            nonlocal running, cross_inflight, completed, now
            while pending_deaths and (
                pending_deaths[0][0] <= upto
                or isclose(pending_deaths[0][0], upto, rel_tol=0, abs_tol=1e-12)
            ):
                dtime, node = pending_deaths.pop(0)
                dead[node] = dtime
                report.dead_nodes[node] = dtime
                now = max(now, dtime)
                events.append(
                    TraceEvent(
                        time=dtime,
                        kind=EventKind.NODE_DEATH,
                        job_id=f"fault:death:{node}",
                        node=node,
                    )
                )
                doomed = [e for e in running if touches(e[2], node)]
                if not doomed:
                    continue
                running = [e for e in running if not touches(e[2], node)]
                heapq.heapify(running)
                token_freed = False
                for _, _, jid in sorted(doomed, key=lambda e: e[1]):
                    res, duration, cross, _, end_kind, jnode, peer, nbytes = info[jid]
                    for r in res:
                        busy[r] = 0
                        woken = waiters[r]
                        if woken:
                            waiters[r] = None
                            for item in woken:
                                heappush(candidates, item)
                    if cross and cap is not None:
                        cross_inflight -= 1
                        token_freed = True
                    start = timings[jid].start
                    timings[jid] = JobTiming(job_id=jid, start=start, end=dtime)
                    if nbytes and duration > 0:
                        report.aborted_bytes += nbytes * min(
                            1.0, (dtime - start) / duration
                        )
                    terminal.add(jid)
                    report.aborted[jid] = dtime
                    events.append(
                        TraceEvent(
                            time=dtime,
                            kind=abort_kind_of(end_kind),
                            job_id=jid,
                            node=jnode,
                            peer=peer,
                            cross_rack=cross,
                            nbytes=nbytes,
                        )
                    )
                    completed += 1
                    cascade_skip(jid)
                if token_freed and token_waiters:
                    for item in token_waiters:
                        heappush(candidates, item)
                    token_waiters.clear()

        process_deaths(0.0)

        while completed < total:
            while candidates:
                item = heappop(candidates)
                jid = item[2]
                if jid in terminal:
                    continue
                res, duration, cross, start_kind, _, node, peer, nbytes = info[jid]
                if node in dead or (peer >= 0 and peer in dead):
                    fail_job(jid)
                    continue
                blocker = -1
                for r in res:
                    if busy[r]:
                        blocker = r
                        break
                if blocker >= 0:
                    parked = waiters[blocker]
                    if parked is None:
                        waiters[blocker] = [item]
                    else:
                        parked.append(item)
                    continue
                needs_token = cross and cap is not None
                if needs_token and cross_inflight >= cap:
                    token_waiters.append(item)
                    continue
                for r in res:
                    busy[r] = 1
                if needs_token:
                    cross_inflight += 1
                end = now + duration
                heappush(running, (end, item[1], jid))
                timings[jid] = JobTiming(job_id=jid, start=now, end=end)
                events.append(
                    TraceEvent(
                        time=now,
                        kind=start_kind,
                        job_id=jid,
                        node=node,
                        peer=peer,
                        cross_rack=cross,
                        nbytes=nbytes,
                    )
                )

            if completed >= total:
                break
            if not running:
                raise RuntimeError(
                    "deadlock: jobs pending but nothing running "
                    "(resource conflict cycle?)"
                )
            next_end = running[0][0]
            if pending_deaths and pending_deaths[0][0] < next_end and not isclose(
                pending_deaths[0][0], next_end, rel_tol=0, abs_tol=1e-12
            ):
                # The next event is a death, strictly before any completion.
                process_deaths(pending_deaths[0][0])
                continue
            end, _, first = heappop(running)
            batch = [first]
            while running and isclose(running[0][0], end, rel_tol=0, abs_tol=1e-12):
                batch.append(heappop(running)[2])
            now = end
            token_freed = False
            for done_id in batch:
                res, _, cross, _, end_kind, node, peer, nbytes = info[done_id]
                for r in res:
                    busy[r] = 0
                    woken = waiters[r]
                    if woken:
                        waiters[r] = None
                        for item in woken:
                            heappush(candidates, item)
                if cross and cap is not None:
                    cross_inflight -= 1
                    token_freed = True
                attempt = attempts.get(done_id, 0)
                if end_kind == EventKind.TRANSFER_END and faults.is_lost(
                    done_id, attempt
                ):
                    attempts[done_id] = attempt + 1
                    report.lost[done_id] = report.lost.get(done_id, 0) + 1
                    report.retried_bytes += nbytes
                    events.append(
                        TraceEvent(
                            time=now,
                            kind=EventKind.TRANSFER_LOST,
                            job_id=done_id,
                            node=node,
                            peer=peer,
                            cross_rack=cross,
                            nbytes=nbytes,
                        )
                    )
                    heappush(candidates, (now, order[done_id], done_id))
                    continue
                events.append(
                    TraceEvent(
                        time=now,
                        kind=end_kind,
                        job_id=done_id,
                        node=node,
                        peer=peer,
                        cross_rack=cross,
                        nbytes=nbytes,
                    )
                )
                terminal.add(done_id)
                completed += 1
                for child in dependents[done_id]:
                    deps_left = remaining_deps[child]
                    deps_left.discard(done_id)
                    if not deps_left:
                        heappush(candidates, (now, order[child], child))
            if token_freed and token_waiters:
                for item in token_waiters:
                    heappush(candidates, item)
                token_waiters.clear()
            # Deaths tied with this instant fire after the completions but
            # before the next start pass.
            process_deaths(now)

        report.skipped = tuple(skipped)
        events.sort(key=lambda e: (e.time, e.kind.endswith("start"), e.job_id))
        makespan = max((t.end for t in timings.values()), default=0.0)
        return SimResult(
            makespan=makespan,
            timings=timings,
            events=events,
            jobs=dict(jobs),
            faults=report,
        )
