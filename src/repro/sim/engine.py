"""Discrete-event execution of a job graph on a cluster.

The engine replaces the paper's Simics + wondershaper testbed.  Its
contract:

* **Dependencies** — a job may start only after all of its dependencies
  have finished.
* **Port exclusivity** — each node owns one upload port and one download
  port; a transfer holds the source's upload port and the destination's
  download port for its whole duration.  This is the mechanism behind
  every serialisation the paper discusses (the recovery node receiving
  ``n`` blocks one after another in §2.3; schedule 1's idle racks in
  Fig. 5).
* **CPU exclusivity** — each node runs one compute job at a time.
* **Greedy, non-preemptive, deterministic** — when a resource frees, the
  ready job with the smallest (ready-time, insertion-order) key starts.
  Planners that want a specific order encode it via dependencies.

Transfer durations are ``nbytes / rate(src, dst)`` with the rate supplied
by the bandwidth model; there is no flow sharing, matching the paper's
whole-transfer "timestep" accounting.

Scheduling is *resource-indexed and lazily woken*: a blocked job
registers as a waiter on one of the busy resources it needs (or on the
cross-rack token when the switch cap is the blocker), and a completion
only reconsiders waiters of the resources it actually freed — never the
whole pending set.  Waking a job through any one of its busy resources
is sufficient because a job can only become startable once *every*
resource it needs is free, so the registered one must free first; if the
woken job is still blocked it re-registers on whichever resource blocks
it now.

Wakeups are lazy: each resource keeps its waiters in a
(ready-time, insertion-order) heap and a freed resource promotes only
its *best* waiter into the candidate heap; when that candidate is
processed without taking the resource (it started on nothing — parked
elsewhere, was terminal, or token-blocked), the next-best waiter is
promoted in its place.  This is schedule-equivalent to waking every
waiter — candidates are still consumed in global (ready-time,
insertion-order) priority, and a waiter left parked behind a better one
that re-took the resource could not have started anyway — but turns the
wake cost per completion from O(waiters) into O(log waiters).  On
merged 100k-stripe rebuild graphs, where thousands of transfers contend
for the same recovery-node port, that is the difference between minutes
and seconds (the old wake-everything pass re-parked ~126 candidates per
job at 5k stripes already).

Job ids are interned to dense ints for the whole run: the hot loops
compare ``(ready, seq)`` int/float pairs and index flat lists, never
hash or compare job-id strings; per-job durations, resource tuples and
rack relations are precomputed once per run with per-endpoint-pair
caching.  Golden tests in ``tests/sim/test_engine_golden.py`` pin the
schedules bit-for-bit; see ``docs/PERFORMANCE.md`` for measurements.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

from ..cluster import BandwidthModel, Cluster
from .events import EventKind, TraceEvent
from .faults import FaultPlan, FaultReport
from .jobs import ComputeJob, JobGraph, TransferJob

__all__ = ["JobTiming", "SimResult", "SimulationEngine"]

_START_KINDS = frozenset({EventKind.TRANSFER_START, EventKind.COMPUTE_START})


def _event_sort_key(e: TraceEvent) -> tuple[float, bool, str]:
    """Chronological order, ends before starts at one instant, id tie-break."""
    return (e.time, e.kind in _START_KINDS, e.job_id)


@dataclass(frozen=True, slots=True)
class JobTiming:
    """Start/end instants of one executed job."""

    job_id: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class SimResult:
    """Outcome of one simulation run.

    Attributes
    ----------
    makespan:
        Finish time of the last job (the paper's *total repair time*).
    timings:
        Per-job start/end times.
    events:
        Chronological trace of starts and finishes.
    jobs:
        The executed job graph's jobs, kept so post-processors (critical
        path extraction in :mod:`repro.sim.tracing`) can follow declared
        dependency edges.  Empty for hand-built results.
    faults:
        :class:`~repro.sim.faults.FaultReport` describing what injected
        faults did to this run; ``None`` for fault-free runs.
    """

    makespan: float
    timings: dict[str, JobTiming]
    events: list[TraceEvent] = field(default_factory=list)
    jobs: dict[str, TransferJob | ComputeJob] = field(default_factory=dict)
    faults: FaultReport | None = None

    def transfers(self) -> list[TraceEvent]:
        """All transfer-end events (one per completed transfer)."""
        return [e for e in self.events if e.kind == EventKind.TRANSFER_END]

    def cross_rack_bytes(self) -> float:
        """Total bytes moved through the aggregation switch."""
        return sum(e.nbytes for e in self.transfers() if e.cross_rack)

    def intra_rack_bytes(self) -> float:
        """Total bytes moved below TOR switches."""
        return sum(e.nbytes for e in self.transfers() if not e.cross_rack)

    def to_dict(self) -> dict:
        """JSON-serializable dump of the run; inverse of :meth:`from_dict`."""
        jobs = []
        for job in self.jobs.values():
            if isinstance(job, TransferJob):
                jobs.append(
                    {
                        "kind": "transfer",
                        "job_id": job.job_id,
                        "src": job.src,
                        "dst": job.dst,
                        "nbytes": job.nbytes,
                        "deps": list(job.deps),
                        "tag": job.tag,
                    }
                )
            else:
                jobs.append(
                    {
                        "kind": "compute",
                        "job_id": job.job_id,
                        "node": job.node,
                        "seconds": job.seconds,
                        "deps": list(job.deps),
                        "tag": job.tag,
                    }
                )
        return {
            "makespan": self.makespan,
            "timings": [
                {"job_id": t.job_id, "start": t.start, "end": t.end}
                for t in self.timings.values()
            ],
            "events": [
                {
                    "time": e.time,
                    "kind": e.kind,
                    "job_id": e.job_id,
                    "node": e.node,
                    "peer": e.peer,
                    "cross_rack": e.cross_rack,
                    "nbytes": e.nbytes,
                }
                for e in self.events
            ],
            "jobs": jobs,
            "faults": self.faults.to_dict() if self.faults is not None else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimResult":
        jobs: dict[str, TransferJob | ComputeJob] = {}
        for spec in data.get("jobs", []):
            spec = dict(spec)
            kind = spec.pop("kind")
            spec["deps"] = tuple(spec.get("deps", ()))
            jobs[spec["job_id"]] = (
                TransferJob(**spec) if kind == "transfer" else ComputeJob(**spec)
            )
        return cls(
            makespan=data["makespan"],
            timings={
                t["job_id"]: JobTiming(**t) for t in data.get("timings", [])
            },
            events=[TraceEvent(**e) for e in data.get("events", [])],
            jobs=jobs,
            faults=(
                FaultReport.from_dict(data["faults"])
                if data.get("faults") is not None
                else None
            ),
        )


class SimulationEngine:
    """Event-driven executor binding a cluster to a bandwidth model.

    Parameters
    ----------
    cluster / bandwidth:
        Topology and link model.
    cross_capacity:
        Optional cap on *concurrent cluster-wide cross-rack transfers* —
        models a constrained aggregation switch.  The paper's model (and
        the default, ``None``) only limits per-node ports; the cap is a
        sensitivity knob: RPR's pipeline schedules several simultaneous
        cross-rack transfers, so a tight switch erodes exactly that
        parallelism.
    """

    def __init__(
        self,
        cluster: Cluster,
        bandwidth: BandwidthModel,
        cross_capacity: int | None = None,
    ) -> None:
        if cross_capacity is not None and cross_capacity < 1:
            raise ValueError("cross_capacity must be >= 1 (or None)")
        self.cluster = cluster
        self.bandwidth = bandwidth
        self.cross_capacity = cross_capacity

    # -- resource keys ---------------------------------------------------

    @staticmethod
    def _uplink(node: int) -> tuple[str, int]:
        return ("up", node)

    @staticmethod
    def _downlink(node: int) -> tuple[str, int]:
        return ("down", node)

    @staticmethod
    def _cpu(node: int) -> tuple[str, int]:
        return ("cpu", node)

    # -- precomputation ----------------------------------------------------

    def _job_table(self, jobs: dict[str, TransferJob | ComputeJob]):
        """Precompute per-job facts, caching per-endpoint-pair lookups.

        Merged multi-stripe graphs reuse a handful of (src, dst) pairs
        across hundreds of transfers, so ``bandwidth.rate`` / ``latency``
        and ``cluster.same_rack`` are resolved once per pair instead of
        once per scheduling decision.  The lookups double as the fail-fast
        validation of unknown nodes / missing bandwidth entries.

        Returns ``(table, num_resources)`` where ``table[seq]`` — jobs
        interned to dense ints in insertion order — is ``(resource_ids,
        duration, cross, start_kind, end_kind, node, peer, nbytes)`` and
        resource ids are dense ints (ports and CPUs interned per run) so
        the scheduler's busy/waiter bookkeeping runs on flat lists
        instead of hashed strings or tuples.
        """
        pair_cache: dict[tuple[int, int], tuple[float, float, bool]] = {}
        resource_ids: dict[tuple[str, int], int] = {}

        def rid(key: tuple[str, int]) -> int:
            found = resource_ids.get(key)
            if found is None:
                found = resource_ids[key] = len(resource_ids)
            return found

        table: list[tuple] = []
        for job in jobs.values():
            if isinstance(job, TransferJob):
                pair = (job.src, job.dst)
                cached = pair_cache.get(pair)
                if cached is None:
                    cached = (
                        self.bandwidth.rate(self.cluster, job.src, job.dst),
                        self.bandwidth.latency(self.cluster, job.src, job.dst),
                        self.cluster.same_rack(job.src, job.dst),
                    )
                    pair_cache[pair] = cached
                rate, latency, same_rack = cached
                table.append(
                    (
                        (rid(self._uplink(job.src)), rid(self._downlink(job.dst))),
                        latency + job.nbytes / rate,
                        not same_rack,
                        EventKind.TRANSFER_START,
                        EventKind.TRANSFER_END,
                        job.src,
                        job.dst,
                        job.nbytes,
                    )
                )
            else:
                self.cluster.node(job.node)
                table.append(
                    (
                        (rid(self._cpu(job.node)),),
                        job.seconds,
                        False,
                        EventKind.COMPUTE_START,
                        EventKind.COMPUTE_END,
                        job.node,
                        -1,
                        0.0,
                    )
                )
        return table, len(resource_ids)

    # -- execution ---------------------------------------------------------

    def run(self, graph: JobGraph, faults: FaultPlan | None = None) -> SimResult:
        """Execute ``graph`` to completion and return timings and trace.

        With a truthy ``faults`` plan the run goes through
        :meth:`_run_faulted`, which injects node deaths, straggler
        slowdowns and transfer losses deterministically and attaches a
        :class:`~repro.sim.faults.FaultReport` to the result.  An empty
        (or ``None``) plan takes this fault-free path, whose schedule is
        bit-for-bit unchanged.
        """
        if faults:
            return self._run_faulted(graph, faults)
        graph.validate()
        jobs = graph.jobs
        if not jobs:
            return SimResult(makespan=0.0, timings={}, events=[])

        info, num_resources = self._job_table(jobs)
        heappush, heappop, isclose = heapq.heappush, heapq.heappop, math.isclose

        # Jobs interned to dense seqs in insertion order: heap items are
        # (ready_time, seq) pairs — seq doubles as the insertion-order
        # tie-break — and every per-job fact is a flat-list index.
        jids = list(jobs)
        total = len(jids)
        seq_of = {jid: i for i, jid in enumerate(jids)}
        remaining = [0] * total
        dependents: list[list[int]] = [[] for _ in range(total)]
        for seq, job in enumerate(jobs.values()):
            deps = set(job.deps)
            remaining[seq] = len(deps)
            for dep in deps:
                dependents[seq_of[dep]].append(seq)

        busy = bytearray(num_resources)
        # Blocked jobs are parked in a heap per *resource signature* — the
        # full tuple of resource ids the job needs — rather than per single
        # blocking resource.  A signature's waiters are only looked at when
        # every resource in the signature is free, so a transfer stuck
        # behind a long-busy peer port is never re-examined (the per-single-
        # resource scheme bounced such jobs between the two port heaps at
        # every instant, which went quadratic on merged 100k-stripe graphs).
        # The number of distinct signatures touching a resource is bounded
        # by the cluster shape (one per peer node plus the local CPU), not
        # by queue depth, so each free event costs O(cluster), not O(jobs).
        groups: dict[tuple[int, ...], list[tuple[float, int]]] = {}
        # Resource id -> (waiter heap, signature) pairs for signatures
        # containing it (registered at first park; empty heaps are skipped,
        # never unregistered).  Heap references are stored directly so the
        # promote scan never touches the dict.
        res_groups: list[list[tuple[list, tuple[int, ...]]]] = [
            [] for _ in range(num_resources)
        ]
        # from_res[seq]: the resource whose free event promoted this
        # candidate (-1 if it became a candidate by dependency readiness).
        from_res = [-1] * total
        # Jobs blocked solely on the cross-rack switch token.
        token_waiters: list[tuple[float, int]] = []
        cross_inflight = 0
        cap = self.cross_capacity

        # Candidate heap: jobs to (re)consider at the current instant, in
        # deterministic (ready-time, insertion-order) priority.  A job's key
        # is fixed when its last dependency finishes and never changes, so
        # the greedy tie-break matches the original full-rescan scheduler.
        candidates: list[tuple[float, int]] = []
        for seq in range(total):
            if not remaining[seq]:
                heappush(candidates, (0.0, seq))

        def park(item: tuple[float, int], key: tuple[int, ...]) -> None:
            parked = groups.get(key)
            if parked is None:
                parked = [item]
                groups[key] = parked
                entry = (parked, key)
                for r in key:
                    res_groups[r].append(entry)
            else:
                heappush(parked, item)

        def promote(r: int) -> None:
            # Move the best *startable* waiter needing (just-freed) resource
            # r into the candidate heap: the minimum (ready, seq) among the
            # tops of r's signature heaps whose resources are all free.  At
            # most one candidate per free event is in flight: the next-best
            # is promoted only after this one is consumed without re-taking
            # r.  Waiters whose signature still has a busy resource stay
            # parked untouched — they could not have started, and the free
            # event of that busy resource will reconsider them.
            best_item = None
            best_heap = None
            for parked, key in res_groups[r]:
                if not parked:
                    continue
                top = parked[0]
                if best_item is not None and best_item <= top:
                    continue
                for x in key:
                    if busy[x]:
                        break
                else:
                    best_item = top
                    best_heap = parked
            if best_heap is not None:
                item = heappop(best_heap)
                from_res[item[1]] = r
                heappush(candidates, item)

        running: list[tuple[float, int]] = []  # (end, seq)
        timings: dict[str, JobTiming] = {}
        events: list[TraceEvent] = []
        now = 0.0
        finished = 0

        while finished < total:
            # Start every candidate whose resources are free; park the rest
            # on the resource (or token) that blocks them.  Starting a job
            # frees nothing, so a single pass over the candidates suffices.
            while candidates:
                item = heappop(candidates)
                seq = item[1]
                src = from_res[seq]
                if src >= 0:
                    from_res[seq] = -1
                res, duration, cross, start_kind, _, node, peer, nbytes = info[seq]
                blocked = False
                for r in res:
                    if busy[r]:
                        blocked = True
                        break
                if blocked:
                    park(item, res)
                    if src >= 0 and not busy[src]:
                        promote(src)
                    continue
                needs_token = cross and cap is not None
                if needs_token and cross_inflight >= cap:
                    token_waiters.append(item)
                    if src >= 0 and not busy[src]:
                        promote(src)
                    continue
                # Starting takes every resource in res — src among them —
                # so the waiters left parked on src stay correctly parked.
                for r in res:
                    busy[r] = 1
                if needs_token:
                    cross_inflight += 1
                end = now + duration
                heappush(running, (end, seq))
                jid = jids[seq]
                timings[jid] = JobTiming(job_id=jid, start=now, end=end)
                events.append(
                    TraceEvent(
                        time=now,
                        kind=start_kind,
                        job_id=jid,
                        node=node,
                        peer=peer,
                        cross_rack=cross,
                        nbytes=nbytes,
                    )
                )

            if not running:
                raise RuntimeError(
                    "deadlock: jobs pending but nothing running "
                    "(resource conflict cycle?)"
                )
            # Advance to the next completion.
            end, seq = heappop(running)
            batch = [seq]
            # Complete everything ending at the same instant for determinism.
            while running and isclose(running[0][0], end, rel_tol=0, abs_tol=1e-12):
                batch.append(heappop(running)[1])
            now = end
            token_freed = False
            for done_seq in batch:
                res, _, cross, _, end_kind, node, peer, nbytes = info[done_seq]
                for r in res:
                    busy[r] = 0
                    promote(r)
                if cross and cap is not None:
                    cross_inflight -= 1
                    token_freed = True
                events.append(
                    TraceEvent(
                        time=now,
                        kind=end_kind,
                        job_id=jids[done_seq],
                        node=node,
                        peer=peer,
                        cross_rack=cross,
                        nbytes=nbytes,
                    )
                )
                finished += 1
                for child in dependents[done_seq]:
                    left = remaining[child] - 1
                    remaining[child] = left
                    if not left:
                        heappush(candidates, (now, child))
            if token_freed and token_waiters:
                for item in token_waiters:
                    heappush(candidates, item)
                token_waiters = []

        events.sort(key=_event_sort_key)
        makespan = max(t.end for t in timings.values())
        return SimResult(
            makespan=makespan, timings=timings, events=events, jobs=dict(jobs)
        )

    def _run_faulted(self, graph: JobGraph, faults: FaultPlan) -> SimResult:
        """Execute ``graph`` under an injected :class:`FaultPlan`.

        Semantics (all deterministic; see :mod:`repro.sim.faults`):

        * At one instant, completions are processed first, then node
          deaths, then job starts — a transfer finishing exactly when its
          endpoint dies still completes, while a job becoming ready at
          the death instant fails instead of starting.
        * A node death aborts every running job touching the dead node
          (its timing ends at the death and its resources free), refuses
          later starts there, and transitively skips everything depending
          on an aborted or failed job.
        * A lost transfer occupies its ports for its full duration, then
          delivers nothing and is requeued immediately; its dependents
          wait for the successful attempt.

        A plan whose faults never fire (e.g. deaths beyond the makespan)
        reproduces the fault-free schedule bit-for-bit — the scheduling
        decisions below mirror :meth:`run` exactly.
        """
        graph.validate()
        jobs = graph.jobs
        report = FaultReport()
        if not jobs:
            return SimResult(makespan=0.0, timings={}, events=[], faults=report)

        info, num_resources = self._job_table(jobs)
        jids = list(jobs)
        total = len(jids)
        seq_of = {jid: i for i, jid in enumerate(jids)}
        if faults.stragglers:
            scaled: list[tuple] = []
            for row in info:
                res, duration, cross, sk, ek, node, peer, nbytes = row
                factor = faults.straggler_factor(node)
                if peer >= 0:
                    factor = max(factor, faults.straggler_factor(peer))
                scaled.append(
                    (res, duration * factor, cross, sk, ek, node, peer, nbytes)
                )
            info = scaled
        heappush, heappop, isclose = heapq.heappush, heapq.heappop, math.isclose

        remaining = [0] * total
        dependents: list[list[int]] = [[] for _ in range(total)]
        for seq, job in enumerate(jobs.values()):
            deps = set(job.deps)
            remaining[seq] = len(deps)
            for dep in deps:
                dependents[seq_of[dep]].append(seq)

        busy = bytearray(num_resources)
        waiters: list[list[tuple[float, int]] | None] = [None] * num_resources
        from_res = [-1] * total
        token_waiters: list[tuple[float, int]] = []
        cross_inflight = 0
        cap = self.cross_capacity

        candidates: list[tuple[float, int]] = []
        for seq in range(total):
            if not remaining[seq]:
                heappush(candidates, (0.0, seq))

        def promote(r: int) -> None:
            parked = waiters[r]
            if parked:
                item = heappop(parked)
                from_res[item[1]] = r
                heappush(candidates, item)

        running: list[tuple[float, int]] = []
        timings: dict[str, JobTiming] = {}
        events: list[TraceEvent] = []
        now = 0.0
        completed = 0
        terminal = bytearray(total)
        dead: dict[int, float] = {}
        attempts: dict[int, int] = {}
        skipped: list[str] = []
        pending_deaths = sorted((t, n) for n, t in faults.death_times().items())

        def abort_kind_of(end_kind: str) -> str:
            if end_kind == EventKind.TRANSFER_END:
                return EventKind.TRANSFER_ABORT
            return EventKind.COMPUTE_ABORT

        def touches(seq: int, node: int) -> bool:
            row = info[seq]
            return row[5] == node or row[6] == node

        def cascade_skip(root: int) -> None:
            nonlocal completed
            stack = list(dependents[root])
            while stack:
                child = stack.pop()
                if terminal[child]:
                    continue
                terminal[child] = 1
                skipped.append(jids[child])
                completed += 1
                stack.extend(dependents[child])

        def fail_job(seq: int) -> None:
            # The job never starts: an endpoint is already dead.
            nonlocal completed
            _, _, cross, _, end_kind, node, peer, nbytes = info[seq]
            terminal[seq] = 1
            jid = jids[seq]
            report.failed[jid] = now
            events.append(
                TraceEvent(
                    time=now,
                    kind=abort_kind_of(end_kind),
                    job_id=jid,
                    node=node,
                    peer=peer,
                    cross_rack=cross,
                    nbytes=nbytes,
                )
            )
            completed += 1
            cascade_skip(seq)

        def process_deaths(upto: float) -> None:
            """Fire every pending death at time <= ``upto``."""
            nonlocal running, cross_inflight, completed, now
            while pending_deaths and (
                pending_deaths[0][0] <= upto
                or isclose(pending_deaths[0][0], upto, rel_tol=0, abs_tol=1e-12)
            ):
                dtime, node = pending_deaths.pop(0)
                dead[node] = dtime
                report.dead_nodes[node] = dtime
                now = max(now, dtime)
                events.append(
                    TraceEvent(
                        time=dtime,
                        kind=EventKind.NODE_DEATH,
                        job_id=f"fault:death:{node}",
                        node=node,
                    )
                )
                doomed = [e for e in running if touches(e[1], node)]
                if not doomed:
                    continue
                running = [e for e in running if not touches(e[1], node)]
                heapq.heapify(running)
                token_freed = False
                for _, seq in sorted(doomed, key=lambda e: e[1]):
                    res, duration, cross, _, end_kind, jnode, peer, nbytes = info[seq]
                    for r in res:
                        busy[r] = 0
                        promote(r)
                    if cross and cap is not None:
                        cross_inflight -= 1
                        token_freed = True
                    jid = jids[seq]
                    start = timings[jid].start
                    timings[jid] = JobTiming(job_id=jid, start=start, end=dtime)
                    if nbytes and duration > 0:
                        report.aborted_bytes += nbytes * min(
                            1.0, (dtime - start) / duration
                        )
                    terminal[seq] = 1
                    report.aborted[jid] = dtime
                    events.append(
                        TraceEvent(
                            time=dtime,
                            kind=abort_kind_of(end_kind),
                            job_id=jid,
                            node=jnode,
                            peer=peer,
                            cross_rack=cross,
                            nbytes=nbytes,
                        )
                    )
                    completed += 1
                    cascade_skip(seq)
                if token_freed and token_waiters:
                    for item in token_waiters:
                        heappush(candidates, item)
                    token_waiters.clear()

        process_deaths(0.0)

        while completed < total:
            while candidates:
                item = heappop(candidates)
                seq = item[1]
                src = from_res[seq]
                if src >= 0:
                    from_res[seq] = -1
                if terminal[seq]:
                    if src >= 0 and not busy[src]:
                        promote(src)
                    continue
                res, duration, cross, start_kind, _, node, peer, nbytes = info[seq]
                if node in dead or (peer >= 0 and peer in dead):
                    fail_job(seq)
                    if src >= 0 and not busy[src]:
                        promote(src)
                    continue
                blocker = -1
                for r in res:
                    if busy[r]:
                        blocker = r
                        break
                if blocker >= 0:
                    parked = waiters[blocker]
                    if parked is None:
                        waiters[blocker] = [item]
                    else:
                        heappush(parked, item)
                    if src >= 0 and not busy[src]:
                        promote(src)
                    continue
                needs_token = cross and cap is not None
                if needs_token and cross_inflight >= cap:
                    token_waiters.append(item)
                    if src >= 0 and not busy[src]:
                        promote(src)
                    continue
                for r in res:
                    busy[r] = 1
                if needs_token:
                    cross_inflight += 1
                end = now + duration
                heappush(running, (end, seq))
                jid = jids[seq]
                timings[jid] = JobTiming(job_id=jid, start=now, end=end)
                events.append(
                    TraceEvent(
                        time=now,
                        kind=start_kind,
                        job_id=jid,
                        node=node,
                        peer=peer,
                        cross_rack=cross,
                        nbytes=nbytes,
                    )
                )

            if completed >= total:
                break
            if not running:
                raise RuntimeError(
                    "deadlock: jobs pending but nothing running "
                    "(resource conflict cycle?)"
                )
            next_end = running[0][0]
            if pending_deaths and pending_deaths[0][0] < next_end and not isclose(
                pending_deaths[0][0], next_end, rel_tol=0, abs_tol=1e-12
            ):
                # The next event is a death, strictly before any completion.
                process_deaths(pending_deaths[0][0])
                continue
            end, first = heappop(running)
            batch = [first]
            while running and isclose(running[0][0], end, rel_tol=0, abs_tol=1e-12):
                batch.append(heappop(running)[1])
            now = end
            token_freed = False
            for done_seq in batch:
                res, _, cross, _, end_kind, node, peer, nbytes = info[done_seq]
                for r in res:
                    busy[r] = 0
                    promote(r)
                if cross and cap is not None:
                    cross_inflight -= 1
                    token_freed = True
                done_id = jids[done_seq]
                attempt = attempts.get(done_seq, 0)
                if end_kind == EventKind.TRANSFER_END and faults.is_lost(
                    done_id, attempt
                ):
                    attempts[done_seq] = attempt + 1
                    report.lost[done_id] = report.lost.get(done_id, 0) + 1
                    report.retried_bytes += nbytes
                    events.append(
                        TraceEvent(
                            time=now,
                            kind=EventKind.TRANSFER_LOST,
                            job_id=done_id,
                            node=node,
                            peer=peer,
                            cross_rack=cross,
                            nbytes=nbytes,
                        )
                    )
                    heappush(candidates, (now, done_seq))
                    continue
                events.append(
                    TraceEvent(
                        time=now,
                        kind=end_kind,
                        job_id=done_id,
                        node=node,
                        peer=peer,
                        cross_rack=cross,
                        nbytes=nbytes,
                    )
                )
                terminal[done_seq] = 1
                completed += 1
                for child in dependents[done_seq]:
                    left = remaining[child] - 1
                    remaining[child] = left
                    if not left:
                        heappush(candidates, (now, child))
            if token_freed and token_waiters:
                for item in token_waiters:
                    heappush(candidates, item)
                token_waiters.clear()
            # Deaths tied with this instant fire after the completions but
            # before the next start pass.
            process_deaths(now)

        report.skipped = tuple(skipped)
        events.sort(key=_event_sort_key)
        makespan = max((t.end for t in timings.values()), default=0.0)
        return SimResult(
            makespan=makespan,
            timings=timings,
            events=events,
            jobs=dict(jobs),
            faults=report,
        )
