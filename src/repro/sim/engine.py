"""Discrete-event execution of a job graph on a cluster.

The engine replaces the paper's Simics + wondershaper testbed.  Its
contract:

* **Dependencies** — a job may start only after all of its dependencies
  have finished.
* **Port exclusivity** — each node owns one upload port and one download
  port; a transfer holds the source's upload port and the destination's
  download port for its whole duration.  This is the mechanism behind
  every serialisation the paper discusses (the recovery node receiving
  ``n`` blocks one after another in §2.3; schedule 1's idle racks in
  Fig. 5).
* **CPU exclusivity** — each node runs one compute job at a time.
* **Greedy, non-preemptive, deterministic** — when a resource frees, the
  ready job with the smallest (ready-time, insertion-order) key starts.
  Planners that want a specific order encode it via dependencies.

Transfer durations are ``nbytes / rate(src, dst)`` with the rate supplied
by the bandwidth model; there is no flow sharing, matching the paper's
whole-transfer "timestep" accounting.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

from ..cluster import BandwidthModel, Cluster
from .events import EventKind, TraceEvent
from .jobs import ComputeJob, JobGraph, TransferJob

__all__ = ["JobTiming", "SimResult", "SimulationEngine"]


@dataclass(frozen=True)
class JobTiming:
    """Start/end instants of one executed job."""

    job_id: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class SimResult:
    """Outcome of one simulation run.

    Attributes
    ----------
    makespan:
        Finish time of the last job (the paper's *total repair time*).
    timings:
        Per-job start/end times.
    events:
        Chronological trace of starts and finishes.
    jobs:
        The executed job graph's jobs, kept so post-processors (critical
        path extraction in :mod:`repro.sim.tracing`) can follow declared
        dependency edges.  Empty for hand-built results.
    """

    makespan: float
    timings: dict[str, JobTiming]
    events: list[TraceEvent] = field(default_factory=list)
    jobs: dict[str, TransferJob | ComputeJob] = field(default_factory=dict)

    def transfers(self) -> list[TraceEvent]:
        """All transfer-end events (one per completed transfer)."""
        return [e for e in self.events if e.kind == EventKind.TRANSFER_END]

    def cross_rack_bytes(self) -> float:
        """Total bytes moved through the aggregation switch."""
        return sum(e.nbytes for e in self.transfers() if e.cross_rack)

    def intra_rack_bytes(self) -> float:
        """Total bytes moved below TOR switches."""
        return sum(e.nbytes for e in self.transfers() if not e.cross_rack)

    def to_dict(self) -> dict:
        """JSON-serializable dump of the run; inverse of :meth:`from_dict`."""
        jobs = []
        for job in self.jobs.values():
            if isinstance(job, TransferJob):
                jobs.append(
                    {
                        "kind": "transfer",
                        "job_id": job.job_id,
                        "src": job.src,
                        "dst": job.dst,
                        "nbytes": job.nbytes,
                        "deps": list(job.deps),
                        "tag": job.tag,
                    }
                )
            else:
                jobs.append(
                    {
                        "kind": "compute",
                        "job_id": job.job_id,
                        "node": job.node,
                        "seconds": job.seconds,
                        "deps": list(job.deps),
                        "tag": job.tag,
                    }
                )
        return {
            "makespan": self.makespan,
            "timings": [
                {"job_id": t.job_id, "start": t.start, "end": t.end}
                for t in self.timings.values()
            ],
            "events": [
                {
                    "time": e.time,
                    "kind": e.kind,
                    "job_id": e.job_id,
                    "node": e.node,
                    "peer": e.peer,
                    "cross_rack": e.cross_rack,
                    "nbytes": e.nbytes,
                }
                for e in self.events
            ],
            "jobs": jobs,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimResult":
        jobs: dict[str, TransferJob | ComputeJob] = {}
        for spec in data.get("jobs", []):
            spec = dict(spec)
            kind = spec.pop("kind")
            spec["deps"] = tuple(spec.get("deps", ()))
            jobs[spec["job_id"]] = (
                TransferJob(**spec) if kind == "transfer" else ComputeJob(**spec)
            )
        return cls(
            makespan=data["makespan"],
            timings={
                t["job_id"]: JobTiming(**t) for t in data.get("timings", [])
            },
            events=[TraceEvent(**e) for e in data.get("events", [])],
            jobs=jobs,
        )


class SimulationEngine:
    """Event-driven executor binding a cluster to a bandwidth model.

    Parameters
    ----------
    cluster / bandwidth:
        Topology and link model.
    cross_capacity:
        Optional cap on *concurrent cluster-wide cross-rack transfers* —
        models a constrained aggregation switch.  The paper's model (and
        the default, ``None``) only limits per-node ports; the cap is a
        sensitivity knob: RPR's pipeline schedules several simultaneous
        cross-rack transfers, so a tight switch erodes exactly that
        parallelism.
    """

    def __init__(
        self,
        cluster: Cluster,
        bandwidth: BandwidthModel,
        cross_capacity: int | None = None,
    ) -> None:
        if cross_capacity is not None and cross_capacity < 1:
            raise ValueError("cross_capacity must be >= 1 (or None)")
        self.cluster = cluster
        self.bandwidth = bandwidth
        self.cross_capacity = cross_capacity

    # -- resource keys ---------------------------------------------------

    @staticmethod
    def _uplink(node: int) -> tuple[str, int]:
        return ("up", node)

    @staticmethod
    def _downlink(node: int) -> tuple[str, int]:
        return ("down", node)

    @staticmethod
    def _cpu(node: int) -> tuple[str, int]:
        return ("cpu", node)

    def _resources_of(self, job) -> tuple[tuple[str, int], ...]:
        if isinstance(job, TransferJob):
            return (self._uplink(job.src), self._downlink(job.dst))
        return (self._cpu(job.node),)

    def _duration_of(self, job) -> float:
        if isinstance(job, TransferJob):
            return self.bandwidth.latency(
                self.cluster, job.src, job.dst
            ) + job.nbytes / self.bandwidth.rate(self.cluster, job.src, job.dst)
        return job.seconds

    # -- execution ---------------------------------------------------------

    def run(self, graph: JobGraph) -> SimResult:
        """Execute ``graph`` to completion and return timings and trace."""
        graph.validate()
        jobs = graph.jobs
        if not jobs:
            return SimResult(makespan=0.0, timings={}, events=[])

        for job in jobs.values():
            if isinstance(job, TransferJob):
                # Fail fast on unknown nodes / missing bandwidth entries.
                self.bandwidth.rate(self.cluster, job.src, job.dst)
            else:
                self.cluster.node(job.node)

        order = {jid: i for i, jid in enumerate(jobs)}
        remaining_deps = {jid: set(job.deps) for jid, job in jobs.items()}
        dependents: dict[str, list[str]] = {jid: [] for jid in jobs}
        for jid, job in jobs.items():
            for dep in set(job.deps):
                dependents[dep].append(jid)

        busy: set[tuple[str, int]] = set()
        cross_inflight = 0

        def is_cross(job) -> bool:
            return isinstance(job, TransferJob) and not self.cluster.same_rack(
                job.src, job.dst
            )
        # Ready jobs keyed for deterministic greedy pick.
        ready: list[tuple[float, int, str]] = []
        for jid, deps in remaining_deps.items():
            if not deps:
                heapq.heappush(ready, (0.0, order[jid], jid))

        running: list[tuple[float, int, str]] = []  # (end, order, jid)
        waiting_resources: list[tuple[float, int, str]] = []
        timings: dict[str, JobTiming] = {}
        events: list[TraceEvent] = []
        now = 0.0
        finished = 0

        def try_start(queue):
            """Start every queued job whose resources are free; requeue rest."""
            still_blocked = []
            started_any = False
            # Pop in deterministic priority order.
            items = []
            while queue:
                items.append(heapq.heappop(queue))
            nonlocal cross_inflight
            for ready_time, seq, jid in items:
                job = jobs[jid]
                res = self._resources_of(job)
                needs_token = is_cross(job) and self.cross_capacity is not None
                if any(r in busy for r in res) or (
                    needs_token and cross_inflight >= self.cross_capacity
                ):
                    still_blocked.append((ready_time, seq, jid))
                    continue
                busy.update(res)
                if needs_token:
                    cross_inflight += 1
                end = now + self._duration_of(job)
                heapq.heappush(running, (end, seq, jid))
                timings[jid] = JobTiming(job_id=jid, start=now, end=end)
                events.append(self._event(job, now, start=True))
                started_any = True
            for item in still_blocked:
                heapq.heappush(queue, item)
            return started_any

        # Merge ready and resource-blocked queues into one: a job enters the
        # queue when its deps are done; it starts when its resources free.
        pending = ready

        while finished < len(jobs):
            # Start whatever can start now.  Starting one job can free no
            # resources, so a single pass suffices.
            try_start(pending)
            if not running:
                raise RuntimeError(
                    "deadlock: jobs pending but nothing running "
                    "(resource conflict cycle?)"
                )
            # Advance to the next completion.
            end, _, jid = heapq.heappop(running)
            batch = [jid]
            # Complete everything ending at the same instant for determinism.
            while running and math.isclose(running[0][0], end, rel_tol=0, abs_tol=1e-12):
                batch.append(heapq.heappop(running)[2])
            now = end
            for done_id in batch:
                job = jobs[done_id]
                busy.difference_update(self._resources_of(job))
                if is_cross(job) and self.cross_capacity is not None:
                    cross_inflight -= 1
                events.append(self._event(job, now, start=False))
                finished += 1
                for child in dependents[done_id]:
                    remaining_deps[child].discard(done_id)
                    if not remaining_deps[child]:
                        heapq.heappush(pending, (now, order[child], child))

        events.sort(key=lambda e: (e.time, e.kind.endswith("start"), e.job_id))
        makespan = max(t.end for t in timings.values())
        return SimResult(
            makespan=makespan, timings=timings, events=events, jobs=dict(jobs)
        )

    def _event(self, job, time: float, start: bool) -> TraceEvent:
        if isinstance(job, TransferJob):
            return TraceEvent(
                time=time,
                kind=EventKind.TRANSFER_START if start else EventKind.TRANSFER_END,
                job_id=job.job_id,
                node=job.src,
                peer=job.dst,
                cross_rack=not self.cluster.same_rack(job.src, job.dst),
                nbytes=job.nbytes,
            )
        return TraceEvent(
            time=time,
            kind=EventKind.COMPUTE_START if start else EventKind.COMPUTE_END,
            job_id=job.job_id,
            node=job.node,
        )
