"""Trace records emitted by the simulation engine.

Every job start/finish produces one :class:`TraceEvent`; the ordered trace
is the simulator's audit log, consumed by the metrics layer (traffic and
load-balance accounting) and by tests that assert serialisation behaviour
(e.g. that a node's download port never runs two transfers at once).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TraceEvent", "EventKind"]


class EventKind:
    """Symbolic names for trace event kinds."""

    TRANSFER_START = "transfer_start"
    TRANSFER_END = "transfer_end"
    COMPUTE_START = "compute_start"
    COMPUTE_END = "compute_end"


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped scheduling event.

    Attributes
    ----------
    time:
        Simulation time in seconds.
    kind:
        One of the :class:`EventKind` constants.
    job_id:
        Id of the job the event belongs to.
    node:
        For compute events, the executing node; for transfer events, the
        source node (``peer`` holds the destination).
    peer:
        Destination node for transfer events, ``-1`` otherwise.
    cross_rack:
        For transfer events, whether the stream crossed the aggregation
        switch; False for compute events.
    nbytes:
        Transferred bytes for transfer events, ``0.0`` for compute events.
    """

    time: float
    kind: str
    job_id: str
    node: int
    peer: int = -1
    cross_rack: bool = False
    nbytes: float = 0.0
