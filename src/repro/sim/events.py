"""Trace records emitted by the simulation engine.

Every job start/finish produces one :class:`TraceEvent`; the ordered trace
is the simulator's audit log, consumed by the metrics layer (traffic and
load-balance accounting) and by tests that assert serialisation behaviour
(e.g. that a node's download port never runs two transfers at once).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TraceEvent", "EventKind"]


class EventKind:
    """Symbolic names for trace event kinds.

    The four ``*_start``/``*_end`` kinds cover every fault-free run.  The
    remaining kinds appear only under fault injection
    (:mod:`repro.sim.faults`): ``NODE_DEATH`` marks the instant a node
    fails, ``TRANSFER_ABORT``/``COMPUTE_ABORT`` replace the end event of
    a job killed mid-flight (or refused at start) by a node death, and
    ``TRANSFER_LOST`` replaces ``TRANSFER_END`` for an attempt that
    finished on the wire but delivered nothing and was requeued.
    """

    TRANSFER_START = "transfer_start"
    TRANSFER_END = "transfer_end"
    COMPUTE_START = "compute_start"
    COMPUTE_END = "compute_end"
    NODE_DEATH = "node_death"
    TRANSFER_ABORT = "transfer_abort"
    COMPUTE_ABORT = "compute_abort"
    TRANSFER_LOST = "transfer_lost"


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One timestamped scheduling event.

    Attributes
    ----------
    time:
        Simulation time in seconds.
    kind:
        One of the :class:`EventKind` constants.
    job_id:
        Id of the job the event belongs to.
    node:
        For compute events, the executing node; for transfer events, the
        source node (``peer`` holds the destination).
    peer:
        Destination node for transfer events, ``-1`` otherwise.
    cross_rack:
        For transfer events, whether the stream crossed the aggregation
        switch; False for compute events.
    nbytes:
        Transferred bytes for transfer events, ``0.0`` for compute events.
    """

    time: float
    kind: str
    job_id: str
    node: int
    peer: int = -1
    cross_rack: bool = False
    nbytes: float = 0.0
