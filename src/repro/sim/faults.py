"""Deterministic fault injection for the discrete-event engine.

The paper's evaluation assumes every helper survives the whole repair.
Real clusters do not cooperate: helpers die mid-gather, slow nodes drag
a pipelined round, and transfers are lost to flaky links.  This module
describes such faults as *data* — a :class:`FaultPlan` — so the engine
can apply them deterministically:

* :class:`NodeDeath` — at simulation time ``t`` a node drops dead.  Jobs
  running on the node (either transfer endpoint, or the CPU) are aborted
  at ``t``; jobs that would start on it afterwards fail instead of
  starting, and everything depending on a failed job is skipped.
* :class:`Straggler` — a node's ports and CPU run ``factor``-times slower
  for the whole run (a degraded disk/NIC).  Transfers touching the node
  stretch by the worse endpoint's factor.
* :class:`TransferLoss` — the first ``attempts`` tries of one named
  transfer complete on the wire but deliver nothing (checksum failure /
  dropped stream); the engine immediately requeues the transfer, so the
  retry contends for ports again and the lost bytes are accounted as
  retried work.  A seeded ``loss_probability`` draws further losses
  deterministically per ``(seed, job, attempt)`` — independent of
  scheduling order, so the same plan always loses the same transfers.

Determinism contract: the same :class:`FaultPlan` against the same job
graph produces a bit-identical schedule (golden-pinned in
``tests/sim/test_faults_golden.py``), and a plan whose faults never fire
reproduces the fault-free schedule exactly.

The engine reports what happened in a :class:`FaultReport` attached to
its :class:`~repro.sim.engine.SimResult`; the degraded-repair layer
(:mod:`repro.repair.faults`) consumes it to re-plan around the damage.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field, replace

__all__ = [
    "FaultPlan",
    "FaultReport",
    "NodeDeath",
    "Straggler",
    "TransferLoss",
    "random_fault_plan",
]


@dataclass(frozen=True)
class NodeDeath:
    """Node ``node`` fails permanently at simulation time ``time``."""

    node: int
    time: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"death time must be >= 0, got {self.time}")


@dataclass(frozen=True)
class Straggler:
    """Node ``node`` runs ``factor`` times slower than healthy peers."""

    node: int
    factor: float

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ValueError(f"straggler factor must be > 0, got {self.factor}")


@dataclass(frozen=True)
class TransferLoss:
    """The first ``attempts`` tries of transfer ``job_id`` are lost."""

    job_id: str
    attempts: int = 1

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")


def _hash_fraction(seed: int, job_id: str, attempt: int) -> float:
    """Deterministic uniform draw in [0, 1) for one transfer attempt.

    Hash-based (not stream-based) so the draw depends only on the
    (seed, job, attempt) identity, never on scheduling order.
    """
    digest = hashlib.blake2b(
        f"{seed}:{job_id}:{attempt}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2**64


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of faults to inject into one simulation run.

    An empty plan (the default) is falsy and leaves the engine on its
    fault-free fast path, bit-for-bit.

    Attributes
    ----------
    deaths / stragglers / losses:
        Explicit fault events (see the event classes above).
    loss_probability:
        Per-attempt probability that any transfer is lost, drawn
        deterministically from ``seed`` and the job id.  At most
        ``max_random_losses`` consecutive random losses hit one job, so
        retries always terminate.
    seed:
        Seed for the probabilistic loss draws.
    """

    deaths: tuple[NodeDeath, ...] = ()
    stragglers: tuple[Straggler, ...] = ()
    losses: tuple[TransferLoss, ...] = ()
    loss_probability: float = 0.0
    seed: int = 0
    max_random_losses: int = 2

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError(
                f"loss_probability must be in [0, 1), got {self.loss_probability}"
            )
        if self.max_random_losses < 0:
            raise ValueError("max_random_losses must be >= 0")

    def __bool__(self) -> bool:
        return bool(
            self.deaths or self.stragglers or self.losses or self.loss_probability
        )

    # -- queries the engine makes ---------------------------------------

    def death_times(self) -> dict[int, float]:
        """Earliest death time per node."""
        times: dict[int, float] = {}
        for death in self.deaths:
            if death.node not in times or death.time < times[death.node]:
                times[death.node] = death.time
        return times

    def straggler_factor(self, node: int) -> float:
        """Combined slowdown of one node (product of its entries)."""
        factor = 1.0
        for straggler in self.stragglers:
            if straggler.node == node:
                factor *= straggler.factor
        return factor

    def is_lost(self, job_id: str, attempt: int) -> bool:
        """Whether attempt number ``attempt`` (0-based) of a transfer is lost."""
        for loss in self.losses:
            if loss.job_id == job_id:
                return attempt < loss.attempts
        if self.loss_probability and attempt < self.max_random_losses:
            return _hash_fraction(self.seed, job_id, attempt) < self.loss_probability
        return False

    # -- re-planning support --------------------------------------------

    def shifted(self, offset: float) -> "FaultPlan":
        """The plan as seen by a run starting ``offset`` seconds later.

        Deaths in the past clamp to time 0 (the node is dead from the
        start — a safety net for re-planned runs, which should never
        schedule work there anyway).  Stragglers and losses are
        time-free and carry over unchanged.
        """
        if offset == 0.0:
            return self
        return replace(
            self,
            deaths=tuple(
                NodeDeath(node=d.node, time=max(0.0, d.time - offset))
                for d in self.deaths
            ),
        )


def random_fault_plan(
    nodes,
    seed: int = 0,
    deaths: int = 1,
    death_window: tuple[float, float] = (0.0, 60.0),
    stragglers: int = 0,
    straggler_range: tuple[float, float] = (2.0, 4.0),
    loss_probability: float = 0.0,
) -> FaultPlan:
    """Draw a seeded :class:`FaultPlan` over ``nodes``.

    ``deaths`` nodes die at uniform times in ``death_window``;
    ``stragglers`` further nodes slow by a uniform factor in
    ``straggler_range``.  The same seed always yields the same plan.
    """
    pool = sorted(nodes)
    if deaths + stragglers > len(pool):
        raise ValueError(
            f"cannot pick {deaths} deaths + {stragglers} stragglers "
            f"from {len(pool)} nodes"
        )
    rng = random.Random(seed)
    picked = rng.sample(pool, deaths + stragglers)
    return FaultPlan(
        deaths=tuple(
            NodeDeath(node=node, time=rng.uniform(*death_window))
            for node in picked[:deaths]
        ),
        stragglers=tuple(
            Straggler(node=node, factor=rng.uniform(*straggler_range))
            for node in picked[deaths:]
        ),
        loss_probability=loss_probability,
        seed=seed,
    )


@dataclass
class FaultReport:
    """What the injected faults did to one run.

    Attributes
    ----------
    dead_nodes:
        Node id → simulation time it died (only deaths that occurred
        within the run's horizon).
    aborted:
        Job id → abort time, for jobs killed mid-flight by a node death.
        Their :class:`~repro.sim.engine.JobTiming` ends at the abort.
    failed:
        Job id → time the engine refused to start it (an endpoint was
        already dead).
    skipped:
        Jobs never attempted because a dependency aborted or failed.
    lost:
        Transfer job id → number of lost attempts that were retried.
    retried_bytes:
        Bytes carried by lost attempts (wire work that delivered nothing).
    aborted_bytes:
        Pro-rata bytes of transfers aborted mid-flight.
    """

    dead_nodes: dict[int, float] = field(default_factory=dict)
    aborted: dict[str, float] = field(default_factory=dict)
    failed: dict[str, float] = field(default_factory=dict)
    skipped: tuple[str, ...] = ()
    lost: dict[str, int] = field(default_factory=dict)
    retried_bytes: float = 0.0
    aborted_bytes: float = 0.0

    @property
    def incomplete(self) -> set[str]:
        """Jobs that did not run to completion."""
        return set(self.aborted) | set(self.failed) | set(self.skipped)

    @property
    def complete(self) -> bool:
        """True when every job of the graph finished despite the faults."""
        return not (self.aborted or self.failed or self.skipped)

    @property
    def retry_count(self) -> int:
        return sum(self.lost.values())

    def to_dict(self) -> dict:
        return {
            "dead_nodes": {str(n): t for n, t in self.dead_nodes.items()},
            "aborted": dict(self.aborted),
            "failed": dict(self.failed),
            "skipped": list(self.skipped),
            "lost": dict(self.lost),
            "retried_bytes": self.retried_bytes,
            "aborted_bytes": self.aborted_bytes,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultReport":
        return cls(
            dead_nodes={int(n): t for n, t in data.get("dead_nodes", {}).items()},
            aborted=dict(data.get("aborted", {})),
            failed=dict(data.get("failed", {})),
            skipped=tuple(data.get("skipped", ())),
            lost=dict(data.get("lost", {})),
            retried_bytes=data.get("retried_bytes", 0.0),
            aborted_bytes=data.get("aborted_bytes", 0.0),
        )
