"""Job graph: the unit of work the discrete-event engine executes.

A repair is compiled into a DAG of two job kinds:

* :class:`TransferJob` — stream ``nbytes`` from one node to another;
  duration is ``nbytes / rate(src, dst)`` under the active bandwidth
  model, and the job exclusively holds the source's upload port and the
  destination's download port while running.
* :class:`ComputeJob` — a (partial) decode on one node; duration is
  precomputed by the caller from a :class:`repro.rs.DecodeCostModel`,
  and the job exclusively holds the node's CPU.

Dependencies are by job id.  The engine is deliberately *dumb*: all
scheduling intelligence (RPR's greedy pipeline, CAR's rack choice, the
traditional serial stream) lives in the planners that emit the DAG; the
engine only enforces dependencies and port/CPU exclusivity, which is what
produces the serialisation effects the paper reasons about (e.g. the
recovery node's download port bottleneck in §2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TransferJob", "ComputeJob", "JobGraph", "JobGraphError"]


class JobGraphError(ValueError):
    """Raised for malformed job graphs (duplicate ids, bad deps, cycles)."""


@dataclass(frozen=True)
class TransferJob:
    """One point-to-point stream of ``nbytes`` from ``src`` to ``dst``."""

    job_id: str
    src: int
    dst: int
    nbytes: float
    deps: tuple[str, ...] = ()
    tag: str = ""

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise JobGraphError(f"transfer {self.job_id}: src == dst == {self.src}")
        if self.nbytes <= 0:
            raise JobGraphError(f"transfer {self.job_id}: nbytes must be positive")


@dataclass(frozen=True)
class ComputeJob:
    """One compute step (decode / partial decode) of ``seconds`` on ``node``."""

    job_id: str
    node: int
    seconds: float
    deps: tuple[str, ...] = ()
    tag: str = ""

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise JobGraphError(f"compute {self.job_id}: negative duration")


@dataclass
class JobGraph:
    """An append-only DAG of transfer and compute jobs."""

    jobs: dict[str, TransferJob | ComputeJob] = field(default_factory=dict)

    def add(self, job: TransferJob | ComputeJob) -> str:
        if job.job_id in self.jobs:
            raise JobGraphError(f"duplicate job id {job.job_id!r}")
        self.jobs[job.job_id] = job
        return job.job_id

    def add_transfer(
        self,
        job_id: str,
        src: int,
        dst: int,
        nbytes: float,
        deps=(),
        tag: str = "",
    ) -> str:
        return self.add(
            TransferJob(
                job_id=job_id, src=src, dst=dst, nbytes=nbytes, deps=tuple(deps), tag=tag
            )
        )

    def add_compute(
        self, job_id: str, node: int, seconds: float, deps=(), tag: str = ""
    ) -> str:
        return self.add(
            ComputeJob(
                job_id=job_id, node=node, seconds=seconds, deps=tuple(deps), tag=tag
            )
        )

    def __len__(self) -> int:
        return len(self.jobs)

    def validate(self) -> None:
        """Check referential integrity and acyclicity.

        Raises
        ------
        JobGraphError
            On dangling dependencies or cycles.
        """
        for job in self.jobs.values():
            for dep in job.deps:
                if dep not in self.jobs:
                    raise JobGraphError(
                        f"job {job.job_id!r} depends on unknown job {dep!r}"
                    )
        # Kahn's algorithm for cycle detection.
        indegree = {jid: len(set(job.deps)) for jid, job in self.jobs.items()}
        dependents: dict[str, list[str]] = {jid: [] for jid in self.jobs}
        for jid, job in self.jobs.items():
            for dep in set(job.deps):
                dependents[dep].append(jid)
        queue = [jid for jid, d in indegree.items() if d == 0]
        seen = 0
        while queue:
            jid = queue.pop()
            seen += 1
            for child in dependents[jid]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    queue.append(child)
        if seen != len(self.jobs):
            raise JobGraphError("job graph contains a cycle")
