"""ASCII timeline (Gantt) rendering of simulation results.

Turns a :class:`SimResult` into a per-resource occupancy chart — the
fastest way to *see* why schedule 2 of the paper's Fig. 5 beats
schedule 1: serialised bars stack on the recovery node's download row,
pipelined bars overlap across rows.

No plotting dependencies; output is monospace text suitable for
terminals, docs and tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from .engine import SimResult
from .events import EventKind

__all__ = ["TimelineRow", "timeline_rows", "render_timeline"]


@dataclass(frozen=True)
class TimelineRow:
    """One resource's activity: (start, end, job_id) intervals."""

    label: str
    intervals: tuple[tuple[float, float, str], ...]


def timeline_rows(result: SimResult) -> list[TimelineRow]:
    """Group job intervals by the resource that carried them.

    Transfers appear twice — on the source's ``up`` row and the
    destination's ``down`` row — mirroring the engine's port model;
    computes appear on the node's ``cpu`` row.
    """
    rows: dict[str, list[tuple[float, float, str]]] = {}
    for event in result.events:
        if event.kind == EventKind.TRANSFER_END:
            timing = result.timings[event.job_id]
            rows.setdefault(f"n{event.node}:up", []).append(
                (timing.start, timing.end, event.job_id)
            )
            rows.setdefault(f"n{event.peer}:down", []).append(
                (timing.start, timing.end, event.job_id)
            )
        elif event.kind == EventKind.COMPUTE_END:
            timing = result.timings[event.job_id]
            rows.setdefault(f"n{event.node}:cpu", []).append(
                (timing.start, timing.end, event.job_id)
            )

    def sort_key(label: str):
        node_part, kind = label.split(":")
        return (int(node_part[1:]), {"up": 0, "down": 1, "cpu": 2}[kind])

    return [
        TimelineRow(label=label, intervals=tuple(sorted(rows[label])))
        for label in sorted(rows, key=sort_key)
    ]


def render_timeline(result: SimResult, width: int = 72) -> str:
    """Render the occupancy chart as monospace text.

    Each row is one resource; ``#`` marks busy time, ``.`` idle.  The
    scale line maps columns to seconds.
    """
    if width < 10:
        raise ValueError("width must be at least 10 columns")
    rows = timeline_rows(result)
    if not rows or result.makespan <= 0:
        return "(empty timeline)"

    span = result.makespan
    label_width = max(len(r.label) for r in rows) + 1
    lines = []
    for row in rows:
        cells = ["."] * width
        for start, end, _job in row.intervals:
            first = min(width - 1, int(start / span * width))
            last = min(width - 1, max(first, int(end / span * width) - 1))
            for c in range(first, last + 1):
                cells[c] = "#"
        lines.append(f"{row.label.rjust(label_width)} |{''.join(cells)}|")
    scale = f"{'0'.rjust(label_width)} +{'-' * (width - 2)}+ {span:.2f}s"
    lines.append(scale)
    return "\n".join(lines)
