"""Resource-utilization tracing and bottleneck analysis over sim runs.

The engine's :class:`~repro.sim.engine.SimResult` is a flat record —
makespan, per-job timings, event list.  This module post-processes one
run into the quantities the paper argues with:

* **Per-resource busy/idle timelines** — one :class:`ResourceUsage` per
  upload port, download port and CPU, with its occupied intervals, busy
  seconds and bytes carried.  These are the rows behind Fig. 5's
  schedule comparison: serialised bars stack on one resource, pipelined
  bars spread across many.
* **Critical-path extraction** — the chain of jobs the makespan was
  actually waiting on, walked backwards from the last job to finish.
  Each hop records *why* the job started when it did: a declared
  dependency finished, a port/CPU it needed was released, or some other
  completion (the aggregation-switch token under ``cross_capacity``).
  The path is contiguous, starts at t=0 and ends at the makespan.
* **Rack activity / idle accounting** — union-of-intervals busy time per
  rack per resource kind, quantifying the paper's "schedule 1 leaves
  racks idle" argument (§3.2, Fig. 5) with machine-checkable numbers.
* **Switch profiles** — time-bucketed bytes through the aggregation
  switch and each TOR switch.
* **Structured export** — ``to_dict``/``from_dict`` round-trip plus a
  JSON-lines emitter, and ASCII renderers (:func:`render_gantt`,
  :func:`render_report`) for terminals, docs and tests.

Everything here is derived — tracing never changes what the engine
computes, so traced and untraced runs are byte-identical.  See
``docs/OBSERVABILITY.md`` for the data model and a worked example.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

from ..cluster import Cluster
from ..telemetry.model import (
    CLOCK_SIM,
    OP_CATEGORY,
    Span,
    TelemetryEvent,
    TelemetryTrace,
)
from .engine import SimResult
from .events import EventKind

__all__ = [
    "Interval",
    "PathSegment",
    "ResourceUsage",
    "RunTrace",
    "critical_path",
    "render_gantt",
    "render_report",
    "telemetry_from_sim",
]

#: Display/sort order of resource kinds on a node.
RESOURCE_KINDS = ("up", "down", "cpu")


def _close(a: float, b: float) -> bool:
    """Engine-compatible instant equality (the engine batches at 1e-12)."""
    return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)


@dataclass(frozen=True)
class Interval:
    """One occupancy interval of a resource: ``[start, end)`` by ``job_id``.

    ``nbytes`` is the transfer's size for port intervals, 0.0 for CPU
    intervals — kept per-interval so byte profiles stay exact even when
    one port carries transfers at different link rates.
    """

    start: float
    end: float
    job_id: str
    nbytes: float = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "start": self.start,
            "end": self.end,
            "job_id": self.job_id,
            "nbytes": self.nbytes,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Interval":
        return cls(**data)


@dataclass(frozen=True)
class ResourceUsage:
    """Busy timeline of one simulated resource (a port or a CPU).

    Attributes
    ----------
    kind:
        ``"up"`` / ``"down"`` (the node's two ports) or ``"cpu"``.
    node / rack:
        Owning node and its rack.
    intervals:
        Occupied intervals, sorted by start.  Port exclusivity means they
        never overlap; ``busy`` is therefore also their union measure.
    """

    kind: str
    node: int
    rack: int
    intervals: tuple[Interval, ...]

    @property
    def label(self) -> str:
        """Row label, matching :func:`repro.sim.timeline.timeline_rows`."""
        return f"n{self.node}:{self.kind}"

    @property
    def nbytes(self) -> float:
        """Bytes carried through this resource (0.0 for CPUs)."""
        return sum(iv.nbytes for iv in self.intervals)

    @property
    def busy(self) -> float:
        """Total occupied seconds."""
        return sum(iv.duration for iv in self.intervals)

    def utilization(self, makespan: float) -> float:
        """Busy fraction of the run, in [0, 1]."""
        if makespan <= 0:
            return 0.0
        return self.busy / makespan

    def idle(self, makespan: float) -> float:
        """Seconds this resource sat unused while the repair ran."""
        return max(0.0, makespan - self.busy)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "node": self.node,
            "rack": self.rack,
            "intervals": [iv.to_dict() for iv in self.intervals],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ResourceUsage":
        return cls(
            kind=data["kind"],
            node=data["node"],
            rack=data["rack"],
            intervals=tuple(Interval.from_dict(d) for d in data["intervals"]),
        )


@dataclass(frozen=True)
class PathSegment:
    """One job on the critical path.

    ``entered_via`` records what the job was waiting on immediately
    before it started: ``"start"`` (path head, t=0), ``"dependency"`` (a
    declared dependency finished), ``"resource"`` (a port/CPU it needed
    was released), ``"completion"`` (another job's end unblocked it —
    e.g. the cross-rack token under ``cross_capacity``), ``"abort"``
    (a fault-injected abort freed what it was waiting for), or
    ``"retry"`` (the segment is a lost transfer's re-attempt, starting
    at its own loss instant).

    ``aborted`` marks segments that are themselves aborted jobs (their
    ``end`` is the abort instant, not a completion) — they appear only
    on faulted runs, where the makespan can be set by an abort.
    """

    job_id: str
    kind: str  # "transfer" | "compute"
    start: float
    end: float
    node: int
    peer: int = -1
    cross_rack: bool = False
    nbytes: float = 0.0
    entered_via: str = "start"
    aborted: bool = False

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "node": self.node,
            "peer": self.peer,
            "cross_rack": self.cross_rack,
            "nbytes": self.nbytes,
            "entered_via": self.entered_via,
            "aborted": self.aborted,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PathSegment":
        return cls(**data)


def _job_meta(result: SimResult) -> dict[str, dict]:
    """Per-job descriptors (kind, endpoints, bytes) from the event trace.

    Completed jobs come from ``*_END`` events; on faulted runs, jobs that
    started and were then killed mid-flight come from ``*_ABORT`` events
    and are flagged ``aborted``.  Abort events for jobs that never ran
    (an endpoint was already dead — no ``timings`` entry) are ignored:
    they occupy no resource time and cannot sit on a path.  A completion
    always wins over an abort for the same id (a lost transfer's final
    successful attempt supersedes its loss markers).
    """
    meta: dict[str, dict] = {}
    for event in result.events:
        if event.kind == EventKind.TRANSFER_END:
            meta[event.job_id] = {
                "kind": "transfer",
                "node": event.node,
                "peer": event.peer,
                "cross_rack": event.cross_rack,
                "nbytes": event.nbytes,
                "aborted": False,
            }
        elif event.kind == EventKind.COMPUTE_END:
            meta[event.job_id] = {
                "kind": "compute",
                "node": event.node,
                "peer": -1,
                "cross_rack": False,
                "nbytes": 0.0,
                "aborted": False,
            }
        elif (
            event.kind in (EventKind.TRANSFER_ABORT, EventKind.COMPUTE_ABORT)
            and event.job_id in result.timings
            and event.job_id not in meta
        ):
            meta[event.job_id] = {
                "kind": (
                    "transfer"
                    if event.kind == EventKind.TRANSFER_ABORT
                    else "compute"
                ),
                "node": event.node,
                "peer": event.peer,
                "cross_rack": event.cross_rack,
                "nbytes": event.nbytes,
                "aborted": True,
            }
    return meta


def _resources_of(meta: dict) -> frozenset[tuple[str, int]]:
    if meta["kind"] == "transfer":
        return frozenset({("up", meta["node"]), ("down", meta["peer"])})
    return frozenset({("cpu", meta["node"])})


def critical_path(result: SimResult) -> list[PathSegment]:
    """Extract the chain of jobs the makespan was waiting on.

    Walks backwards from the last job to finish.  At each hop the
    predecessor is a job that finished exactly when the current job
    started — preferring declared dependencies, then jobs that released
    a port/CPU the current job needs, then any completion (the engine
    only starts jobs at completion instants, so one always exists for
    ``start > 0``).  The result is chronological and contiguous: the
    head starts at 0, each segment starts at its predecessor's end, and
    the tail ends at ``result.makespan``.
    """
    meta = _job_meta(result)
    # Faulted runs record timings for aborted jobs too (their end is the
    # abort instant); _job_meta carries them flagged ``aborted``, so the
    # walk covers them — a makespan set by an abort anchors on that
    # abort, and a job whose ports were freed by an abort attributes its
    # start to it instead of falsely claiming it began at t=0.
    timings = {jid: t for jid, t in result.timings.items() if jid in meta}
    if not timings:
        return []

    tail_candidates = sorted(
        (jid for jid, t in timings.items() if _close(t.end, result.makespan)),
        # Prefer a completed tail over an aborted one ending at the same
        # instant (fault-free runs have no aborted jobs, so this is the
        # old alphabetical pick there).
        key=lambda jid: (meta[jid]["aborted"], jid),
    )
    if not tail_candidates:
        tail_candidates = sorted(
            timings, key=lambda jid: (-timings[jid].end, jid)
        )[:1]
    cur = tail_candidates[0]
    chain = [cur]
    via: dict[str, str] = {}
    while timings[cur].start > 1e-12:
        start = timings[cur].start
        enders = [
            jid
            for jid, t in timings.items()
            if jid != cur and _close(t.end, start)
        ]
        if not enders:
            # A lost transfer's retry starts at its own loss instant and
            # its earlier attempt's timing is overwritten, so no ender
            # remains — attribute the restart to the loss rather than
            # pretending the job waited since t=0.
            lost_here = any(
                e.kind == EventKind.TRANSFER_LOST
                and e.job_id == cur
                and _close(e.time, start)
                for e in result.events
            )
            via[cur] = "retry" if lost_here else "start"
            break
        deps = set()
        job = result.jobs.get(cur)
        if job is not None:
            deps = set(job.deps)
        needed = _resources_of(meta[cur])

        def rank(jid: str) -> int:
            # Completed jobs outrank aborted ones within each reason
            # class; a dependency ender is always a completion (aborted
            # dependencies cascade-skip their dependents).
            if jid in deps:
                return 0
            aborted = meta[jid]["aborted"]
            if needed & _resources_of(meta[jid]):
                return 1 if not aborted else 2
            return 3 if not aborted else 4

        enders.sort(key=lambda j: (rank(j), -timings[j].duration, j))
        prev = enders[0]
        via[cur] = ("dependency", "resource", "abort", "completion", "abort")[
            rank(prev)
        ]
        chain.append(prev)
        cur = prev

    segments = []
    for jid in reversed(chain):
        m = meta[jid]
        t = timings[jid]
        segments.append(
            PathSegment(
                job_id=jid,
                kind=m["kind"],
                start=t.start,
                end=t.end,
                node=m["node"],
                peer=m["peer"],
                cross_rack=m["cross_rack"],
                nbytes=m["nbytes"],
                entered_via=via.get(jid, "start"),
                aborted=m["aborted"],
            )
        )
    return segments


def _union_measure(intervals) -> float:
    """Total length covered by a set of (possibly overlapping) intervals."""
    spans = sorted((iv.start, iv.end) for iv in intervals)
    covered = 0.0
    cur_start, cur_end = None, None
    for start, end in spans:
        if cur_end is None or start > cur_end:
            if cur_end is not None:
                covered += cur_end - cur_start
            cur_start, cur_end = start, end
        else:
            cur_end = max(cur_end, end)
    if cur_end is not None:
        covered += cur_end - cur_start
    return covered


@dataclass
class RunTrace:
    """The observability view of one simulation run.

    Build with :meth:`from_result`; everything is derived from the
    engine's timings/events plus the cluster topology.  Export with
    :meth:`to_dict` / :meth:`to_json_lines`; render with
    :func:`render_gantt` / :func:`render_report`.
    """

    makespan: float
    resources: list[ResourceUsage] = field(default_factory=list)
    path: list[PathSegment] = field(default_factory=list)

    @classmethod
    def from_result(cls, result: SimResult, cluster: Cluster) -> "RunTrace":
        """Post-process ``result`` into utilization timelines + critical path.

        On faulted runs, jobs aborted mid-flight still held their ports
        (or CPU) from their start to the abort instant — those intervals
        are included so rack-activity and utilization accounting does
        not silently under-attribute busy time.  Aborted intervals carry
        ``nbytes=0.0``: no payload was delivered, which keeps the
        switch-profile byte-conservation invariants (totals equal the
        run's *completed* cross/intra bytes) intact.
        """
        acc: dict[tuple[str, int], list[Interval]] = {}
        for event in result.events:
            if event.kind == EventKind.TRANSFER_END:
                timing = result.timings[event.job_id]
                for key in (("up", event.node), ("down", event.peer)):
                    acc.setdefault(key, []).append(
                        Interval(timing.start, timing.end, event.job_id, event.nbytes)
                    )
            elif event.kind == EventKind.COMPUTE_END:
                timing = result.timings[event.job_id]
                key = ("cpu", event.node)
                acc.setdefault(key, []).append(
                    Interval(timing.start, timing.end, event.job_id)
                )
            elif event.kind == EventKind.TRANSFER_ABORT:
                timing = result.timings.get(event.job_id)
                if timing is not None and timing.end > timing.start:
                    for key in (("up", event.node), ("down", event.peer)):
                        acc.setdefault(key, []).append(
                            Interval(timing.start, timing.end, event.job_id, 0.0)
                        )
            elif event.kind == EventKind.COMPUTE_ABORT:
                timing = result.timings.get(event.job_id)
                if timing is not None and timing.end > timing.start:
                    acc.setdefault(("cpu", event.node), []).append(
                        Interval(timing.start, timing.end, event.job_id)
                    )

        def sort_key(key):
            kind, node = key
            return (node, RESOURCE_KINDS.index(kind))

        resources = [
            ResourceUsage(
                kind=kind,
                node=node,
                rack=cluster.rack_of(node),
                intervals=tuple(sorted(acc[(kind, node)], key=lambda iv: iv.start)),
            )
            for kind, node in sorted(acc, key=sort_key)
        ]
        return cls(
            makespan=result.makespan,
            resources=resources,
            path=critical_path(result),
        )

    # -- lookups ---------------------------------------------------------

    def resource(self, label: str) -> ResourceUsage:
        """Fetch one resource by its ``"n<id>:<kind>"`` label."""
        for res in self.resources:
            if res.label == label:
                return res
        raise KeyError(f"no resource {label!r} in trace")

    def busiest(self, kind: str | None = None) -> ResourceUsage:
        """The resource with the most busy seconds (optionally one kind)."""
        pool = [r for r in self.resources if kind is None or r.kind == kind]
        if not pool:
            raise ValueError("trace has no resources" + (f" of kind {kind!r}" if kind else ""))
        return max(pool, key=lambda r: (r.busy, r.label))

    def utilization_rows(self) -> list[dict]:
        """One summary dict per resource (label, busy, utilization, bytes)."""
        return [
            {
                "resource": res.label,
                "kind": res.kind,
                "node": res.node,
                "rack": res.rack,
                "busy_s": res.busy,
                "utilization": res.utilization(self.makespan),
                "nbytes": res.nbytes,
            }
            for res in self.resources
        ]

    # -- rack accounting -------------------------------------------------

    def rack_activity(self, kind: str = "up") -> dict[int, float]:
        """Union busy seconds per rack for one resource kind.

        Unlike summed busy time, overlapping activity on two nodes of the
        same rack counts once — this measures *when the rack was doing
        anything*, which is the Fig. 5 idle-rack quantity.
        """
        by_rack: dict[int, list[Interval]] = {}
        for res in self.resources:
            if res.kind == kind:
                by_rack.setdefault(res.rack, []).extend(res.intervals)
        return {rack: _union_measure(ivs) for rack, ivs in sorted(by_rack.items())}

    def rack_idle_fraction(self, kind: str = "up") -> dict[int, float]:
        """Per participating rack: fraction of the run it spent idle."""
        if self.makespan <= 0:
            return {}
        return {
            rack: max(0.0, 1.0 - active / self.makespan)
            for rack, active in self.rack_activity(kind).items()
        }

    def rack_rows(self) -> list[dict]:
        """Per-rack busy seconds and idle fractions for the report table."""
        racks = sorted({res.rack for res in self.resources})
        busy: dict[tuple[int, str], float] = {}
        bytes_up: dict[int, float] = {}
        for res in self.resources:
            busy[(res.rack, res.kind)] = busy.get((res.rack, res.kind), 0.0) + res.busy
            if res.kind == "up":
                bytes_up[res.rack] = bytes_up.get(res.rack, 0.0) + res.nbytes
        idle = self.rack_idle_fraction("up")
        return [
            {
                "rack": rack,
                "up_busy_s": busy.get((rack, "up"), 0.0),
                "down_busy_s": busy.get((rack, "down"), 0.0),
                "cpu_busy_s": busy.get((rack, "cpu"), 0.0),
                "uploaded_bytes": bytes_up.get(rack, 0.0),
                "up_idle_fraction": idle.get(rack, 1.0),
            }
            for rack in racks
        ]

    # -- critical path ---------------------------------------------------

    def path_attribution(self) -> dict[str, float]:
        """Where the makespan went, summed along the critical path.

        Keys: ``cross_transfer_s``, ``intra_transfer_s``, ``compute_s``,
        ``wait_s`` (any residue not covered by path segments — 0 for a
        contiguous path), and ``makespan_s``.
        """
        cross = intra = compute = 0.0
        for seg in self.path:
            if seg.kind == "compute":
                compute += seg.duration
            elif seg.cross_rack:
                cross += seg.duration
            else:
                intra += seg.duration
        covered = cross + intra + compute
        return {
            "cross_transfer_s": cross,
            "intra_transfer_s": intra,
            "compute_s": compute,
            "wait_s": max(0.0, self.makespan - covered),
            "makespan_s": self.makespan,
        }

    # -- switch profiles -------------------------------------------------

    def switch_profile(self, buckets: int = 32) -> dict:
        """Time-bucketed byte profiles for the aggregation and TOR switches.

        Each transfer contributes its bytes uniformly over its duration
        (the engine's constant-rate model).  Cross-rack transfers load
        the aggregation switch and *both* endpoint TORs; intra-rack
        transfers load only their rack's TOR.
        """
        if buckets < 1:
            raise ValueError("buckets must be >= 1")
        width = self.makespan / buckets if self.makespan > 0 else 0.0
        agg = [0.0] * buckets
        tor: dict[int, list[float]] = {}

        def deposit(series: list[float], start: float, end: float, nbytes: float):
            if end <= start or width == 0.0:
                return
            rate = nbytes / (end - start)
            first = min(buckets - 1, int(start / width))
            last = min(buckets - 1, int(end / width))
            for b in range(first, last + 1):
                lo = max(start, b * width)
                hi = min(end, (b + 1) * width)
                if hi > lo:
                    series[b] += rate * (hi - lo)

        down_rack = {
            iv.job_id: r.rack
            for r in self.resources
            if r.kind == "down"
            for iv in r.intervals
        }
        for res in self.resources:
            if res.kind != "up":
                continue
            for iv in res.intervals:
                src_rack = res.rack
                dst_rack = down_rack.get(iv.job_id, src_rack)
                tor.setdefault(src_rack, [0.0] * buckets)
                deposit(tor[src_rack], iv.start, iv.end, iv.nbytes)
                if dst_rack != src_rack:
                    tor.setdefault(dst_rack, [0.0] * buckets)
                    deposit(tor[dst_rack], iv.start, iv.end, iv.nbytes)
                    deposit(agg, iv.start, iv.end, iv.nbytes)
        return {
            "bucket_seconds": width,
            "aggregation_bytes": agg,
            "tor_bytes": {rack: series for rack, series in sorted(tor.items())},
        }

    # -- export ----------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable dump; inverse of :meth:`from_dict`."""
        return {
            "makespan": self.makespan,
            "resources": [res.to_dict() for res in self.resources],
            "critical_path": [seg.to_dict() for seg in self.path],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunTrace":
        return cls(
            makespan=data["makespan"],
            resources=[ResourceUsage.from_dict(d) for d in data["resources"]],
            path=[PathSegment.from_dict(d) for d in data["critical_path"]],
        )

    def to_json_lines(self) -> str:
        """One JSON record per line: a header, each resource, each path hop."""
        lines = [json.dumps({"record": "trace", "makespan": self.makespan})]
        for res in self.resources:
            lines.append(json.dumps({"record": "resource", **res.to_dict()}))
        for seg in self.path:
            lines.append(json.dumps({"record": "path", **seg.to_dict()}))
        return "\n".join(lines)

    @classmethod
    def from_json_lines(cls, text: str) -> "RunTrace":
        makespan = 0.0
        resources: list[dict] = []
        path: list[dict] = []
        for line in text.splitlines():
            if not line.strip():
                continue
            record = json.loads(line)
            kind = record.pop("record")
            if kind == "trace":
                makespan = record["makespan"]
            elif kind == "resource":
                resources.append(record)
            elif kind == "path":
                path.append(record)
            else:
                raise ValueError(f"unknown trace record kind {kind!r}")
        return cls.from_dict(
            {"makespan": makespan, "resources": resources, "critical_path": path}
        )


# -- telemetry bridge ------------------------------------------------------


def telemetry_from_sim(
    result: SimResult,
    cluster: Cluster | None = None,
    *,
    meta: dict | None = None,
    offset: float = 0.0,
    attempt: int | None = None,
) -> TelemetryTrace:
    """Re-emit a ``SimResult`` in the unified telemetry span schema.

    The sim-side producer for :mod:`repro.telemetry`: every completed
    job becomes an op span (category ``"op"`` — the identity the
    sim↔live diff joins on), every mid-flight abort becomes an
    ``"aborted"``-category span plus a ``fault.abort`` event, and the
    run's :class:`~repro.sim.faults.FaultReport` ledger lands as
    events (deaths, aborts, losses) and counters (``fault.*``,
    ``bytes.*``), so a faulted schedule and its fault accounting live
    in one exportable trace.  The clock is :data:`~repro.telemetry.CLOCK_SIM`.

    ``offset`` shifts every timestamp (used to stitch the attempts of a
    degraded repair onto one timeline); ``attempt`` tags the trace's
    meta and every span for the same purpose.
    """
    run_meta = {"source": "sim"}
    if attempt is not None:
        run_meta["attempt"] = attempt
    if meta:
        run_meta.update(meta)
    trace = TelemetryTrace(clock=CLOCK_SIM, meta=run_meta)

    job_meta = _job_meta(result)
    for jid, timing in result.timings.items():
        m = job_meta.get(jid)
        if m is None:
            continue
        attrs = {
            "kind": m["kind"],
            "node": m["node"],
            "cross_rack": m["cross_rack"],
            "nbytes": m["nbytes"],
        }
        if m["peer"] >= 0:
            attrs["peer"] = m["peer"]
        if cluster is not None:
            attrs["rack"] = cluster.rack_of(m["node"])
        if attempt is not None:
            attrs["attempt"] = attempt
        trace.spans.append(
            Span(
                name=jid,
                start=timing.start,
                end=timing.end,
                category="aborted" if m["aborted"] else OP_CATEGORY,
                op_id=jid,
                attrs=attrs,
            )
        )

    for event in result.events:
        if event.kind == EventKind.NODE_DEATH:
            trace.events.append(
                TelemetryEvent(
                    name="fault.death",
                    time=event.time,
                    category="fault",
                    attrs={"node": event.node},
                )
            )
        elif event.kind in (EventKind.TRANSFER_ABORT, EventKind.COMPUTE_ABORT):
            # Mid-flight aborts carry a timing; failed-to-start jobs do
            # not — distinguish them the way the FaultReport ledger does.
            started = event.job_id in result.timings
            trace.events.append(
                TelemetryEvent(
                    name="fault.abort" if started else "fault.failed",
                    time=event.time,
                    category="fault",
                    op_id=event.job_id,
                    attrs={"node": event.node, "nbytes": event.nbytes},
                )
            )
        elif event.kind == EventKind.TRANSFER_LOST:
            trace.events.append(
                TelemetryEvent(
                    name="fault.loss",
                    time=event.time,
                    category="fault",
                    op_id=event.job_id,
                    attrs={"node": event.node, "nbytes": event.nbytes},
                )
            )

    trace.counters["bytes.cross_rack"] = result.cross_rack_bytes()
    trace.counters["bytes.intra_rack"] = result.intra_rack_bytes()
    report = result.faults
    if report is not None:
        trace.counters["fault.deaths"] = float(len(report.dead_nodes))
        trace.counters["fault.aborts"] = float(len(report.aborted))
        trace.counters["fault.failed"] = float(len(report.failed))
        trace.counters["fault.skipped"] = float(len(report.skipped))
        trace.counters["fault.losses"] = float(sum(report.lost.values()))
        trace.counters["fault.retried_bytes"] = float(report.retried_bytes)
        trace.counters["fault.aborted_bytes"] = float(report.aborted_bytes)
        if report.skipped:
            trace.meta["skipped_ops"] = sorted(report.skipped)
    if offset:
        return trace.shifted(offset)
    return trace


# -- renderers -------------------------------------------------------------


def render_gantt(trace: RunTrace, width: int = 64) -> str:
    """Utilization-annotated ASCII Gantt: one row per resource.

    Like :func:`repro.sim.render_timeline` but driven by a
    :class:`RunTrace` and prefixed with each resource's busy percentage.
    """
    if width < 10:
        raise ValueError("width must be at least 10 columns")
    if not trace.resources or trace.makespan <= 0:
        return "(empty trace)"
    span = trace.makespan
    label_width = max(len(r.label) for r in trace.resources) + 1
    lines = []
    for res in trace.resources:
        cells = ["."] * width
        for iv in res.intervals:
            first = min(width - 1, int(iv.start / span * width))
            last = min(width - 1, max(first, int(iv.end / span * width) - 1))
            for c in range(first, last + 1):
                cells[c] = "#"
        pct = f"{100 * res.utilization(span):5.1f}%"
        lines.append(f"{res.label.rjust(label_width)} {pct} |{''.join(cells)}|")
    scale = f"{'0'.rjust(label_width + 7)} +{'-' * (width - 2)}+ {span:.2f}s"
    lines.append(scale)
    return "\n".join(lines)


def _fmt_row(cells, widths) -> str:
    return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))


def _table(headers: list[str], rows: list[list[str]]) -> list[str]:
    table = [headers] + rows
    widths = [max(len(str(r[i])) for r in table) for i in range(len(headers))]
    out = [_fmt_row(headers, widths), _fmt_row(["-" * w for w in widths], widths)]
    out.extend(_fmt_row(row, widths) for row in rows)
    return out


def render_report(trace: RunTrace, top: int = 5) -> str:
    """The bottleneck report: rack utilization, hot resources, critical path."""
    if trace.makespan <= 0 or not trace.resources:
        return "(empty trace)"
    span = trace.makespan
    lines = [f"bottleneck report — makespan {span:.2f} s"]

    lines.append("")
    lines.append("per-rack utilization (busy seconds; up_idle% = upload ports fully idle):")
    rack_rows = [
        [
            f"r{row['rack']}",
            f"{row['up_busy_s']:.2f}",
            f"{row['down_busy_s']:.2f}",
            f"{row['cpu_busy_s']:.2f}",
            f"{row['uploaded_bytes'] / 1e6:.0f}",
            f"{100 * row['up_idle_fraction']:.1f}",
        ]
        for row in trace.rack_rows()
    ]
    lines.extend(
        _table(["rack", "up_s", "down_s", "cpu_s", "up_MB", "up_idle_%"], rack_rows)
    )

    lines.append("")
    lines.append(f"busiest resources (top {top}):")
    hot = sorted(
        trace.resources, key=lambda r: (-r.busy, r.label)
    )[:top]
    hot_rows = [
        [
            res.label,
            f"{res.busy:.2f}",
            f"{100 * res.utilization(span):.1f}",
            f"{res.nbytes / 1e6:.0f}",
        ]
        for res in hot
    ]
    lines.extend(_table(["resource", "busy_s", "util_%", "MB"], hot_rows))

    lines.append("")
    attribution = trace.path_attribution()
    lines.append(
        "critical path ({} segments): cross-transfer {:.2f} s ({:.0f}%), "
        "intra-transfer {:.2f} s ({:.0f}%), compute {:.2f} s ({:.0f}%), "
        "wait {:.2f} s".format(
            len(trace.path),
            attribution["cross_transfer_s"],
            100 * attribution["cross_transfer_s"] / span,
            attribution["intra_transfer_s"],
            100 * attribution["intra_transfer_s"] / span,
            attribution["compute_s"],
            100 * attribution["compute_s"] / span,
            attribution["wait_s"],
        )
    )
    path_rows = []
    for seg in trace.path:
        if seg.kind == "transfer":
            what = f"n{seg.node}->n{seg.peer}" + (" x-rack" if seg.cross_rack else "")
        else:
            what = f"decode@n{seg.node}"
        path_rows.append(
            [
                f"{seg.start:.2f}",
                f"{seg.end:.2f}",
                seg.job_id,
                what,
                seg.entered_via,
            ]
        )
    lines.extend(_table(["start_s", "end_s", "job", "what", "entered_via"], path_rows))
    return "\n".join(lines)
