"""The multi-process object store service.

Everything before this package runs repair plans in one process — the
byte executor, the discrete-event simulator, even the "live" asyncio
runtime all share a single interpreter, which is exactly how
wire/runtime bugs (EOF mid-frame, token-bucket corruption on dropped
connections, assumed ports) stayed hidden.  This package runs the same
plans across real process boundaries:

* :mod:`~repro.store.coordinator` — metadata, heartbeat failure
  detection, repair orchestration (the namenode).
* :mod:`~repro.store.daemon` — one process per storage node holding
  real block bytes (the datanodes).
* :mod:`~repro.store.client` — PUT/GET/DELETE with client-side
  encoding; data flows client↔daemon, never through the coordinator.
* :mod:`~repro.store.repair` — plan partitioning + daemon-side
  data-driven execution; repair bytes flow daemon→daemon.
* :mod:`~repro.store.launcher` — plain-subprocess harness behind
  ``rpr store up/down/status/kill``.

See ``docs/LIVE.md`` ("Store service") for the architecture tour and
``examples/store_kill_demo.py`` for the headline PUT → SIGKILL →
automatic repair → byte-identical GET walk-through.
"""

from .client import StoreClient, SyncStoreClient
from .coordinator import Coordinator, SCHEMES
from .daemon import StorageDaemon
from .heartbeat import DEFAULT_INTERVAL, FailureDetector, HeartbeatSender, NodeEntry
from .launcher import LauncherError, StoreLauncher
from .messages import (
    PROTOCOL_VERSION,
    Request,
    StoreError,
    StoreProtocolError,
    call,
    read_request,
    send_response,
)
from .repair import (
    NodeAssignment,
    RepairSession,
    ledger_from_reports,
    partition_plan,
    plan_from_dict,
    plan_seed_blocks,
    plan_to_dict,
    stored_block_key,
)

__all__ = [
    "Coordinator",
    "DEFAULT_INTERVAL",
    "FailureDetector",
    "HeartbeatSender",
    "LauncherError",
    "NodeAssignment",
    "NodeEntry",
    "PROTOCOL_VERSION",
    "RepairSession",
    "Request",
    "SCHEMES",
    "StorageDaemon",
    "StoreClient",
    "StoreError",
    "StoreLauncher",
    "StoreProtocolError",
    "SyncStoreClient",
    "call",
    "ledger_from_reports",
    "partition_plan",
    "plan_from_dict",
    "plan_seed_blocks",
    "plan_to_dict",
    "read_request",
    "send_response",
    "stored_block_key",
]
