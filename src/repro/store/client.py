"""Client API: PUT/GET/DELETE real objects against the store service.

The client does the data-path heavy lifting so the coordinator stays a
pure metadata service: it encodes stripes locally with the same
:class:`~repro.rs.RSCode` the cluster is configured for, writes blocks
*directly* to the daemons named by ``put.begin``, and only then commits
— the coordinator independently stats the daemons before accepting.
Reads are the mirror image: ``object.lookup`` for placement + routing,
then data blocks straight from the daemons, reassembled locally.

:class:`StoreClient` is the asyncio API; :class:`SyncStoreClient` wraps
it call-per-``asyncio.run`` for scripts, demos and the CLI.
"""

from __future__ import annotations

import asyncio
import zlib

import numpy as np

from ..rs import get_code
from ..system.objects import ObjectInfo, reassemble, split_into_stripes
from ..telemetry import CLOCK_WALL, TelemetryRecorder
from .messages import StoreError, call
from .repair import stored_block_key

__all__ = ["StoreClient", "SyncStoreClient"]


def _as_bytes_array(data) -> np.ndarray:
    if isinstance(data, (bytes, bytearray, memoryview)):
        data = np.frombuffer(bytes(data), dtype=np.uint8)
    return np.asarray(data, dtype=np.uint8).ravel()


class StoreClient:
    """Asyncio client for one coordinator (and its daemons)."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        recorder: TelemetryRecorder | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.rec = recorder or TelemetryRecorder(
            CLOCK_WALL, meta={"component": "client"}
        )

    async def _coordinator(self, mtype: str, body: dict | None = None) -> dict:
        reply, _ = await call(self.host, self.port, mtype, body)
        return reply

    # -- object operations --------------------------------------------------

    async def put(self, name: str, data) -> dict:
        """Encode, place and commit one object; returns the commit reply."""
        payload = _as_bytes_array(data)
        start = self.rec.now()
        status = await self._coordinator("status")
        n, k = status["code"]["n"], status["code"]["k"]
        code = get_code(n, k)
        stripes = split_into_stripes(payload, n, status["block_size"])
        grant = await self._coordinator(
            "put.begin", {"name": name, "size": int(payload.size), "nstripes": len(stripes)}
        )
        routing = grant["routing"]
        claims = []
        for spec, data_blocks in zip(grant["stripes"], stripes):
            sid = int(spec["sid"])
            placement = {int(bid): node for bid, node in spec["placement"].items()}
            crcs = {}
            writes = []
            for bid, block in enumerate(code.encode(data_blocks)):
                node = placement[bid]
                host, port = routing[str(node)]
                crcs[bid] = zlib.crc32(block.tobytes()) & 0xFFFFFFFF
                writes.append(
                    call(
                        host, port, "block.put",
                        {"key": stored_block_key(sid, bid)},
                        blob=block.data,
                    )
                )
            await asyncio.gather(*writes)
            claims.append({"sid": sid, "crcs": {str(b): c for b, c in crcs.items()}})
        reply = await self._coordinator("put.commit", {"name": name, "stripes": claims})
        self.rec.span(
            f"put:{name}", start, self.rec.now(), category="client",
            op="put", nbytes=int(payload.size),
        )
        self.rec.count("client.put_bytes", int(payload.size))
        return reply

    async def get(self, name: str) -> bytes:
        """Fetch and reassemble one object's bytes (data blocks only)."""
        start = self.rec.now()
        info = await self._coordinator("object.lookup", {"name": name})
        n = info["n"]
        routing = info["routing"]
        stripe_blocks = []
        for spec in info["stripes"]:
            sid = int(spec["sid"])
            missing = set(spec["missing"])
            placement = {int(bid): node for bid, node in spec["placement"].items()}
            blocks = []
            for bid in range(n):
                if bid in missing:
                    raise StoreError(
                        f"object {name!r} is degraded (stripe {sid} block {bid} "
                        f"missing); wait for repair to finish"
                    )
                host, port = routing[str(placement[bid])]
                _, blob = await call(
                    host, port, "block.get", {"key": stored_block_key(sid, bid)}
                )
                blocks.append(np.frombuffer(bytes(blob), dtype=np.uint8))
            stripe_blocks.append(blocks)
        shape = ObjectInfo(
            name=name,
            size=int(info["size"]),
            stripe_ids=tuple(int(s["sid"]) for s in info["stripes"]),
            block_size=int(info["block_size"]),
            n=n,
        )
        out = reassemble(shape, stripe_blocks)
        self.rec.span(
            f"get:{name}", start, self.rec.now(), category="client",
            op="get", nbytes=int(out.size),
        )
        self.rec.count("client.get_bytes", int(out.size))
        return out.tobytes()

    async def delete(self, name: str) -> dict:
        return await self._coordinator("object.delete", {"name": name})

    async def list_objects(self) -> list[dict]:
        return (await self._coordinator("object.list"))["objects"]

    async def status(self) -> dict:
        return await self._coordinator("status")

    # -- service-level helpers ----------------------------------------------

    async def wait_healthy(
        self, *, timeout: float = 30.0, poll: float = 0.2, min_repairs: int = 0
    ) -> dict:
        """Poll until no stripe is degraded (and ``min_repairs`` finished).

        Returns the final status; raises :class:`StoreError` when
        ``timeout`` elapses first — a repair that should have happened
        and didn't is a test failure, not something to wait out forever.
        """
        loop = asyncio.get_event_loop()
        deadline = loop.time() + timeout
        while True:
            status = await self.status()
            healthy = (
                not status["degraded"]
                and not status["repairing"]
                and len(status["repairs"]) >= min_repairs
            )
            if healthy:
                return status
            if loop.time() >= deadline:
                raise StoreError(
                    f"service still degraded after {timeout}s: "
                    f"degraded={status['degraded']} "
                    f"repairs={len(status['repairs'])}/{min_repairs}"
                )
            await asyncio.sleep(poll)

    async def shutdown_service(self) -> None:
        """Gracefully stop every daemon, then the coordinator."""
        status = await self.status()
        for info in status["nodes"].values():
            if info["alive"]:
                try:
                    await call(info["host"], info["port"], "shutdown", attempts=1)
                except (StoreError, ConnectionError, OSError):
                    pass  # a daemon dying mid-shutdown is still shut down
        await self._coordinator("shutdown")


class SyncStoreClient:
    """Blocking facade over :class:`StoreClient` for scripts and the CLI."""

    def __init__(self, host: str, port: int) -> None:
        self._client = StoreClient(host, port)

    def put(self, name: str, data) -> dict:
        return asyncio.run(self._client.put(name, data))

    def get(self, name: str) -> bytes:
        return asyncio.run(self._client.get(name))

    def delete(self, name: str) -> dict:
        return asyncio.run(self._client.delete(name))

    def list_objects(self) -> list[dict]:
        return asyncio.run(self._client.list_objects())

    def status(self) -> dict:
        return asyncio.run(self._client.status())

    def wait_healthy(self, **kwargs) -> dict:
        return asyncio.run(self._client.wait_healthy(**kwargs))

    def shutdown_service(self) -> None:
        asyncio.run(self._client.shutdown_service())
