"""Client API: PUT/GET/DELETE real objects against the store service.

The client does the data-path heavy lifting so the coordinator stays a
pure metadata service: it encodes stripes locally with the same
:class:`~repro.rs.RSCode` the cluster is configured for, writes blocks
*directly* to the daemons named by ``put.begin``, and only then commits
— the coordinator independently stats the daemons before accepting.
Reads are the mirror image: ``object.lookup`` for placement + routing,
then data blocks straight from the daemons, reassembled locally.

:class:`StoreClient` is the asyncio API; :class:`SyncStoreClient` wraps
it call-per-``asyncio.run`` for scripts, demos and the CLI.
"""

from __future__ import annotations

import asyncio
import time
import zlib

import numpy as np

from ..cluster import Cluster, Node, Rack
from ..repair import ExecutionError, execute_plan
from ..repair.plan import block_key
from ..rs import get_code
from ..system.objects import ObjectInfo, reassemble, split_into_stripes
from ..telemetry import CLOCK_WALL, TelemetryRecorder, TraceContext
from .messages import StoreError, call
from .repair import plan_from_dict, stored_block_key

__all__ = ["StoreClient", "SyncStoreClient"]


def _cluster_from_dict(data: dict) -> Cluster:
    """Rebuild the coordinator's topology from a lookup reply.

    Only structure travels (node → rack); names are cosmetic and a
    client-side plan execution never looks at them.
    """
    by_rack: dict[int, list[Node]] = {}
    for nid, rack in data["nodes"].items():
        by_rack.setdefault(int(rack), []).append(
            Node(node_id=int(nid), rack_id=int(rack))
        )
    return Cluster(
        Rack(rack_id=rid, nodes=sorted(nodes, key=lambda nd: nd.node_id))
        for rid, nodes in sorted(by_rack.items())
    )


def _as_bytes_array(data) -> np.ndarray:
    if isinstance(data, (bytes, bytearray, memoryview)):
        data = np.frombuffer(bytes(data), dtype=np.uint8)
    return np.asarray(data, dtype=np.uint8).ravel()


class StoreClient:
    """Asyncio client for one coordinator (and its daemons)."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        recorder: TelemetryRecorder | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.rec = recorder if recorder is not None else TelemetryRecorder(
            CLOCK_WALL, meta={"component": "client", "node": "client"}
        )
        if recorder is None:
            # Own recorder: anchor t=0 so assembled traces can align
            # this client's spans with the service processes'.
            self.rec.set_origin(time.monotonic())

    async def _coordinator(
        self, mtype: str, body: dict | None = None, *, ctx: TraceContext | None = None
    ) -> dict:
        reply, _ = await call(self.host, self.port, mtype, body, ctx=ctx)
        return reply

    # -- object operations --------------------------------------------------

    async def put(self, name: str, data) -> dict:
        """Encode, place and commit one object; returns the commit reply."""
        payload = _as_bytes_array(data)
        ctx = TraceContext.root()
        start = self.rec.raw_now()
        status = await self._coordinator("status", ctx=ctx.child())
        n, k = status["code"]["n"], status["code"]["k"]
        code = get_code(n, k)
        stripes = split_into_stripes(payload, n, status["block_size"])
        grant = await self._coordinator(
            "put.begin",
            {"name": name, "size": int(payload.size), "nstripes": len(stripes)},
            ctx=ctx.child(),
        )
        routing = grant["routing"]
        claims = []
        for spec, data_blocks in zip(grant["stripes"], stripes):
            sid = int(spec["sid"])
            placement = {int(bid): node for bid, node in spec["placement"].items()}
            crcs = {}
            writes = []
            for bid, block in enumerate(code.encode(data_blocks)):
                node = placement[bid]
                host, port = routing[str(node)]
                crcs[bid] = zlib.crc32(block.tobytes()) & 0xFFFFFFFF
                writes.append(
                    call(
                        host, port, "block.put",
                        {"key": stored_block_key(sid, bid)},
                        blob=block.data,
                        ctx=ctx.child(),
                    )
                )
            await asyncio.gather(*writes)
            claims.append({"sid": sid, "crcs": {str(b): c for b, c in crcs.items()}})
        reply = await self._coordinator(
            "put.commit", {"name": name, "stripes": claims}, ctx=ctx.child()
        )
        self.rec.span(
            f"put:{name}", start, self.rec.raw_now(), category="client",
            op="put", nbytes=int(payload.size), **ctx.attrs(),
        )
        self.rec.count("client.put_bytes", int(payload.size))
        return reply

    async def get(self, name: str, *, degraded: bool = False) -> bytes:
        """Fetch and reassemble one object's bytes (data blocks only).

        With ``degraded=True`` the read survives dead daemons: lost data
        blocks are reconstructed client-side — preferably by executing
        the scheme's coordinator-planned degraded-read plan on fetched
        helper blocks, else by a full decode over any ``n`` survivors —
        and every reconstructed block is verified against its write-time
        CRC before the bytes are returned.
        """
        data, _ = await self.get_with_report(name, degraded=degraded)
        return data

    async def get_with_report(
        self, name: str, *, degraded: bool = False
    ) -> tuple[bytes, dict]:
        """Like :meth:`get`, plus a report of what reconstruction ran.

        The report carries ``degraded`` (any block was reconstructed)
        and ``reconstructed``: one ``{"sid", "block", "mode"}`` entry
        per rebuilt block, ``mode`` being ``"plan"`` (scheme plan
        executed locally) or ``"decode"`` (full RS decode fallback).
        """
        try:
            return await self._get_once(name, degraded=degraded)
        except StoreError as exc:
            if not degraded or "unrecoverable" not in str(exc):
                raise
            # "Unrecoverable" mid-outage is usually a transient mass
            # false-death: the detector marked busy-but-alive nodes dead
            # between heartbeats, so the degraded lookup routed nothing.
            # The next beat revives them — one retry turns a spurious
            # hard failure into a slow read; genuinely lost stripes fail
            # again.
            await asyncio.sleep(0.2)
            return await self._get_once(name, degraded=degraded)

    async def _get_once(
        self, name: str, *, degraded: bool = False
    ) -> tuple[bytes, dict]:
        ctx = TraceContext.root()
        start = self.rec.raw_now()
        info = await self._coordinator(
            "object.lookup", {"name": name, "degraded": degraded}, ctx=ctx.child()
        )
        n = info["n"]
        cluster = (
            _cluster_from_dict(info["cluster"]) if "cluster" in info else None
        )
        code = get_code(n, int(info["k"])) if degraded else None
        stripe_blocks = []
        reconstructed: list[dict] = []
        for spec in info["stripes"]:
            if degraded:
                blocks, events = await self._degraded_stripe(
                    name, info, spec, cluster, code, ctx=ctx
                )
                reconstructed.extend(events)
            else:
                blocks = await self._healthy_stripe(name, info, spec, n, ctx=ctx)
            stripe_blocks.append(blocks)
        shape = ObjectInfo(
            name=name,
            size=int(info["size"]),
            stripe_ids=tuple(int(s["sid"]) for s in info["stripes"]),
            block_size=int(info["block_size"]),
            n=n,
        )
        out = reassemble(shape, stripe_blocks)
        self.rec.span(
            f"get:{name}", start, self.rec.raw_now(), category="client",
            op="get", nbytes=int(out.size), degraded=bool(reconstructed),
            **ctx.attrs(),
        )
        self.rec.count("client.get_bytes", int(out.size))
        if reconstructed:
            self.rec.count("client.degraded_gets")
        report = {
            "name": name,
            "degraded": bool(reconstructed),
            "reconstructed": reconstructed,
        }
        return out.tobytes(), report

    async def _healthy_stripe(
        self, name: str, info: dict, spec: dict, n: int,
        *, ctx: TraceContext | None = None,
    ) -> list[np.ndarray]:
        """One stripe's data blocks, fetched concurrently; strict on loss."""
        sid = int(spec["sid"])
        missing = set(spec["missing"])
        placement = {int(bid): node for bid, node in spec["placement"].items()}
        for bid in range(n):
            if bid in missing:
                raise StoreError(
                    f"object {name!r} is degraded (stripe {sid} block {bid} "
                    f"missing); retry with degraded=True to reconstruct, or "
                    f"wait for repair to finish"
                )

        async def fetch(bid: int) -> np.ndarray:
            host, port = info["routing"][str(placement[bid])]
            _, blob = await call(
                host, port, "block.get", {"key": stored_block_key(sid, bid)},
                ctx=ctx.child() if ctx is not None else None,
            )
            return np.frombuffer(bytes(blob), dtype=np.uint8)

        # gather preserves argument order, so blocks land data-order
        # even though the fetches race.
        return list(await asyncio.gather(*(fetch(bid) for bid in range(n))))

    async def _degraded_stripe(
        self, name: str, info: dict, spec: dict, cluster: Cluster, code,
        *, ctx: TraceContext | None = None,
    ) -> tuple[list[np.ndarray], list[dict]]:
        """One stripe's data blocks, reconstructing whatever is lost."""
        sid = int(spec["sid"])
        n = code.n
        routing = info["routing"]
        placement = {int(bid): node for bid, node in spec["placement"].items()}
        checksums = {
            int(bid): crc for bid, crc in spec.get("checksums", {}).items()
        }
        missing = set(spec["missing"])

        async def fetch(bid: int) -> np.ndarray | None:
            route = routing.get(str(placement[bid]))
            if bid in missing or route is None:
                return None
            try:
                _, blob = await call(
                    route[0], route[1], "block.get",
                    {"key": stored_block_key(sid, bid)}, attempts=2,
                    ctx=ctx.child() if ctx is not None else None,
                )
            except (StoreError, ConnectionError, OSError):
                # An undetected death looks like a refused connection;
                # treat the block as lost and reconstruct around it.
                return None
            return np.frombuffer(bytes(blob), dtype=np.uint8)

        data_blocks = list(
            await asyncio.gather(*(fetch(bid) for bid in range(n)))
        )
        lost = [bid for bid in range(n) if data_blocks[bid] is None]
        if not lost:
            return data_blocks, []

        recovered: dict[int, np.ndarray] = {}
        mode = "plan"
        plan_info = spec.get("degraded_plan")
        if plan_info is not None and lost == [int(plan_info["block"])]:
            recovered = await self._run_degraded_plan(
                sid, plan_info, routing, cluster, ctx=ctx
            )
        if not recovered:
            # Fallback: grab parity too and decode from any n survivors.
            mode = "decode"
            parity = list(
                await asyncio.gather(*(fetch(bid) for bid in range(n, code.width)))
            )
            available = {
                bid: block
                for bid, block in enumerate(data_blocks + parity)
                if block is not None
            }
            if len(available) < n:
                raise StoreError(
                    f"object {name!r} stripe {sid} is unrecoverable: only "
                    f"{len(available)} of {code.width} blocks reachable, "
                    f"need {n}"
                )
            recovered = code.decode_many(available, lost)
        for bid in lost:
            block = np.ascontiguousarray(recovered[bid], dtype=np.uint8)
            want = checksums.get(bid)
            got = zlib.crc32(block.tobytes()) & 0xFFFFFFFF
            if want is not None and got != want:
                raise StoreError(
                    f"object {name!r} stripe {sid} block {bid}: degraded "
                    f"reconstruction produced wrong bytes "
                    f"(crc {got:#x} != {want:#x})"
                )
            data_blocks[bid] = block
        events = [{"sid": sid, "block": bid, "mode": mode} for bid in lost]
        return data_blocks, events

    async def _run_degraded_plan(
        self, sid: int, plan_info: dict, routing: dict, cluster: Cluster,
        *, ctx: TraceContext | None = None,
    ) -> dict[int, np.ndarray]:
        """Fetch a plan's helper blocks and execute it locally.

        Returns ``{block_id: payload}`` on success, ``{}`` when any
        helper is unreachable or execution fails — the caller then falls
        back to the full-decode path.
        """
        target = int(plan_info["block"])
        plan = plan_from_dict(plan_info["plan"])
        seeds = {int(bid): int(node) for bid, node in plan_info["seeds"].items()}

        async def fetch_seed(bid: int, node: int):
            route = routing.get(str(node))
            if route is None:
                return bid, node, None
            try:
                _, blob = await call(
                    route[0], route[1], "block.get",
                    {"key": stored_block_key(sid, bid)}, attempts=2,
                    ctx=ctx.child() if ctx is not None else None,
                )
            except (StoreError, ConnectionError, OSError):
                return bid, node, None
            return bid, node, np.frombuffer(bytes(blob), dtype=np.uint8)

        fetched = await asyncio.gather(
            *(fetch_seed(bid, node) for bid, node in seeds.items())
        )
        store: dict[int, dict[str, np.ndarray]] = {}
        nbytes = 0
        for bid, node, payload in fetched:
            if payload is None:
                return {}
            nbytes += int(payload.nbytes)
            store.setdefault(node, {})[block_key(bid)] = payload
        try:
            result = execute_plan(plan, cluster, store)
        except ExecutionError:
            return {}
        self.rec.count("client.degraded_helper_bytes", nbytes)
        return {target: np.asarray(result.recovered[target], dtype=np.uint8)}

    async def delete(self, name: str) -> dict:
        return await self._coordinator("object.delete", {"name": name})

    async def list_objects(self) -> list[dict]:
        return (await self._coordinator("object.list"))["objects"]

    async def status(self) -> dict:
        return await self._coordinator("status")

    async def stats(self) -> dict:
        """Scrape the whole cluster's metrics plane in one call.

        Hits the coordinator's ``stats`` RPC, then every daemon the
        coordinator believes is alive, in parallel.  A daemon that died
        between the status reply and our scrape shows up as
        ``{"error": ...}`` instead of a snapshot — the scrape itself
        must never fail because one node did.
        """
        status = await self.status()
        coord = await self._coordinator("stats")

        async def scrape(nid: str, info: dict) -> tuple[str, dict]:
            if not info["alive"]:
                return nid, {"error": "node is down", "alive": False}
            try:
                body, _ = await call(
                    info["host"], info["port"], "stats", attempts=1
                )
                return nid, body
            except (StoreError, ConnectionError, OSError) as exc:
                return nid, {"error": str(exc), "alive": True}

        pairs = await asyncio.gather(
            *(scrape(nid, info) for nid, info in status["nodes"].items())
        )
        return {"coordinator": coord, "nodes": dict(sorted(pairs))}

    # -- service-level helpers ----------------------------------------------

    async def wait_healthy(
        self, *, timeout: float = 30.0, poll: float = 0.2, min_repairs: int = 0
    ) -> dict:
        """Poll until no stripe is degraded (and ``min_repairs`` finished).

        Returns the final status; raises :class:`StoreError` when
        ``timeout`` elapses first — a repair that should have happened
        and didn't is a test failure, not something to wait out forever.
        Fails *fast* (no timeout wait) when the coordinator reports a
        fatal repair error — too many losses or no live spares are
        planning-level verdicts that more polling cannot change.
        """
        loop = asyncio.get_event_loop()
        deadline = loop.time() + timeout
        while True:
            status = await self.status()
            fatal = [
                e for e in status.get("repair_errors", []) if e.get("fatal")
            ]
            if fatal:
                details = "; ".join(
                    f"stripe {e['sid']}: {e['error']}" for e in fatal
                )
                raise StoreError(
                    f"service cannot self-heal ({details}); waiting will not "
                    f"fix it — restore nodes or accept data loss"
                )
            healthy = (
                not status["degraded"]
                and not status["repairing"]
                and len(status["repairs"]) >= min_repairs
            )
            if healthy:
                return status
            if loop.time() >= deadline:
                raise StoreError(
                    f"service still degraded after {timeout}s: "
                    f"degraded={status['degraded']} "
                    f"repairs={len(status['repairs'])}/{min_repairs}"
                )
            await asyncio.sleep(poll)

    async def shutdown_service(self) -> None:
        """Gracefully stop every daemon, then the coordinator."""
        status = await self.status()
        for info in status["nodes"].values():
            if info["alive"]:
                try:
                    await call(info["host"], info["port"], "shutdown", attempts=1)
                except (StoreError, ConnectionError, OSError):
                    pass  # a daemon dying mid-shutdown is still shut down
        await self._coordinator("shutdown")


class SyncStoreClient:
    """Blocking facade over :class:`StoreClient` for scripts and the CLI."""

    def __init__(self, host: str, port: int, *, recorder=None) -> None:
        self._client = StoreClient(host, port, recorder=recorder)

    def put(self, name: str, data) -> dict:
        return asyncio.run(self._client.put(name, data))

    def get(self, name: str, *, degraded: bool = False) -> bytes:
        return asyncio.run(self._client.get(name, degraded=degraded))

    def get_with_report(
        self, name: str, *, degraded: bool = False
    ) -> tuple[bytes, dict]:
        return asyncio.run(
            self._client.get_with_report(name, degraded=degraded)
        )

    def delete(self, name: str) -> dict:
        return asyncio.run(self._client.delete(name))

    def list_objects(self) -> list[dict]:
        return asyncio.run(self._client.list_objects())

    def status(self) -> dict:
        return asyncio.run(self._client.status())

    def stats(self) -> dict:
        return asyncio.run(self._client.stats())

    def wait_healthy(self, **kwargs) -> dict:
        return asyncio.run(self._client.wait_healthy(**kwargs))

    def shutdown_service(self) -> None:
        asyncio.run(self._client.shutdown_service())
