"""The coordinator: metadata, liveness, and repair orchestration.

The namenode half of the store service.  It owns every decision the
daemons are too dumb to make:

* **Metadata** — object → stripes → block placement (the same
  :class:`~repro.cluster.Placement` machinery and per-stripe
  rack/slot rotation as the in-process :class:`repro.system.StorageSystem`),
  plus write-time CRC32 per block, which later *proves* a repair rebuilt
  the exact bytes.
* **Liveness** — a :class:`~repro.store.heartbeat.FailureDetector` fed
  by daemon heartbeats; a SIGKILLed daemon is noticed as silence.
* **Repair** — on a death, affected stripes are re-planned with the
  configured scheme (traditional / CAR / RPR — the paper's three), the
  plan is partitioned across surviving daemons
  (:func:`~repro.store.repair.partition_plan`), executed by them with
  repair bytes flowing daemon→daemon, and cross-checked two ways:
  rebuilt CRCs against write-time CRCs (byte-exactness) and the
  measured transfer ledger against :func:`~repro.repair.simulate_repair`'s
  prediction for the same plan (the simulator cross-validation the live
  runtime already does in one process).

Clients never proxy bytes through the coordinator: ``put.begin`` hands
out placements and routing, the client talks to daemons directly, and
``put.commit`` verifies the daemons actually hold what the client
claims to have written before any metadata becomes durable.
"""

from __future__ import annotations

import argparse
import asyncio
import itertools
import json
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from ..cluster import Cluster, Placement, RPRPlacement, SIMICS_BANDWIDTH
from ..live.transport import TcpStream, cancel_and_wait
from ..multistripe.store import rotate_placement
from ..repair import (
    CARRepair,
    RepairContext,
    RepairPlanningError,
    RPRScheme,
    TraditionalRepair,
    pick_live_spares,
    plan_degraded_read,
    simulate_repair,
)
from ..rs import get_code
from ..telemetry import (
    CLOCK_WALL,
    StatsRegistry,
    StreamingRecorder,
    TelemetryRecorder,
    TraceContext,
)
from .heartbeat import FailureDetector
from .messages import Request, StoreError, call, serve_connection
from .repair import (
    ledger_from_reports,
    partition_plan,
    plan_seed_blocks,
    plan_to_dict,
    stored_block_key,
)

__all__ = ["Coordinator", "SCHEMES", "main"]

SCHEMES = {
    "traditional": TraditionalRepair,
    "car": CARRepair,
    "rpr": RPRScheme,
}

#: Default per-repair deadline handed to daemons (seconds).
DEFAULT_REPAIR_TIMEOUT = 30.0


@dataclass
class StripeMeta:
    """Coordinator-side record of one stored stripe."""

    sid: int
    placement: Placement
    checksums: dict[int, int] = field(default_factory=dict)
    missing: set[int] = field(default_factory=set)

    def to_dict(self) -> dict:
        return {
            "sid": self.sid,
            "placement": {
                str(bid): node for bid, node in self.placement.block_to_node.items()
            },
            "missing": sorted(self.missing),
            "checksums": {str(bid): crc for bid, crc in self.checksums.items()},
        }


class Coordinator:
    """The store service's single metadata/orchestration process."""

    def __init__(
        self,
        cluster: Cluster,
        code,
        *,
        scheme: str = "rpr",
        block_size: int = 64 * 1024,
        host: str = "127.0.0.1",
        suspect_after: float = 2.0,
        sweep_interval: float = 0.25,
        repair_timeout: float = DEFAULT_REPAIR_TIMEOUT,
        bandwidth=SIMICS_BANDWIDTH,
        recorder: TelemetryRecorder | None = None,
    ) -> None:
        if scheme not in SCHEMES:
            raise ValueError(f"unknown scheme {scheme!r}; expected one of {sorted(SCHEMES)}")
        self.cluster = cluster
        self.code = code
        self.scheme_name = scheme
        self.scheme = SCHEMES[scheme]()
        self.block_size = block_size
        self.host = host
        self.sweep_interval = sweep_interval
        self.repair_timeout = repair_timeout
        self.bandwidth = bandwidth
        self.port: int | None = None
        self.rec = recorder if recorder is not None else TelemetryRecorder(
            CLOCK_WALL, meta={"component": "coordinator", "scheme": scheme}
        )
        if recorder is None:
            # Own recorder: anchor t=0 so assembly can align this
            # process's spans against the daemons' (meta["origin_unix"]).
            self.rec.set_origin(time.monotonic())
        #: Live metrics for the ``stats`` RPC — always on.
        self.stats = StatsRegistry("coordinator")
        self.detector = FailureDetector(suspect_after=suspect_after)
        self.stripes: dict[int, StripeMeta] = {}
        self.objects: dict[str, dict] = {}
        self.repairs: list[dict] = []
        #: Repair failures per stripe, for client fail-fast: ``fatal``
        #: marks planning-level outcomes (too many losses, no spares)
        #: that waiting cannot fix.  Cleared per stripe on success.
        self.repair_errors: list[dict] = []
        self._pending_puts: dict[str, dict] = {}
        self._sid_counter = itertools.count()
        self._rid_counter = itertools.count()
        self._base_placement = RPRPlacement().place(cluster, code.n, code.k)
        self._server: asyncio.base_events.Server | None = None
        self._conns: set[asyncio.Task] = set()
        self._sweep_task: asyncio.Task | None = None
        self._repair_lock = asyncio.Lock()
        self._repair_tasks: set[asyncio.Task] = set()
        self._stopping = asyncio.Event()

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> int:
        if self._server is not None:
            raise RuntimeError("coordinator already started")
        self._server = await asyncio.start_server(self._on_connect, self.host, 0)
        self.port = self._server.sockets[0].getsockname()[1]
        self._sweep_task = asyncio.ensure_future(self._sweep_loop())
        return self.port

    async def run_until_shutdown(self) -> None:
        await self._stopping.wait()

    async def aclose(self) -> None:
        if self._sweep_task is not None:
            # cancel_and_wait, not cancel+await: repair RPCs can absorb a
            # single cancel and leave teardown parked forever.
            await cancel_and_wait(self._sweep_task)
            self._sweep_task = None
        pending = {t for t in self._repair_tasks if not t.done()}
        while pending:
            for task in pending:
                task.cancel()
            await asyncio.wait(pending, timeout=0.25)
            pending = {t for t in pending if not t.done()}
        self._repair_tasks.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        conns = {t for t in self._conns if not t.done()}
        if conns:
            # One beat for in-flight answers (the shutdown ack included)
            # to flush before stragglers are cancelled.
            await asyncio.wait(conns, timeout=0.25)
            conns = {t for t in conns if not t.done()}
        while conns:
            for task in conns:
                task.cancel()
            await asyncio.wait(conns, timeout=0.25)
            conns = {t for t in conns if not t.done()}
        self._conns.clear()

    # -- liveness & repair orchestration ------------------------------------

    async def _sweep_loop(self) -> None:
        while True:
            await asyncio.sleep(self.sweep_interval)
            self.on_nodes_dead([e.node_id for e in self.detector.sweep()])

    def on_nodes_dead(self, node_ids) -> list[int]:
        """Mark blocks on dead nodes missing; kick off repair if needed.

        Returns the affected stripe ids.  Public so tests (and an
        impatient operator RPC) can force the reaction without waiting
        for the sweep timer.
        """
        affected = []
        for node_id in node_ids:
            self.rec.event("node.dead", category="fault", node=node_id)
            for meta in self.stripes.values():
                for bid, node in meta.placement.block_to_node.items():
                    if node == node_id and bid not in meta.missing:
                        meta.missing.add(bid)
                        affected.append(meta.sid)
        if affected:
            task = asyncio.ensure_future(self._repair_degraded())
            self._repair_tasks.add(task)
            task.add_done_callback(self._repair_tasks.discard)
        return affected

    async def _repair_degraded(self) -> None:
        # One repair wave at a time; each stripe sequentially within it
        # (matching the paper's serial per-stripe repair accounting).
        # Most-at-risk first: a stripe one failure from data loss jumps
        # every singly-degraded stripe in the queue.
        async with self._repair_lock:
            order = sorted(
                (sid for sid, meta in self.stripes.items() if meta.missing),
                key=lambda sid: (-len(self.stripes[sid].missing), sid),
            )
            for sid in order:
                if sid in self.stripes and self.stripes[sid].missing:
                    try:
                        await self._repair_stripe(sid)
                    except (StoreError, RepairPlanningError, ConnectionError, OSError) as exc:
                        fatal = isinstance(exc, RepairPlanningError)
                        self.rec.event(
                            "repair.failed", category="fault", sid=sid,
                            error=str(exc), fatal=fatal,
                        )
                        self.repair_errors.append({
                            "sid": sid,
                            "error": f"{type(exc).__name__}: {exc}",
                            "fatal": fatal,
                        })

    async def _repair_stripe(self, sid: int) -> dict:
        meta = self.stripes[sid]
        failed = tuple(sorted(meta.missing))
        alive = self.detector.alive_ids()
        dead = set(self.cluster.node_ids()) - alive
        override = pick_live_spares(
            self.cluster, meta.placement, failed, dead_nodes=dead
        )
        ctx = RepairContext(
            code=self.code,
            cluster=self.cluster,
            placement=meta.placement,
            failed_blocks=failed,
            block_size=self.block_size,
            recovery_override=override,
        )
        plan = self.scheme.plan(ctx)
        outcome = simulate_repair(self.scheme, ctx, self.bandwidth)
        parts = partition_plan(plan, meta.placement, sid, failed)
        routing = {}
        for node_id in parts:
            entry = self.detector.entry(node_id)
            if entry is None or not entry.alive:
                raise StoreError(
                    f"repair of stripe {sid} needs node {node_id}, which is dead"
                )
            routing[node_id] = [entry.host, entry.port]
        rid = f"r{next(self._rid_counter)}"
        # Every heartbeat-triggered repair is a trace entry point: the
        # coordinator roots a fresh trace here and each daemon's
        # repair.exec hop rides the RPC header, so the assembled tree
        # hangs every daemon's repair work under this repair root.
        ctx = TraceContext.root()
        start = self.rec.raw_now()
        results = await asyncio.gather(
            *(
                call(
                    *routing[node_id],
                    "repair.exec",
                    {
                        "rid": rid,
                        "assignment": part.to_dict(),
                        "routing": routing,
                        "block_size": self.block_size,
                        "timeout": self.repair_timeout,
                    },
                    timeout=self.repair_timeout + 10.0,
                    ctx=ctx.child(),
                )
                for node_id, part in parts.items()
            )
        )
        reports = [body for body, _blob in results]

        # Byte-exactness: every rebuilt block must carry its write-time CRC.
        crc_ok = True
        rebuilt = 0
        for report in reports:
            for committed in report["committed"]:
                bid = int(committed["block_id"])
                rebuilt += 1
                if committed["crc"] != meta.checksums[bid]:
                    crc_ok = False
                    self.rec.event(
                        "repair.crc_mismatch", category="fault",
                        sid=sid, block=bid, rid=rid,
                    )
        if rebuilt != len(failed):
            raise StoreError(
                f"repair {rid} committed {rebuilt} blocks, expected {len(failed)}"
            )
        if not crc_ok:
            raise StoreError(f"repair {rid} rebuilt wrong bytes for stripe {sid}")

        # Ledger cross-check: measured daemon→daemon traffic vs simulator.
        measured = ledger_from_reports(
            self.cluster, [r for report in reports for r in report["reports"]]
        )
        record = {
            "rid": rid,
            "sid": sid,
            "scheme": self.scheme_name,
            "failed_blocks": list(failed),
            "targets": {str(bid): node for bid, node in override},
            "measured": measured,
            "simulated": {
                "cross_rack_bytes": int(outcome.cross_rack_bytes),
                "intra_rack_bytes": int(outcome.intra_rack_bytes),
                "repair_time": outcome.total_repair_time,
            },
            "ledger_match": measured["cross_rack_bytes"]
            == int(outcome.cross_rack_bytes),
            "wall_seconds": self.rec.raw_now() - start,
        }
        self.repairs.append(record)
        self.rec.span(
            f"repair:{rid}", start, self.rec.raw_now(), category="repair",
            rid=rid, sid=sid, scheme=self.scheme_name,
            cross_rack_bytes=measured["cross_rack_bytes"],
            ledger_match=record["ledger_match"],
            **ctx.attrs(),
        )
        self.stats.count("repairs_done")
        self.stats.count("repair_bytes_cross_rack", measured["cross_rack_bytes"])
        self.stats.latency("repair.stripe", record["wall_seconds"])

        mapping = dict(meta.placement.block_to_node)
        for bid, target in override:
            mapping[bid] = target
        meta.placement = Placement(
            n=self.code.n, k=self.code.k, block_to_node=mapping
        )
        meta.missing.clear()
        self.repair_errors = [e for e in self.repair_errors if e["sid"] != sid]
        return record

    # -- RPC dispatch -------------------------------------------------------

    async def _on_connect(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conns.add(task)
        try:
            await serve_connection(TcpStream(reader, writer), self._dispatch)
        except asyncio.CancelledError:
            # Shut down mid-request: the peer already sees the dropped
            # connection; ending quietly keeps teardown log-clean.
            pass
        finally:
            self._conns.discard(task)

    async def _dispatch(self, request: Request):
        handler = getattr(self, "_rpc_" + request.mtype.replace(".", "_"), None)
        if handler is None:
            raise StoreError(f"coordinator: unknown rpc {request.mtype!r}")
        if request.ctx is not None:
            # Adopt the caller's hop context: our span carries its id, so
            # the assembled tree links caller span -> this rpc span.
            request.server_ctx = request.ctx
        start = time.monotonic()
        try:
            return await handler(request)
        finally:
            elapsed = time.monotonic() - start
            if request.mtype != "heartbeat":  # beats would swamp the stats
                self.stats.count(f"rpc:{request.mtype}")
                self.stats.latency(request.mtype, elapsed)
            if self.rec and request.server_ctx is not None:
                self.rec.span(
                    f"rpc:{request.mtype}", start, start + elapsed,
                    category="rpc", **request.server_ctx.attrs(),
                )

    async def _rpc_heartbeat(self, request: Request):
        body = request.body
        meta = {k: v for k, v in body.items() if k not in ("node_id", "host", "port")}
        self.detector.beat(
            int(body["node_id"]), body["host"], int(body["port"]), meta
        )
        return {"nodes": len(self.detector.nodes)}, None

    async def _rpc_status(self, request: Request):
        return {
            "scheme": self.scheme_name,
            "code": {"n": self.code.n, "k": self.code.k},
            "block_size": self.block_size,
            "cluster": {
                "racks": self.cluster.num_racks,
                "nodes": self.cluster.num_nodes,
            },
            "nodes": self.detector.to_dict(),
            "objects": {
                name: {"size": info["size"], "stripes": info["stripe_ids"]}
                for name, info in self.objects.items()
            },
            "degraded": sorted(
                sid for sid, meta in self.stripes.items() if meta.missing
            ),
            "repairing": bool(self._repair_tasks),
            "repairs": self.repairs,
            "repair_errors": self.repair_errors,
        }, None

    def _routing(self, node_ids) -> dict:
        routing = {}
        for node_id in node_ids:
            entry = self.detector.entry(node_id)
            if entry is None or not entry.alive:
                raise StoreError(f"node {node_id} is not alive")
            routing[str(node_id)] = [entry.host, entry.port]
        return routing

    async def _rpc_put_begin(self, request: Request):
        body = request.body
        name, size, nstripes = body["name"], int(body["size"]), int(body["nstripes"])
        if name in self.objects or name in self._pending_puts:
            raise StoreError(f"object {name!r} already exists")
        if nstripes < 1:
            raise StoreError("object must span at least one stripe")
        alive = self.detector.alive_ids()
        stripes = []
        for _ in range(nstripes):
            sid = next(self._sid_counter)
            placement = rotate_placement(
                self.cluster,
                self._base_placement,
                rack_offset=sid % self.cluster.num_racks,
                slot_offset=sid // self.cluster.num_racks,
            )
            lands_on = set(placement.block_to_node.values())
            if not lands_on <= alive:
                raise StoreError(
                    f"stripe {sid} would land on dead nodes "
                    f"{sorted(lands_on - alive)}; repair or restart them first"
                )
            stripes.append((sid, placement))
        self._pending_puts[name] = {"size": size, "stripes": stripes}
        involved = {n for _, p in stripes for n in p.block_to_node.values()}
        return {
            "name": name,
            "block_size": self.block_size,
            "n": self.code.n,
            "k": self.code.k,
            "stripes": [
                {
                    "sid": sid,
                    "placement": {
                        str(bid): node
                        for bid, node in placement.block_to_node.items()
                    },
                }
                for sid, placement in stripes
            ],
            "routing": self._routing(involved),
        }, None

    async def _rpc_put_commit(self, request: Request):
        body = request.body
        name = body["name"]
        pending = self._pending_puts.get(name)
        if pending is None:
            raise StoreError(f"no pending put for object {name!r}")
        claimed = {int(s["sid"]): {int(b): int(c) for b, c in s["crcs"].items()}
                   for s in body["stripes"]}
        # Trust nothing: stat the daemons and compare CRCs before the
        # metadata becomes durable.
        for sid, placement in pending["stripes"]:
            if set(claimed.get(sid, {})) != set(range(self.code.width)):
                raise StoreError(f"put.commit missing CRCs for stripe {sid}")
            by_node: dict[int, list[int]] = {}
            for bid, node in placement.block_to_node.items():
                by_node.setdefault(node, []).append(bid)
            for node, bids in by_node.items():
                entry = self.detector.entry(node)
                if entry is None or not entry.alive:
                    raise StoreError(f"node {node} died during put of {name!r}")
                keys = {stored_block_key(sid, bid): bid for bid in bids}
                found, _ = await call(
                    entry.host, entry.port, "block.stat", {"keys": list(keys)}
                )
                for key, bid in keys.items():
                    stat = found["found"].get(key)
                    if stat is None:
                        raise StoreError(
                            f"daemon {node} holds no block {key!r}; "
                            f"client must rewrite before committing"
                        )
                    if stat["crc"] != claimed[sid][bid]:
                        raise StoreError(
                            f"daemon {node} holds different bytes for {key!r}"
                        )
        for sid, placement in pending["stripes"]:
            self.stripes[sid] = StripeMeta(
                sid=sid, placement=placement, checksums=claimed[sid]
            )
        self.objects[name] = {
            "size": pending["size"],
            "stripe_ids": [sid for sid, _ in pending["stripes"]],
        }
        del self._pending_puts[name]
        self.rec.count("coordinator.objects_put")
        return {"name": name, "stripes": len(claimed)}, None

    def _degraded_plan(self, meta: StripeMeta, alive: set[int]) -> dict | None:
        """A client-executable degraded-read plan for one stripe, or None.

        Plannable when exactly one *data* block is unreachable: the
        scheme plans its reconstruction targeted at the dead holder's
        slot (always in the topology, holds nothing), and the client
        substitutes itself for that node when executing.  Multi-data
        loss or unplannable layouts return None — the client falls back
        to a full ``decode_many`` over any ``n`` survivors.
        """
        dead_blocks = {
            bid for bid, node in meta.placement.block_to_node.items()
            if bid in meta.missing or node not in alive
        }
        lost_data = sorted(bid for bid in dead_blocks if bid < self.code.n)
        if len(lost_data) != 1:
            return None
        target = lost_data[0]
        try:
            ctx = RepairContext(
                code=self.code,
                cluster=self.cluster,
                placement=meta.placement,
                failed_blocks=(target,),
                block_size=self.block_size,
                unavailable_blocks=tuple(sorted(dead_blocks - {target})),
            )
            plan = plan_degraded_read(
                self.scheme, ctx, meta.placement.node_of(target)
            )
            seeds = plan_seed_blocks(plan)
        except (RepairPlanningError, StoreError):
            return None
        if any(node not in alive for node in seeds.values()):
            return None
        return {
            "block": target,
            "plan": plan_to_dict(plan),
            "seeds": {str(bid): node for bid, node in seeds.items()},
        }

    async def _rpc_object_lookup(self, request: Request):
        name = request.body["name"]
        degraded = bool(request.body.get("degraded"))
        info = self.objects.get(name)
        if info is None:
            raise StoreError(f"no object {name!r}")
        stripes = [self.stripes[sid].to_dict() for sid in info["stripe_ids"]]
        involved = {
            node
            for sid in info["stripe_ids"]
            for node in self.stripes[sid].placement.block_to_node.values()
        }
        if degraded:
            # Route only what answers; the client treats unrouted nodes
            # as dead and reconstructs around them.
            alive = self.detector.alive_ids()
            routing = self._routing(involved & alive)
            for entry in stripes:
                entry["degraded_plan"] = self._degraded_plan(
                    self.stripes[entry["sid"]], alive
                )
        else:
            routing = self._routing(involved)
        reply = {
            "name": name,
            "size": info["size"],
            "n": self.code.n,
            "k": self.code.k,
            "block_size": self.block_size,
            "stripes": stripes,
            "routing": routing,
        }
        if degraded:
            reply["cluster"] = {
                "nodes": {
                    str(nid): self.cluster.rack_of(nid)
                    for nid in self.cluster.node_ids()
                }
            }
        return reply, None

    async def _rpc_object_delete(self, request: Request):
        name = request.body["name"]
        info = self.objects.get(name)
        if info is None:
            raise StoreError(f"no object {name!r}")
        by_node: dict[int, list[str]] = {}
        for sid in info["stripe_ids"]:
            meta = self.stripes[sid]
            for bid, node in meta.placement.block_to_node.items():
                if bid not in meta.missing:
                    by_node.setdefault(node, []).append(stored_block_key(sid, bid))
        dropped = 0
        for node, keys in by_node.items():
            entry = self.detector.entry(node)
            if entry is None or not entry.alive:
                continue  # its blocks died with it
            body, _ = await call(entry.host, entry.port, "block.delete", {"keys": keys})
            dropped += body["dropped"]
        for sid in info["stripe_ids"]:
            del self.stripes[sid]
        del self.objects[name]
        return {"name": name, "dropped": dropped}, None

    async def _rpc_object_list(self, request: Request):
        return {
            "objects": [
                {"name": name, "size": info["size"], "stripes": len(info["stripe_ids"])}
                for name, info in sorted(self.objects.items())
            ]
        }, None

    async def _rpc_stats(self, request: Request):
        """Coordinator-side metrics: repair plane + per-node liveness."""
        snap = self.stats.snapshot()
        snap["role"] = "coordinator"
        snap["gauges"]["objects"] = float(len(self.objects))
        snap["gauges"]["stripes"] = float(len(self.stripes))
        snap["gauges"]["degraded_stripes"] = float(
            sum(1 for meta in self.stripes.values() if meta.missing)
        )
        snap["gauges"]["repairs_active"] = float(len(self._repair_tasks))
        snap["gauges"]["nodes_alive"] = float(len(self.detector.alive_ids()))
        for nid, info in self.detector.to_dict().items():
            age = info.get("beat_age_s")
            if age is not None:
                snap["gauges"][f"beat_age_s:node-{nid}"] = float(age)
        snap["repairs_done"] = len(self.repairs)
        snap["degraded"] = sorted(
            sid for sid, meta in self.stripes.items() if meta.missing
        )
        return snap, None

    async def _rpc_shutdown(self, request: Request):
        self._stopping.set()
        return {}, None


async def _amain(args: argparse.Namespace) -> None:
    cluster = Cluster.homogeneous(args.racks, args.per_rack)
    recorder = None
    if args.telemetry:
        # Streaming append keeps the trace through a crash or kill.
        recorder = StreamingRecorder(
            args.telemetry,
            CLOCK_WALL,
            meta={"component": "coordinator", "node": "coordinator",
                  "scheme": args.scheme},
        )
        recorder.set_origin(time.monotonic())
    coordinator = Coordinator(
        cluster,
        get_code(args.n, args.k),
        scheme=args.scheme,
        block_size=args.block_size,
        suspect_after=args.suspect_after,
        sweep_interval=args.sweep_interval,
        recorder=recorder,
    )
    port = await coordinator.start()
    if args.state_file:
        # The launcher polls this file for the bound port; write-then-rename
        # so it never reads a half-written JSON.
        state = Path(args.state_file)
        tmp = state.with_suffix(".tmp")
        tmp.write_text(json.dumps({"host": coordinator.host, "port": port}))
        tmp.replace(state)
    print(json.dumps({"host": coordinator.host, "port": port}), flush=True)
    try:
        await coordinator.run_until_shutdown()
    finally:
        await coordinator.aclose()
        if recorder is not None:
            recorder.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store.coordinator",
        description="Metadata/repair coordinator of the repro object store.",
    )
    parser.add_argument("--racks", type=int, required=True)
    parser.add_argument("--per-rack", type=int, required=True)
    parser.add_argument("--n", type=int, required=True)
    parser.add_argument("--k", type=int, required=True)
    parser.add_argument("--scheme", choices=sorted(SCHEMES), default="rpr")
    parser.add_argument("--block-size", type=int, default=64 * 1024)
    parser.add_argument("--suspect-after", type=float, default=2.0)
    parser.add_argument("--sweep-interval", type=float, default=0.25)
    parser.add_argument(
        "--state-file", default=None,
        help="write {'host', 'port'} JSON here once the RPC port is bound",
    )
    parser.add_argument(
        "--telemetry", default=None,
        help="stream coordinator telemetry JSONL here (appended and "
             "flushed per span, crash-durable)",
    )
    args = parser.parse_args(argv)
    asyncio.run(_amain(args))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
