"""The storage-node daemon: one process, one node's blocks.

A daemon is deliberately dumb — the HDFS-datanode half of the service.
It holds a dict of committed blocks, answers block I/O RPCs, streams
heartbeats at the coordinator, and executes whatever repair assignment
the coordinator hands it (:mod:`repro.store.repair`).  All policy —
placement, failure detection, repair planning — lives in the
coordinator; a daemon never decides anything, so killing one (the whole
point of the service) loses exactly one node's worth of bytes and no
brain.

Runs in-process for tests (:class:`StorageDaemon`) or as a subprocess
(``python -m repro.store.daemon``) for the real multi-process harness.
"""

from __future__ import annotations

import argparse
import asyncio
import time
import zlib

import numpy as np

from ..live.shaper import ClassedBucket, WeightedTokenBucket
from ..live.transport import TcpStream, cancel_and_wait
from ..telemetry import CLOCK_WALL, StatsRegistry, StreamingRecorder, TelemetryRecorder
from .heartbeat import DEFAULT_INTERVAL, HeartbeatSender
from .messages import Request, StoreError, serve_connection
from .repair import NodeAssignment, RepairSession

__all__ = ["StorageDaemon", "main"]

#: Generous ceiling for one repair session (the coordinator passes the
#: real deadline per repair; this guards a coordinator that forgot).
DEFAULT_REPAIR_TIMEOUT = 60.0

#: QoS class each RPC's latency is attributed to in the live stats
#: (mirrors the NIC split: block I/O is foreground, repair is repair).
RPC_CLASS = {
    "block.put": "foreground",
    "block.get": "foreground",
    "repair.block": "repair",
    "repair.exec": "repair",
}


def _as_block(blob) -> np.ndarray:
    """An inbound blob as a uint8 array (owns its bytes after the frame)."""
    arr = np.frombuffer(bytes(blob), dtype=np.uint8)
    return arr


class StorageDaemon:
    """One storage node: block store + RPC server + heartbeats."""

    def __init__(
        self,
        node_id: int,
        coordinator: tuple[str, int] | None = None,
        *,
        host: str = "127.0.0.1",
        heartbeat_interval: float = DEFAULT_INTERVAL,
        recorder: TelemetryRecorder | None = None,
        link_rate: float | None = None,
        repair_share: float = 0.5,
    ) -> None:
        self.node_id = node_id
        self.coordinator = coordinator
        self.host = host
        self.heartbeat_interval = heartbeat_interval
        self.port: int | None = None
        self.blocks: dict[str, np.ndarray] = {}
        # `is not None`, not `or`: an explicit (falsy) NULL_RECORDER
        # means "telemetry off", not "pick a default".
        self.rec = recorder if recorder is not None else TelemetryRecorder(
            CLOCK_WALL, meta={"component": "daemon", "node": node_id}
        )
        if recorder is None:
            # Own recorder: anchor t=0 now so cross-process assembly can
            # align this daemon's spans (meta["origin_unix"]).
            self.rec.set_origin(time.monotonic())
        #: Live metrics for the ``stats`` RPC — always on, bounded
        #: memory, independent of whether span telemetry is enabled.
        self.stats = StatsRegistry(f"node-{node_id}")
        #: QoS split of this node's NIC (docs/QOS.md): foreground block
        #: I/O and repair traffic draw from separate guaranteed shares of
        #: one work-conserving bucket.  ``link_rate=None`` leaves the
        #: daemon unshaped (the pre-QoS behaviour).
        self.link: WeightedTokenBucket | None = None
        if link_rate is not None:
            if not 0.0 < repair_share < 1.0:
                raise ValueError(
                    f"repair_share must be in (0, 1), got {repair_share}"
                )
            self.link = WeightedTokenBucket(
                link_rate,
                {"foreground": 1.0 - repair_share, "repair": repair_share},
                recorder=self.rec,
                label=f"nic:{node_id}",
            )
        self._server: asyncio.base_events.Server | None = None
        self._conns: set[asyncio.Task] = set()
        self._hb: HeartbeatSender | None = None
        self._hb_task: asyncio.Task | None = None
        self._sessions: dict[str, RepairSession] = {}
        #: repair payloads that arrived before their repair.exec did.
        self._early: dict[str, list[tuple[str, np.ndarray]]] = {}
        self._stopping = asyncio.Event()

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> int:
        """Bind (port 0 — the kernel picks), start beating; returns the port."""
        if self._server is not None:
            raise RuntimeError("daemon already started")
        self._server = await asyncio.start_server(self._on_connect, self.host, 0)
        self.port = self._server.sockets[0].getsockname()[1]
        if self.coordinator is not None:
            # The first beat doubles as registration and carries the port
            # actually bound — never a configured guess.
            self._hb = HeartbeatSender(
                self.node_id,
                self.coordinator,
                port=self.port,
                host=self.host,
                interval=self.heartbeat_interval,
            )
            self._hb_task = asyncio.ensure_future(
                self._hb.run(
                    lambda: {
                        "blocks": len(self.blocks),
                        "repairs_inflight": len(self._sessions),
                    }
                )
            )
        return self.port

    async def run_until_shutdown(self) -> None:
        await self._stopping.wait()

    async def aclose(self) -> None:
        if self._hb_task is not None:
            # cancel_and_wait, not cancel+await: a cancel absorbed inside
            # the beat RPC would leave the task looping and this await
            # parked forever.
            await cancel_and_wait(self._hb_task)
            self._hb_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # In-flight answers get one beat to flush (the shutdown RPC's own
        # ack rides on such a connection), then die with the daemon —
        # their peers see the connection drop, like a killed process.
        pending = {t for t in self._conns if not t.done()}
        if pending:
            await asyncio.wait(pending, timeout=0.25)
            pending = {t for t in pending if not t.done()}
        while pending:
            for task in pending:
                task.cancel()
            await asyncio.wait(pending, timeout=0.25)
            pending = {t for t in pending if not t.done()}
        self._conns.clear()

    # -- RPC dispatch -------------------------------------------------------

    async def _on_connect(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conns.add(task)
        try:
            await serve_connection(TcpStream(reader, writer), self._dispatch)
        except asyncio.CancelledError:
            # Killed mid-request (daemon aclose or loop teardown): end
            # quietly — the caller already sees the dropped connection,
            # and a cancelled server task would be logged as an error.
            pass
        finally:
            self._conns.discard(task)

    async def _dispatch(self, request: Request):
        handler = getattr(self, "_rpc_" + request.mtype.replace(".", "_"), None)
        if handler is None:
            raise StoreError(f"daemon {self.node_id}: unknown rpc {request.mtype!r}")
        if request.ctx is not None:
            # The caller minted this context *for this hop*; recording our
            # span under its id is what links the cross-process tree.
            request.server_ctx = request.ctx
        start = time.monotonic()
        try:
            return await handler(request)
        finally:
            elapsed = time.monotonic() - start
            self.stats.count(f"rpc:{request.mtype}")
            self.stats.latency(
                request.mtype, elapsed, cls=RPC_CLASS.get(request.mtype, "")
            )
            if self.rec and request.server_ctx is not None:
                self.rec.span(
                    f"rpc:{request.mtype}", start, start + elapsed,
                    category="rpc", node=self.node_id,
                    **request.server_ctx.attrs(),
                )

    async def _rpc_ping(self, request: Request):
        return {"node_id": self.node_id, "blocks": len(self.blocks)}, None

    async def _rpc_block_put(self, request: Request):
        key = request.body["key"]
        payload = _as_block(request.blob)
        if self.link is not None:
            await self.link.acquire(int(payload.nbytes), "foreground")
        self.blocks[key] = payload
        self.rec.count("daemon.block_put_bytes", payload.nbytes)
        self.stats.count("block_put_bytes", int(payload.nbytes))
        return {"key": key, "nbytes": int(payload.nbytes),
                "crc": zlib.crc32(payload.tobytes()) & 0xFFFFFFFF}, None

    async def _rpc_block_get(self, request: Request):
        key = request.body["key"]
        payload = self.blocks.get(key)
        if payload is None:
            raise StoreError(f"daemon {self.node_id}: no block {key!r}")
        if self.link is not None:
            await self.link.acquire(int(payload.nbytes), "foreground")
        self.rec.count("daemon.block_get_bytes", payload.nbytes)
        self.stats.count("block_get_bytes", int(payload.nbytes))
        return {"key": key, "nbytes": int(payload.nbytes)}, payload.data

    async def _rpc_block_delete(self, request: Request):
        dropped = sum(self.blocks.pop(key, None) is not None
                      for key in request.body["keys"])
        return {"dropped": int(dropped)}, None

    async def _rpc_block_stat(self, request: Request):
        found = {}
        for key in request.body["keys"]:
            payload = self.blocks.get(key)
            if payload is not None:
                found[key] = {
                    "nbytes": int(payload.nbytes),
                    "crc": zlib.crc32(payload.tobytes()) & 0xFFFFFFFF,
                }
        return {"found": found}, None

    async def _rpc_repair_block(self, request: Request):
        rid, key = request.body["rid"], request.body["key"]
        payload = _as_block(request.blob)
        session = self._sessions.get(rid)
        if session is not None:
            session.deliver(key, payload)
        else:
            # A fast peer beat our repair.exec here; park the payload and
            # replay it once the assignment arrives.
            self._early.setdefault(rid, []).append((key, payload))
        return {"rid": rid, "key": key}, None

    async def _rpc_repair_exec(self, request: Request):
        body = request.body
        rid = body["rid"]
        if rid in self._sessions:
            raise StoreError(f"daemon {self.node_id}: repair {rid!r} already running")
        repair_ctx = (
            request.server_ctx.child() if request.server_ctx is not None else None
        )
        session = RepairSession(
            rid,
            NodeAssignment.from_dict(body["assignment"]),
            {int(nid): (host, int(port))
             for nid, (host, port) in body["routing"].items()},
            block_size=int(body["block_size"]),
            recorder=self.rec,
            throttle=(ClassedBucket(self.link, "repair")
                      if self.link is not None else None),
            ctx=repair_ctx,
        )
        self._sessions[rid] = session
        for key, payload in self._early.pop(rid, []):
            session.deliver(key, payload)
        start = self.rec.raw_now()
        try:
            report = await session.run(
                self.blocks, timeout=float(body.get("timeout", DEFAULT_REPAIR_TIMEOUT))
            )
        finally:
            self._sessions.pop(rid, None)
        self.stats.count("repairs_done")
        self.rec.span(
            f"repair:{rid}:{self.node_id}", start, self.rec.raw_now(),
            category="repair", rid=rid, node=self.node_id,
            ops=len(session.reports), committed=len(session.committed),
            **(repair_ctx.attrs() if repair_ctx is not None else {}),
        )
        return report, None

    async def _rpc_stats(self, request: Request):
        """Live metrics snapshot: the scrape side of ``rpr store stats``."""
        snap = self.stats.snapshot()
        snap["role"] = "daemon"
        snap["node_id"] = self.node_id
        snap["blocks"] = len(self.blocks)
        snap["repairs_inflight"] = len(self._sessions)
        snap["gauges"]["blocks"] = float(len(self.blocks))
        snap["gauges"]["repairs_inflight"] = float(len(self._sessions))
        if self.link is not None:
            uptime = max(self.stats.uptime_s, 1e-9)
            total = 0.0
            for cls, nbytes in self.link.sent.items():
                total += nbytes
                snap["counters"][f"nic_bytes:{cls}"] = nbytes
                snap["gauges"][f"nic_util:{cls}"] = nbytes / (
                    uptime * self.link.rate * self.link.shares[cls]
                )
            snap["gauges"]["nic_rate_Bps"] = self.link.rate
            snap["gauges"]["nic_util"] = total / (uptime * self.link.rate)
        return snap, None

    async def _rpc_shutdown(self, request: Request):
        self._stopping.set()
        return {"node_id": self.node_id}, None


async def _amain(args: argparse.Namespace) -> None:
    host, port = args.coordinator.rsplit(":", 1)
    recorder = None
    if args.telemetry:
        # Streaming, not dump-at-exit: every span hits disk as it
        # finishes, so a SIGKILLed daemon's telemetry survives the kill.
        recorder = StreamingRecorder(
            args.telemetry,
            CLOCK_WALL,
            meta={"component": "daemon", "node": f"node-{args.node_id}"},
        )
        recorder.set_origin(time.monotonic())
    daemon = StorageDaemon(
        args.node_id,
        (host, int(port)),
        heartbeat_interval=args.heartbeat_interval,
        link_rate=args.link_rate,
        repair_share=args.repair_share,
        recorder=recorder,
    )
    await daemon.start()
    try:
        await daemon.run_until_shutdown()
    finally:
        await daemon.aclose()
        if recorder is not None:
            recorder.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store.daemon",
        description="One storage-node daemon of the repro object store.",
    )
    parser.add_argument("--node-id", type=int, required=True)
    parser.add_argument(
        "--coordinator", required=True, metavar="HOST:PORT",
        help="coordinator RPC address to register with (via heartbeats)",
    )
    parser.add_argument("--heartbeat-interval", type=float, default=DEFAULT_INTERVAL)
    parser.add_argument(
        "--link-rate", type=float, default=None, metavar="BYTES_PER_S",
        help="shape this node's NIC to BYTES_PER_S with a QoS split "
             "(default: unshaped)",
    )
    parser.add_argument(
        "--repair-share", type=float, default=0.5,
        help="fraction of --link-rate guaranteed to repair traffic; the "
             "rest is the foreground floor (work-conserving both ways)",
    )
    parser.add_argument(
        "--telemetry", default=None,
        help="stream this daemon's telemetry JSONL here (appended and "
             "flushed per span, so a killed daemon keeps its data)",
    )
    args = parser.parse_args(argv)
    asyncio.run(_amain(args))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
