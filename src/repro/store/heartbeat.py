"""Node liveness: daemon-side heartbeats, coordinator-side detection.

A daemon announces itself by heartbeating — the first beat *is* the
registration, carrying the ephemeral port the daemon actually bound
(never a configured guess; see the transport layer's port-registry
rationale).  The coordinator's :class:`FailureDetector` keeps one entry
per node and declares a node dead once its last beat is older than
``suspect_after`` — exactly how a SIGKILLed daemon is noticed, since a
killed process simply stops beating.

Both halves take injectable clocks so the detector's arithmetic is unit
tested without sleeping.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Callable

from .messages import call

__all__ = ["HeartbeatSender", "FailureDetector", "NodeEntry", "DEFAULT_INTERVAL"]

#: Default seconds between beats; the detector's default suspicion
#: threshold is a few multiples of this.
DEFAULT_INTERVAL = 0.5


class HeartbeatSender:
    """Daemon side: beat the coordinator every ``interval`` seconds.

    A failed beat (coordinator restarting, transient refusals beyond the
    connect backoff) is *not* fatal — the daemon keeps serving and
    retries at the next tick; the cost of a dropped beat is bounded by
    the detector's ``suspect_after`` slack.
    """

    def __init__(
        self,
        node_id: int,
        coordinator: tuple[str, int],
        *,
        port: int,
        host: str = "127.0.0.1",
        interval: float = DEFAULT_INTERVAL,
        rpc=call,
    ) -> None:
        self.node_id = node_id
        self.coordinator = coordinator
        self.host = host
        self.port = port
        self.interval = interval
        self.beats_sent = 0
        self.beats_failed = 0
        self._rpc = rpc

    async def beat_once(self, extra: dict | None = None) -> bool:
        """One beat; returns True when the coordinator acknowledged."""
        body = {"node_id": self.node_id, "host": self.host, "port": self.port}
        if extra:
            body.update(extra)
        try:
            await self._rpc(
                self.coordinator[0],
                self.coordinator[1],
                "heartbeat",
                body,
                timeout=max(self.interval * 4, 2.0),
                attempts=2,
            )
        except (ConnectionError, OSError, asyncio.TimeoutError):
            self.beats_failed += 1
            return False
        self.beats_sent += 1
        return True

    async def run(self, extra: Callable[[], dict] | None = None) -> None:
        """Beat forever (cancel the task to stop)."""
        while True:
            await self.beat_once(extra() if extra else None)
            await asyncio.sleep(self.interval)


@dataclass
class NodeEntry:
    """What the coordinator knows about one storage node."""

    node_id: int
    host: str
    port: int
    last_beat: float
    alive: bool = True
    beats: int = 0
    meta: dict = field(default_factory=dict)

    @property
    def addr(self) -> tuple[str, int]:
        return (self.host, self.port)


class FailureDetector:
    """Coordinator side: registry of nodes and their last heartbeat.

    ``suspect_after`` is the silence threshold: :meth:`sweep` returns
    the nodes that just crossed it (newly dead) so the caller can kick
    off repair exactly once per death.  A node that beats again after
    being declared dead is *revived* as empty capacity — its in-memory
    payloads died with the old process, and any blocks it held have
    been (or are being) rebuilt elsewhere.
    """

    def __init__(
        self,
        *,
        suspect_after: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if suspect_after <= 0:
            raise ValueError(f"suspect_after must be positive, got {suspect_after}")
        self.suspect_after = suspect_after
        self._clock = clock
        self.nodes: dict[int, NodeEntry] = {}

    def beat(self, node_id: int, host: str, port: int, meta: dict | None = None) -> NodeEntry:
        """Record one heartbeat; returns the (possibly new) entry."""
        now = self._clock()
        entry = self.nodes.get(node_id)
        if entry is None:
            entry = self.nodes[node_id] = NodeEntry(
                node_id=node_id, host=host, port=port, last_beat=now
            )
        entry.host = host
        entry.port = port
        entry.last_beat = now
        entry.alive = True
        entry.beats += 1
        if meta:
            entry.meta.update(meta)
        return entry

    def sweep(self) -> list[NodeEntry]:
        """Mark overdue nodes dead; returns only the *newly* dead ones."""
        now = self._clock()
        newly_dead = []
        for entry in self.nodes.values():
            if entry.alive and now - entry.last_beat > self.suspect_after:
                entry.alive = False
                newly_dead.append(entry)
        return newly_dead

    def alive_ids(self) -> set[int]:
        return {nid for nid, e in self.nodes.items() if e.alive}

    def dead_ids(self) -> set[int]:
        return {nid for nid, e in self.nodes.items() if not e.alive}

    def entry(self, node_id: int) -> NodeEntry | None:
        return self.nodes.get(node_id)

    def to_dict(self) -> dict:
        now = self._clock()
        return {
            str(nid): {
                "host": e.host,
                "port": e.port,
                "alive": e.alive,
                "beat_age_s": now - e.last_beat,
                "beats": e.beats,
                **({"meta": e.meta} if e.meta else {}),
            }
            for nid, e in sorted(self.nodes.items())
        }
