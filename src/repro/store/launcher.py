"""Plain-subprocess harness: bring a store cluster up, tear it down.

No containers, no supervisors — one coordinator process plus one daemon
process per cluster node, all ``python -m`` children of whoever calls
:meth:`StoreLauncher.up`.  Everything the harness knows lives in a
*state directory*:

```
<state_dir>/
  coordinator.json      # {"host", "port"} — written by the coordinator
  state.json            # pids + config, written by the launcher
  coordinator.log       # stdout+stderr of the coordinator
  node-<i>.log          #   "        "     of each daemon
  telemetry-*.jsonl     # per-component streaming telemetry (appended
                        # span-by-span, so it survives a SIGKILL)
```

so ``up``/``status``/``kill``/``down`` can run as *separate CLI
invocations* (the `rpr store` subcommands) and still find the cluster.
``kill`` is the service's whole reason to exist: SIGKILL a daemon, watch
the coordinator notice the silence and orchestrate a real repair.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import repro

from .client import SyncStoreClient
from .messages import StoreError

__all__ = ["StoreLauncher", "LauncherError"]


class LauncherError(RuntimeError):
    """The harness could not start, find, or stop the cluster."""


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists but not ours
        return True
    return True


def _proc_running(pid: int) -> bool:
    """Is the process genuinely running (reaping it if it exited)?

    Children we spawned must be wait()ed or they linger as zombies that
    ``os.kill(pid, 0)`` still sees; a launcher in a *different* process
    (separate CLI invocations share only state.json) gets
    ``ChildProcessError`` and falls back to the signal probe.
    """
    try:
        reaped, _status = os.waitpid(pid, os.WNOHANG)
        return reaped == 0
    except ChildProcessError:
        return _pid_alive(pid)


class StoreLauncher:
    """Manage one store cluster rooted at a state directory."""

    def __init__(self, state_dir: str | Path) -> None:
        self.state_dir = Path(state_dir)

    # -- paths --------------------------------------------------------------

    @property
    def state_file(self) -> Path:
        return self.state_dir / "state.json"

    @property
    def coordinator_file(self) -> Path:
        return self.state_dir / "coordinator.json"

    def _env(self) -> dict:
        # Children must import repro exactly as we do, wherever we were
        # launched from.
        src_root = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = src_root + (os.pathsep + existing if existing else "")
        return env

    def _spawn(self, argv: list[str], log_name: str) -> subprocess.Popen:
        log = open(self.state_dir / log_name, "wb")
        try:
            return subprocess.Popen(
                [sys.executable, "-m", *argv],
                stdout=log,
                stderr=subprocess.STDOUT,
                stdin=subprocess.DEVNULL,
                env=self._env(),
                start_new_session=True,
            )
        finally:
            log.close()

    # -- lifecycle ----------------------------------------------------------

    def up(
        self,
        *,
        racks: int,
        per_rack: int,
        n: int,
        k: int,
        scheme: str = "rpr",
        block_size: int = 64 * 1024,
        suspect_after: float = 2.0,
        sweep_interval: float = 0.25,
        heartbeat_interval: float = 0.5,
        startup_timeout: float = 30.0,
        link_rate: float | None = None,
        repair_share: float = 0.5,
    ) -> dict:
        """Start coordinator + one daemon per node; returns the state dict.

        Blocks until every daemon has registered (first heartbeat) or
        ``startup_timeout`` elapses — a cluster that is "up" is actually
        serving, not merely forked.
        """
        self.state_dir.mkdir(parents=True, exist_ok=True)
        if self.state_file.exists():
            raise LauncherError(
                f"{self.state_file} exists; is a cluster already up? "
                f"(run `down` first, or point at a fresh state dir)"
            )
        self.coordinator_file.unlink(missing_ok=True)

        num_nodes = racks * per_rack
        coordinator = self._spawn(
            [
                "repro.store.coordinator",
                "--racks", str(racks),
                "--per-rack", str(per_rack),
                "--n", str(n),
                "--k", str(k),
                "--scheme", scheme,
                "--block-size", str(block_size),
                "--suspect-after", str(suspect_after),
                "--sweep-interval", str(sweep_interval),
                "--state-file", str(self.coordinator_file),
                "--telemetry", str(self.state_dir / "telemetry-coordinator.jsonl"),
            ],
            "coordinator.log",
        )
        procs: dict[str, subprocess.Popen] = {"coordinator": coordinator}
        try:
            addr = self._await_coordinator(coordinator, startup_timeout)
            qos_args = []
            if link_rate is not None:
                qos_args = [
                    "--link-rate", str(link_rate),
                    "--repair-share", str(repair_share),
                ]
            for node_id in range(num_nodes):
                procs[f"node-{node_id}"] = self._spawn(
                    [
                        "repro.store.daemon",
                        "--node-id", str(node_id),
                        "--coordinator", f"{addr['host']}:{addr['port']}",
                        "--heartbeat-interval", str(heartbeat_interval),
                        *qos_args,
                        "--telemetry",
                        str(self.state_dir / f"telemetry-node-{node_id}.jsonl"),
                    ],
                    f"node-{node_id}.log",
                )
            self._await_registration(addr, num_nodes, startup_timeout)
        except BaseException:
            for proc in procs.values():
                if proc.poll() is None:
                    proc.kill()
            raise

        state = {
            "coordinator": {**addr, "pid": coordinator.pid},
            "daemons": {
                str(node_id): procs[f"node-{node_id}"].pid
                for node_id in range(num_nodes)
            },
            "config": {
                "racks": racks, "per_rack": per_rack, "n": n, "k": k,
                "scheme": scheme, "block_size": block_size,
                "suspect_after": suspect_after,
                "heartbeat_interval": heartbeat_interval,
                "link_rate": link_rate, "repair_share": repair_share,
            },
        }
        self.state_file.write_text(json.dumps(state, indent=2))
        return state

    def _await_coordinator(self, proc: subprocess.Popen, timeout: float) -> dict:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                raise LauncherError(
                    f"coordinator exited with {proc.returncode} during startup; "
                    f"see {self.state_dir / 'coordinator.log'}"
                )
            if self.coordinator_file.exists():
                try:
                    return json.loads(self.coordinator_file.read_text())
                except json.JSONDecodeError:
                    pass  # racing the atomic rename; retry
            time.sleep(0.05)
        raise LauncherError(f"coordinator did not bind within {timeout}s")

    def _await_registration(self, addr: dict, num_nodes: int, timeout: float) -> None:
        client = SyncStoreClient(addr["host"], addr["port"])
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                status = client.status()
            except (StoreError, ConnectionError, OSError):
                time.sleep(0.1)
                continue
            alive = sum(1 for info in status["nodes"].values() if info["alive"])
            if alive >= num_nodes:
                return
            time.sleep(0.1)
        raise LauncherError(
            f"only {alive}/{num_nodes} daemons registered within {timeout}s"
        )

    def load_state(self) -> dict:
        if not self.state_file.exists():
            raise LauncherError(f"no cluster state at {self.state_file}")
        return json.loads(self.state_file.read_text())

    def client(self, *, recorder=None) -> SyncStoreClient:
        addr = self.load_state()["coordinator"]
        return SyncStoreClient(addr["host"], addr["port"], recorder=recorder)

    def status(self) -> dict:
        """Service status plus harness-level process liveness."""
        state = self.load_state()
        procs = {
            "coordinator": _proc_running(state["coordinator"]["pid"]),
            **{
                f"node-{node_id}": _proc_running(pid)
                for node_id, pid in state["daemons"].items()
            },
        }
        try:
            service = self.client().status()
        except (StoreError, ConnectionError, OSError) as exc:
            service = {"error": str(exc)}
        return {"processes": procs, "service": service}

    def kill_daemon(self, node_id: int) -> int:
        """SIGKILL one daemon — the failure the service exists to survive."""
        state = self.load_state()
        try:
            pid = state["daemons"][str(node_id)]
        except KeyError:
            raise LauncherError(f"no daemon for node {node_id}") from None
        try:
            os.kill(pid, signal.SIGKILL)
        except ProcessLookupError:
            raise LauncherError(f"daemon {node_id} (pid {pid}) already gone") from None
        return pid

    def down(self, *, timeout: float = 10.0) -> None:
        """Graceful shutdown (RPC), escalating to SIGKILL on stragglers."""
        state = self.load_state()
        try:
            self.client().shutdown_service()
        except (StoreError, ConnectionError, OSError, LauncherError):
            pass  # already half-dead; escalate below
        pids = [state["coordinator"]["pid"], *state["daemons"].values()]
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline and any(_proc_running(p) for p in pids):
            time.sleep(0.1)
        for pid in pids:
            if _proc_running(pid):
                try:
                    os.kill(pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass
                try:
                    os.waitpid(pid, 0)
                except ChildProcessError:
                    pass
        self.state_file.unlink(missing_ok=True)
        self.coordinator_file.unlink(missing_ok=True)
