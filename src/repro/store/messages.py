"""The store service's request/response protocol over wire frames.

Every RPC is one connection carrying exactly two frames of the live
runtime's wire protocol (:mod:`repro.live.wire`): a request frame from
the caller, a response frame back.  Frame headers stay tiny (they are
capped at :data:`~repro.live.wire.MAX_HEADER_BYTES`); structured bodies
ride at the *front of the frame payload* as JSON, followed by any raw
block bytes:

```
frame payload = [ blen bytes of JSON body | raw binary blob ]
header        = {"t": <type>, "v": 1, "blen": <json length>, ...}
```

so a large message (a serialized repair plan, a block transfer) never
fights the header cap, and the blob half is moved with the wire layer's
zero-copy chunking.

All three components — coordinator, daemons, clients — speak only this
shape; :func:`call` is the single client-side entry point (connect with
backoff, send, await the response with a timeout, close).
"""

from __future__ import annotations

import json

from ..live.transport import Stream, connect_tcp
from ..live.wire import WireError, read_frame, send_frame
from ..telemetry.distributed import TraceContext

__all__ = [
    "PROTOCOL_VERSION",
    "StoreError",
    "StoreProtocolError",
    "Request",
    "call",
    "read_request",
    "send_response",
    "response_error",
]

PROTOCOL_VERSION = 1

#: Default per-read progress timeout for service frames (seconds).
DEFAULT_RPC_TIMEOUT = 30.0


class StoreError(RuntimeError):
    """A store operation failed (service-side errors travel back as this)."""


class StoreProtocolError(StoreError):
    """The peer spoke a frame this protocol cannot interpret."""


class Request:
    """One parsed incoming request: type, JSON body, binary blob.

    ``ctx`` is the caller's :class:`~repro.telemetry.distributed.\
TraceContext` when the request frame carried one (header ``"tc"``), so
    a server can record its handling span as a child of the caller's
    hop; ``None`` from un-instrumented callers.  ``server_ctx`` is
    filled by the server's dispatch wrapper — the context its handling
    span is recorded under (the wire context itself: the caller minted
    it *for this hop*) — so handlers that fan out further work (a
    repair session's sends) mint children of it and parent correctly.
    """

    __slots__ = ("mtype", "body", "blob", "ctx", "server_ctx")

    def __init__(
        self,
        mtype: str,
        body: dict,
        blob: memoryview,
        ctx: TraceContext | None = None,
    ) -> None:
        self.mtype = mtype
        self.body = body
        self.blob = blob
        self.ctx = ctx
        self.server_ctx: TraceContext | None = None


def _pack(body: dict | None, blob) -> tuple[int, bytes]:
    encoded = b"" if body is None else json.dumps(body, separators=(",", ":")).encode()
    if blob is None or len(blob) == 0:
        return len(encoded), encoded
    return len(encoded), encoded + bytes(blob)


def _split(header: dict, payload: bytearray) -> tuple[dict, memoryview]:
    blen = int(header.get("blen", 0))
    if blen < 0 or blen > len(payload):
        raise StoreProtocolError(f"body length {blen} outside payload of {len(payload)}")
    view = memoryview(payload)
    try:
        body = json.loads(view[:blen].tobytes()) if blen else {}
    except json.JSONDecodeError as exc:
        raise StoreProtocolError(f"message body is not valid JSON: {exc}") from exc
    if not isinstance(body, dict):
        raise StoreProtocolError(f"message body must be a JSON object, got {type(body).__name__}")
    return body, view[blen:]


async def send_request(
    stream: Stream,
    mtype: str,
    body: dict | None = None,
    blob=None,
    *,
    ctx: TraceContext | None = None,
) -> None:
    blen, payload = _pack(body, blob)
    header = {"t": mtype, "v": PROTOCOL_VERSION, "blen": blen}
    if ctx is not None:
        header["tc"] = ctx.to_wire()
    await send_frame(stream, header, payload)


async def read_request(
    stream: Stream, *, timeout: float | None = DEFAULT_RPC_TIMEOUT
) -> Request:
    """Server side: parse one request frame into a :class:`Request`."""
    header, payload = await read_frame(stream, timeout=timeout)
    mtype = header.get("t")
    if not isinstance(mtype, str):
        raise StoreProtocolError(f"request frame without a type: {header}")
    if header.get("v") != PROTOCOL_VERSION:
        raise StoreProtocolError(
            f"protocol version {header.get('v')!r} != {PROTOCOL_VERSION}"
        )
    body, blob = _split(header, payload)
    tc = header.get("tc")
    ctx = TraceContext.from_wire(tc) if isinstance(tc, dict) else None
    return Request(mtype, body, blob, ctx)


async def send_response(
    stream: Stream, body: dict | None = None, blob=None, *, ok: bool = True,
    error: str | None = None,
) -> None:
    blen, payload = _pack(body, blob)
    head = {"t": "resp", "v": PROTOCOL_VERSION, "ok": ok, "blen": blen}
    if error is not None:
        head["error"] = error
    await send_frame(stream, head, payload)


async def response_error(stream: Stream, error: str) -> None:
    """Shorthand for a failed response with no body."""
    await send_response(stream, ok=False, error=error)


async def call(
    host: str,
    port: int,
    mtype: str,
    body: dict | None = None,
    blob=None,
    *,
    timeout: float = DEFAULT_RPC_TIMEOUT,
    attempts: int = 5,
    ctx: TraceContext | None = None,
) -> tuple[dict, memoryview]:
    """One round trip: connect (with refused-connection backoff), send
    the request, await the response; returns ``(body, blob)``.

    ``ctx`` rides the request frame header so the server's handling
    span joins the caller's trace.  A response with ``ok: false``
    raises :class:`StoreError` carrying the service-side message;
    wire-level trouble (truncation, timeout, refused after backoff)
    raises :class:`WireError` / ``ConnectionError`` for the caller's
    retry policy to judge.
    """
    stream = await connect_tcp(host, port, attempts=attempts)
    try:
        await send_request(stream, mtype, body, blob, ctx=ctx)
        header, payload = await read_frame(stream, timeout=timeout)
        if not header.get("ok", False):
            raise StoreError(
                header.get("error") or f"rpc {mtype!r} failed with no error message"
            )
        body_out, blob_out = _split(header, payload)
        return body_out, blob_out
    finally:
        await stream.aclose()


async def serve_connection(stream: Stream, dispatch, *, timeout=DEFAULT_RPC_TIMEOUT) -> None:
    """Server loop body: read one request, dispatch, respond, close.

    ``dispatch(request)`` returns ``(body, blob)`` (either may be
    ``None``) or raises :class:`StoreError` for a client-visible
    failure; anything else is reported as an internal error string so a
    daemon never dies from one bad connection.
    """
    try:
        try:
            request = await read_request(stream, timeout=timeout)
        except (WireError, ConnectionError):
            return  # peer vanished or spoke garbage: nothing to answer
        try:
            body, blob = await dispatch(request)
        except StoreError as exc:
            await response_error(stream, str(exc))
            return
        except Exception as exc:  # noqa: BLE001 - service must stay up
            await response_error(stream, f"internal error: {exc!r}")
            return
        await send_response(stream, body, blob)
    except (WireError, ConnectionError):
        pass  # peer died while we were answering; its caller sees the error
    finally:
        await stream.aclose()
