"""Distributed repair: partition a plan across daemons, execute locally.

The single-process live runtime (:mod:`repro.live.runtime`) holds every
node's payloads in one dict and runs every op as a task in one loop.
The store service crosses the process boundary: the coordinator
*partitions* a :class:`repro.repair.RepairPlan` into per-node
assignments — each daemon receives only the ops it owns (sends whose
``src`` it is, combines at its node) — and the daemons execute them
**data-driven**: an op fires once its input payloads exist locally and
its same-node predecessor ops are done.  Cross-node dependencies need no
control messages at all, because every remote dependency in a repair
plan *is* the send that delivers one of the op's inputs (partitioning
verifies this property and refuses plans that violate it); repair bytes
travelling daemon→daemon double as the dependency tokens, exactly like
the paper's testbed where pipelining emerges from data arrival.

The coordinator's ledger for a repair is then assembled from the
daemons' op reports and compared byte-for-byte against the simulator's
prediction for the same plan — the service-path half of the live
cross-validation story.
"""

from __future__ import annotations

import asyncio
import time
import zlib
from dataclasses import dataclass, field

import numpy as np

from ..cluster import Placement
from ..gf import GFTables, get_tables, linear_combine
from ..repair.plan import CombineOp, RepairPlan, SendOp, block_key
from ..telemetry.distributed import TraceContext
from .messages import StoreError, StoreProtocolError, call

__all__ = [
    "stored_block_key",
    "NodeAssignment",
    "partition_plan",
    "plan_to_dict",
    "plan_from_dict",
    "plan_seed_blocks",
    "RepairSession",
    "ledger_from_reports",
]


def stored_block_key(stripe_id: int, block_id: int) -> str:
    """The daemon-store key of one committed stripe block."""
    return f"b:{stripe_id}:{block_id}"


def _owner(op: SendOp | CombineOp) -> int:
    return op.src if isinstance(op, SendOp) else op.node


def _inputs(op: SendOp | CombineOp) -> tuple[str, ...]:
    if isinstance(op, SendOp):
        return (op.key,)
    return tuple(key for key, _ in op.terms)


def _serialize_op(op: SendOp | CombineOp) -> dict:
    if isinstance(op, SendOp):
        return {
            "kind": "send",
            "op_id": op.op_id,
            "src": op.src,
            "dst": op.dst,
            "key": op.key,
            "deps": list(op.deps),
        }
    return {
        "kind": "combine",
        "op_id": op.op_id,
        "node": op.node,
        "out_key": op.out_key,
        "terms": [[key, coeff] for key, coeff in op.terms],
        "mb": op.with_matrix_build,
        "deps": list(op.deps),
    }


def _deserialize_op(data: dict) -> SendOp | CombineOp:
    if data["kind"] == "send":
        return SendOp(
            op_id=data["op_id"],
            src=int(data["src"]),
            dst=int(data["dst"]),
            key=data["key"],
            deps=tuple(data["deps"]),
        )
    if data["kind"] == "combine":
        return CombineOp(
            op_id=data["op_id"],
            node=int(data["node"]),
            out_key=data["out_key"],
            terms=tuple((key, int(coeff)) for key, coeff in data["terms"]),
            with_matrix_build=bool(data.get("mb", False)),
            deps=tuple(data["deps"]),
        )
    raise StoreProtocolError(f"unknown op kind {data.get('kind')!r}")


def plan_to_dict(plan: RepairPlan) -> dict:
    """Serialize a whole plan for the wire (degraded-read delivery).

    The coordinator plans a degraded read server-side (it owns topology
    and scheme) and ships the plan to the client, which executes it
    locally on fetched helper blocks — see :mod:`repro.qos.degraded`.
    """
    return {
        "block_size": plan.block_size,
        "ops": [_serialize_op(op) for op in plan.ops.values()],
        "outputs": {
            str(bid): [node, key] for bid, (node, key) in plan.outputs.items()
        },
    }


def plan_from_dict(data: dict) -> RepairPlan:
    """Rebuild a :class:`RepairPlan` serialized by :func:`plan_to_dict`."""
    plan = RepairPlan(block_size=int(data["block_size"]))
    for op_data in data["ops"]:
        plan.add(_deserialize_op(op_data))
    for bid, (node, key) in data["outputs"].items():
        plan.mark_output(int(bid), int(node), key)
    return plan


def plan_seed_blocks(plan: RepairPlan) -> dict[int, int]:
    """The stripe blocks a plan reads but never produces: block id → node.

    These are the helper blocks a degraded-read client must fetch and
    place (at the named node, under :func:`repro.repair.plan.block_key`)
    before executing the plan locally.
    """
    produced: set[tuple[int, str]] = set()
    required: set[tuple[int, str]] = set()
    for op in plan.ops.values():
        if isinstance(op, SendOp):
            produced.add((op.dst, op.key))
            required.add((op.src, op.key))
        else:
            produced.add((op.node, op.out_key))
            required.update((op.node, key) for key, _ in op.terms)
    seeds: dict[int, int] = {}
    for node, key in required - produced:
        prefix, _, bid = key.partition(":")
        if prefix != "block" or not bid.isdigit():
            raise StoreError(
                f"plan reads {key!r} on node {node}, which no op produces "
                f"and which is not a stripe block"
            )
        seeds[int(bid)] = node
    return seeds


@dataclass
class NodeAssignment:
    """Everything one daemon needs to play its part in one repair."""

    node: int
    ops: list[SendOp | CombineOp] = field(default_factory=list)
    #: plan payload key -> committed store key, for blocks this node holds.
    seeds: dict[str, str] = field(default_factory=dict)
    #: outputs this node must commit: (block_id, plan key, store key).
    outputs: list[tuple[int, str, str]] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "node": self.node,
            "ops": [_serialize_op(op) for op in self.ops],
            "seeds": dict(self.seeds),
            "outputs": [[bid, key, skey] for bid, key, skey in self.outputs],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "NodeAssignment":
        return cls(
            node=int(data["node"]),
            ops=[_deserialize_op(o) for o in data["ops"]],
            seeds=dict(data["seeds"]),
            outputs=[
                (int(bid), key, skey) for bid, key, skey in data["outputs"]
            ],
        )


def partition_plan(
    plan: RepairPlan,
    placement: Placement,
    stripe_id: int,
    failed_blocks,
) -> dict[int, NodeAssignment]:
    """Split ``plan`` into per-daemon assignments.

    Every op lands at its owner (a send's source, a combine's node).
    The partition is only sound if cross-node dependencies are carried
    by the data itself, so each remote dep is checked to be a send that
    delivers one of the dependent op's inputs to its owner; any other
    shape (e.g. a pure ordering edge between nodes) would need a control
    channel the service deliberately does not have, and raises
    :class:`StoreProtocolError` at planning time instead of deadlocking
    daemons at run time.
    """
    plan.validate()
    failed = set(failed_blocks)
    parts: dict[int, NodeAssignment] = {}

    def part(node: int) -> NodeAssignment:
        found = parts.get(node)
        if found is None:
            found = parts[node] = NodeAssignment(node=node)
        return found

    for op in plan.ops.values():
        owner = _owner(op)
        inputs = set(_inputs(op))
        for dep in op.deps:
            dep_op = plan.ops[dep]
            if _owner(dep_op) == owner:
                continue  # same daemon: ordinary local ordering
            if (
                isinstance(dep_op, SendOp)
                and dep_op.dst == owner
                and dep_op.key in inputs
            ):
                continue  # the dependency IS the payload arrival
            raise StoreProtocolError(
                f"op {op.op_id!r} at node {owner} depends on remote op "
                f"{dep!r} that does not deliver any of its inputs; this "
                f"plan cannot run data-driven across daemons"
            )
        part(owner).ops.append(op)

    # Seed every holder of a surviving original block that the plan reads.
    read_keys = {key for op in plan.ops.values() for key in _inputs(op)}
    for bid in range(placement.width):
        if bid in failed:
            continue
        key = block_key(bid)
        if key in read_keys:
            part(placement.node_of(bid)).seeds[key] = stored_block_key(stripe_id, bid)

    for bid, (node, key) in plan.outputs.items():
        part(node).outputs.append((bid, key, stored_block_key(stripe_id, bid)))
    return parts


def ledger_from_reports(cluster, reports: list[dict]) -> dict:
    """Aggregate daemons' send reports into the simulator's ledger shape."""
    intra = cross = 0
    cross_by_rack: dict[int, int] = {}
    sends = combines = 0
    for report in reports:
        if report["kind"] == "combine":
            combines += 1
            continue
        sends += 1
        nbytes = int(report["nbytes"])
        src, dst = int(report["src"]), int(report["dst"])
        if cluster.same_rack(src, dst):
            intra += nbytes
        else:
            cross += nbytes
            rack = cluster.rack_of(src)
            cross_by_rack[rack] = cross_by_rack.get(rack, 0) + nbytes
    return {
        "intra_rack_bytes": intra,
        "cross_rack_bytes": cross,
        "cross_uploaded_by_rack": cross_by_rack,
        "sends": sends,
        "combines": combines,
    }


class RepairSession:
    """One repair's worth of work on one daemon.

    Owns the repair-scoped payload namespace, fires assigned ops as
    their inputs materialise, pushes sends to peer daemons as
    ``repair.block`` RPCs, and commits finished outputs into the
    daemon's block store.  ``deliver`` is the ingress the daemon calls
    for every inbound ``repair.block``; payloads may arrive *before*
    the session's assignment does (a fast peer), which is why the daemon
    buffers early arrivals and replays them into the session.
    """

    def __init__(
        self,
        rid: str,
        assignment: NodeAssignment,
        routing: dict[int, tuple[str, int]],
        *,
        block_size: int,
        tables: GFTables | None = None,
        rpc=call,
        recorder=None,
        throttle=None,
        ctx: TraceContext | None = None,
    ) -> None:
        self.rid = rid
        self.assignment = assignment
        self.routing = {int(nid): (host, int(port)) for nid, (host, port) in routing.items()}
        self.block_size = block_size
        self.tables = tables or get_tables()
        self.rpc = rpc
        self.rec = recorder if recorder else None
        #: Trace context of this daemon's repair span; every op span
        #: descends from it and every outbound ``repair.block`` carries a
        #: grandchild hop, so the assembled tree shows coordinator →
        #: daemon → op → peer daemon.  ``None`` = no propagation.
        self.ctx = ctx
        #: Optional pacing bucket (``await acquire(nbytes)``) charged
        #: before every outbound repair byte — the repair class of the
        #: daemon's QoS link split (docs/QOS.md).  ``None`` = unshaped.
        self.throttle = throttle
        self.payloads: dict[str, np.ndarray] = {}
        self._key_events: dict[str, asyncio.Event] = {}
        self._op_done: dict[str, asyncio.Event] = {
            op.op_id: asyncio.Event() for op in assignment.ops
        }
        self._local_ops = set(self._op_done)
        self.reports: list[dict] = []
        self.committed: list[dict] = []

    # -- payload plumbing ---------------------------------------------------

    def _event_for(self, key: str) -> asyncio.Event:
        event = self._key_events.get(key)
        if event is None:
            event = self._key_events[key] = asyncio.Event()
        return event

    def deliver(self, key: str, payload: np.ndarray) -> None:
        """An inbound payload (seed, repair.block, or combine output)."""
        self.payloads[key] = payload
        self._event_for(key).set()

    async def _await_key(self, key: str) -> np.ndarray:
        await self._event_for(key).wait()
        return self.payloads[key]

    # -- op execution -------------------------------------------------------

    async def _run_op(self, op: SendOp | CombineOp) -> None:
        for dep in op.deps:
            if dep in self._local_ops:
                await self._op_done[dep].wait()
        for key in _inputs(op):
            await self._await_key(key)
        if isinstance(op, SendOp):
            await self._run_send(op)
        else:
            self._run_combine(op)
        self._op_done[op.op_id].set()

    async def _run_send(self, op: SendOp) -> None:
        try:
            host, port = self.routing[op.dst]
        except KeyError:
            raise StoreError(
                f"repair {self.rid}: send {op.op_id!r} targets node "
                f"{op.dst} with no route (dead or uninvolved daemon?)"
            ) from None
        payload = np.ascontiguousarray(self.payloads[op.key])
        if self.throttle is not None:
            await self.throttle.acquire(int(payload.nbytes))
        op_ctx = self.ctx.child() if self.ctx is not None else None
        kwargs = {"blob": payload.data}
        if op_ctx is not None:
            kwargs["ctx"] = op_ctx.child()
        start = time.monotonic()
        await self.rpc(
            host,
            port,
            "repair.block",
            {"rid": self.rid, "key": op.key},
            **kwargs,
        )
        end = time.monotonic()
        self.reports.append(
            {
                "kind": "send",
                "op_id": op.op_id,
                "src": op.src,
                "dst": op.dst,
                "key": op.key,
                "nbytes": int(payload.nbytes),
                "start": start,
                "end": end,
            }
        )
        if self.rec is not None:
            self.rec.span(
                op.op_id, start, end, category="op", op_id=op.op_id,
                kind="transfer", node=op.src, peer=op.dst,
                nbytes=int(payload.nbytes), rid=self.rid,
                **(op_ctx.attrs() if op_ctx is not None else {}),
            )

    def _run_combine(self, op: CombineOp) -> None:
        start = time.monotonic()
        out = linear_combine(
            [coeff for _, coeff in op.terms],
            [self.payloads[key] for key, _ in op.terms],
            self.tables,
        )
        end = time.monotonic()
        self.deliver(op.out_key, out)
        self.reports.append(
            {
                "kind": "combine",
                "op_id": op.op_id,
                "node": op.node,
                "out_key": op.out_key,
                "start": start,
                "end": end,
            }
        )
        if self.rec is not None:
            attrs = self.ctx.child().attrs() if self.ctx is not None else {}
            self.rec.span(
                op.op_id, start, end, category="op", op_id=op.op_id,
                kind="compute", node=op.node, rid=self.rid, **attrs,
            )

    async def _commit_output(self, block_id: int, key: str, stored_key: str, blocks: dict) -> None:
        payload = await self._await_key(key)
        blocks[stored_key] = payload
        self.committed.append(
            {
                "block_id": block_id,
                "stored_key": stored_key,
                "crc": zlib.crc32(payload.tobytes()) & 0xFFFFFFFF,
                "nbytes": int(payload.nbytes),
            }
        )

    async def run(self, blocks: dict, *, timeout: float) -> dict:
        """Execute every assigned op and commit outputs; returns the report.

        ``blocks`` is the daemon's committed store: seeds are read from
        it, rebuilt outputs land in it.  A deadline turns a stalled
        session (dead peer, partitioned plan bug) into a
        :class:`StoreError` naming the stuck ops — the distributed twin
        of the runtime's :class:`~repro.live.runtime.LiveTimeoutError`.
        """
        for key, stored_key in self.assignment.seeds.items():
            if stored_key in blocks:
                self.deliver(key, blocks[stored_key])
        tasks: dict[str, asyncio.Task] = {
            op.op_id: asyncio.ensure_future(self._run_op(op))
            for op in self.assignment.ops
        }
        for bid, key, stored_key in self.assignment.outputs:
            tasks[f"commit:{bid}"] = asyncio.ensure_future(
                self._commit_output(bid, key, stored_key, blocks)
            )
        if not tasks:
            return self.report()
        try:
            done, pending = await asyncio.wait(
                tasks.values(), timeout=timeout, return_when=asyncio.FIRST_EXCEPTION
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            for task in done:
                task.result()
            if pending:
                stuck = sorted(
                    name for name, t in tasks.items() if not t.done() or t.cancelled()
                )
                raise StoreError(
                    f"repair {self.rid} timed out after {timeout}s on node "
                    f"{self.assignment.node}; unfinished: {stuck}"
                )
        finally:
            for task in tasks.values():
                task.cancel()
        return self.report()

    def report(self) -> dict:
        return {
            "node": self.assignment.node,
            "rid": self.rid,
            "reports": list(self.reports),
            "committed": list(self.committed),
        }
