"""Storage-system facade: objects, failures, repair, degraded reads."""

from .objects import ObjectInfo, reassemble, split_into_stripes
from .storage import (
    DegradedObjectError,
    RepairReport,
    StorageError,
    StorageSystem,
)

__all__ = [
    "DegradedObjectError",
    "ObjectInfo",
    "RepairReport",
    "StorageError",
    "StorageSystem",
    "reassemble",
    "split_into_stripes",
]
