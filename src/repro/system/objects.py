"""Object model: user data mapped onto erasure-coded stripes.

An object is split into fixed-size stripes of ``n * block_size`` user
bytes; the final stripe is zero-padded (the true length is kept in the
object's metadata so reads return exactly the original bytes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ObjectInfo", "split_into_stripes", "reassemble"]


@dataclass(frozen=True)
class ObjectInfo:
    """Metadata for one stored object."""

    name: str
    size: int
    stripe_ids: tuple[int, ...]
    block_size: int
    n: int

    @property
    def stripe_capacity(self) -> int:
        """User bytes per stripe."""
        return self.n * self.block_size


def split_into_stripes(data: np.ndarray, n: int, block_size: int) -> list[list[np.ndarray]]:
    """Split raw bytes into per-stripe lists of ``n`` data blocks.

    The last stripe is zero-padded to full block boundaries.  Empty
    objects still occupy one (all-zero) stripe so their metadata has a
    stripe to anchor to.
    """
    data = np.asarray(data, dtype=np.uint8).ravel()
    capacity = n * block_size
    total = max(len(data), 1)
    num_stripes = -(-total // capacity)
    padded = np.zeros(num_stripes * capacity, dtype=np.uint8)
    padded[: len(data)] = data
    stripes = []
    for s in range(num_stripes):
        base = s * capacity
        stripes.append(
            [
                padded[base + b * block_size : base + (b + 1) * block_size]
                for b in range(n)
            ]
        )
    return stripes


def reassemble(info: ObjectInfo, stripe_blocks: list[list[np.ndarray]]) -> np.ndarray:
    """Concatenate per-stripe data blocks and strip the padding."""
    if len(stripe_blocks) != len(info.stripe_ids):
        raise ValueError(
            f"object {info.name!r} spans {len(info.stripe_ids)} stripes, "
            f"got {len(stripe_blocks)}"
        )
    flat = np.concatenate([b for blocks in stripe_blocks for b in blocks])
    return flat[: info.size]
