"""StorageSystem: an adoptable facade over the whole repair stack.

A single object ties together encoding, placement, node state, repair
and degraded reads — the API a downstream system would integrate:

>>> system = StorageSystem(cluster, get_code(6, 2), block_size=4096)
>>> info = system.put("photo", payload_bytes)
>>> system.fail_node(0)
>>> report = system.repair()            # rebuilds everything node 0 held
>>> bytes(system.get("photo")) == bytes(payload_bytes)
True

Every repair is executed *concretely* (real GF arithmetic over the
stored bytes — the store afterwards holds genuinely reconstructed
blocks, and placements are updated to the recovery nodes) and
*symbolically* (the discrete-event engine reports what the repair would
cost on the configured network).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from ..cluster import BandwidthModel, Cluster, Placement, RPRPlacement, SIMICS_BANDWIDTH
from ..repair import (
    RepairContext,
    RepairPlanningError,
    RepairScheme,
    RPRScheme,
    degraded_read_context,
    execute_plan,
    pick_live_spares,
    simulate_repair,
)
from ..repair.plan import block_key
from ..rs import DecodeCostModel, RSCode, SIMICS_DECODE
from ..multistripe.store import StoredStripe, rotate_placement
from .objects import ObjectInfo, reassemble, split_into_stripes

__all__ = ["StorageSystem", "RepairReport", "StorageError", "DegradedObjectError"]


class StorageError(RuntimeError):
    """Base error for storage operations."""


class DegradedObjectError(StorageError):
    """Raised when a plain read hits missing blocks (use a degraded read)."""


@dataclass(frozen=True)
class RepairReport:
    """What one repair pass rebuilt and what it would have cost.

    ``simulated_seconds`` is the *parallel* makespan of all per-stripe
    plans merged onto the cluster (stripes pipeline across ports exactly
    as a real rebuild would); ``simulated_serial_seconds`` is the
    one-stripe-at-a-time sum for comparison.
    """

    blocks_repaired: int
    stripes_touched: int
    simulated_seconds: float
    simulated_cross_rack_bytes: float
    simulated_serial_seconds: float = 0.0


@dataclass
class _StripeState:
    stored: StoredStripe
    # failed blocks not yet repaired
    missing: set[int] = field(default_factory=set)
    # write-time CRC32 per block, for scrubbing
    checksums: dict[int, int] = field(default_factory=dict)


class StorageSystem:
    """Erasure-coded object store over a simulated cluster.

    Parameters
    ----------
    cluster:
        Topology to place data on.
    code:
        RS(n, k) code for every stripe.
    block_size:
        Bytes per block.
    placement_policy:
        Stripe placement policy (default: §3.3 pre-placement); stripes are
        rack/slot-rotated per stripe id to decluster load.
    scheme:
        Repair planner (default: RPR).
    bandwidth / cost_model:
        Network and decode models used for the simulated cost reports.
    """

    def __init__(
        self,
        cluster: Cluster,
        code: RSCode,
        block_size: int,
        placement_policy=None,
        scheme: RepairScheme | None = None,
        bandwidth: BandwidthModel = SIMICS_BANDWIDTH,
        cost_model: DecodeCostModel = SIMICS_DECODE,
    ) -> None:
        if block_size < 1:
            raise StorageError("block_size must be positive")
        self.cluster = cluster
        self.code = code
        self.block_size = block_size
        self.placement_policy = placement_policy or RPRPlacement()
        self.scheme = scheme or RPRScheme()
        self.bandwidth = bandwidth
        self.cost_model = cost_model

        self._base_placement = self.placement_policy.place(cluster, code.n, code.k)
        self._stripes: list[_StripeState] = []
        self._objects: dict[str, ObjectInfo] = {}
        self._node_data: dict[int, dict[tuple[int, int], np.ndarray]] = {}
        self._dead_nodes: set[int] = set()

    # -- write path -----------------------------------------------------------

    def put(self, name: str, data) -> ObjectInfo:
        """Encode and store an object; returns its metadata."""
        if name in self._objects:
            raise StorageError(f"object {name!r} already exists")
        data = np.asarray(bytearray(data) if isinstance(data, (bytes, bytearray)) else data)
        data = np.asarray(data, dtype=np.uint8).ravel()
        stripe_ids = []
        for blocks in split_into_stripes(data, self.code.n, self.block_size):
            stripe_ids.append(self._store_stripe(blocks))
        info = ObjectInfo(
            name=name,
            size=int(data.size),
            stripe_ids=tuple(stripe_ids),
            block_size=self.block_size,
            n=self.code.n,
        )
        self._objects[name] = info
        return info

    def _store_stripe(self, data_blocks) -> int:
        sid = len(self._stripes)
        placement = rotate_placement(
            self.cluster,
            self._base_placement,
            rack_offset=sid % self.cluster.num_racks,
            slot_offset=sid // self.cluster.num_racks,
        )
        encoded = self.code.encode(data_blocks)
        checksums = {}
        for bid, payload in enumerate(encoded):
            node = placement.node_of(bid)
            if node in self._dead_nodes:
                raise StorageError(
                    f"placement landed block on dead node {node}; "
                    f"repair before writing"
                )
            self._node_data.setdefault(node, {})[(sid, bid)] = payload
            checksums[bid] = zlib.crc32(payload.tobytes())
        self._stripes.append(
            _StripeState(
                stored=StoredStripe(
                    stripe_id=sid, code=self.code, placement=placement
                ),
                checksums=checksums,
            )
        )
        return sid

    # -- read path ---------------------------------------------------------

    def get(self, name: str, client_node: int | None = None) -> np.ndarray:
        """Read an object's bytes.

        With ``client_node`` given, missing data blocks are reconstructed
        on the fly (degraded read) at that node; without it, a read that
        hits missing blocks raises :class:`DegradedObjectError`.
        """
        info = self._info(name)
        stripe_blocks = []
        for sid in info.stripe_ids:
            state = self._stripes[sid]
            blocks = []
            for bid in range(self.code.n):
                payload = self._read_block(state, bid)
                if payload is None:
                    if client_node is None:
                        raise DegradedObjectError(
                            f"object {name!r} has block {bid} of stripe {sid} "
                            f"missing; pass client_node= for a degraded read"
                        )
                    payload = self._degraded_read(state, bid, client_node)
                blocks.append(payload)
            stripe_blocks.append(blocks)
        return reassemble(info, stripe_blocks)

    def _read_block(self, state: _StripeState, bid: int) -> np.ndarray | None:
        if bid in state.missing:
            return None
        node = state.stored.placement.node_of(bid)
        if node in self._dead_nodes:
            return None
        return self._node_data.get(node, {}).get((state.stored.stripe_id, bid))

    def _degraded_read(self, state: _StripeState, bid: int, client: int) -> np.ndarray:
        ctx = self._repair_context(state, (bid,))
        read_ctx = degraded_read_context(ctx, client)
        plan = self.scheme.plan(read_ctx)
        store = self._payload_store_for(state)
        result = execute_plan(plan, self.cluster, store)
        return result.recovered[bid]

    # -- in-place updates -------------------------------------------------

    def overwrite(self, name: str, data) -> int:
        """Overwrite an object in place via parity-delta updates.

        The new content must be the same size as the old (classic
        block-store semantics; size-changing writes are a delete +
        re-put).  Only the data blocks whose bytes actually changed are
        updated; each changed block streams one delta to every parity
        (the CAU setting).  Returns the number of blocks updated.

        Raises
        ------
        StorageError
            On size mismatch, unknown object, or degraded stripes (repair
            first — parities must be trustworthy before absorbing deltas).
        """
        from ..repair.plan import block_key
        from ..repair.update import plan_update

        info = self._info(name)
        data = np.asarray(
            bytearray(data) if isinstance(data, (bytes, bytearray)) else data
        )
        data = np.asarray(data, dtype=np.uint8).ravel()
        if data.size != info.size:
            raise StorageError(
                f"overwrite must keep the size ({info.size} bytes); "
                f"got {data.size}"
            )
        new_stripes = split_into_stripes(data, self.code.n, self.block_size)
        updated = 0
        for sid, new_blocks in zip(info.stripe_ids, new_stripes):
            state = self._stripes[sid]
            if state.missing:
                raise StorageError(
                    f"stripe {sid} is degraded; repair before overwriting"
                )
            for bid in range(self.code.n):
                old = self._read_block(state, bid)
                if old is None:
                    raise StorageError(
                        f"stripe {sid} block {bid} unavailable (dead node?)"
                    )
                if np.array_equal(old, new_blocks[bid]):
                    continue
                ctx = self._repair_context(state, failed=())
                plan = plan_update(ctx, bid)
                store = self._payload_store_for(state)
                data_node = state.stored.placement.node_of(bid)
                store.setdefault(data_node, {})[
                    f"update:new:{bid}"
                ] = new_blocks[bid]
                result = execute_plan(plan, self.cluster, store)
                for out_bid, payload in result.recovered.items():
                    node = state.stored.placement.node_of(out_bid)
                    self._node_data[node][(sid, out_bid)] = payload
                    state.checksums[out_bid] = zlib.crc32(payload.tobytes())
                updated += 1
        return updated

    # -- failures and repair ----------------------------------------------

    def fail_node(self, node_id: int) -> int:
        """Kill a node: its payloads are gone.  Returns blocks lost."""
        self.cluster.node(node_id)
        if node_id in self._dead_nodes:
            return 0
        self._dead_nodes.add(node_id)
        lost = 0
        dropped = self._node_data.pop(node_id, {})
        for sid, bid in dropped:
            self._stripes[sid].missing.add(bid)
            lost += 1
        # Blocks placed on the node but already dropped earlier still count
        # as missing via stripe state; nothing else to do.
        return lost

    def revive_node(self, node_id: int) -> None:
        """Bring a (repaired or empty) node back as usable capacity.

        Its old payloads are *not* restored — data lost stays lost until
        :meth:`repair` rebuilds it elsewhere.
        """
        self._dead_nodes.discard(node_id)

    def degraded_stripes(self) -> list[int]:
        """Stripe ids with missing blocks."""
        return [
            s.stored.stripe_id for s in self._stripes if s.missing
        ]

    def repair(self) -> RepairReport:
        """Rebuild every missing block onto live spare nodes.

        Each affected stripe is repaired with the configured scheme: the
        plan is executed concretely (the store then holds real
        reconstructed bytes and the stripe's placement points at the
        recovery nodes) and simulated for the cost report.
        """
        blocks = stripes = 0
        serial_seconds = 0.0
        sim_cross = 0.0
        plans: list = []
        for state in self._stripes:
            if not state.missing:
                continue
            failed = tuple(sorted(state.missing))
            ctx = self._repair_context(state, failed)
            plan = self.scheme.plan(ctx)
            store = self._payload_store_for(state)
            result = execute_plan(plan, self.cluster, store)
            outcome = simulate_repair(self.scheme, ctx, self.bandwidth)
            serial_seconds += outcome.total_repair_time
            sim_cross += outcome.cross_rack_bytes
            plans.append(plan)

            mapping = dict(state.stored.placement.block_to_node)
            for bid in failed:
                target, _key = plan.outputs[bid]
                self._node_data.setdefault(target, {})[
                    (state.stored.stripe_id, bid)
                ] = result.recovered[bid]
                mapping[bid] = target
            state.stored = StoredStripe(
                stripe_id=state.stored.stripe_id,
                code=self.code,
                placement=Placement(
                    n=self.code.n, k=self.code.k, block_to_node=mapping
                ),
            )
            blocks += len(failed)
            stripes += 1
            state.missing.clear()
        parallel_seconds = 0.0
        if plans:
            from ..multistripe import merge_plans
            from ..sim import SimulationEngine

            graph = merge_plans(plans, self.cost_model)
            parallel_seconds = (
                SimulationEngine(self.cluster, self.bandwidth).run(graph).makespan
            )
        return RepairReport(
            blocks_repaired=blocks,
            stripes_touched=stripes,
            simulated_seconds=parallel_seconds,
            simulated_cross_rack_bytes=sim_cross,
            simulated_serial_seconds=serial_seconds,
        )

    # -- scrubbing (silent-corruption handling) --------------------------------

    def corrupt_block(
        self, stripe_id: int, block_id: int, byte_index: int = 0
    ) -> None:
        """Fault injection: silently flip bits in one stored block.

        Models latent sector errors / bit rot — the payload changes but
        the system is not notified (unlike :meth:`fail_node`).  Only
        :meth:`scrub` can find it.
        """
        state = self._stripes[stripe_id]
        node = state.stored.placement.node_of(block_id)
        bucket = self._node_data.get(node, {})
        key = (stripe_id, block_id)
        if key not in bucket:
            raise StorageError(f"block {block_id} of stripe {stripe_id} not stored")
        payload = bucket[key].copy()
        payload[byte_index % payload.size] ^= 0xFF
        bucket[key] = payload

    def scrub(self) -> list[tuple[int, int]]:
        """Compare every stored block against its write-time CRC32.

        Returns the ``(stripe_id, block_id)`` pairs whose bytes no longer
        match — silent corruption localised per block (re-encoding alone
        would only tell that *some* block of a stripe is bad).
        """
        corrupted = []
        for state in self._stripes:
            sid = state.stored.stripe_id
            for bid in range(self.code.width):
                payload = self._read_block(state, bid)
                if payload is None:
                    continue
                if zlib.crc32(payload.tobytes()) != state.checksums[bid]:
                    corrupted.append((sid, bid))
        return corrupted

    def repair_corruption(self) -> RepairReport:
        """Scrub, discard corrupted blocks, and rebuild them.

        A corrupted block cannot be trusted as a decode helper, so it is
        dropped (becoming an erasure) before the normal repair pass runs.
        """
        for sid, bid in self.scrub():
            state = self._stripes[sid]
            node = state.stored.placement.node_of(bid)
            self._node_data.get(node, {}).pop((sid, bid), None)
            state.missing.add(bid)
        return self.repair()

    # -- integrity ------------------------------------------------------------

    def verify(self) -> bool:
        """Check every stripe with no missing blocks is a valid codeword."""
        for state in self._stripes:
            if state.missing:
                return False
            payloads = {}
            for bid in range(self.code.width):
                payload = self._read_block(state, bid)
                if payload is None:
                    return False
                payloads[bid] = payload
            data = [payloads[b] for b in range(self.code.n)]
            expected = self.code.encode(data)
            for bid in range(self.code.width):
                if not np.array_equal(expected[bid], payloads[bid]):
                    return False
        return True

    def objects(self) -> list[ObjectInfo]:
        return list(self._objects.values())

    # -- internals ----------------------------------------------------------

    def _info(self, name: str) -> ObjectInfo:
        try:
            return self._objects[name]
        except KeyError:
            raise StorageError(f"no object {name!r}") from None

    def _repair_context(self, state: _StripeState, failed: tuple[int, ...]) -> RepairContext:
        placement = state.stored.placement
        # Helpers must be live: blocks on dead nodes count as failed too.
        dead_blocks = tuple(
            sorted(
                set(failed)
                | {
                    bid
                    for bid, node in placement.block_to_node.items()
                    if node in self._dead_nodes
                }
            )
        )
        return RepairContext(
            code=self.code,
            cluster=self.cluster,
            placement=placement,
            failed_blocks=dead_blocks,
            block_size=self.block_size,
            cost_model=self.cost_model,
            recovery_override=self._recovery_override(state, dead_blocks),
        )

    def _recovery_override(
        self, state: _StripeState, failed: tuple[int, ...]
    ) -> tuple[tuple[int, int], ...]:
        """Pick live spare targets (the default policy ignores dead nodes)."""
        try:
            return pick_live_spares(
                self.cluster,
                state.stored.placement,
                failed,
                dead_nodes=self._dead_nodes,
            )
        except RepairPlanningError as exc:
            raise StorageError(
                f"{exc} (stripe {state.stored.stripe_id})"
            ) from exc

    def _payload_store_for(
        self, state: _StripeState
    ) -> dict[int, dict[str, np.ndarray]]:
        store: dict[int, dict[str, np.ndarray]] = {}
        for bid in range(self.code.width):
            payload = self._read_block(state, bid)
            if payload is not None:
                node = state.stored.placement.node_of(bid)
                store.setdefault(node, {})[block_key(bid)] = payload
        return store
