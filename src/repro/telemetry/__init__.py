"""repro.telemetry — one span/event schema for all three plan interpreters.

A :class:`~repro.repair.plan.RepairPlan` can be run three ways: predicted
on the discrete-event engine (:mod:`repro.sim`), degraded through the
fault-injecting re-planning loop (:mod:`repro.repair.faults`), or
measured on real bytes by the asyncio live runtime (:mod:`repro.live`).
This package gives them one vocabulary to report in:

* :mod:`repro.telemetry.model` — :class:`Span` / :class:`TelemetryEvent`
  / counters / gauges / histograms inside a :class:`TelemetryTrace`,
  each trace tagged with its clock source (:data:`CLOCK_SIM` simulated
  seconds vs :data:`CLOCK_WALL` measured seconds); the
  :class:`TelemetryRecorder` collector and the falsy
  :data:`NULL_RECORDER` that makes instrumentation zero-cost when off.
* :mod:`repro.telemetry.export` — canonical JSONL (byte-identical
  round-trip) and Chrome trace-event JSON (loads in Perfetto).
* :mod:`repro.telemetry.diff` — sim↔live alignment by op identity:
  per-op measured/predicted ratios, worst divergers, critical-path
  deltas (:func:`diff_traces` / :func:`diff_repair`).

Entrypoints elsewhere: ``telemetry_from_sim`` (:mod:`repro.sim.tracing`)
converts any ``SimResult`` — fault-free or faulted — into this schema;
``run_plan_live(recorder=...)`` emits it natively; ``rpr telemetry``
is the CLI.  See ``docs/OBSERVABILITY.md``.
"""

from .diff import OpAlignment, TraceDiff, diff_repair, diff_traces, render_diff
from .export import from_jsonl, to_chrome_trace, to_jsonl
from .model import (
    CLOCK_SIM,
    CLOCK_WALL,
    NULL_RECORDER,
    NullRecorder,
    OP_CATEGORY,
    Span,
    TelemetryEvent,
    TelemetryRecorder,
    TelemetryTrace,
)

__all__ = [
    "CLOCK_SIM",
    "CLOCK_WALL",
    "NULL_RECORDER",
    "NullRecorder",
    "OP_CATEGORY",
    "OpAlignment",
    "Span",
    "TelemetryEvent",
    "TelemetryRecorder",
    "TelemetryTrace",
    "TraceDiff",
    "diff_repair",
    "diff_traces",
    "from_jsonl",
    "render_diff",
    "to_chrome_trace",
    "to_jsonl",
]
