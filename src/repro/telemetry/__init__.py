"""repro.telemetry — one span/event schema for all three plan interpreters.

A :class:`~repro.repair.plan.RepairPlan` can be run three ways: predicted
on the discrete-event engine (:mod:`repro.sim`), degraded through the
fault-injecting re-planning loop (:mod:`repro.repair.faults`), or
measured on real bytes by the asyncio live runtime (:mod:`repro.live`).
This package gives them one vocabulary to report in:

* :mod:`repro.telemetry.model` — :class:`Span` / :class:`TelemetryEvent`
  / counters / gauges / histograms inside a :class:`TelemetryTrace`,
  each trace tagged with its clock source (:data:`CLOCK_SIM` simulated
  seconds vs :data:`CLOCK_WALL` measured seconds); the
  :class:`TelemetryRecorder` collector and the falsy
  :data:`NULL_RECORDER` that makes instrumentation zero-cost when off.
* :mod:`repro.telemetry.export` — canonical JSONL (byte-identical
  round-trip) and Chrome trace-event JSON (loads in Perfetto).
* :mod:`repro.telemetry.diff` — sim↔live alignment by op identity:
  per-op measured/predicted ratios, worst divergers, critical-path
  deltas (:func:`diff_traces` / :func:`diff_repair`).

Entrypoints elsewhere: ``telemetry_from_sim`` (:mod:`repro.sim.tracing`)
converts any ``SimResult`` — fault-free or faulted — into this schema;
``run_plan_live(recorder=...)`` emits it natively; ``rpr telemetry``
is the CLI.  See ``docs/OBSERVABILITY.md``.
"""

from .diff import OpAlignment, TraceDiff, diff_repair, diff_traces, render_diff
from .distributed import (
    PROC_ATTR,
    TraceContext,
    TraceNode,
    assemble_files,
    assemble_trace,
    build_tree,
    critical_path,
    new_span_id,
    render_critical_path,
    render_tree,
    trace_ids,
)
from .export import from_jsonl, to_chrome_trace, to_jsonl
from .histogram import (
    LATENCY_PREFIX,
    LogHistogram,
    StatsRegistry,
    snapshots_to_prometheus,
    validate_prometheus_text,
)
from .stream import StreamingRecorder
from .model import (
    CLOCK_SIM,
    CLOCK_WALL,
    NULL_RECORDER,
    NullRecorder,
    OP_CATEGORY,
    Span,
    TelemetryEvent,
    TelemetryRecorder,
    TelemetryTrace,
)

__all__ = [
    "CLOCK_SIM",
    "CLOCK_WALL",
    "LATENCY_PREFIX",
    "LogHistogram",
    "NULL_RECORDER",
    "PROC_ATTR",
    "NullRecorder",
    "OP_CATEGORY",
    "OpAlignment",
    "Span",
    "StatsRegistry",
    "StreamingRecorder",
    "TelemetryEvent",
    "TelemetryRecorder",
    "TelemetryTrace",
    "TraceContext",
    "TraceDiff",
    "TraceNode",
    "assemble_files",
    "assemble_trace",
    "build_tree",
    "critical_path",
    "diff_repair",
    "diff_traces",
    "from_jsonl",
    "new_span_id",
    "render_critical_path",
    "render_diff",
    "render_tree",
    "snapshots_to_prometheus",
    "to_chrome_trace",
    "to_jsonl",
    "trace_ids",
    "validate_prometheus_text",
]
