"""Sim↔live trace diffing: per-op measured/predicted attribution.

`run_live_validation` trusts the simulator when aggregate makespans
agree; this module answers the next question — *which op* drifted when
they do not.  Plan op ids are the join key (they are simultaneously sim
job ids and live op ids), so the predicted trace and the measured trace
align exactly op-for-op:

* :func:`diff_traces` joins two :class:`~repro.telemetry.TelemetryTrace`
  objects on their op spans and returns a :class:`TraceDiff` with one
  :class:`OpAlignment` per common op (measured/predicted duration
  ratio, both start times) plus the ops only one side saw;
* :func:`diff_repair` is the one-call form for a
  :class:`~repro.repair.RepairOutcome` + live result pair — it derives
  both traces itself and threads the simulated critical path through,
  so :meth:`TraceDiff.critical_path_delta` can say how much of the
  makespan drift sits on the path that set the predicted finish time.

Divergence is ranked by ``|ln ratio|`` so a transfer measured at half
speed and one at double speed are equally alarming.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .model import TelemetryTrace

__all__ = ["OpAlignment", "TraceDiff", "diff_repair", "diff_traces", "render_diff"]


@dataclass(frozen=True)
class OpAlignment:
    """One op seen by both interpreters: predicted vs measured timing."""

    op_id: str
    kind: str  # "transfer" | "compute" | ""
    predicted_s: float
    measured_s: float
    predicted_start: float
    measured_start: float
    cross_rack: bool = False
    nbytes: float = 0.0

    @property
    def ratio(self) -> float:
        """Measured / predicted duration (inf when prediction is zero)."""
        if self.predicted_s > 0:
            return self.measured_s / self.predicted_s
        return float("inf") if self.measured_s > 0 else 1.0

    @property
    def divergence(self) -> float:
        """``|ln ratio|`` — symmetric badness (0 = perfect calibration)."""
        r = self.ratio
        if r <= 0 or math.isinf(r):
            return float("inf")
        return abs(math.log(r))

    def to_dict(self) -> dict:
        return {
            "op_id": self.op_id,
            "kind": self.kind,
            "predicted_s": self.predicted_s,
            "measured_s": self.measured_s,
            "ratio": self.ratio,
            "predicted_start": self.predicted_start,
            "measured_start": self.measured_start,
            "cross_rack": self.cross_rack,
            "nbytes": self.nbytes,
        }


@dataclass(frozen=True)
class TraceDiff:
    """The aligned comparison of one predicted and one measured run."""

    aligned: tuple[OpAlignment, ...]
    sim_only: tuple[str, ...]
    live_only: tuple[str, ...]
    predicted_makespan: float
    measured_makespan: float
    path_ops: tuple[str, ...] = ()

    @property
    def all_aligned(self) -> bool:
        """True when both sides saw exactly the same op set."""
        return not self.sim_only and not self.live_only

    @property
    def makespan_ratio(self) -> float:
        if self.predicted_makespan > 0:
            return self.measured_makespan / self.predicted_makespan
        return float("inf") if self.measured_makespan > 0 else 1.0

    def worst(self, n: int = 5) -> list[OpAlignment]:
        """The ``n`` most-diverged ops, worst first."""
        return sorted(
            self.aligned, key=lambda a: (-a.divergence, a.op_id)
        )[:n]

    def critical_path_delta(self) -> dict[str, float]:
        """Predicted vs measured time along the *simulated* critical path.

        Sums the durations of the path's ops on each side.  A
        ``delta_s`` close to ``measured_makespan - predicted_makespan``
        means the drift lives on the predicted bottleneck chain; a small
        ``delta_s`` under a large makespan gap means the live run's
        bottleneck moved somewhere the simulator did not predict.
        """
        by_id = {a.op_id: a for a in self.aligned}
        predicted = measured = 0.0
        for op_id in self.path_ops:
            a = by_id.get(op_id)
            if a is None:
                continue
            predicted += a.predicted_s
            measured += a.measured_s
        return {
            "path_predicted_s": predicted,
            "path_measured_s": measured,
            "delta_s": measured - predicted,
        }

    def to_dict(self) -> dict:
        return {
            "predicted_makespan": self.predicted_makespan,
            "measured_makespan": self.measured_makespan,
            "makespan_ratio": self.makespan_ratio,
            "all_aligned": self.all_aligned,
            "aligned": [a.to_dict() for a in self.aligned],
            "sim_only": list(self.sim_only),
            "live_only": list(self.live_only),
            "critical_path": {
                "ops": list(self.path_ops),
                **self.critical_path_delta(),
            },
        }


def diff_traces(
    sim_trace: TelemetryTrace,
    live_trace: TelemetryTrace,
    *,
    path_ops: tuple[str, ...] = (),
) -> TraceDiff:
    """Join two traces on op identity.

    ``sim_trace`` supplies the predictions (usually :data:`CLOCK_SIM`),
    ``live_trace`` the measurements (usually :data:`CLOCK_WALL`); the
    clocks are deliberately *not* required to differ, so two live runs
    (or two sim variants) can be diffed the same way.
    """
    sim_ops = sim_trace.op_spans()
    live_ops = live_trace.op_spans()
    aligned = []
    for op_id in sorted(sim_ops.keys() & live_ops.keys()):
        s, m = sim_ops[op_id], live_ops[op_id]
        aligned.append(
            OpAlignment(
                op_id=op_id,
                kind=s.attrs.get("kind", m.attrs.get("kind", "")),
                predicted_s=s.duration,
                measured_s=m.duration,
                predicted_start=s.start,
                measured_start=m.start,
                cross_rack=bool(s.attrs.get("cross_rack", m.attrs.get("cross_rack", False))),
                nbytes=float(s.attrs.get("nbytes", m.attrs.get("nbytes", 0.0))),
            )
        )
    return TraceDiff(
        aligned=tuple(aligned),
        sim_only=tuple(sorted(sim_ops.keys() - live_ops.keys())),
        live_only=tuple(sorted(live_ops.keys() - sim_ops.keys())),
        predicted_makespan=sim_trace.extent,
        measured_makespan=live_trace.extent,
        path_ops=tuple(path_ops),
    )


def diff_repair(outcome, live) -> TraceDiff:
    """Diff a simulated :class:`~repro.repair.RepairOutcome` against its live run.

    ``live`` is the :class:`~repro.live.LiveResult` of executing
    ``outcome.plan``.  Uses the live run's attached telemetry when it
    carries one; otherwise synthesizes op spans from
    ``LiveResult.timings`` (every live run records those), so the diff
    works even for runs made without a recorder.  The simulated critical
    path rides along for :meth:`TraceDiff.critical_path_delta`.
    """
    from ..sim.tracing import critical_path, telemetry_from_sim

    sim_trace = telemetry_from_sim(
        outcome.sim, outcome.cluster, meta={"scheme": outcome.scheme}
    )
    live_trace = getattr(live, "telemetry", None)
    if live_trace is None:
        live_trace = live_trace_from_timings(live, outcome.plan)
    path_ops = tuple(seg.job_id for seg in critical_path(outcome.sim))
    return diff_traces(sim_trace, live_trace, path_ops=path_ops)


def live_trace_from_timings(live, plan) -> TelemetryTrace:
    """Build a minimal wall-clock trace from ``LiveResult.timings``.

    The fallback path for live runs executed without a recorder: one op
    span per measured timing, tagged with the op's kind and endpoints
    from ``plan`` when available.
    """
    from .model import CLOCK_WALL, OP_CATEGORY, Span

    spans = []
    for timing in live.timings.values():
        attrs: dict = {}
        op = plan.ops.get(timing.op_id) if plan is not None else None
        if op is not None:
            if hasattr(op, "src"):
                attrs = {"kind": "transfer", "node": op.src, "peer": op.dst}
            else:
                attrs = {"kind": "compute", "node": op.node}
        spans.append(
            Span(
                name=timing.op_id,
                start=timing.start,
                end=timing.end,
                category=OP_CATEGORY,
                op_id=timing.op_id,
                attrs=attrs,
            )
        )
    return TelemetryTrace(
        clock=CLOCK_WALL,
        meta={"source": "live", "transport": getattr(live, "transport", "?")},
        spans=spans,
    )


def render_diff(diff: TraceDiff, top: int = 8) -> str:
    """Terminal rendering of a :class:`TraceDiff` (the ``rpr telemetry diff`` body)."""
    lines = [
        "sim ↔ live trace diff — predicted {:.4f} s, measured {:.4f} s, "
        "ratio {:.3f}".format(
            diff.predicted_makespan, diff.measured_makespan, diff.makespan_ratio
        ),
        "ops: {} aligned, {} sim-only, {} live-only".format(
            len(diff.aligned), len(diff.sim_only), len(diff.live_only)
        ),
    ]
    if diff.sim_only:
        lines.append("  sim-only: " + ", ".join(diff.sim_only))
    if diff.live_only:
        lines.append("  live-only: " + ", ".join(diff.live_only))
    if diff.path_ops:
        delta = diff.critical_path_delta()
        lines.append(
            "critical path ({} ops): predicted {:.4f} s, measured {:.4f} s, "
            "delta {:+.4f} s".format(
                len(diff.path_ops),
                delta["path_predicted_s"],
                delta["path_measured_s"],
                delta["delta_s"],
            )
        )
    worst = diff.worst(top)
    if worst:
        lines.append("")
        lines.append(f"worst divergers (top {len(worst)}):")
        header = ["op", "kind", "pred_s", "meas_s", "ratio", "x-rack"]
        rows = [
            [
                a.op_id,
                a.kind,
                f"{a.predicted_s:.4f}",
                f"{a.measured_s:.4f}",
                f"{a.ratio:.3f}",
                "yes" if a.cross_rack else "",
            ]
            for a in worst
        ]
        table = [header] + rows
        widths = [max(len(str(r[i])) for r in table) for i in range(len(header))]

        def fmt(cells):
            return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))

        lines.append(fmt(header))
        lines.append(fmt(["-" * w for w in widths]))
        lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
