"""Cross-process trace assembly for the multi-process store.

One store operation touches three kinds of processes — the client that
issued it, the coordinator that planned around it, and every daemon that
moved bytes for it — and each of them records telemetry into its *own*
stream with its own clock origin.  This module is what stitches those
streams back into one story:

* a :class:`TraceContext` is the propagation token: a random 64-bit
  ``trace_id`` shared by everything one logical operation caused, plus a
  random 64-bit ``span_id`` per hop and the ``parent_id`` it descends
  from.  Contexts ride the :mod:`repro.store.messages` frame header
  (``"tc"``) and repair-op metadata; every recorded span tags itself
  with :meth:`TraceContext.attrs`.  Ids are random, never sequential, so
  streams merged from any number of processes cannot collide.
* :func:`assemble_trace` merges per-process :class:`TelemetryTrace`
  streams into one wall-clock timeline, aligning clocks through the
  ``meta["origin_unix"]`` anchor each wall recorder stamps (the unix
  time of its t=0) and namespacing per-process op ids and metrics.
* :func:`build_tree` / :func:`render_tree` turn the assembled spans into
  parent→child trees keyed on the propagated span ids, and
  :func:`critical_path` walks the latest-finishing chain — the
  end-to-end answer to "where did this repair spend its time".

The assembled trace is a plain :class:`TelemetryTrace`, so the existing
JSONL and Perfetto exporters work on it unchanged (``rpr telemetry
assemble --export``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

from .export import from_jsonl
from .model import CLOCK_WALL, Span, TelemetryEvent, TelemetryTrace

__all__ = [
    "TraceContext",
    "TraceNode",
    "assemble_files",
    "assemble_trace",
    "build_tree",
    "critical_path",
    "new_span_id",
    "render_critical_path",
    "render_tree",
    "trace_ids",
]

#: Span attribute keys the context writes and the tree builder reads.
TRACE_ID_ATTR = "trace_id"
SPAN_ID_ATTR = "span_id"
PARENT_ID_ATTR = "parent_span_id"

#: Span attribute naming the process a span came from (stamped by
#: :func:`assemble_trace` from each source's name).
PROC_ATTR = "proc"


def new_span_id() -> str:
    """A random 64-bit hex id — collision-safe across merged processes."""
    return os.urandom(8).hex()


@dataclass(frozen=True)
class TraceContext:
    """The propagation token: (trace, this hop, the hop it descends from).

    Immutable; crossing a process or logical boundary mints a
    :meth:`child` whose ``parent_id`` is this hop's ``span_id``.  The
    wire form (:meth:`to_wire` / :meth:`from_wire`) is a three-key dict
    small enough for every RPC header.
    """

    trace_id: str
    span_id: str
    parent_id: str = ""

    @classmethod
    def root(cls) -> "TraceContext":
        """A fresh trace — called at every client/coordinator entry point."""
        return cls(trace_id=new_span_id(), span_id=new_span_id())

    def child(self) -> "TraceContext":
        """A new hop under this one (same trace, fresh span id)."""
        return TraceContext(
            trace_id=self.trace_id, span_id=new_span_id(), parent_id=self.span_id
        )

    def attrs(self) -> dict:
        """The span attributes that make a recorded span tree-linkable."""
        out = {TRACE_ID_ATTR: self.trace_id, SPAN_ID_ATTR: self.span_id}
        if self.parent_id:
            out[PARENT_ID_ATTR] = self.parent_id
        return out

    def to_wire(self) -> dict:
        """Compact dict for the RPC frame header (``"tc"`` field)."""
        out = {"t": self.trace_id, "s": self.span_id}
        if self.parent_id:
            out["p"] = self.parent_id
        return out

    @classmethod
    def from_wire(cls, data: dict | None) -> "TraceContext | None":
        """Parse a header field back into a context (``None`` passes through)."""
        if not data:
            return None
        return cls(
            trace_id=str(data.get("t", "")),
            span_id=str(data.get("s", "")) or new_span_id(),
            parent_id=str(data.get("p", "")),
        )


def _origin_unix(trace: TelemetryTrace) -> float | None:
    value = trace.meta.get("origin_unix")
    return float(value) if value is not None else None


def assemble_trace(sources: list[tuple[str, TelemetryTrace]]) -> TelemetryTrace:
    """Merge per-process wall traces into one aligned timeline.

    ``sources`` is ``[(name, trace), ...]`` — e.g. ``[("client", t0),
    ("coordinator", t1), ("node-0", t2), ...]``.  Each trace's
    timestamps are origin-relative to *its own* t=0; recorders stamp
    ``meta["origin_unix"]`` (the unix time of that origin) so this
    function can rebase everything onto the earliest process's clock.
    Traces without the anchor stay unshifted — they still merge, they
    just can't be time-aligned.

    Per-process identity is preserved by namespacing: every span/event
    gains a ``proc`` attribute, and non-empty op ids and metric names
    are prefixed ``"<name>/"`` so two processes' ``pacing.stalls``
    counters (or identical plan op ids) never collapse into one.  Span
    parent/child structure across processes comes from the propagated
    ``span_id``/``parent_span_id`` attributes, not from op ids.
    """
    anchors = [a for _, t in sources if (a := _origin_unix(t)) is not None]
    base = min(anchors) if anchors else 0.0
    out = TelemetryTrace(
        clock=CLOCK_WALL,
        meta={
            "assembled": True,
            "sources": [name for name, _ in sources],
            "origin_unix": base,
        },
    )
    for name, trace in sources:
        anchor = _origin_unix(trace)
        offset = (anchor - base) if anchor is not None else 0.0
        shifted = trace.shifted(offset)
        for span in shifted.spans:
            attrs = dict(span.attrs)
            attrs.setdefault(PROC_ATTR, name)
            out.spans.append(
                Span(
                    name=span.name,
                    start=span.start,
                    end=span.end,
                    category=span.category,
                    op_id=f"{name}/{span.op_id}" if span.op_id else "",
                    parent=span.parent,
                    attrs=attrs,
                )
            )
        for event in shifted.events:
            attrs = dict(event.attrs)
            attrs.setdefault(PROC_ATTR, name)
            out.events.append(
                TelemetryEvent(
                    name=event.name,
                    time=event.time,
                    category=event.category,
                    op_id=event.op_id,
                    attrs=attrs,
                )
            )
        for key, value in shifted.counters.items():
            out.counters[f"{name}/{key}"] = value
        for key, samples in shifted.gauges.items():
            out.gauges[f"{name}/{key}"] = list(samples)
        for key, values in shifted.histograms.items():
            out.histograms[f"{name}/{key}"] = list(values)
    out.spans.sort(key=lambda s: (s.start, s.end, s.name))
    out.events.sort(key=lambda e: (e.time, e.name))
    return out


def assemble_files(paths: list[str | Path]) -> TelemetryTrace:
    """Assemble telemetry JSONL files, named by ``meta["node"]`` or stem."""
    sources: list[tuple[str, TelemetryTrace]] = []
    for path in paths:
        path = Path(path)
        trace = from_jsonl(path.read_text())
        name = str(trace.meta.get("node") or path.stem)
        sources.append((name, trace))
    return assemble_trace(sources)


@dataclass
class TraceNode:
    """One span in an assembled tree, with its propagated children."""

    span: Span
    children: list["TraceNode"] = field(default_factory=list)

    @property
    def proc(self) -> str:
        return str(self.span.attrs.get(PROC_ATTR, ""))

    @property
    def span_id(self) -> str:
        return str(self.span.attrs.get(SPAN_ID_ATTR, ""))


def build_tree(
    trace: TelemetryTrace, trace_id: str | None = None
) -> list[TraceNode]:
    """Link spans into parent→child trees via propagated span ids.

    Only spans carrying a ``span_id`` attribute participate (spans from
    un-instrumented paths are ignored).  With ``trace_id`` given, the
    forest is restricted to that one logical operation; otherwise every
    trace id present contributes its roots.  A span whose parent id
    never shows up (the parent process's stream is missing) becomes a
    root itself, so partial collections still render.
    """
    nodes: dict[str, TraceNode] = {}
    ordered: list[TraceNode] = []
    for span in trace.spans:
        sid = span.attrs.get(SPAN_ID_ATTR)
        if not sid:
            continue
        if trace_id is not None and span.attrs.get(TRACE_ID_ATTR) != trace_id:
            continue
        node = TraceNode(span=span)
        nodes.setdefault(str(sid), node)
        ordered.append(node)
    roots: list[TraceNode] = []
    for node in ordered:
        parent_id = str(node.span.attrs.get(PARENT_ID_ATTR, ""))
        parent = nodes.get(parent_id) if parent_id else None
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            roots.append(node)
    for node in ordered:
        node.children.sort(key=lambda n: (n.span.start, n.span.end))
    roots.sort(key=lambda n: (n.span.start, n.span.end))
    return roots


def trace_ids(trace: TelemetryTrace) -> list[str]:
    """Distinct trace ids present, ordered by first span start."""
    seen: dict[str, float] = {}
    for span in trace.spans:
        tid = span.attrs.get(TRACE_ID_ATTR)
        if tid and (tid not in seen or span.start < seen[tid]):
            seen[str(tid)] = span.start
    return sorted(seen, key=lambda t: seen[t])


def _label(node: TraceNode) -> str:
    span = node.span
    ms = span.duration * 1e3
    proc = f" [{node.proc}]" if node.proc else ""
    return f"{span.name}{proc} {span.start:.4f}s +{ms:.2f}ms"


def render_tree(roots: list[TraceNode]) -> str:
    """ASCII tree of an assembled forest, one line per span."""
    lines: list[str] = []

    def walk(node: TraceNode, prefix: str, tail: bool, top: bool) -> None:
        if top:
            lines.append(_label(node))
            child_prefix = ""
        else:
            lines.append(f"{prefix}{'└─ ' if tail else '├─ '}{_label(node)}")
            child_prefix = prefix + ("   " if tail else "│  ")
        for i, child in enumerate(node.children):
            walk(child, child_prefix, i == len(node.children) - 1, False)

    for root in roots:
        walk(root, "", True, True)
    return "\n".join(lines)


def critical_path(root: TraceNode) -> list[TraceNode]:
    """The latest-finishing descent from ``root`` — what gated completion.

    At every level the child whose span *ends last* is the one the
    parent waited for; following that chain to a leaf yields the
    end-to-end critical path of the operation.
    """
    path = [root]
    node = root
    while node.children:
        node = max(node.children, key=lambda n: (n.span.end, n.span.start))
        path.append(node)
    return path


def render_critical_path(path: list[TraceNode]) -> str:
    """One line per hop: name, process, absolute window, duration."""
    lines = []
    for depth, node in enumerate(path):
        span = node.span
        lines.append(
            f"{'  ' * depth}{span.name} [{node.proc or '?'}] "
            f"{span.start:.4f}s -> {span.end:.4f}s ({span.duration * 1e3:.2f}ms)"
        )
    return "\n".join(lines)
